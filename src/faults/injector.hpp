/**
 * @file
 * Deterministic single-bit fault injection.
 *
 * A fault plan names a target structure, a dynamic trigger point, and a
 * deterministic choice of victim within the structure; applying the plan
 * flips exactly one bit. Plans are drawn from the repo's xoshiro256**
 * generator seeded per trial, so a campaign seed fully determines every
 * plan — two same-seed campaigns inject bit-identical fault sets.
 *
 * The trigger point is counted in *application* instructions (not total
 * dynamic instructions): ACFs expand the dynamic stream but leave the
 * application stream untouched, so the same plan perturbs the same
 * architectural point whether an ACF is active or not. That is what
 * makes detection rates comparable across ACF-on/ACF-off regimes.
 *
 * Targets:
 *  - MemoryData: one bit of the program's data image.
 *  - RegisterFile: one bit of an architectural register (never $zero).
 *  - InstructionWord: one bit of a text word (the decode cache is
 *    invalidated so the corrupted word is re-fetched).
 *  - PtEntry / RtEntry: one resident DISE pattern-table / replacement-
 *    table entry, via the engine's corruption hooks; parity modeling
 *    (DiseConfig::parityChecks) decides whether the engine detects and
 *    re-faults the entry or consumes it silently.
 */

#ifndef DISE_FAULTS_INJECTOR_HPP
#define DISE_FAULTS_INJECTOR_HPP

#include "src/common/rng.hpp"
#include "src/sim/core.hpp"

namespace dise {

/** Structure a fault plan perturbs. */
enum class FaultTarget : uint8_t {
    MemoryData,
    RegisterFile,
    InstructionWord,
    PtEntry,
    RtEntry,
};

/** Stable lower-case target name (table/row labels). */
const char *faultTargetName(FaultTarget target);

/** One planned single-bit fault. */
struct FaultPlan
{
    FaultTarget target = FaultTarget::MemoryData;
    /** Inject when the core has retired this many application insts. */
    uint64_t triggerAppInst = 0;
    /** Deterministic victim selector within the target structure. */
    uint64_t pick = 0;
    /** Bit to flip (reduced modulo the victim's width). */
    unsigned bit = 0;
};

/**
 * Draw a plan for @p target from @p rng. The trigger is uniform in
 * [0, max(1, @p maxTriggerAppInst)); the generator is always advanced
 * by the same number of draws, whatever the target.
 */
FaultPlan makeFaultPlan(Rng &rng, FaultTarget target,
                        uint64_t maxTriggerAppInst);

/**
 * Apply @p plan to a live core. @p controller may be null (PT/RT plans
 * then inject nothing).
 *
 * @return True when a bit was actually flipped. PT/RT plans report
 *         false when no entry is resident at the trigger point;
 *         MemoryData reports false for a program with no data image.
 */
bool applyFault(ExecCore &core, DiseController *controller,
                const Program &prog, const FaultPlan &plan);

} // namespace dise

#endif // DISE_FAULTS_INJECTOR_HPP
