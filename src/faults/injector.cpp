#include "src/faults/injector.hpp"

namespace dise {

const char *
faultTargetName(FaultTarget target)
{
    switch (target) {
      case FaultTarget::MemoryData:
        return "mem-data";
      case FaultTarget::RegisterFile:
        return "regfile";
      case FaultTarget::InstructionWord:
        return "inst-word";
      case FaultTarget::PtEntry:
        return "pt-entry";
      case FaultTarget::RtEntry:
        return "rt-entry";
    }
    return "?";
}

FaultPlan
makeFaultPlan(Rng &rng, FaultTarget target, uint64_t maxTriggerAppInst)
{
    FaultPlan plan;
    plan.target = target;
    // Fixed draw order and count: the plan stream depends only on the
    // trial seed, never on the target kind.
    plan.triggerAppInst =
        rng.below(maxTriggerAppInst > 0 ? maxTriggerAppInst : 1);
    plan.pick = rng.next();
    plan.bit = static_cast<unsigned>(rng.below(64));
    return plan;
}

bool
applyFault(ExecCore &core, DiseController *controller, const Program &prog,
           const FaultPlan &plan)
{
    switch (plan.target) {
      case FaultTarget::MemoryData: {
        if (prog.data.empty())
            return false;
        const Addr addr = prog.dataBase + plan.pick % prog.data.size();
        core.memory().flipBit(addr, plan.bit % 8);
        return true;
      }
      case FaultTarget::RegisterFile: {
        // [0, kNumArchRegs - 1) skips only $zero (index 31), which has
        // no storage to corrupt.
        const RegIndex r =
            static_cast<RegIndex>(plan.pick % (kNumArchRegs - 1));
        core.setReg(r, core.reg(r) ^ (uint64_t(1) << (plan.bit % 64)));
        return true;
      }
      case FaultTarget::InstructionWord: {
        if (prog.text.empty())
            return false;
        const Addr addr =
            prog.textBase + 4 * (plan.pick % prog.text.size());
        core.memory().flipBit(addr, plan.bit % 32);
        core.invalidateDecodeCache();
        return true;
      }
      case FaultTarget::PtEntry:
        return controller &&
               controller->engine().corruptPatternEntry(plan.pick);
      case FaultTarget::RtEntry:
        return controller && controller->engine().corruptReplacementEntry(
                                 plan.pick, plan.bit % 32);
    }
    return false;
}

} // namespace dise
