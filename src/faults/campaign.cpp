#include "src/faults/campaign.hpp"

#include <algorithm>
#include <map>

#include "src/common/logging.hpp"
#include "src/common/stats.hpp"
#include "src/sim/snapshot.hpp"

namespace dise {

const char *
trialOutcomeName(TrialOutcome outcome)
{
    switch (outcome) {
      case TrialOutcome::Benign:
        return "benign";
      case TrialOutcome::DetectedByAcf:
        return "detected-acf";
      case TrialOutcome::DetectedByTrap:
        return "detected-trap";
      case TrialOutcome::Hang:
        return "hang";
      case TrialOutcome::SilentCorruption:
        return "silent-corruption";
      case TrialOutcome::NotInjected:
        return "not-injected";
      case TrialOutcome::SimError:
        return "sim-error";
    }
    return "?";
}

double
CampaignResult::detectedFraction() const
{
    return safeRatio(double(count(TrialOutcome::DetectedByAcf) +
                            count(TrialOutcome::DetectedByTrap)),
                     double(injected));
}

double
CampaignResult::silentFraction() const
{
    return safeRatio(double(count(TrialOutcome::SilentCorruption)),
                     double(injected));
}

TrialOutcome
classifyTrialOutcome(const RunResult &trial, const RunResult &golden,
                     bool injected)
{
    if (!injected)
        return TrialOutcome::NotInjected;
    if (trial.acfDetections > 0)
        return TrialOutcome::DetectedByAcf;
    if (trial.outcome == RunOutcome::Trap)
        return TrialOutcome::DetectedByTrap;
    if (trial.outcome != RunOutcome::Exit)
        return TrialOutcome::Hang;
    if (trial.exitCode == golden.exitCode &&
        trial.output == golden.output) {
        return TrialOutcome::Benign;
    }
    return TrialOutcome::SilentCorruption;
}

Json
campaignToJson(const CampaignResult &result)
{
    Json outcomes = Json::object();
    for (size_t i = 0; i < kNumTrialOutcomes; ++i)
        outcomes[trialOutcomeName(static_cast<TrialOutcome>(i))] =
            Json(uint64_t(result.counts[i]));
    Json entry = Json::object();
    entry["injected"] = Json(uint64_t(result.injected));
    entry["outcomes"] = std::move(outcomes);
    entry["detected_fraction"] = Json(result.detectedFraction());
    entry["parity_detected"] = Json(uint64_t(result.parityDetected));
    entry["parity_recovered"] = Json(uint64_t(result.parityRecovered));
    // Replay accounting differs by design between snapshot and
    // full-replay campaigns (that difference IS the O(delta) claim), so
    // it lives in its own section that determinism comparisons strip,
    // like "host".
    Json replay = Json::object();
    replay["replayed_insts"] = Json(result.replayedInsts);
    replay["saved_insts"] = Json(result.savedInsts);
    entry["replay"] = std::move(replay);
    return entry;
}

namespace {

/** One run's worth of machinery (controller optional). */
struct RunContext
{
    std::unique_ptr<DiseController> controller;
    std::unique_ptr<ExecCore> core;
};

RunContext
makeRun(const CampaignSetup &setup, const std::atomic<bool> *cancel)
{
    RunContext ctx;
    if (setup.makeAcf) {
        ctx.controller =
            std::make_unique<DiseController>(setup.diseConfig);
        ctx.controller->install(setup.makeAcf());
    }
    ctx.core =
        std::make_unique<ExecCore>(*setup.prog, ctx.controller.get());
    ctx.core->setCancelFlag(cancel);
    if (setup.initCore)
        setup.initCore(*ctx.core);
    return ctx;
}

uint64_t
parityDetections(const DiseController *controller)
{
    if (!controller)
        return 0;
    const StatGroup &stats = controller->engine().stats();
    return stats.get("pt_parity_detected") +
           stats.get("rt_parity_detected");
}

/** Everything one trial produces; aggregated in trial order. */
struct TrialData
{
    TrialRecord rec;
    /** Guest instructions this trial actually executed (the suffix
     *  only, when it restored a snapshot). */
    uint64_t execInsts = 0;
    /** Guest instructions a from-reset replay of this trial covers
     *  (prefix + suffix); what execInsts is measured against. */
    uint64_t fullDynInsts = 0;
    bool injectedBit = false;
    bool simError = false;
};

/**
 * Run and classify one trial. Thread-safe: each trial owns a fresh
 * controller/core and reads only const campaign state — the setup, the
 * golden run, its precomputed plan, and (snapshot mode) a frozen
 * SimSnapshot, which restores never mutate.
 *
 * Faults inject at the first application-instruction boundary with
 * plan.triggerAppInst application instructions retired — identically
 * in both modes: the full-replay step loop gates on atAppBoundary(),
 * and snapshots are taken at exactly that boundary.
 */
TrialData
runTrial(const CampaignSetup &setup, const FaultPlan &plan,
         const RunResult &gold, uint64_t hangBudget,
         const SimSnapshot *snap, const std::atomic<bool> *cancel)
{
    TrialData data;
    data.rec.plan = plan;

    try {
        RunContext run = makeRun(setup, cancel);
        uint64_t restoredInsts = 0;
        if (snap) {
            // O(delta): adopt the golden prefix (COW memory fork, full
            // engine state) and execute only the divergent suffix,
            // through the translated fast path.
            run.core->restoreSnapshot(*snap);
            restoredInsts = snap->result.dynInsts;
            if (!run.core->exited() && !run.core->trapped()) {
                data.injectedBit = applyFault(*run.core,
                                              run.controller.get(),
                                              *setup.prog, plan);
            }
            run.core->run(hangBudget);
        } else {
            // Reference configuration: replay the prefix from reset on
            // the step path.
            bool triggered = false;
            DynInst dyn;
            uint64_t steps = 0;
            while (steps < hangBudget) {
                if (!triggered &&
                    run.core->result().appInsts >= plan.triggerAppInst &&
                    run.core->atAppBoundary()) {
                    data.injectedBit = applyFault(*run.core,
                                                  run.controller.get(),
                                                  *setup.prog, plan);
                    triggered = true;
                }
                if (!run.core->step(dyn))
                    break;
                ++steps;
                if ((steps & 0x3ff) == 0 && run.core->cancelRequested())
                    break;
            }
        }

        const RunResult &r = run.core->result();
        data.execInsts = r.dynInsts - restoredInsts;
        data.fullDynInsts = r.dynInsts;
        data.rec.parityDetections = parityDetections(run.controller.get());
        data.rec.outcome = classifyTrialOutcome(r, gold, data.injectedBit);
    } catch (const std::exception &) {
        // The simulator must never throw at a guest fault; anything
        // escaping here is a host-level bug the bench asserts on.
        data.simError = true;
        data.injectedBit = false;
        data.rec.outcome = TrialOutcome::SimError;
    }
    return data;
}

} // namespace

CampaignResult
runCampaign(const CampaignSetup &setup, const CampaignConfig &config,
            SimScheduler *scheduler)
{
    DISE_ASSERT(setup.prog != nullptr, "campaign without a program");
    DISE_ASSERT(!config.targets.empty(), "campaign without targets");

    CampaignResult result;

    // Golden (fault-free) run: the classification baseline.
    RunContext golden = makeRun(setup, config.cancel);
    const RunResult gold = golden.core->run(config.maxGoldenInsts);
    if (gold.outcome != RunOutcome::Exit || gold.exitCode != 0) {
        fatal(strFormat("fault campaign: golden run did not exit "
                        "cleanly (outcome=%s code=%d)",
                        runOutcomeName(gold.outcome), gold.exitCode));
    }
    result.golden = gold;
    result.goldenDynInsts = gold.dynInsts;
    result.goldenAppInsts = gold.appInsts;
    result.totalDynInsts += gold.dynInsts;

    const uint64_t hangBudget = std::max<uint64_t>(
        static_cast<uint64_t>(double(gold.dynInsts) *
                              config.hangBudgetFactor),
        gold.dynInsts + 10000);

    // Every trial's plan is derived up front from its per-trial seed —
    // the same derivation the trials themselves used before plans were
    // hoisted, so plan streams are unchanged for a given campaign seed.
    std::vector<FaultPlan> plans;
    plans.reserve(config.trials);
    for (uint32_t t = 0; t < config.trials; ++t) {
        Rng rng(Rng::deriveSeed(config.seed, t));
        const FaultTarget target =
            config.targets[t % config.targets.size()];
        plans.push_back(makeFaultPlan(rng, target, gold.appInsts));
    }

    // Snapshot pass: one core walks the golden path once (translated
    // fast path), freezing a COW snapshot at every distinct trigger
    // boundary. Trials sharing a trigger share one snapshot; restores
    // from a frozen snapshot are thread-safe.
    std::map<uint64_t, std::shared_ptr<const SimSnapshot>> snapshots;
    uint64_t snapshotterInsts = 0;
    if (config.useSnapshots) {
        RunContext pass = makeRun(setup, config.cancel);
        for (const FaultPlan &plan : plans)
            snapshots.emplace(plan.triggerAppInst, nullptr);
        for (auto &kv : snapshots) {
            pass.core->advanceToAppInst(kv.first);
            // A cancelled advance leaves the core short of the trigger
            // boundary — the snapshot would misposition every trial
            // sharing it, so abandon the campaign here.
            if (pass.core->cancelRequested())
                fatal("fault campaign: cancelled during snapshot pass");
            auto snap = std::make_shared<SimSnapshot>();
            pass.core->saveSnapshot(*snap);
            kv.second = std::move(snap);
        }
        snapshotterInsts = pass.core->result().dynInsts;
        result.totalDynInsts += snapshotterInsts;
    }

    // Run the trials — fanned out across the scheduler when one is
    // provided, serially otherwise. Either way each trial writes its
    // own TrialData slot, and the aggregation below walks the slots in
    // trial order, so the result is bit-identical at any worker count.
    std::vector<uint32_t> indices(config.trials);
    for (uint32_t t = 0; t < config.trials; ++t)
        indices[t] = t;
    std::vector<TrialData> data;
    const auto trial = [&](uint32_t t) {
        const SimSnapshot *snap = nullptr;
        if (config.useSnapshots)
            snap = snapshots.at(plans[t].triggerAppInst).get();
        return runTrial(setup, plans[t], gold, hangBudget, snap,
                        config.cancel);
    };
    if (scheduler && scheduler->workers() > 1)
        data = scheduler->map(indices, trial);
    else {
        data.reserve(config.trials);
        for (const uint32_t t : indices)
            data.push_back(trial(t));
    }

    uint64_t fullReplayInsts = 0;
    result.replayedInsts = snapshotterInsts;
    for (const TrialData &d : data) {
        result.totalDynInsts += d.execInsts;
        result.replayedInsts += d.execInsts;
        fullReplayInsts += d.fullDynInsts;
        if (d.injectedBit)
            ++result.injected;
        if (d.simError)
            ++result.uncaughtExceptions;
        result.parityDetected += d.rec.parityDetections;
        if (d.rec.parityDetections > 0 &&
            d.rec.outcome == TrialOutcome::Benign) {
            ++result.parityRecovered;
        }
        ++result.counts[static_cast<size_t>(d.rec.outcome)];
        result.trials.push_back(d.rec);
    }
    result.savedInsts = fullReplayInsts > result.replayedInsts
                            ? fullReplayInsts - result.replayedInsts
                            : 0;
    return result;
}

} // namespace dise
