#include "src/faults/campaign.hpp"

#include <algorithm>

#include "src/common/logging.hpp"
#include "src/common/stats.hpp"

namespace dise {

const char *
trialOutcomeName(TrialOutcome outcome)
{
    switch (outcome) {
      case TrialOutcome::Benign:
        return "benign";
      case TrialOutcome::DetectedByAcf:
        return "detected-acf";
      case TrialOutcome::DetectedByTrap:
        return "detected-trap";
      case TrialOutcome::Hang:
        return "hang";
      case TrialOutcome::SilentCorruption:
        return "silent-corruption";
      case TrialOutcome::NotInjected:
        return "not-injected";
      case TrialOutcome::SimError:
        return "sim-error";
    }
    return "?";
}

double
CampaignResult::detectedFraction() const
{
    return safeRatio(double(count(TrialOutcome::DetectedByAcf) +
                            count(TrialOutcome::DetectedByTrap)),
                     double(injected));
}

double
CampaignResult::silentFraction() const
{
    return safeRatio(double(count(TrialOutcome::SilentCorruption)),
                     double(injected));
}

namespace {

/** One run's worth of machinery (controller optional). */
struct RunContext
{
    std::unique_ptr<DiseController> controller;
    std::unique_ptr<ExecCore> core;
};

RunContext
makeRun(const CampaignSetup &setup)
{
    RunContext ctx;
    if (setup.makeAcf) {
        ctx.controller =
            std::make_unique<DiseController>(setup.diseConfig);
        ctx.controller->install(setup.makeAcf());
    }
    ctx.core =
        std::make_unique<ExecCore>(*setup.prog, ctx.controller.get());
    if (setup.initCore)
        setup.initCore(*ctx.core);
    return ctx;
}

uint64_t
parityDetections(const DiseController *controller)
{
    if (!controller)
        return 0;
    const StatGroup &stats = controller->engine().stats();
    return stats.get("pt_parity_detected") +
           stats.get("rt_parity_detected");
}

} // namespace

CampaignResult
runCampaign(const CampaignSetup &setup, const CampaignConfig &config)
{
    DISE_ASSERT(setup.prog != nullptr, "campaign without a program");
    DISE_ASSERT(!config.targets.empty(), "campaign without targets");

    CampaignResult result;

    // Golden (fault-free) run: the classification baseline.
    RunContext golden = makeRun(setup);
    const RunResult gold = golden.core->run(config.maxGoldenInsts);
    if (gold.outcome != RunOutcome::Exit || gold.exitCode != 0) {
        fatal(strFormat("fault campaign: golden run did not exit "
                        "cleanly (outcome=%s code=%d)",
                        runOutcomeName(gold.outcome), gold.exitCode));
    }
    result.goldenDynInsts = gold.dynInsts;
    result.goldenAppInsts = gold.appInsts;
    result.totalDynInsts += gold.dynInsts;

    const uint64_t hangBudget = std::max<uint64_t>(
        static_cast<uint64_t>(double(gold.dynInsts) *
                              config.hangBudgetFactor),
        gold.dynInsts + 10000);

    for (uint32_t t = 0; t < config.trials; ++t) {
        Rng rng(Rng::deriveSeed(config.seed, t));
        const FaultTarget target =
            config.targets[t % config.targets.size()];
        TrialRecord rec;
        rec.plan = makeFaultPlan(rng, target, gold.appInsts);

        try {
            RunContext run = makeRun(setup);
            bool triggered = false;
            bool injectedBit = false;
            DynInst dyn;
            uint64_t steps = 0;
            while (steps < hangBudget) {
                if (!triggered && run.core->result().appInsts >=
                                      rec.plan.triggerAppInst) {
                    injectedBit = applyFault(*run.core,
                                             run.controller.get(),
                                             *setup.prog, rec.plan);
                    triggered = true;
                }
                if (!run.core->step(dyn))
                    break;
                ++steps;
            }

            const RunResult &r = run.core->result();
            result.totalDynInsts += r.dynInsts;
            rec.parityDetections = parityDetections(run.controller.get());
            if (!injectedBit) {
                rec.outcome = TrialOutcome::NotInjected;
            } else if (r.acfDetections > 0) {
                rec.outcome = TrialOutcome::DetectedByAcf;
            } else if (r.outcome == RunOutcome::Trap) {
                rec.outcome = TrialOutcome::DetectedByTrap;
            } else if (r.outcome != RunOutcome::Exit) {
                rec.outcome = TrialOutcome::Hang;
            } else if (r.exitCode == gold.exitCode &&
                       r.output == gold.output) {
                rec.outcome = TrialOutcome::Benign;
            } else {
                rec.outcome = TrialOutcome::SilentCorruption;
            }
            if (injectedBit)
                ++result.injected;
            result.parityDetected += rec.parityDetections;
            if (rec.parityDetections > 0 &&
                rec.outcome == TrialOutcome::Benign) {
                ++result.parityRecovered;
            }
        } catch (const std::exception &) {
            // The simulator must never throw at a guest fault; anything
            // escaping here is a host-level bug the bench asserts on.
            ++result.uncaughtExceptions;
            rec.outcome = TrialOutcome::SimError;
        }

        ++result.counts[static_cast<size_t>(rec.outcome)];
        result.trials.push_back(rec);
    }
    return result;
}

} // namespace dise
