/**
 * @file
 * Seeded fault-injection campaigns over the architectural simulator.
 *
 * A campaign runs one golden (fault-free) execution of a program, then N
 * trials, each a fresh core with a single planned bit flip (see
 * injector.hpp), and classifies every trial's outcome:
 *
 *  - detected-acf: control transferred into the program's "error"
 *    symbol — a fault-detecting ACF (MFI segment matching, watchpoint
 *    assertion) caught the corruption.
 *  - detected-trap: the run ended in an architected trap (invalid
 *    instruction, runaway PC, unknown syscall, ...) — the baseline
 *    architecture caught it.
 *  - hang: the run exceeded the watchdog budget, a multiple of the
 *    golden run's dynamic length.
 *  - benign: the run exited with the golden exit code and output.
 *  - silent-corruption: the run exited "normally" with wrong output or
 *    exit code — the dangerous case ACFs are meant to shrink.
 *  - not-injected: the plan had no victim (e.g. a PT/RT plan before any
 *    entry was resident); excluded from rate denominators.
 *  - sim-error: a C++ exception escaped the simulator; always a bug,
 *    counted so benches can assert it stayed zero.
 *
 * Classification precedence is detected-acf > detected-trap > hang >
 * output comparison: an ACF detection that then exits through the error
 * handler is credited to the ACF, not to the exit code.
 *
 * Determinism: trial t draws its plan from
 * Rng(Rng::deriveSeed(config.seed, t)); the simulator itself is
 * deterministic, so two same-seed campaigns produce bit-identical
 * classification vectors.
 */

#ifndef DISE_FAULTS_CAMPAIGN_HPP
#define DISE_FAULTS_CAMPAIGN_HPP

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/json.hpp"
#include "src/common/scheduler.hpp"
#include "src/faults/injector.hpp"

namespace dise {

/** Trial classification (see file header for semantics). */
enum class TrialOutcome : uint8_t {
    Benign,
    DetectedByAcf,
    DetectedByTrap,
    Hang,
    SilentCorruption,
    NotInjected,
    SimError,
};

constexpr size_t kNumTrialOutcomes = 7;

/** Stable lower-case outcome name (table headers). */
const char *trialOutcomeName(TrialOutcome outcome);

/** What to run: the program plus its (optional) ACF environment. */
struct CampaignSetup
{
    const Program *prog = nullptr;
    /**
     * Productions to install for every run, golden and trial alike;
     * null = no DISE controller at all.
     */
    std::function<std::shared_ptr<const ProductionSet>()> makeAcf;
    /** Per-run core setup (dedicated registers, ...); may be null. */
    std::function<void(ExecCore &)> initCore;
    /** Engine configuration (parityChecks lives here). */
    DiseConfig diseConfig;
};

/** Campaign shape. */
struct CampaignConfig
{
    uint64_t seed = 1;
    uint32_t trials = 60;
    /** Trial t targets targets[t % targets.size()]. */
    std::vector<FaultTarget> targets = {FaultTarget::MemoryData,
                                        FaultTarget::RegisterFile,
                                        FaultTarget::InstructionWord};
    /** Hang watchdog = golden dynInsts * this factor (plus slack). */
    double hangBudgetFactor = 4.0;
    /** Instruction cap on the golden run itself. */
    uint64_t maxGoldenInsts = 200000000;
    /**
     * Replay strategy. True (the default): a single snapshotter pass
     * walks the golden path once, captures a copy-on-write SimSnapshot
     * at every distinct trigger point, and each trial restores its
     * snapshot and executes only the divergent suffix (O(delta) per
     * trial). False: every trial re-executes its golden prefix from
     * reset on the step path — the reference configuration the
     * snapshot mode is verified bit-identical against. Classification
     * tables, parity counters and the campaign JSON (modulo the host
     * and replay sections) are identical either way, at any worker
     * count.
     */
    bool useSnapshots = true;
    /**
     * Cooperative-cancellation flag installed on every core the
     * campaign creates (golden, snapshotter, trials). A tripped flag
     * ends the campaign promptly: in-flight runs stop at the next
     * block boundary and the golden-run cleanliness check fails with
     * FatalError. Null = never cancelled.
     */
    const std::atomic<bool> *cancel = nullptr;
};

/** One classified trial. */
struct TrialRecord
{
    FaultPlan plan;
    TrialOutcome outcome = TrialOutcome::NotInjected;
    /** PT/RT parity detections this trial (parity regime only). */
    uint64_t parityDetections = 0;
};

/** Aggregate campaign results. */
struct CampaignResult
{
    /** The golden (fault-free) run the trials were classified against;
     *  also the unified architectural result a campaign RunResponse
     *  reports. */
    RunResult golden;
    uint64_t goldenDynInsts = 0;
    uint64_t goldenAppInsts = 0;
    /** Guest instructions simulated across the golden run and every
     *  trial (host-throughput reporting, not a campaign outcome). */
    uint64_t totalDynInsts = 0;
    std::array<uint64_t, kNumTrialOutcomes> counts{};
    std::vector<TrialRecord> trials;
    /** Trials whose plan actually flipped a bit. */
    uint64_t injected = 0;
    /** PT/RT parity detections across all trials. */
    uint64_t parityDetected = 0;
    /** Parity detections whose trial still ended benign (recovered). */
    uint64_t parityRecovered = 0;
    /** Escaped C++ exceptions (must be zero; see SimError). */
    uint64_t uncaughtExceptions = 0;
    /** @name O(delta) replay accounting (the artifact's "replay"
     *  section). replayedInsts counts guest instructions the trial
     *  phase actually executed (snapshotter pass + per-trial work);
     *  savedInsts is what full replay would have executed on top of
     *  that. Full-replay campaigns report savedInsts == 0. */
    /// @{
    uint64_t replayedInsts = 0;
    uint64_t savedInsts = 0;
    /// @}

    uint64_t
    count(TrialOutcome outcome) const
    {
        return counts[static_cast<size_t>(outcome)];
    }

    /** Detected (ACF + trap) fraction of injected trials. */
    double detectedFraction() const;

    /** Silent-corruption fraction of injected trials. */
    double silentFraction() const;
};

/**
 * Classify one finished trial against the golden run. The single
 * source of the precedence order documented in the file header
 * (detected-acf > detected-trap > hang > output comparison); every
 * campaign path (serial, scheduler-parallel, service) uses it.
 */
TrialOutcome classifyTrialOutcome(const RunResult &trial,
                                  const RunResult &golden,
                                  bool injected);

/**
 * The campaign's artifact entry sans host section (outcome counts,
 * fractions, parity counters). Shared by bench_fault_campaign and the
 * SimSession campaign path so the two emit byte-identical shapes.
 */
Json campaignToJson(const CampaignResult &result);

/**
 * Run a campaign: one golden run, then config.trials seeded trials.
 * fatal()s when the golden run does not exit cleanly (the campaign
 * would classify nothing meaningful against a broken baseline).
 *
 * With a scheduler of >1 workers, trials fan out across its pool;
 * results are aggregated in trial order, so the classification vector
 * and every derived count are bit-identical to the serial run (each
 * trial owns a fresh core and draws its plan from a per-trial derived
 * seed, so trials share no mutable state).
 */
CampaignResult runCampaign(const CampaignSetup &setup,
                           const CampaignConfig &config,
                           SimScheduler *scheduler = nullptr);

} // namespace dise

#endif // DISE_FAULTS_CAMPAIGN_HPP
