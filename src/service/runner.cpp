#include "src/service/runner.hpp"

#include <algorithm>
#include <chrono>

#include "src/acf/compress.hpp"
#include "src/acf/assertions.hpp"
#include "src/acf/compose.hpp"
#include "src/acf/mfi.hpp"
#include "src/acf/rewriter.hpp"
#include "src/assembler/assembler.hpp"
#include "src/common/logging.hpp"
#include "src/common/stats.hpp"
#include "src/dise/parser.hpp"
#include "src/sim/snapshot.hpp"

namespace dise {

WorkloadSpec
scaledSpec(WorkloadSpec spec, double scale)
{
    if (!(scale > 0))
        fatal("workload scale must be > 0");
    if (scale != 1.0) {
        spec.targetDynInsts = static_cast<uint64_t>(
            double(spec.targetDynInsts) * scale);
        spec.kernelIters = std::max(
            1u, static_cast<uint32_t>(double(spec.kernelIters) * scale));
    }
    return spec;
}

Json
hostSection(double seconds, uint64_t guestInsts)
{
    Json host = Json::object();
    host["seconds"] = Json(seconds);
    host["insts_per_second"] =
        Json(safeRatio(double(guestInsts), seconds));
    return host;
}

PreparedJob
prepareJob(const RunRequest &req, const Program *base)
{
    req.validate();
    PreparedJob job;

    // ---- Build the program. ----
    Program prog;
    if (base) {
        prog = *base;
    } else if (!req.workload.empty()) {
        prog = buildWorkload(
            scaledSpec(workloadSpec(req.workload), req.scale));
    } else {
        prog = assemble(req.source);
    }

    // ---- Assemble the production set (pre-transform program). ----
    auto set = std::make_shared<ProductionSet>();
    bool haveDise = false;
    if (!req.productions.empty()) {
        set->merge(parseProductions(req.productions, prog.symbols));
        haveDise = true;
    }
    // Guard cell the program never writes, above the stack region; any
    // nonzero store landing there trips the watchpoint assertion.
    const Addr watchAddr = prog.dataBase +
                           (Addr(1) << (kSegmentShift - 1)) +
                           (Addr(1) << 20);
    if (req.mfi) {
        MfiOptions mfiOpts;
        mfiOpts.variant = req.mfiVariant;
        if (req.watchpoint) {
            set->merge(composeMerged(makeMfiProductions(prog, mfiOpts),
                                     makeWatchpointProductions(prog)));
        } else {
            set->merge(makeMfiProductions(prog, mfiOpts));
        }
        haveDise = true;
    }
    if (req.profile) {
        set->merge(makePathProfilerProductions());
        haveDise = true;
    }

    // ---- Program transforms. ----
    if (req.rewriteMfi)
        prog = applyMfiRewriting(prog);
    if (req.profile) {
        // Place the profile buffer past everything in the data segment.
        job.profileBuffer = prog.dataBase +
                            ((prog.data.size() + 0xffff) &
                             ~size_t(0xfff)) +
                            (1 << 20);
    }
    if (req.compress) {
        const CompressionResult comp = compressProgram(prog);
        prog = comp.compressed;
        set->merge(*comp.dictionary);
        haveDise = true;
    }

    job.owned = std::make_shared<const Program>(std::move(prog));
    job.prog = job.owned.get();
    if (haveDise)
        job.productions = std::move(set);

    // ---- Configuration. ----
    job.dise = req.dise;
    job.traceCache = req.traceCache;
    job.traceFeed = req.traceFeed;
    job.samplePeriod = req.samplePeriod;
    job.sampleDetail = req.sampleDetail;
    job.machine.width = req.width;
    job.machine.mem.l1iSize = req.icacheKB * 1024; // 0 = perfect
    job.maxInsts = req.maxInsts;
    job.maxCycles = req.maxCycles;

    // ---- Register-initialization hook. ----
    const bool mfiRegs = req.mfi;
    const bool profRegs = req.profile;
    const bool watchRegs = req.watchpoint;
    const Addr profileBuffer = job.profileBuffer;
    std::shared_ptr<const Program> owned = job.owned;
    if (mfiRegs || profRegs) {
        job.initCore = [mfiRegs, profRegs, watchRegs, watchAddr,
                        profileBuffer, owned](ExecCore &core) {
            if (mfiRegs)
                initMfiRegisters(core, *owned);
            if (watchRegs)
                initWatchpointRegisters(core, watchAddr, 0);
            if (profRegs)
                initProfilerRegisters(core, profileBuffer);
        };
    }
    return job;
}

namespace {

/** Fresh controller for a job; null when the job installs no ACFs. */
std::unique_ptr<DiseController>
makeController(const PreparedJob &job)
{
    if (!job.productions)
        return nullptr;
    auto controller = std::make_unique<DiseController>(job.dise);
    controller->install(job.productions);
    return controller;
}

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

void
setRunMeta(StatsRegistry &reg, RunOutcome outcome, double hostSeconds,
           uint64_t dynInsts)
{
    reg.set("run.outcome", Json(std::string(runOutcomeName(outcome))));
    reg.set("host.seconds", Json(hostSeconds));
    reg.set("host.insts_per_second",
            Json(safeRatio(double(dynInsts), hostSeconds)));
}

} // namespace

Json
timingEntryJson(PipelineSim &sim, const TimingResult &t,
                double hostSeconds)
{
    StatsRegistry reg;
    sim.registerStats(reg);
    Json entry = Json::object();
    entry["cycles"] = Json(t.cycles);
    entry["insts"] = Json(t.arch.dynInsts);
    entry["ipc"] = Json(t.ipc());
    entry["cpi"] = Json(
        safeRatio(double(t.cycles), double(t.arch.dynInsts)));
    entry["host"] = hostSection(hostSeconds, t.arch.dynInsts);
    Json buckets = Json::object();
    buckets["issue"] = Json(t.buckets.issue);
    buckets["imiss_stall"] = Json(t.buckets.imissStall);
    buckets["dmiss_stall"] = Json(t.buckets.dmissStall);
    buckets["branch_flush"] = Json(t.buckets.branchFlush);
    buckets["dise_stall"] = Json(t.buckets.diseStall);
    buckets["hazard"] = Json(t.buckets.hazard);
    buckets["drain"] = Json(t.buckets.drain);
    entry["buckets"] = std::move(buckets);
    entry["counters"] = reg.toJson();
    if (t.sampling.enabled) {
        // Single-run sampling section: the bench adds "cpi_error" when
        // it also holds the full-detail reference; a lone sampled run
        // reports the measurement and the extrapolation only.
        Json sampling = Json::object();
        sampling["period"] = Json(t.sampling.period);
        sampling["detail"] = Json(t.sampling.detail);
        sampling["sampled_insts"] = Json(t.sampling.sampledInsts);
        sampling["warmed_insts"] = Json(t.sampling.warmedInsts);
        sampling["measured_cycles"] = Json(t.sampling.measuredCycles);
        sampling["measured_cpi"] = Json(t.sampling.measuredCpi());
        sampling["estimated_cycles"] = Json(t.estimatedCycles());
        entry["sampling"] = std::move(sampling);
    }
    return entry;
}

SimSnapshot
takeWarmupSnapshot(const PreparedJob &job, uint64_t warmupAppInsts,
                   const std::atomic<bool> *cancel)
{
    DISE_ASSERT(job.prog != nullptr, "job without a program");
    std::unique_ptr<DiseController> controller = makeController(job);
    ExecCore core(*job.prog, controller.get());
    core.setTraceCacheEnabled(job.traceCache);
    core.setCancelFlag(cancel);
    if (job.initCore)
        job.initCore(core);
    core.advanceToAppInst(warmupAppInsts);
    if (core.cancelRequested())
        fatal("warmup snapshot cancelled before reaching its target");
    // A clean exit during warmup is fine — the snapshot degenerates to
    // the finished run. A trap is not: the guest broke before the
    // warmup point, and resuming a trapped core would silently report
    // the trap as the run's result.
    if (core.trapped()) {
        fatal(strFormat("warmup trapped after %llu of %llu application "
                        "instructions",
                        (unsigned long long)core.result().appInsts,
                        (unsigned long long)warmupAppInsts));
    }
    SimSnapshot snap;
    core.saveSnapshot(snap);
    return snap;
}

FunctionalOutcome
runFunctionalSim(const PreparedJob &job, const SimOptions &opts)
{
    DISE_ASSERT(job.prog != nullptr, "job without a program");
    FunctionalOutcome out;
    std::unique_ptr<DiseController> controller = makeController(job);
    ExecCore core(*job.prog, controller.get());
    core.setTraceCacheEnabled(job.traceCache);
    core.setCancelFlag(opts.cancel);
    if (job.initCore)
        job.initCore(core);
    if (opts.resume)
        core.restoreSnapshot(*opts.resume);

    const auto t0 = std::chrono::steady_clock::now();
    if (opts.traceInsts > 0) {
        DynInst dyn;
        for (uint64_t i = 0; i < opts.traceInsts && core.step(dyn); ++i) {
            if (opts.onTrace)
                opts.onTrace(dyn, i);
        }
    }
    out.arch = core.run(job.maxInsts);
    out.hostSeconds = secondsSince(t0);

    if (opts.statsText && controller)
        out.statsText = controller->engine().stats().dump();
    if (opts.registry) {
        StatsRegistry reg;
        StatGroup runStats("run");
        runStats.set("dyn_insts", out.arch.dynInsts);
        runStats.set("app_insts", out.arch.appInsts);
        runStats.set("dise_insts", out.arch.diseInsts);
        runStats.set("expansions", out.arch.expansions);
        runStats.set("loads", out.arch.loads);
        runStats.set("stores", out.arch.stores);
        runStats.set("acf_detections", out.arch.acfDetections);
        reg.add("run", &runStats);
        if (controller)
            reg.add("dise", &controller->engine().stats());
        setRunMeta(reg, out.arch.outcome, out.hostSeconds,
                   out.arch.dynInsts);
        out.registry = reg.toJson();
    }
    if (job.profileBuffer != 0)
        out.profile = readPathProfile(core, job.profileBuffer);
    return out;
}

TimingOutcome
runTimingSim(const PreparedJob &job, const SimOptions &opts)
{
    DISE_ASSERT(job.prog != nullptr, "job without a program");
    TimingOutcome out;
    std::unique_ptr<DiseController> controller = makeController(job);
    PipelineSim sim(*job.prog, job.machine, controller.get());
    sim.core().setTraceCacheEnabled(job.traceCache);
    sim.setTraceFeed(job.traceFeed);
    if (job.samplePeriod != 0)
        sim.setSampling(job.samplePeriod, job.sampleDetail);
    sim.core().setCancelFlag(opts.cancel);
    if (job.initCore)
        job.initCore(sim.core());

    const auto t0 = std::chrono::steady_clock::now();
    out.timing = sim.run(job.maxInsts, job.maxCycles);
    out.hostSeconds = secondsSince(t0);

    if (opts.statsText) {
        std::string text;
        if (controller)
            text += controller->engine().stats().dump();
        text += sim.mem().icache().stats().dump();
        text += sim.mem().dcache().stats().dump();
        text += sim.mem().l2().stats().dump();
        text += sim.predictor().stats().dump();
        out.statsText = std::move(text);
    }
    if (opts.benchEntry)
        out.benchEntry = timingEntryJson(sim, out.timing,
                                         out.hostSeconds);
    if (opts.registry) {
        StatsRegistry reg;
        sim.registerStats(reg);
        setRunMeta(reg, out.timing.arch.outcome, out.hostSeconds,
                   out.timing.arch.dynInsts);
        out.registry = reg.toJson();
    }
    if (job.profileBuffer != 0)
        out.profile = readPathProfile(sim.core(), job.profileBuffer);
    return out;
}

} // namespace dise
