#include "src/service/runner.hpp"

#include <algorithm>
#include <chrono>

#include "src/acf/assertions.hpp"
#include "src/acf/mfi.hpp"
#include "src/acf/registry.hpp"
#include "src/assembler/assembler.hpp"
#include "src/common/logging.hpp"
#include "src/common/stats.hpp"
#include "src/sim/snapshot.hpp"

namespace dise {

WorkloadSpec
scaledSpec(WorkloadSpec spec, double scale)
{
    if (!(scale > 0))
        fatal("workload scale must be > 0");
    if (scale != 1.0) {
        spec.targetDynInsts = static_cast<uint64_t>(
            double(spec.targetDynInsts) * scale);
        spec.kernelIters = std::max(
            1u, static_cast<uint32_t>(double(spec.kernelIters) * scale));
    }
    return spec;
}

Json
hostSection(double seconds, uint64_t guestInsts)
{
    Json host = Json::object();
    host["seconds"] = Json(seconds);
    host["insts_per_second"] =
        Json(safeRatio(double(guestInsts), seconds));
    return host;
}

PreparedJob
prepareJob(const RunRequest &req, const Program *base)
{
    req.validate();
    PreparedJob job;

    // ---- Build the program. ----
    Program prog;
    if (base) {
        prog = *base;
    } else if (!req.workload.empty()) {
        prog = buildWorkload(
            scaledSpec(workloadSpec(req.workload), req.scale));
    } else {
        prog = assemble(req.source);
    }

    // ---- Resolve the ACF environment through the one registry.
    // Both request forms funnel through here: the legacy booleans
    // desugar to the same spec list the "acfs" form carries.
    const AcfBuild acfBuild = AcfRegistry::instance().build(
        req.normalizedAcfs(), req.productions, prog);

    job.owned = std::make_shared<const Program>(std::move(prog));
    job.prog = job.owned.get();
    job.productions = acfBuild.productions;
    job.fusion = acfBuild.fusion;
    job.profileBuffer = acfBuild.profileBuffer;

    // ---- Configuration. ----
    job.dise = req.dise;
    job.traceCache = req.traceCache;
    job.traceFeed = req.traceFeed;
    job.samplePeriod = req.samplePeriod;
    job.sampleDetail = req.sampleDetail;
    job.machine.width = req.width;
    job.machine.mem.l1iSize = req.icacheKB * 1024; // 0 = perfect
    job.maxInsts = req.maxInsts;
    job.maxCycles = req.maxCycles;

    // ---- Register-initialization hook. ----
    const bool mfiRegs = acfBuild.mfiRegisters;
    const bool profRegs = acfBuild.profilerRegisters;
    const bool watchRegs = acfBuild.watchRegisters;
    const Addr watchAddr = acfBuild.watchAddr;
    const Addr profileBuffer = job.profileBuffer;
    std::shared_ptr<const Program> owned = job.owned;
    if (mfiRegs || profRegs) {
        job.initCore = [mfiRegs, profRegs, watchRegs, watchAddr,
                        profileBuffer, owned](ExecCore &core) {
            if (mfiRegs)
                initMfiRegisters(core, *owned);
            if (watchRegs)
                initWatchpointRegisters(core, watchAddr, 0);
            if (profRegs)
                initProfilerRegisters(core, profileBuffer);
        };
    }
    return job;
}

namespace {

/** Fresh controller for a job; null when the job installs no ACFs. */
std::unique_ptr<DiseController>
makeController(const PreparedJob &job)
{
    if (!job.productions)
        return nullptr;
    auto controller = std::make_unique<DiseController>(job.dise);
    controller->install(job.productions);
    return controller;
}

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

void
setRunMeta(StatsRegistry &reg, RunOutcome outcome, double hostSeconds,
           uint64_t dynInsts)
{
    reg.set("run.outcome", Json(std::string(runOutcomeName(outcome))));
    reg.set("host.seconds", Json(hostSeconds));
    reg.set("host.insts_per_second",
            Json(safeRatio(double(dynInsts), hostSeconds)));
}

} // namespace

Json
timingEntryJson(PipelineSim &sim, const TimingResult &t,
                double hostSeconds)
{
    StatsRegistry reg;
    sim.registerStats(reg);
    Json entry = Json::object();
    entry["cycles"] = Json(t.cycles);
    entry["insts"] = Json(t.arch.dynInsts);
    entry["ipc"] = Json(t.ipc());
    entry["cpi"] = Json(
        safeRatio(double(t.cycles), double(t.arch.dynInsts)));
    entry["host"] = hostSection(hostSeconds, t.arch.dynInsts);
    Json buckets = Json::object();
    buckets["issue"] = Json(t.buckets.issue);
    buckets["imiss_stall"] = Json(t.buckets.imissStall);
    buckets["dmiss_stall"] = Json(t.buckets.dmissStall);
    buckets["branch_flush"] = Json(t.buckets.branchFlush);
    buckets["dise_stall"] = Json(t.buckets.diseStall);
    buckets["hazard"] = Json(t.buckets.hazard);
    buckets["drain"] = Json(t.buckets.drain);
    entry["buckets"] = std::move(buckets);
    entry["counters"] = reg.toJson();
    if (t.sampling.enabled) {
        // Single-run sampling section: the bench adds "cpi_error" when
        // it also holds the full-detail reference; a lone sampled run
        // reports the measurement and the extrapolation only.
        Json sampling = Json::object();
        sampling["period"] = Json(t.sampling.period);
        sampling["detail"] = Json(t.sampling.detail);
        sampling["sampled_insts"] = Json(t.sampling.sampledInsts);
        sampling["warmed_insts"] = Json(t.sampling.warmedInsts);
        sampling["measured_cycles"] = Json(t.sampling.measuredCycles);
        sampling["measured_cpi"] = Json(t.sampling.measuredCpi());
        sampling["estimated_cycles"] = Json(t.estimatedCycles());
        entry["sampling"] = std::move(sampling);
    }
    return entry;
}

SimSnapshot
takeWarmupSnapshot(const PreparedJob &job, uint64_t warmupAppInsts,
                   const std::atomic<bool> *cancel)
{
    DISE_ASSERT(job.prog != nullptr, "job without a program");
    // RunRequest::validate rejects fusion + warmup (a fused boundary
    // retires two application instructions, breaking exactly-N).
    DISE_ASSERT(!job.fusion, "warmup snapshot of a fusion job");
    std::unique_ptr<DiseController> controller = makeController(job);
    ExecCore core(*job.prog, controller.get());
    core.setTraceCacheEnabled(job.traceCache);
    core.setCancelFlag(cancel);
    if (job.initCore)
        job.initCore(core);
    core.advanceToAppInst(warmupAppInsts);
    if (core.cancelRequested())
        fatal("warmup snapshot cancelled before reaching its target");
    // A clean exit during warmup is fine — the snapshot degenerates to
    // the finished run. A trap is not: the guest broke before the
    // warmup point, and resuming a trapped core would silently report
    // the trap as the run's result.
    if (core.trapped()) {
        fatal(strFormat("warmup trapped after %llu of %llu application "
                        "instructions",
                        (unsigned long long)core.result().appInsts,
                        (unsigned long long)warmupAppInsts));
    }
    SimSnapshot snap;
    core.saveSnapshot(snap);
    return snap;
}

FunctionalOutcome
runFunctionalSim(const PreparedJob &job, const SimOptions &opts)
{
    DISE_ASSERT(job.prog != nullptr, "job without a program");
    FunctionalOutcome out;
    std::unique_ptr<DiseController> controller = makeController(job);
    ExecCore core(*job.prog, controller.get());
    core.setTraceCacheEnabled(job.traceCache);
    core.setFusionEnabled(job.fusion);
    core.setCancelFlag(opts.cancel);
    if (job.initCore)
        job.initCore(core);
    if (opts.resume)
        core.restoreSnapshot(*opts.resume);

    const auto t0 = std::chrono::steady_clock::now();
    if (opts.traceInsts > 0) {
        DynInst dyn;
        for (uint64_t i = 0; i < opts.traceInsts && core.step(dyn); ++i) {
            if (opts.onTrace)
                opts.onTrace(dyn, i);
        }
    }
    out.arch = core.run(job.maxInsts);
    out.hostSeconds = secondsSince(t0);

    // One registry walk feeds both the text (--stats) and the JSON
    // (--stats-json) outputs so the two can never drift apart: a
    // counter group registered here shows up in both or in neither.
    if (opts.statsText || opts.registry) {
        StatsRegistry reg;
        StatGroup runStats("run");
        runStats.set("dyn_insts", out.arch.dynInsts);
        runStats.set("app_insts", out.arch.appInsts);
        runStats.set("dise_insts", out.arch.diseInsts);
        runStats.set("expansions", out.arch.expansions);
        runStats.set("loads", out.arch.loads);
        runStats.set("stores", out.arch.stores);
        runStats.set("acf_detections", out.arch.acfDetections);
        reg.add("run", &runStats);
        if (controller)
            reg.add("dise", &controller->engine().stats());
        if (job.fusion)
            reg.add("acf.fusion", &core.fusionStatGroup());
        setRunMeta(reg, out.arch.outcome, out.hostSeconds,
                   out.arch.dynInsts);
        if (opts.statsText)
            out.statsText = reg.dump();
        if (opts.registry)
            out.registry = reg.toJson();
    }
    if (job.profileBuffer != 0)
        out.profile = readPathProfile(core, job.profileBuffer);
    return out;
}

TimingOutcome
runTimingSim(const PreparedJob &job, const SimOptions &opts)
{
    DISE_ASSERT(job.prog != nullptr, "job without a program");
    TimingOutcome out;
    std::unique_ptr<DiseController> controller = makeController(job);
    PipelineSim sim(*job.prog, job.machine, controller.get());
    sim.core().setTraceCacheEnabled(job.traceCache);
    sim.core().setFusionEnabled(job.fusion);
    sim.setTraceFeed(job.traceFeed);
    if (job.samplePeriod != 0)
        sim.setSampling(job.samplePeriod, job.sampleDetail);
    sim.core().setCancelFlag(opts.cancel);
    if (job.initCore)
        job.initCore(sim.core());

    const auto t0 = std::chrono::steady_clock::now();
    out.timing = sim.run(job.maxInsts, job.maxCycles);
    out.hostSeconds = secondsSince(t0);

    if (opts.benchEntry)
        out.benchEntry = timingEntryJson(sim, out.timing,
                                         out.hostSeconds);
    // One registry walk for both output shapes (see runFunctionalSim):
    // PipelineSim::registerStats is the single authority on which
    // component groups a timing run exposes.
    if (opts.statsText || opts.registry) {
        StatsRegistry reg;
        sim.registerStats(reg);
        setRunMeta(reg, out.timing.arch.outcome, out.hostSeconds,
                   out.timing.arch.dynInsts);
        if (opts.statsText)
            out.statsText = reg.dump();
        if (opts.registry)
            out.registry = reg.toJson();
    }
    if (job.profileBuffer != 0)
        out.profile = readPathProfile(sim.core(), job.profileBuffer);
    return out;
}

} // namespace dise
