#include "src/service/request.hpp"

#include "src/common/logging.hpp"
#include "src/common/stats.hpp"

namespace dise {

const char *
runModeName(RunMode mode)
{
    switch (mode) {
      case RunMode::Functional:
        return "functional";
      case RunMode::Timing:
        return "timing";
      case RunMode::Campaign:
        return "campaign";
    }
    return "?";
}

RunMode
parseRunMode(const std::string &name)
{
    if (name == "functional")
        return RunMode::Functional;
    if (name == "timing")
        return RunMode::Timing;
    if (name == "campaign")
        return RunMode::Campaign;
    fatal("RunRequest: unknown mode \"" + name + "\"");
}

namespace {

const char *
placementName(DisePlacement placement)
{
    switch (placement) {
      case DisePlacement::Free:
        return "free";
      case DisePlacement::Stall:
        return "stall";
      case DisePlacement::Pipe:
        return "pipe";
    }
    return "?";
}

DisePlacement
parsePlacement(const std::string &name)
{
    if (name == "free")
        return DisePlacement::Free;
    if (name == "stall")
        return DisePlacement::Stall;
    if (name == "pipe")
        return DisePlacement::Pipe;
    fatal("RunRequest: unknown placement \"" + name + "\"");
}

FaultTarget
parseFaultTarget(const std::string &name)
{
    for (const FaultTarget t :
         {FaultTarget::MemoryData, FaultTarget::RegisterFile,
          FaultTarget::InstructionWord, FaultTarget::PtEntry,
          FaultTarget::RtEntry}) {
        if (name == faultTargetName(t))
            return t;
    }
    fatal("RunRequest: unknown fault target \"" + name + "\"");
}

/** @name Checked scalar reads.
 *  Client JSON is untrusted input: a wrong-typed value must be a
 *  per-request FatalError naming the key, never the process-killing
 *  panic Json's as*() accessors raise on type mismatch (a negative
 *  number parses as Number, not UInt, so checkUInt also rejects
 *  every negative). */
/// @{
uint64_t
checkUInt(const std::string &key, const Json &value)
{
    if (value.type() != Json::Type::UInt)
        fatal("RunRequest: \"" + key +
              "\" must be a non-negative integer");
    return value.asUInt();
}

bool
checkBool(const std::string &key, const Json &value)
{
    if (value.type() != Json::Type::Bool)
        fatal("RunRequest: \"" + key + "\" must be a boolean");
    return value.asBool();
}

const std::string &
checkString(const std::string &key, const Json &value)
{
    if (!value.isString())
        fatal("RunRequest: \"" + key + "\" must be a string");
    return value.asString();
}

double
checkNumber(const std::string &key, const Json &value)
{
    if (!value.isNumeric())
        fatal("RunRequest: \"" + key + "\" must be a number");
    return value.asDouble();
}
/// @}

} // namespace

std::string
RunRequest::label() const
{
    if (!id.empty())
        return id;
    const std::string what = !workload.empty() ? workload : "source";
    return what + "/" + regime;
}

std::vector<AcfSpec>
RunRequest::normalizedAcfs() const
{
    if (acfsExplicit)
        return acfs;
    // Desugar the legacy booleans in the order prepareJob historically
    // applied them; the watchpoint was always merged over the MFI set.
    std::vector<AcfSpec> specs;
    if (!productions.empty())
        specs.push_back({"productions", "", AcfCompose::Append});
    if (mfi)
        specs.push_back(
            {"mfi", mfiVariantName(mfiVariant), AcfCompose::Append});
    if (watchpoint)
        specs.push_back({"watchpoint", "", AcfCompose::Merged});
    if (profile)
        specs.push_back({"profiler", "", AcfCompose::Append});
    if (rewriteMfi)
        specs.push_back({"rewrite_mfi", "", AcfCompose::Append});
    if (compress)
        specs.push_back({"compress", "", AcfCompose::Append});
    return specs;
}

void
RunRequest::validate() const
{
    if (workload.empty() == source.empty())
        fatal("RunRequest: exactly one of workload/source required");
    if (!(scale > 0))
        fatal("RunRequest: scale must be > 0");
    if (workload.empty() && scale != 1.0)
        fatal("RunRequest: scale applies to workloads only");
    if (width == 0)
        fatal("RunRequest: width must be >= 1");
    if (acfsExplicit &&
        (mfi || watchpoint || rewriteMfi || compress || profile)) {
        fatal("RunRequest: the \"acfs\" list cannot be mixed with the "
              "legacy ACF booleans (mfi, watchpoint, rewrite_mfi, "
              "compress, profile) — use one form");
    }
    if (watchpoint && !mfi)
        fatal("RunRequest: watchpoint requires mfi");
    const std::vector<AcfSpec> specs = normalizedAcfs();
    AcfRegistry::instance().validate(specs, !productions.empty());
    bool fusion = false;
    for (const AcfSpec &spec : specs)
        fusion = fusion || spec.kind == "fusion";
    if (fusion) {
        // Fusion retires instruction pairs, so nothing that needs an
        // exactly-N single-instruction boundary can run under it.
        if (warmupInsts > 0)
            fatal("RunRequest: fusion retires instruction pairs and "
                  "cannot honour the exact warm-start boundary — drop "
                  "warmup_insts");
        if (samplePeriod != 0)
            fatal("RunRequest: fusion is incompatible with sampled "
                  "timing (sampling units count single retired "
                  "instructions)");
        if (mode == RunMode::Campaign)
            fatal("RunRequest: fusion is incompatible with campaign "
                  "mode (fault triggers count single application "
                  "instructions)");
    }
    if (samplePeriod != 0) {
        if (mode != RunMode::Timing)
            fatal("RunRequest: sample_period applies to timing mode "
                  "only");
        if (!traceFeed)
            fatal("RunRequest: sampled timing requires the trace feed "
                  "(drop \"trace_feed\": false)");
        if (sampleDetail == 0 || sampleDetail > samplePeriod)
            fatal("RunRequest: sample_detail must be in [1, "
                  "sample_period]");
    } else if (sampleDetail != 0) {
        fatal("RunRequest: sample_detail requires sample_period");
    }
    if (warmupInsts > 0 && mode != RunMode::Functional)
        fatal("RunRequest: warmup_insts applies to functional mode only");
    if (mode == RunMode::Campaign) {
        if (trials == 0)
            fatal("RunRequest: campaign needs trials >= 1");
        if (faultTargets.empty())
            fatal("RunRequest: campaign needs fault targets");
    }
}

Json
RunRequest::toJson() const
{
    Json doc = Json::object();
    doc["id"] = Json(id);
    doc["workload"] = Json(workload);
    doc["source"] = Json(source);
    doc["scale"] = Json(scale);
    doc["regime"] = Json(regime);
    doc["mode"] = Json(std::string(runModeName(mode)));
    // Emit only the ACF form the request used: a round-tripped
    // request must parse back without tripping the mixing rejection.
    if (acfsExplicit) {
        Json list = Json::array();
        for (const AcfSpec &spec : acfs)
            list.push_back(spec.toJson());
        doc["acfs"] = std::move(list);
    } else {
        doc["mfi"] = Json(mfi);
        doc["mfi_variant"] =
            Json(std::string(mfiVariantName(mfiVariant)));
        doc["watchpoint"] = Json(watchpoint);
        doc["rewrite_mfi"] = Json(rewriteMfi);
        doc["compress"] = Json(compress);
        doc["profile"] = Json(profile);
    }
    doc["productions"] = Json(productions);
    doc["rt_entries"] = Json(dise.rtEntries);
    doc["rt_assoc"] = Json(dise.rtAssoc);
    doc["placement"] = Json(std::string(placementName(dise.placement)));
    doc["expansion_cache"] = Json(dise.expansionCache);
    doc["parity_checks"] = Json(dise.parityChecks);
    doc["trace_cache"] = Json(traceCache);
    doc["trace_feed"] = Json(traceFeed);
    doc["sample_period"] = Json(samplePeriod);
    doc["sample_detail"] = Json(sampleDetail);
    doc["icache_kb"] = Json(icacheKB);
    doc["width"] = Json(width);
    doc["max_insts"] = Json(maxInsts);
    doc["max_cycles"] = Json(maxCycles);
    doc["warmup_insts"] = Json(warmupInsts);
    doc["seed"] = Json(seed);
    doc["trials"] = Json(trials);
    doc["snapshots"] = Json(snapshots);
    Json targets = Json::array();
    for (const FaultTarget t : faultTargets)
        targets.push_back(Json(std::string(faultTargetName(t))));
    doc["fault_targets"] = std::move(targets);
    return doc;
}

RunRequest
RunRequest::fromJson(const Json &doc)
{
    if (!doc.isObject())
        fatal("RunRequest: job entry is not a JSON object");
    RunRequest req;
    // Campaign knobs set to a non-default value on a non-campaign
    // request are a contradiction worth naming, not silently ignoring
    // (a client that meant "mode": "campaign" would otherwise get a
    // functional run with its campaign shape dropped). Defaults are
    // accepted everywhere so fromJson(toJson()) round-trips.
    std::string campaignKey;
    // First legacy ACF key seen; presence (not value) is what counts,
    // so "mfi": false still conflicts with an "acfs" list.
    std::string legacyAcfKey;
    const RunRequest defaults;
    for (const auto &kv : doc.members()) {
        const std::string &key = kv.first;
        const Json &value = kv.second;
        if (key == "id") {
            req.id = checkString(key, value);
        } else if (key == "workload") {
            req.workload = checkString(key, value);
        } else if (key == "source") {
            req.source = checkString(key, value);
        } else if (key == "scale") {
            req.scale = checkNumber(key, value);
        } else if (key == "regime") {
            req.regime = checkString(key, value);
        } else if (key == "mode") {
            req.mode = parseRunMode(checkString(key, value));
        } else if (key == "acfs") {
            if (!value.isArray())
                fatal("RunRequest: \"acfs\" must be an array");
            req.acfs.clear();
            for (const Json &entry : value.items())
                req.acfs.push_back(AcfSpec::fromJson(entry));
            req.acfsExplicit = true;
        } else if (key == "mfi") {
            req.mfi = checkBool(key, value);
            legacyAcfKey = key;
        } else if (key == "mfi_variant") {
            req.mfiVariant = parseMfiVariant(checkString(key, value));
            legacyAcfKey = key;
        } else if (key == "watchpoint") {
            req.watchpoint = checkBool(key, value);
            legacyAcfKey = key;
        } else if (key == "rewrite_mfi") {
            req.rewriteMfi = checkBool(key, value);
            legacyAcfKey = key;
        } else if (key == "compress") {
            req.compress = checkBool(key, value);
            legacyAcfKey = key;
        } else if (key == "productions") {
            req.productions = checkString(key, value);
        } else if (key == "profile") {
            req.profile = checkBool(key, value);
            legacyAcfKey = key;
        } else if (key == "rt_entries") {
            req.dise.rtEntries = uint32_t(checkUInt(key, value));
        } else if (key == "rt_assoc") {
            req.dise.rtAssoc = uint32_t(checkUInt(key, value));
        } else if (key == "placement") {
            req.dise.placement = parsePlacement(checkString(key, value));
        } else if (key == "expansion_cache") {
            req.dise.expansionCache = checkBool(key, value);
        } else if (key == "parity_checks") {
            req.dise.parityChecks = checkBool(key, value);
        } else if (key == "trace_cache") {
            req.traceCache = checkBool(key, value);
        } else if (key == "trace_feed") {
            req.traceFeed = checkBool(key, value);
        } else if (key == "sample_period") {
            req.samplePeriod = checkUInt(key, value);
        } else if (key == "sample_detail") {
            req.sampleDetail = checkUInt(key, value);
        } else if (key == "icache_kb") {
            req.icacheKB = uint32_t(checkUInt(key, value));
        } else if (key == "width") {
            req.width = uint32_t(checkUInt(key, value));
        } else if (key == "max_insts") {
            req.maxInsts = checkUInt(key, value);
        } else if (key == "max_cycles") {
            req.maxCycles = checkUInt(key, value);
        } else if (key == "warmup_insts") {
            req.warmupInsts = checkUInt(key, value);
        } else if (key == "snapshots") {
            req.snapshots = checkBool(key, value);
            if (req.snapshots != defaults.snapshots)
                campaignKey = key;
        } else if (key == "seed") {
            req.seed = checkUInt(key, value);
            if (req.seed != defaults.seed)
                campaignKey = key;
        } else if (key == "trials") {
            req.trials = uint32_t(checkUInt(key, value));
            if (req.trials != defaults.trials)
                campaignKey = key;
        } else if (key == "fault_targets") {
            if (!value.isArray())
                fatal("RunRequest: \"fault_targets\" must be an array");
            req.faultTargets.clear();
            for (const Json &t : value.items())
                req.faultTargets.push_back(
                    parseFaultTarget(checkString(key, t)));
            if (req.faultTargets != defaults.faultTargets)
                campaignKey = key;
        } else {
            fatal("RunRequest: unknown key \"" + key + "\"");
        }
    }
    if (req.mode != RunMode::Campaign && !campaignKey.empty())
        fatal("RunRequest: \"" + campaignKey +
              "\" applies to campaign mode only");
    if (req.acfsExplicit && !legacyAcfKey.empty())
        fatal("RunRequest: \"acfs\" cannot be mixed with the legacy "
              "ACF key \"" + legacyAcfKey + "\" — use one form");
    req.validate();
    return req;
}

Json
RunResponse::toJson() const
{
    Json doc = Json::object();
    doc["id"] = Json(id);
    doc["mode"] = Json(std::string(runModeName(mode)));
    doc["ok"] = Json(ok);
    if (!ok) {
        doc["error"] = Json(error);
        return doc;
    }
    doc["run"] = arch.toJson();
    if (mode == RunMode::Timing)
        doc["cycles"] = Json(cycles);
    if (!detail.isNull())
        doc["detail"] = detail;
    Json host = Json::object();
    host["seconds"] = Json(hostSeconds);
    host["insts_per_second"] = Json(
        safeRatio(double(arch.dynInsts), hostSeconds));
    doc["host"] = std::move(host);
    return doc;
}

} // namespace dise
