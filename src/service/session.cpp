#include "src/service/session.hpp"

#include <chrono>

#include "src/common/logging.hpp"
#include "src/faults/campaign.hpp"

namespace dise {

SimSession::SimSession(const SessionConfig &config)
    : scheduler_(config.workers)
{
}

const Program *
SimSession::cachedProgram(const RunRequest &req)
{
    if (req.workload.empty())
        return nullptr;
    const std::string key =
        req.workload + "@" + std::to_string(req.scale);
    return &programs_.get(key, [&req] {
        return buildWorkload(scaledSpec(workloadSpec(req.workload),
                                        req.scale));
    });
}

std::shared_ptr<const SimSnapshot>
SimSession::cachedSnapshot(const RunRequest &req, const PreparedJob &job,
                           const RunContext &ctx)
{
    // Key on everything that shapes the warmed-up state: the program
    // and ACF environment plus the warmup point. Job-specific fields
    // (label, budgets, campaign shape) are normalized away so jobs
    // differing only in those share one warmup execution.
    RunRequest norm = req;
    norm.id.clear();
    norm.mode = RunMode::Functional;
    norm.maxInsts = ~uint64_t(0);
    norm.maxCycles = 0;
    norm.seed = RunRequest().seed;
    norm.trials = RunRequest().trials;
    norm.faultTargets = RunRequest().faultTargets;
    norm.snapshots = true;
    const std::string key = norm.toJson().dump();
    // Each caller builds with its own cancel flag: a build cancelled
    // by one request's deadline throws to that request, and (the
    // cache retries failures) a waiting request simply becomes the
    // next builder under its own flag.
    return snapshots_.get(key, [&req, &job, &ctx] {
        return std::make_shared<const SimSnapshot>(
            takeWarmupSnapshot(job, req.warmupInsts, ctx.cancel));
    });
}

RunResponse
SimSession::execute(const RunRequest &req, const RunContext &ctx)
{
    req.validate();
    RunResponse resp;
    resp.id = req.label();
    resp.mode = req.mode;

    const PreparedJob job = prepareJob(req, cachedProgram(req));
    switch (req.mode) {
      case RunMode::Functional: {
        SimOptions opts;
        opts.registry = true;
        opts.cancel = ctx.cancel;
        std::shared_ptr<const SimSnapshot> warm;
        if (req.warmupInsts > 0) {
            warm = cachedSnapshot(req, job, ctx);
            opts.resume = warm.get();
        }
        const FunctionalOutcome out = runFunctionalSim(job, opts);
        resp.arch = out.arch;
        resp.hostSeconds = out.hostSeconds;
        resp.detail = out.registry;
        break;
      }
      case RunMode::Timing: {
        SimOptions opts;
        opts.benchEntry = true;
        opts.cancel = ctx.cancel;
        const TimingOutcome out = runTimingSim(job, opts);
        resp.arch = out.timing.arch;
        resp.cycles = out.timing.cycles;
        resp.hostSeconds = out.hostSeconds;
        resp.detail = out.benchEntry;
        break;
      }
      case RunMode::Campaign: {
        CampaignSetup setup;
        setup.prog = job.prog;
        if (job.productions) {
            setup.makeAcf = [set = job.productions] { return set; };
        }
        setup.initCore = job.initCore;
        setup.diseConfig = job.dise;
        CampaignConfig cfg;
        cfg.seed = req.seed;
        cfg.trials = req.trials;
        cfg.targets = req.faultTargets;
        cfg.useSnapshots = req.snapshots;
        cfg.cancel = ctx.cancel;
        if (req.maxInsts != ~uint64_t(0))
            cfg.maxGoldenInsts = req.maxInsts;
        const auto t0 = std::chrono::steady_clock::now();
        const CampaignResult r = runCampaign(setup, cfg, &scheduler_);
        resp.hostSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        resp.arch = r.golden;
        Json detail = campaignToJson(r);
        detail["host"] = hostSection(resp.hostSeconds, r.totalDynInsts);
        resp.detail = std::move(detail);
        break;
      }
    }
    return resp;
}

RunResponse
SimSession::run(const RunRequest &req)
{
    return execute(req, RunContext{});
}

RunResponse
SimSession::run(const RunRequest &req, const RunContext &ctx)
{
    return execute(req, ctx);
}

std::vector<RunResponse>
SimSession::runBatch(
    const std::vector<RunRequest> &reqs,
    const std::function<void(size_t, const RunResponse &)> &onResult)
{
    std::vector<size_t> indices(reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i)
        indices[i] = i;
    // FatalError is a per-job failure: report it in the response and
    // let the rest of the batch finish. PanicError propagates out of
    // the task, which makes the scheduler cancel the remaining jobs
    // and rethrow here — a simulator bug fails the whole batch.
    return scheduler_.map(indices, [&](size_t i) {
        RunResponse resp;
        try {
            resp = execute(reqs[i], RunContext{});
        } catch (const FatalError &e) {
            resp.id = reqs[i].label();
            resp.mode = reqs[i].mode;
            resp.ok = false;
            resp.error = e.what();
        }
        if (onResult) {
            std::lock_guard<std::mutex> lock(resultMutex_);
            onResult(i, resp);
        }
        return resp;
    });
}

} // namespace dise
