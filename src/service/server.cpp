#include "src/service/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/common/logging.hpp"
#include "src/service/bench_config.hpp"

namespace dise {

namespace {

uint64_t
elapsedMs(std::chrono::steady_clock::time_point since)
{
    return uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - since)
                        .count());
}

constexpr auto kNoDeadline =
    std::chrono::steady_clock::time_point::max();

} // namespace

/** One client connection. The reader thread owns fd teardown; writers
 *  (executors, the reader's immediate responses) serialize under
 *  writeMutex and drop output once the peer is gone. */
struct SimServer::Connection
{
    int fd = -1;
    uint64_t id = 0;
    std::mutex writeMutex;
    bool open = true; ///< guarded by writeMutex

    /** @name DRR scheduling state (guarded by the server mutex). */
    /// @{
    std::deque<std::shared_ptr<Job>> queue;
    uint32_t deficit = 0;
    /// @}
};

SimServer::SimServer(const ServerConfig &config)
    : config_(config), session_({config.workers}),
      results_(/*retryFailures=*/true, config.maxCachedResults)
{
}

SimServer::~SimServer()
{
    if (listenFd_ >= 0) {
        // start() ran but wait() did not: drain now so threads never
        // outlive the object.
        requestShutdown();
        wait();
    }
    if (wakePipe_[0] >= 0)
        ::close(wakePipe_[0]);
    if (wakePipe_[1] >= 0)
        ::close(wakePipe_[1]);
}

void
SimServer::start()
{
    if (::pipe(wakePipe_) != 0)
        fatal("serve: pipe() failed: " +
              std::string(std::strerror(errno)));

    if (config_.listen.rfind("unix:", 0) == 0) {
        const std::string path = config_.listen.substr(5);
        sockaddr_un addr{};
        if (path.empty() || path.size() >= sizeof(addr.sun_path))
            fatal("serve: bad unix socket path \"" + path + "\"");
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd_ < 0)
            fatal("serve: socket() failed: " +
                  std::string(std::strerror(errno)));
        ::unlink(path.c_str()); // a stale socket from a dead server
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            fatal("serve: bind(" + path + ") failed: " +
                  std::string(std::strerror(errno)));
        }
        unixPath_ = path;
    } else {
        const size_t colon = config_.listen.rfind(':');
        if (colon == std::string::npos)
            fatal("serve: --listen expects host:port or unix:path");
        const std::string host = config_.listen.substr(0, colon);
        const uint64_t port = parseNonNegativeInt(
            config_.listen.substr(colon + 1).c_str(), "--listen port");
        if (port > 65535)
            fatal("serve: --listen port out of range");

        in_addr ip{};
        if (host.empty() || host == "localhost") {
            ip.s_addr = htonl(INADDR_LOOPBACK);
        } else if (host == "*" || host == "0.0.0.0") {
            ip.s_addr = htonl(INADDR_ANY);
        } else if (::inet_pton(AF_INET, host.c_str(), &ip) != 1) {
            fatal("serve: bad listen address \"" + host + "\"");
        }
        listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd_ < 0)
            fatal("serve: socket() failed: " +
                  std::string(std::strerror(errno)));
        const int one = 1;
        ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr = ip;
        addr.sin_port = htons(uint16_t(port));
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            fatal("serve: bind(" + config_.listen + ") failed: " +
                  std::string(std::strerror(errno)));
        }
        socklen_t len = sizeof(addr);
        ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len);
        port_ = int(ntohs(addr.sin_port));
        char hostBuf[INET_ADDRSTRLEN] = {0};
        if (::inet_ntop(AF_INET, &addr.sin_addr, hostBuf,
                        sizeof(hostBuf)))
            host_ = hostBuf;
    }
    if (::listen(listenFd_, 64) != 0)
        fatal("serve: listen() failed: " +
              std::string(std::strerror(errno)));

    deadliner_ = std::thread([this] { deadlineLoop(); });
    const unsigned executors = std::max(1u, config_.executors);
    executors_.reserve(executors);
    for (unsigned i = 0; i < executors; ++i)
        executors_.emplace_back([this] { executorLoop(); });
    listener_ = std::thread([this] { listenerLoop(); });
}

bool
SimServer::stopping() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_;
}

void
SimServer::requestShutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (draining_)
            return;
        draining_ = true;
    }
    if (wakePipe_[1] >= 0) {
        const char byte = 0;
        (void)!::write(wakePipe_[1], &byte, 1);
    }
    execCv_.notify_all();
    deadlineCv_.notify_all();
    drainCv_.notify_all();
}

int
SimServer::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    drainCv_.wait(lock, [this] { return draining_; });

    // Grace phase: give queued + in-flight work the drain budget.
    const auto drainEnd =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(config_.drainTimeoutMs);
    const auto quiesced = [this] {
        return pending_ == 0 && inflight_ == 0;
    };
    if (!drainCv_.wait_until(lock, drainEnd, quiesced)) {
        // Budget spent: shed what is still queued and cancel what is
        // running; cancellation is cooperative and fast, so the second
        // wait is unbounded by design.
        abandon_ = true;
        for (Job *job : running_)
            job->cancel.store(true, std::memory_order_relaxed);
        execCv_.notify_all();
        drainCv_.wait(lock, quiesced);
    }
    stopThreads_ = true;
    execCv_.notify_all();
    deadlineCv_.notify_all();
    lock.unlock();

    if (wakePipe_[1] >= 0) {
        const char byte = 0;
        (void)!::write(wakePipe_[1], &byte, 1);
    }
    listener_.join();
    for (std::thread &t : executors_)
        t.join();
    deadliner_.join();

    // Unblock every reader; each closes its own fd on the way out.
    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::lock_guard<std::mutex> relock(mutex_);
        conns = connections_;
    }
    for (const auto &conn : conns) {
        std::lock_guard<std::mutex> wl(conn->writeMutex);
        if (conn->fd >= 0)
            ::shutdown(conn->fd, SHUT_RDWR);
    }
    for (std::thread &t : readers_)
        t.join();

    ::close(listenFd_);
    listenFd_ = -1;
    if (!unixPath_.empty())
        ::unlink(unixPath_.c_str());
    return panicked_ ? 2 : 0;
}

void
SimServer::bumpStat(const char *key, uint64_t delta)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    stats_.add(key, delta);
}

Json
SimServer::statsJson() const
{
    // Gauges first (server mutex), then the counter snapshot (stats
    // mutex) — never nested, matching the lock order everywhere else.
    uint64_t pending = 0;
    uint64_t inflight = 0;
    uint64_t connections = 0;
    bool draining = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending = pending_;
        inflight = inflight_;
        connections = connections_.size();
        draining = draining_;
    }
    StatsRegistry reg;
    std::lock_guard<std::mutex> sl(statsMutex_);
    stats_.set("pending", pending);
    stats_.set("inflight", inflight);
    stats_.set("connections", connections);
    stats_.set("result_cache_entries", results_.size());
    stats_.set("workers", config_.workers);
    stats_.set("executors", std::max(1u, config_.executors));
    reg.add("server", &stats_);
    reg.set("server.draining", Json(draining));
    return reg.toJson();
}

Json
SimServer::envelope(uint64_t seq, const char *status) const
{
    Json doc = Json::object();
    doc["seq"] = Json(seq);
    doc["status"] = Json(std::string(status));
    return doc;
}

void
SimServer::respond(const std::shared_ptr<Connection> &conn,
                   const Json &doc)
{
    bumpStat(("status_" + doc.at("status").asString()).c_str());
    std::string line = doc.dump();
    line.push_back('\n');
    std::lock_guard<std::mutex> wl(conn->writeMutex);
    if (!conn->open || conn->fd < 0)
        return;
    size_t off = 0;
    while (off < line.size()) {
        const ssize_t n = ::send(conn->fd, line.data() + off,
                                 line.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            // Peer gone mid-response: drop the rest; the reader will
            // see the close and tear the connection down.
            conn->open = false;
            return;
        }
        off += size_t(n);
    }
}

void
SimServer::listenerLoop()
{
    for (;;) {
        pollfd fds[2] = {{listenFd_, POLLIN, 0},
                         {wakePipe_[0], POLLIN, 0}};
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (draining_ || stopThreads_)
                return;
        }
        if (!(fds[0].revents & POLLIN))
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            conn->id = ++nextConnId_;
            connections_.push_back(conn);
            readers_.emplace_back([this, conn] { readerLoop(conn); });
        }
        bumpStat("connections_accepted");
    }
}

void
SimServer::readerLoop(std::shared_ptr<Connection> conn)
{
    std::string buffer;
    std::vector<char> chunk(64 * 1024);
    uint64_t seq = 0;
    bool discarding = false; ///< skipping the tail of an oversized line
    for (;;) {
        const ssize_t n =
            ::read(conn->fd, chunk.data(), chunk.size());
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break;
        buffer.append(chunk.data(), size_t(n));
        size_t start = 0;
        for (;;) {
            const size_t nl = buffer.find('\n', start);
            if (nl == std::string::npos)
                break;
            std::string line = buffer.substr(start, nl - start);
            start = nl + 1;
            if (discarding) {
                // The newline ending the oversized line; already
                // answered when the cap tripped.
                discarding = false;
                continue;
            }
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            ++seq;
            if (line.size() > config_.maxLineBytes) {
                Json resp = envelope(seq, "oversized");
                resp["error"] = Json(
                    "request line exceeds " +
                    std::to_string(config_.maxLineBytes) + " bytes");
                respond(conn, resp);
                continue;
            }
            handleLine(conn, seq, line);
        }
        buffer.erase(0, start);
        if (discarding) {
            // Still inside the oversized line (no terminating newline
            // yet): everything buffered is its tail. Drop it each
            // pass, or a peer streaming newline-free data would grow
            // the buffer without bound.
            buffer.clear();
        } else if (buffer.size() > config_.maxLineBytes) {
            // No newline in sight and already over the cap: answer
            // now and discard until one shows up — the connection
            // survives, only this request dies.
            ++seq;
            Json resp = envelope(seq, "oversized");
            resp["error"] =
                Json("request line exceeds " +
                     std::to_string(config_.maxLineBytes) + " bytes");
            respond(conn, resp);
            buffer.clear();
            discarding = true;
        }
    }
    {
        std::lock_guard<std::mutex> wl(conn->writeMutex);
        conn->open = false;
        if (conn->fd >= 0) {
            ::close(conn->fd);
            conn->fd = -1;
        }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    connections_.erase(std::remove(connections_.begin(),
                                   connections_.end(), conn),
                       connections_.end());
}

void
SimServer::handleLine(const std::shared_ptr<Connection> &conn,
                      uint64_t seq, const std::string &line)
{
    bumpStat("requests");
    Json doc;
    try {
        doc = Json::parse(line);
        if (!doc.isObject())
            fatal("request is not a JSON object");
    } catch (const FatalError &e) {
        Json resp = envelope(seq, "malformed");
        resp["error"] = Json(std::string(e.what()));
        respond(conn, resp);
        return;
    }

    // Peel the serving envelope off the RunRequest body.
    std::string kind = "run";
    uint64_t deadlineMs = config_.defaultDeadlineMs;
    Json body = Json::object();
    try {
        for (const auto &kv : doc.members()) {
            if (kv.first == "kind") {
                if (!kv.second.isString())
                    fatal("\"kind\" must be a string");
                kind = kv.second.asString();
            } else if (kv.first == "deadline_ms") {
                if (kv.second.type() != Json::Type::UInt)
                    fatal("\"deadline_ms\" must be a non-negative "
                          "integer");
                if (kv.second.asUInt() > 0)
                    deadlineMs = kv.second.asUInt();
            } else {
                body[kv.first] = kv.second;
            }
        }
        if (kind != "run" && kind != "stats")
            fatal("unknown request kind \"" + kind + "\"");
    } catch (const FatalError &e) {
        Json resp = envelope(seq, "malformed");
        resp["error"] = Json(std::string(e.what()));
        respond(conn, resp);
        return;
    }

    if (kind == "stats") {
        Json resp = envelope(seq, "ok");
        resp["stats"] = statsJson();
        respond(conn, resp);
        return;
    }

    auto job = std::make_shared<Job>();
    try {
        job->req = RunRequest::fromJson(body);
    } catch (const FatalError &e) {
        Json resp = envelope(seq, "error");
        if (body.contains("id") && body.at("id").isString())
            resp["id"] = body.at("id");
        resp["ok"] = Json(false);
        resp["error"] = Json(std::string(e.what()));
        respond(conn, resp);
        return;
    }
    // Budget defaults: an unlimited request inherits the server's cap
    // so a guest that never exits still terminates (outcome Hang).
    if (config_.defaultMaxInsts > 0 &&
        job->req.maxInsts == RunRequest().maxInsts) {
        job->req.maxInsts = config_.defaultMaxInsts;
    }
    job->seq = seq;
    job->conn = conn;
    job->admitted = std::chrono::steady_clock::now();
    job->deadline =
        deadlineMs > 0
            ? job->admitted + std::chrono::milliseconds(deadlineMs)
            : kNoDeadline;
    RunRequest norm = job->req;
    norm.id.clear();
    job->cacheKey = norm.toJson().dump();
    // DRR cost: a campaign occupies an executor for ~trials times a
    // single run; bill it so one campaign client cannot starve
    // single-run clients (capped so a huge campaign still schedules).
    job->cost = job->req.mode == RunMode::Campaign
                    ? std::min<uint32_t>(std::max(1u, job->req.trials),
                                         64)
                    : 1;
    admit(conn, std::move(job));
}

void
SimServer::admit(const std::shared_ptr<Connection> &conn,
                 std::shared_ptr<Job> job)
{
    const bool hasDeadline = job->deadline != kNoDeadline;
    const uint64_t seq = job->seq;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (draining_) {
            lock.unlock();
            Json resp = envelope(seq, "shutting_down");
            resp["error"] = Json(std::string("server is draining"));
            respond(conn, resp);
            return;
        }
        if (pending_ + inflight_ >= config_.maxPending ||
            conn->queue.size() >= config_.maxPendingPerClient) {
            // Shed with a hint that grows with queue depth, so
            // well-behaved clients back off harder the deeper the
            // overload.
            const uint64_t retryMs =
                100 * (1 + pending_ / std::max(1u, config_.executors));
            lock.unlock();
            Json resp = envelope(seq, "overloaded");
            resp["retry_after_ms"] = Json(retryMs);
            resp["error"] = Json(std::string("pending queue full"));
            respond(conn, resp);
            return;
        }
        if (conn->queue.empty())
            ready_.push_back(conn);
        conn->queue.push_back(job);
        ++pending_;
        if (hasDeadline)
            deadlines_.push({job->deadline, job});
    }
    bumpStat("admitted");
    execCv_.notify_one();
    if (hasDeadline)
        deadlineCv_.notify_all();
}

void
SimServer::executorLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        execCv_.wait(lock, [this] {
            return stopThreads_ || !ready_.empty();
        });
        if (ready_.empty()) {
            if (stopThreads_)
                return;
            continue;
        }
        // Deficit round-robin: visit the head connection, fund its
        // deficit by one quantum when short, and run its head job
        // once funded; otherwise rotate it to the back. Deficits
        // accumulate across visits, so an expensive job (a campaign)
        // eventually runs, but only after cheaper peers got their
        // share.
        std::shared_ptr<Connection> conn = ready_.front();
        ready_.pop_front();
        std::shared_ptr<Job> job = conn->queue.front();
        if (conn->deficit < job->cost) {
            conn->deficit += config_.drrQuantum;
            if (conn->deficit < job->cost) {
                ready_.push_back(conn);
                continue;
            }
        }
        conn->deficit -= job->cost;
        conn->queue.pop_front();
        if (!conn->queue.empty())
            ready_.push_back(conn);
        else
            conn->deficit = 0; // classic DRR: empty flow forfeits
        --pending_;

        if (abandon_) {
            // Drain budget is spent; queued work is shed, not run.
            lock.unlock();
            Json resp = envelope(job->seq, "shutting_down");
            resp["error"] =
                Json(std::string("server shut down before this "
                                 "request was started"));
            respond(job->conn, resp);
            lock.lock();
            if (pending_ == 0 && inflight_ == 0)
                drainCv_.notify_all();
            continue;
        }

        ++inflight_;
        running_.push_back(job.get());
        lock.unlock();
        executeJob(job);
        lock.lock();
        --inflight_;
        running_.erase(std::remove(running_.begin(), running_.end(),
                                   job.get()),
                       running_.end());
        if (pending_ == 0 && inflight_ == 0)
            drainCv_.notify_all();
    }
}

void
SimServer::executeJob(const std::shared_ptr<Job> &job)
{
    if (job->cancel.load(std::memory_order_relaxed)) {
        // The deadline passed while the job sat in the queue.
        Json resp = envelope(job->seq, "deadline_exceeded");
        resp["id"] = Json(job->req.label());
        resp["ok"] = Json(false);
        resp["error"] =
            Json(std::string("deadline exceeded while queued"));
        respond(job->conn, resp);
        return;
    }

    Json resp;
    try {
        bool built = false;
        // getCopy, not get: the cache evicts (LRU) and a reference
        // could dangle as soon as its lock drops.
        const std::string cached =
            results_.getCopy(job->cacheKey, [this, &job, &built] {
                built = true;
                RunContext ctx;
                ctx.cancel = &job->cancel;
                const RunResponse r = session_.run(job->req, ctx);
                // A cancel-tripped run carries a truncated result
                // (outcome Hang at wherever the flag was noticed);
                // throwing keeps it out of the cache — retryFailures
                // means the key stays clean for in-budget retries.
                if (job->cancel.load(std::memory_order_relaxed))
                    fatal("deadline exceeded during execution");
                return r.toJson().dump();
            });
        if (job->cancel.load(std::memory_order_relaxed)) {
            // The deadline passed while this job sat in getCopy
            // waiting on an identical in-flight build (the builder's
            // deadline, if any, is not ours). A late answer is a
            // deadline miss even though the result exists.
            resp = envelope(job->seq, "deadline_exceeded");
            resp["id"] = Json(job->req.label());
            resp["ok"] = Json(false);
            resp["error"] = Json(std::string(
                "deadline exceeded while awaiting an identical "
                "in-flight request"));
            respond(job->conn, resp);
            return;
        }
        if (!built)
            bumpStat("cache_hits");
        resp = Json::parse(cached);
        // The cache is keyed with id excluded; answer under the id
        // THIS client sent, not the first builder's.
        resp["id"] = Json(job->req.label());
        resp["seq"] = Json(job->seq);
        resp["status"] = Json(std::string("ok"));
        resp["latency_ms"] = Json(elapsedMs(job->admitted));
    } catch (const PanicError &e) {
        // Simulator invariant violation: answer this client, emit a
        // crash report, and stop the server — a buggy simulator must
        // fail loudly, never serve around it.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            panicked_ = true;
        }
        Json report = Json::object();
        report["panic"] = Json(std::string(e.what()));
        report["request_id"] = Json(job->req.label());
        std::fprintf(stderr, "diserun --serve: crash report %s\n",
                     report.dump().c_str());
        resp = envelope(job->seq, "error");
        resp["id"] = Json(job->req.label());
        resp["ok"] = Json(false);
        resp["error"] = Json(std::string(e.what()));
        respond(job->conn, resp);
        requestShutdown();
        return;
    } catch (const FatalError &e) {
        const bool deadlined =
            job->cancel.load(std::memory_order_relaxed);
        resp = envelope(job->seq,
                        deadlined ? "deadline_exceeded" : "error");
        resp["id"] = Json(job->req.label());
        resp["mode"] =
            Json(std::string(runModeName(job->req.mode)));
        resp["ok"] = Json(false);
        resp["error"] = Json(std::string(e.what()));
    }
    respond(job->conn, resp);
}

void
SimServer::deadlineLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (stopThreads_)
            return;
        if (deadlines_.empty()) {
            deadlineCv_.wait(lock);
            continue;
        }
        // Wake at the earliest deadline, or sooner when a new (maybe
        // earlier) deadline arrives — the loop recomputes the top.
        deadlineCv_.wait_until(lock, deadlines_.top().first);
        if (stopThreads_)
            return;
        const auto now = std::chrono::steady_clock::now();
        while (!deadlines_.empty() && deadlines_.top().first <= now) {
            if (auto job = deadlines_.top().second.lock())
                job->cancel.store(true, std::memory_order_relaxed);
            deadlines_.pop();
        }
    }
}

} // namespace dise
