#include "src/service/bench_config.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/logging.hpp"

namespace dise {

double
parsePositiveValue(const char *text, const std::string &what)
{
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0')
        fatal(what + ": cannot parse \"" + text + "\"");
    if (!(value > 0))
        fatal(what + ": must be > 0, got \"" + text + "\"");
    return value;
}

uint64_t
parsePositiveInt(const char *text, const std::string &what)
{
    const double value = parsePositiveValue(text, what);
    if (value != double(uint64_t(value)))
        fatal(what + ": not an integer: \"" + std::string(text) + "\"");
    return uint64_t(value);
}

uint64_t
parseNonNegativeInt(const char *text, const std::string &what)
{
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0')
        fatal(what + ": cannot parse \"" + text + "\"");
    if (!(value >= 0))
        fatal(what + ": must be >= 0, got \"" + text + "\"");
    if (value != double(uint64_t(value)))
        fatal(what + ": not an integer: \"" + std::string(text) + "\"");
    return uint64_t(value);
}

namespace {

BenchConfig
fromEnvironment()
{
    BenchConfig cfg;
    if (const char *env = std::getenv("DISE_BENCH_JOBS"))
        cfg.jobs = unsigned(parsePositiveInt(env, "DISE_BENCH_JOBS"));
    if (const char *env = std::getenv("DISE_BENCH_SCALE"))
        cfg.scale = parsePositiveValue(env, "DISE_BENCH_SCALE");
    if (const char *env = std::getenv("DISE_BENCH_ONLY"))
        cfg.only = env;
    if (const char *env = std::getenv("DISE_BENCH_JSON"))
        cfg.jsonDir = env;
    if (const char *env = std::getenv("DISE_FAULT_TRIALS"))
        cfg.faultTrials =
            uint32_t(parsePositiveInt(env, "DISE_FAULT_TRIALS"));
    if (const char *env = std::getenv("DISE_FAULT_SEED"))
        cfg.faultSeed = parsePositiveInt(env, "DISE_FAULT_SEED");
    if (const char *env = std::getenv("DISE_FAULT_FULL_REPLAY"))
        cfg.faultFullReplay =
            parseNonNegativeInt(env, "DISE_FAULT_FULL_REPLAY") != 0;
    return cfg;
}

[[noreturn]] void
printHelp(const char *benchName)
{
    std::printf(
        "usage: %s [flags]\n"
        "\n"
        "  --jobs N          worker threads for sharded runs "
        "(DISE_BENCH_JOBS; default 1)\n"
        "  --scale X         workload dynamic-instruction scale "
        "(DISE_BENCH_SCALE; default 1.0)\n"
        "  --only a,b        run only the named benchmarks "
        "(DISE_BENCH_ONLY)\n"
        "  --json DIR        write BENCH_<name>.json artifacts into DIR "
        "(DISE_BENCH_JSON)\n"
        "  --fault-trials N  fault-campaign trials per regime "
        "(DISE_FAULT_TRIALS; default 48)\n"
        "  --fault-seed N    fault-campaign seed "
        "(DISE_FAULT_SEED; default 2003)\n"
        "  --fault-full-replay\n"
        "                    replay campaign trials from reset instead "
        "of from snapshots (DISE_FAULT_FULL_REPLAY=1)\n"
        "  --help            this message\n"
        "\n"
        "Flags override the environment; unrecognized arguments are "
        "left for the bench.\n",
        benchName);
    std::exit(0);
}

} // namespace

BenchConfig &
BenchConfig::get()
{
    static BenchConfig cfg = fromEnvironment();
    return cfg;
}

void
BenchConfig::init(int &argc, char **argv, const char *benchName)
{
    BenchConfig &cfg = get();
    std::vector<char *> keep;
    keep.push_back(argv[0]);
    auto need = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc)
            fatal(std::string(flag) + ": missing value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs") {
            cfg.jobs =
                unsigned(parsePositiveInt(need(i, "--jobs"), "--jobs"));
        } else if (arg == "--scale") {
            cfg.scale = parsePositiveValue(need(i, "--scale"), "--scale");
        } else if (arg == "--only") {
            cfg.only = need(i, "--only");
        } else if (arg == "--json") {
            cfg.jsonDir = need(i, "--json");
        } else if (arg == "--fault-trials") {
            cfg.faultTrials = uint32_t(parsePositiveInt(
                need(i, "--fault-trials"), "--fault-trials"));
        } else if (arg == "--fault-seed") {
            cfg.faultSeed =
                parsePositiveInt(need(i, "--fault-seed"), "--fault-seed");
        } else if (arg == "--fault-full-replay") {
            cfg.faultFullReplay = true;
        } else if (arg == "--help" || arg == "-h") {
            printHelp(benchName);
        } else {
            keep.push_back(argv[i]);
        }
    }
    argc = int(keep.size());
    for (int i = 0; i < argc; ++i)
        argv[i] = keep[size_t(i)];
    argv[argc] = nullptr;
}

bool
BenchConfig::selected(const std::string &name) const
{
    if (only.empty())
        return true;
    const std::string padded = "," + only + ",";
    return padded.find("," + name + ",") != std::string::npos;
}

} // namespace dise
