/**
 * @file
 * The one place simulation jobs are prepared and executed.
 *
 * prepareJob() turns a RunRequest into a PreparedJob — the program
 * (built, scaled, optionally MFI-rewritten and/or compressed), the
 * installed-production set, the engine/machine configuration, and the
 * core-initialization hook — and runFunctionalSim()/runTimingSim()
 * execute a PreparedJob on a fresh core/pipeline, returning the unified
 * RunResult plus optional artifact-shaped JSON.
 *
 * diserun, the bench harness run helpers (runNative/runDise), and the
 * SimSession batch paths all route through these executors, so the
 * per-run setup (controller construction, register initialization, the
 * timing-entry artifact shape) exists exactly once.
 *
 * Every executor call builds its own controller and core from const
 * inputs, so concurrent calls on the same PreparedJob are safe — this
 * is what lets SimScheduler fan jobs out across workers.
 */

#ifndef DISE_SERVICE_RUNNER_HPP
#define DISE_SERVICE_RUNNER_HPP

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/acf/profiler.hpp"
#include "src/pipeline/pipeline.hpp"
#include "src/service/request.hpp"
#include "src/workloads/workloads.hpp"

namespace dise {

/**
 * Scale a workload's dynamic-instruction target and kernel iterations.
 * The single implementation behind RunRequest::scale and the bench
 * harness's DISE_BENCH_SCALE / --scale knob.
 */
WorkloadSpec scaledSpec(WorkloadSpec spec, double scale);

/**
 * Per-entry host-side throughput section: wall-clock seconds and guest
 * instructions simulated per second. Host-dependent by construction —
 * determinism comparisons must strip it (validate_bench_json.py
 * --compare does).
 */
Json hostSection(double seconds, uint64_t guestInsts);

/** An executable simulation job: program + ACFs + configuration. */
struct PreparedJob
{
    /** Program storage when prepareJob built or transformed it. */
    std::shared_ptr<const Program> owned;
    /** The program to run (== owned.get() or an external program). */
    const Program *prog = nullptr;

    /** Productions to install; null = no DISE controller at all. */
    std::shared_ptr<const ProductionSet> productions;
    DiseConfig dise;

    /** Decode-stage macro-op fusion (ExecCore::setFusionEnabled). */
    bool fusion = false;

    PipelineParams machine;
    bool traceCache = true;
    /** Timing: batched retire-trace delivery (false = step reference). */
    bool traceFeed = true;
    /** Timing: SMARTS sampling unit/window; 0 = full-detail timing. */
    uint64_t samplePeriod = 0;
    uint64_t sampleDetail = 0;
    uint64_t maxInsts = ~uint64_t(0);
    uint64_t maxCycles = 0;

    /** Path-profile buffer base; 0 = no profiler installed. */
    Addr profileBuffer = 0;

    /** Per-run core setup (dedicated registers); may be null. */
    std::function<void(ExecCore &)> initCore;
};

/**
 * Prepare a request for execution: build (or adopt @p base), resolve
 * the request's ACF-spec list through the AcfRegistry (production-set
 * assembly and composition, program transforms, the fusion switch),
 * and compose the register-initialization hook.
 *
 * @param base An already-built base program to start from (e.g. a
 *             session-cached workload); null = build from the request.
 */
PreparedJob prepareJob(const RunRequest &req,
                       const Program *base = nullptr);

/** What an executor should collect beyond the architectural result. */
struct SimOptions
{
    /** Dump engine (and timing: cache/predictor) counter text. */
    bool statsText = false;
    /** Build the full StatsRegistry JSON document (--stats-json). */
    bool registry = false;
    /** Timing: build the bench-artifact timing entry. */
    bool benchEntry = false;
    /** Functional: step the first n instructions through onTrace. */
    uint64_t traceInsts = 0;
    std::function<void(const DynInst &dyn, uint64_t index)> onTrace;
    /**
     * Functional: warm-start from this snapshot instead of from reset.
     * Must have been taken from a core prepared with the same job (see
     * takeWarmupSnapshot); the run then covers only the remainder and
     * its results are bit-identical to a cold run of the whole program.
     */
    const SimSnapshot *resume = nullptr;
    /**
     * Cooperative-cancellation flag, polled at block-dispatch
     * granularity (see ExecCore::setCancelFlag). A set flag ends the
     * run with outcome Hang — the caller (e.g. a serving deadline
     * watchdog) knows whether it tripped the flag and can reclassify.
     * Null = never cancelled.
     */
    const std::atomic<bool> *cancel = nullptr;
};

/** One functional run's outputs. */
struct FunctionalOutcome
{
    RunResult arch;
    double hostSeconds = 0.0;
    /** Full stats-registry document (run.*, dise.* when present,
     *  host.*); null unless SimOptions::registry. */
    Json registry;
    std::string statsText;
    std::vector<PathRecord> profile;
};

/** One timing run's outputs. */
struct TimingOutcome
{
    TimingResult timing;
    double hostSeconds = 0.0;
    /** Bench-artifact timing entry (cycles/ipc/buckets/counters/host);
     *  null unless SimOptions::benchEntry. */
    Json benchEntry;
    /** Full stats-registry document; null unless SimOptions::registry. */
    Json registry;
    std::string statsText;
    std::vector<PathRecord> profile;
};

/** Run a PreparedJob on the architectural simulator (ExecCore). */
FunctionalOutcome runFunctionalSim(const PreparedJob &job,
                                   const SimOptions &opts = {});

/**
 * Execute @p job on a fresh core up to @p warmupAppInsts application
 * instructions and capture the state (COW memory fork — the snapshot
 * costs O(pages touched), not a full image copy). Feed the result to
 * SimOptions::resume to warm-start runs sharing the same prefix.
 *
 * A clean guest exit during warmup degenerates to a snapshot of the
 * finished run; a guest *trap* during warmup is a FatalError (the
 * caller asked to warm past a point the program never reaches
 * intact), as is a tripped @p cancel flag.
 */
SimSnapshot takeWarmupSnapshot(const PreparedJob &job,
                               uint64_t warmupAppInsts,
                               const std::atomic<bool> *cancel = nullptr);

/** Run a PreparedJob on the cycle-level simulator (PipelineSim). */
TimingOutcome runTimingSim(const PreparedJob &job,
                           const SimOptions &opts = {});

/**
 * The bench-artifact entry for one timing run: cycles/CPI, per-stage
 * cycle buckets, every component counter and derived ratio (via
 * PipelineSim::registerStats), and the host section.
 */
Json timingEntryJson(PipelineSim &sim, const TimingResult &t,
                     double hostSeconds);

} // namespace dise

#endif // DISE_SERVICE_RUNNER_HPP
