/**
 * @file
 * The unified simulation-job description: one RunRequest names
 * everything a run needs — the program (a built-in workload or inline
 * assembly), the ACF environment (MFI, watchpoint, compression,
 * productions DSL text), the engine and machine configuration, the
 * execution mode (functional, timing, or fault-injection campaign),
 * budgets, and a seed — and one RunResponse carries the unified
 * RunResult plus mode-specific detail back.
 *
 * Both sides serialize to the schema-versioned JSON the batch
 * front-end (`diserun --batch jobs.json`) and the NDJSON result
 * stream use; see DESIGN.md section 10 for the schema.
 */

#ifndef DISE_SERVICE_REQUEST_HPP
#define DISE_SERVICE_REQUEST_HPP

#include <string>
#include <vector>

#include "src/acf/mfi.hpp"
#include "src/acf/registry.hpp"
#include "src/common/json.hpp"
#include "src/dise/engine.hpp"
#include "src/faults/campaign.hpp"
#include "src/sim/core.hpp"

namespace dise {

/** What kind of run a RunRequest asks for. */
enum class RunMode : uint8_t {
    Functional, ///< architectural simulation (ExecCore)
    Timing,     ///< cycle-level simulation (PipelineSim)
    Campaign,   ///< seeded fault-injection campaign (src/faults)
};

/** Stable lower-case mode name ("functional", "timing", "campaign"). */
const char *runModeName(RunMode mode);

/** Parse a mode name; fatal() on anything else. */
RunMode parseRunMode(const std::string &name);

/** One simulation job. */
struct RunRequest
{
    /** Job label echoed into the response; defaults to
     *  "<workload-or-source>/<regime>" when empty. */
    std::string id;

    /** @name Program: exactly one of workload / source. */
    /// @{
    std::string workload; ///< built-in workload name (src/workloads)
    std::string source;   ///< inline assembly text
    /** Scale the workload's dynamic-instruction target and kernel
     *  iterations (workload programs only). */
    double scale = 1.0;
    /// @}

    /** Regime label for artifacts/tables. */
    std::string regime = "default";

    RunMode mode = RunMode::Functional;

    /** @name ACF environment.
     *
     *  The primary form is the ordered "acfs" spec list, resolved by
     *  AcfRegistry (src/acf/registry.hpp). The booleans below are the
     *  legacy aliases; they desugar to the canonical list (see
     *  normalizedAcfs) and a request mixing both forms is rejected. */
    /// @{
    /** Ordered ACF-spec list; authoritative when acfsExplicit. */
    std::vector<AcfSpec> acfs;
    /** True when the request used the "acfs" form (JSON key present,
     *  or a caller filled @c acfs directly). */
    bool acfsExplicit = false;
    bool mfi = false;
    MfiVariant mfiVariant = MfiVariant::Dise3;
    /** Watchpoint assertion merged over the MFI set (requires mfi). */
    bool watchpoint = false;
    /** Binary-rewriting MFI baseline (no DISE). */
    bool rewriteMfi = false;
    /** Compress the text and install the decompression dictionary. */
    bool compress = false;
    /** Production DSL text to install (parsed against the program's
     *  symbols). Both forms use it; the acfs form additionally needs a
     *  {"kind": "productions"} entry fixing its position. */
    std::string productions;
    /** Path-profiler ACF (installs productions + dedicated regs). */
    bool profile = false;
    /// @}

    /** @name Engine and machine configuration. */
    /// @{
    DiseConfig dise;
    bool traceCache = true; ///< translated basic-block fast path
    /** Batched retire-trace delivery into the timing model (timing
     *  mode); false selects the step()-per-instruction reference path.
     *  Results are bit-identical either way — this is a speed knob
     *  kept as a knob only so the identity is checkable. */
    bool traceFeed = true;
    /** @name SMARTS-style sampled timing (timing mode; requires the
     *  trace feed). samplePeriod = 0 disables sampling; otherwise each
     *  period-instruction unit starts with sampleDetail instructions
     *  of detailed pipeline timing and functionally warms the caches
     *  and branch predictor through the rest. */
    /// @{
    uint64_t samplePeriod = 0;
    uint64_t sampleDetail = 0;
    /// @}
    uint32_t icacheKB = 32; ///< 0 = perfect (timing mode)
    uint32_t width = 4;     ///< machine width (timing mode)
    /// @}

    /** @name Budgets. */
    /// @{
    uint64_t maxInsts = ~uint64_t(0);
    uint64_t maxCycles = 0; ///< timing watchdog; 0 = unlimited
    /// @}

    /**
     * Warm-start point (functional mode): restore from a session-cached
     * snapshot taken after this many application instructions instead
     * of executing the prefix. Jobs sharing (program, ACF environment,
     * warmup point) execute the warmup once per session; results are
     * bit-identical to cold runs (see src/sim/snapshot.hpp). 0 = cold.
     */
    uint64_t warmupInsts = 0;

    /** @name Campaign shape (mode == Campaign). */
    /// @{
    uint64_t seed = 2003;
    uint32_t trials = 48;
    std::vector<FaultTarget> faultTargets = {FaultTarget::MemoryData,
                                             FaultTarget::RegisterFile,
                                             FaultTarget::InstructionWord};
    /** Replay trials from per-trigger COW snapshots (O(delta) per
     *  trial) instead of from reset; classifications are identical
     *  either way, so this is purely a speed knob. */
    bool snapshots = true;
    /// @}

    /** The response/artifact label this request resolves to. */
    std::string label() const;

    /**
     * The canonical ACF-spec list: @c acfs when the request used the
     * new form, otherwise the legacy booleans desugared in the fixed
     * historical order [productions, mfi, watchpoint/merged,
     * profiler, rewrite_mfi, compress]. This is what prepareJob
     * resolves through the AcfRegistry, so an aliased request and its
     * desugared spelling are equivalent by construction.
     */
    std::vector<AcfSpec> normalizedAcfs() const;

    /** fatal() on contradictions (no program, bad scale, ...). */
    void validate() const;

    Json toJson() const;

    /** Parse a request object; fatal() on unknown keys or bad types
     *  (batch files fail loudly, not silently half-applied). */
    static RunRequest fromJson(const Json &doc);
};

/** The unified result of one executed RunRequest. */
struct RunResponse
{
    std::string id;
    RunMode mode = RunMode::Functional;

    /** False when the job failed with a user-level FatalError; the
     *  batch keeps running and @c error carries the message. */
    bool ok = true;
    std::string error;

    /** Unified architectural result: the run itself (functional and
     *  timing modes) or the campaign's golden run. */
    RunResult arch;

    /** Cycle count (timing mode only; 0 otherwise). */
    uint64_t cycles = 0;

    /**
     * Mode-specific detail, shaped like the corresponding bench
     * artifact entry: timing = the full timing entry (cycles, buckets,
     * counters, host), campaign = the campaign entry (outcome counts,
     * fractions, host), functional = the run registry (run counters,
     * engine stats when present, host).
     */
    Json detail;

    /** Host wall-clock seconds of the run() call. */
    double hostSeconds = 0.0;

    /** One NDJSON-line object (run = RunResult::toJson serializer). */
    Json toJson() const;
};

} // namespace dise

#endif // DISE_SERVICE_REQUEST_HPP
