/**
 * @file
 * SimSession — the one public way to run simulations.
 *
 * A session owns a SimScheduler worker pool and a single-flight program
 * cache, and executes RunRequests in any mode:
 *
 *   SimSession session({4});
 *   RunResponse r = session.run(req);              // one job
 *   auto all = session.runBatch(reqs, onResult);   // a sharded batch
 *
 * Batch semantics:
 *  - Results come back in request order regardless of worker count
 *    (each job writes its own slot), so a batch is bit-identical at
 *    workers=1 and workers=N modulo the host sections.
 *  - A job failing with FatalError (bad request, broken program, a
 *    golden campaign run that traps) produces an ok=false response and
 *    the batch keeps going — one bad job must not waste the other
 *    N-1 results.
 *  - PanicError (a simulator invariant violation) cancels the batch
 *    and propagates: a buggy simulator must fail the whole process
 *    loudly (exit code 2 at the mains), never report around it.
 *  - onResult streams each response as it completes (indices arrive
 *    out of order); calls are serialized under a session mutex, so
 *    callbacks may write shared sinks (an NDJSON stream) directly.
 *
 * Campaign jobs fan their trials out over the same scheduler; nested
 * use inside a batch is safe because a worker thread re-entering the
 * scheduler runs inline (see scheduler.hpp).
 */

#ifndef DISE_SERVICE_SESSION_HPP
#define DISE_SERVICE_SESSION_HPP

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include <memory>

#include "src/common/scheduler.hpp"
#include "src/common/singleflight.hpp"
#include "src/service/request.hpp"
#include "src/service/runner.hpp"
#include "src/sim/snapshot.hpp"

namespace dise {

/** Session-wide configuration. */
struct SessionConfig
{
    /** Worker threads for batches and campaign trials; 1 = serial. */
    unsigned workers = 1;
};

/** Per-run execution context (everything that is not part of the
 *  request's identity — cancellation, deadlines). */
struct RunContext
{
    /**
     * Cooperative-cancellation flag installed on every core the run
     * creates (including campaign trials and the warmup pass). A
     * tripped flag ends the run at the next block boundary with
     * outcome Hang, or FatalError for runs whose partial result is
     * meaningless (campaigns, warmups). The caller knows whether it
     * set the flag and reclassifies accordingly. Null = never
     * cancelled.
     */
    const std::atomic<bool> *cancel = nullptr;
};

class SimSession
{
  public:
    explicit SimSession(const SessionConfig &config = {});

    /**
     * Execute one request synchronously. FatalError/PanicError
     * propagate to the caller (single runs want the error at main).
     * The @p ctx overload threads a cancellation flag through the run
     * (the serving deadline watchdog's hook).
     */
    RunResponse run(const RunRequest &req);
    RunResponse run(const RunRequest &req, const RunContext &ctx);

    /**
     * Execute a batch across the session's workers; responses are
     * returned in request order. See the file header for failure and
     * streaming semantics.
     *
     * @param onResult Optional streaming callback, invoked serialized
     *                 as each job completes with (request index,
     *                 response).
     */
    std::vector<RunResponse> runBatch(
        const std::vector<RunRequest> &reqs,
        const std::function<void(size_t, const RunResponse &)>
            &onResult = {});

    SimScheduler &scheduler() { return scheduler_; }

  private:
    /** Build/execute one request; errors propagate. */
    RunResponse execute(const RunRequest &req, const RunContext &ctx);

    /** Cached workload program for the request (workload jobs only);
     *  null for inline-source jobs. */
    const Program *cachedProgram(const RunRequest &req);

    /** Cached warm-start snapshot for the request (warmupInsts > 0);
     *  built once per (program, ACF environment, warmup point). */
    std::shared_ptr<const SimSnapshot>
    cachedSnapshot(const RunRequest &req, const PreparedJob &job,
                   const RunContext &ctx);

    SimScheduler scheduler_;
    /** Workload programs keyed "<name>@<scale>"; single-flight so
     *  concurrent jobs sharing a workload build it once. */
    SingleFlightCache<std::string, Program> programs_;
    /** Warm-start snapshots keyed on the normalized request identity
     *  plus the warmup point; single-flight so batch jobs sharing a
     *  prefix execute the warmup exactly once. Failures retry: a
     *  warmup that traps or is cancelled fails only the requests that
     *  hit it, never poisoning the key for later well-formed runs. */
    SingleFlightCache<std::string, std::shared_ptr<const SimSnapshot>>
        snapshots_{/*retryFailures=*/true};
    std::mutex resultMutex_;
};

} // namespace dise

#endif // DISE_SERVICE_SESSION_HPP
