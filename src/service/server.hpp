/**
 * @file
 * SimServer — a hardened multi-tenant simulation daemon.
 *
 * `diserun --serve --listen <addr:port|unix:path>` starts a
 * long-running process that accepts newline-delimited JSON (NDJSON)
 * requests over a socket and multiplexes every client onto one
 * process-wide SimSession, so concurrent clients share the workload
 * program cache, the warm-start snapshot cache, and the scheduler's
 * worker pool instead of paying cold-start costs per request.
 *
 * ## Wire protocol
 *
 * Each request is one line: a RunRequest JSON object plus optional
 * envelope keys, which are stripped before RunRequest parsing:
 *
 *   - "kind": "run" (default) executes the request; "stats" returns
 *     the live server StatsRegistry without queuing.
 *   - "deadline_ms": wall-clock budget for this request, measured
 *     from admission. 0 or absent falls back to the server default.
 *
 * Each response is one line, correlated by "seq" (the 1-based line
 * number on that connection) and carrying "status":
 *
 *   - "ok"                the run's RunResponse fields, plus
 *                         "latency_ms" (admission to response)
 *   - "error"             the request was structurally valid JSON but
 *                         failed validation or execution (FatalError);
 *                         carries ok=false and the error text
 *   - "overloaded"        admission control shed the request; carries
 *                         "retry_after_ms" (grows with queue depth)
 *   - "deadline_exceeded" the deadline passed while queued, or the
 *                         cooperative cancel flag ended the run early
 *   - "malformed"         the line was not a JSON object (parse error,
 *                         bad envelope types)
 *   - "oversized"         the line exceeded the byte cap; the rest of
 *                         the line is discarded, the connection lives
 *   - "shutting_down"     received or still queued during drain
 *
 * ## Robustness properties
 *
 *   - Admission control and backpressure: bounded per-client and
 *     global pending queues; over either bound the request is shed
 *     immediately with a structured "overloaded" response. Admitted
 *     work is scheduled by deficit round-robin across connections
 *     (a campaign costs its trial count, capped), so one client
 *     flooding cheap or expensive requests cannot starve another.
 *   - Deadlines: a monitor thread trips each job's atomic cancel
 *     flag at its deadline; the simulator polls the flag at basic-
 *     block boundaries (ExecCore::setCancelFlag), so a runaway or
 *     hostile guest ends within microseconds of its budget without
 *     any non-cooperative thread kill.
 *   - Fault isolation: FatalError (bad request, trapped warmup,
 *     failed golden run) fails only that request; the connection and
 *     daemon live on. PanicError (a simulator invariant violation)
 *     writes a crash report, cancels all in-flight work, and stops
 *     the server; wait() then returns 2, matching the CLI convention.
 *   - Graceful drain: requestShutdown() (SIGTERM/SIGINT in diserun)
 *     stops accepting, finishes in-flight and queued work within the
 *     drain timeout, cancels whatever remains, flushes responses, and
 *     closes connections.
 *   - Idempotent retries: results are cached in a single-flight map
 *     keyed on the canonical request body (id excluded), so a client
 *     retrying after a lost response gets the cached result instead
 *     of a re-execution, and concurrent identical requests execute
 *     once. Failures are never cached (retryFailures), so a request
 *     cancelled at its deadline does not poison the key. The cache is
 *     bounded (maxCachedResults, LRU eviction): entries only need to
 *     live long enough to cover client retry windows, so a flood of
 *     unique request bodies cannot grow memory without bound.
 *
 * Responses for well-formed, in-budget requests are bit-identical to
 * the NDJSON lines `diserun --batch` emits for the same requests,
 * modulo the serving envelope (seq/status/latency_ms) and the
 * host-dependent host section — the serve_gauntlet CI job asserts
 * exactly this.
 */

#ifndef DISE_SERVICE_SERVER_HPP
#define DISE_SERVICE_SERVER_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "src/common/singleflight.hpp"
#include "src/common/stats.hpp"
#include "src/service/session.hpp"

namespace dise {

/** Serving configuration (all knobs have serving-safe defaults). */
struct ServerConfig
{
    /** "host:port" (":0" = loopback, ephemeral) or "unix:/path". */
    std::string listen = ":0";
    /** SimSession worker threads (campaign trial fan-out). */
    unsigned workers = 1;
    /** Concurrent request executors (jobs running at once). */
    unsigned executors = 2;
    /** Global admitted-but-not-finished cap (queued + in-flight);
     *  at it, further requests shed. */
    size_t maxPending = 64;
    /** Per-connection queued cap; above it that client sheds. */
    size_t maxPendingPerClient = 16;
    /** Default wall-clock budget for requests that carry none;
     *  0 = unlimited. */
    uint64_t defaultDeadlineMs = 0;
    /** Cycle/instruction budget imposed on requests that carry none
     *  (maxInsts left at its unlimited default); 0 = leave as-is. */
    uint64_t defaultMaxInsts = 0;
    /** Drain budget for in-flight + queued work at shutdown. */
    uint64_t drainTimeoutMs = 5000;
    /** Request-line byte cap; longer lines get "oversized". */
    size_t maxLineBytes = 1 << 20;
    /** Deficit round-robin quantum added per scheduling visit. */
    uint32_t drrQuantum = 4;
    /** Idempotent result-cache entry cap (LRU eviction beyond it);
     *  entries only need to outlive client retry windows. 0 = never
     *  evict. */
    size_t maxCachedResults = 1024;
};

/**
 * The daemon. start() binds and spawns the listener, executor,
 * and deadline-monitor threads; requestShutdown() begins a graceful
 * drain (idempotent, callable from any thread); wait() blocks until
 * the drain completes and returns the process exit code (0 clean,
 * 2 after a PanicError). Tests drive it in-process: start(), connect
 * to port(), exchange NDJSON, requestShutdown(), wait().
 */
class SimServer
{
  public:
    explicit SimServer(const ServerConfig &config);
    ~SimServer();

    SimServer(const SimServer &) = delete;
    SimServer &operator=(const SimServer &) = delete;

    /** Bind the listen address and spawn threads; fatal() on error. */
    void start();

    /** Resolved TCP port (after start(); 0 for unix sockets). */
    int port() const { return port_; }

    /** Actually-bound TCP address, e.g. "127.0.0.1" or "0.0.0.0"
     *  (after start(); empty for unix sockets). */
    const std::string &host() const { return host_; }

    /** True once a drain has begun (signal, panic, or shutdown). */
    bool stopping() const;

    /** Begin a graceful drain; safe to call more than once. */
    void requestShutdown();

    /** Join everything; returns the exit code. Call exactly once. */
    int wait();

    /** The live stats document the "stats" request kind returns. */
    Json statsJson() const;

  private:
    struct Connection;

    /** One admitted request, owned jointly by the queues, the
     *  deadline heap, and the executor running it. */
    struct Job
    {
        RunRequest req;
        uint64_t seq = 0;
        std::string cacheKey;
        uint32_t cost = 1;
        std::shared_ptr<Connection> conn;
        std::chrono::steady_clock::time_point admitted;
        std::chrono::steady_clock::time_point deadline;
        std::atomic<bool> cancel{false};
    };

    void listenerLoop();
    void readerLoop(std::shared_ptr<Connection> conn);
    void executorLoop();
    void deadlineLoop();

    /** Parse/dispatch one request line from @p conn. */
    void handleLine(const std::shared_ptr<Connection> &conn,
                    uint64_t seq, const std::string &line);
    /** Admission control; responds immediately when shedding. */
    void admit(const std::shared_ptr<Connection> &conn,
               std::shared_ptr<Job> job);
    /** Execute one admitted job and write its response. */
    void executeJob(const std::shared_ptr<Job> &job);

    /** Serialize @p doc as one NDJSON line to the connection. */
    void respond(const std::shared_ptr<Connection> &conn,
                 const Json &doc);
    /** Status-only response envelope. */
    Json envelope(uint64_t seq, const char *status) const;
    void bumpStat(const char *key, uint64_t delta = 1);

    const ServerConfig config_;
    SimSession session_;

    int listenFd_ = -1;
    int port_ = 0;
    std::string host_; ///< bound TCP address (empty for unix sockets)
    std::string unixPath_; ///< bound unix socket path (unlinked on exit)
    int wakePipe_[2] = {-1, -1}; ///< nudges the listener's poll()

    mutable std::mutex mutex_;
    std::condition_variable execCv_;    ///< executors wait for work
    std::condition_variable drainCv_;   ///< wait() waits for quiesce
    std::condition_variable deadlineCv_; ///< deadline monitor waits

    bool draining_ = false;  ///< stop accepting, finish what's queued
    bool abandon_ = false;   ///< drain timed out: shed queued, cancel
    bool stopThreads_ = false;
    bool panicked_ = false;

    size_t pending_ = 0;  ///< admitted, not yet picked by an executor
    size_t inflight_ = 0; ///< currently executing
    /** Connections with nonempty queues, in DRR visit order. */
    std::deque<std::shared_ptr<Connection>> ready_;
    std::vector<std::shared_ptr<Connection>> connections_;
    std::vector<Job *> running_; ///< jobs to cancel on abandon
    uint64_t nextConnId_ = 0;

    /** Deadline min-heap: earliest deadline on top. */
    using DeadlineEntry =
        std::pair<std::chrono::steady_clock::time_point,
                  std::weak_ptr<Job>>;
    struct DeadlineLater
    {
        bool
        operator()(const DeadlineEntry &a, const DeadlineEntry &b) const
        {
            return a.first > b.first;
        }
    };
    std::priority_queue<DeadlineEntry, std::vector<DeadlineEntry>,
                        DeadlineLater>
        deadlines_;

    /** Idempotent result cache: canonical request body -> response
     *  JSON. Failures retry (a deadline-cancelled run must not poison
     *  its key); bounded at config_.maxCachedResults with LRU
     *  eviction, so read only via getCopy(). Sized in the
     *  constructor. */
    SingleFlightCache<std::string, std::string> results_;

    mutable std::mutex statsMutex_;
    mutable StatGroup stats_{"server"}; ///< statsJson() sets gauges

    std::thread listener_;
    std::vector<std::thread> executors_;
    std::thread deadliner_;
    std::vector<std::thread> readers_;
};

} // namespace dise

#endif // DISE_SERVICE_SERVER_HPP
