/**
 * @file
 * BenchConfig — the one validated configuration every benchmark main
 * shares, collapsing the old per-bench DISE_BENCH_* env-var parsing
 * into a single struct with CLI flags layered on top.
 *
 * Sources, later wins:
 *   1. defaults (below),
 *   2. environment: DISE_BENCH_JOBS, DISE_BENCH_SCALE, DISE_BENCH_ONLY,
 *      DISE_BENCH_JSON, DISE_FAULT_TRIALS, DISE_FAULT_SEED,
 *   3. CLI flags: --jobs N, --scale X, --only a,b, --json DIR,
 *      --fault-trials N, --fault-seed N, --help.
 *
 * benchInit() (bench/harness.hpp) calls init() from every bench main;
 * init() strips the flags it consumed from argv so benches that parse
 * their own arguments afterwards (bench_engine_micro hands the rest to
 * Google Benchmark) see only what's left. Every value is validated on
 * entry — a bad DISE_BENCH_JOBS fails the bench loudly instead of
 * silently running serial.
 */

#ifndef DISE_SERVICE_BENCH_CONFIG_HPP
#define DISE_SERVICE_BENCH_CONFIG_HPP

#include <cstdint>
#include <string>

namespace dise {

struct BenchConfig
{
    /** Worker threads for sharded suites and campaign trials. */
    unsigned jobs = 1;
    /** Workload dynamic-instruction scale (0.25 = quick pass). */
    double scale = 1.0;
    /** Comma-separated benchmark names to run; empty = all. */
    std::string only;
    /** JSON-artifact directory; empty = no artifacts. */
    std::string jsonDir;
    /** Fault-campaign trials per regime. */
    uint32_t faultTrials = 48;
    /** Fault-campaign seed. */
    uint64_t faultSeed = 2003;

    /** The process-wide config (env applied on first use). */
    static BenchConfig &get();

    /**
     * Apply CLI flags on top of get(), stripping consumed flags from
     * @p argv. --help prints the flag reference and exits 0; any
     * malformed value fatal()s.
     */
    static void init(int &argc, char **argv, const char *benchName);

    /** Does the --only/DISE_BENCH_ONLY filter select this name? */
    bool selected(const std::string &name) const;
};

} // namespace dise

#endif // DISE_SERVICE_BENCH_CONFIG_HPP
