/**
 * @file
 * BenchConfig — the one validated configuration every benchmark main
 * shares, collapsing the old per-bench DISE_BENCH_* env-var parsing
 * into a single struct with CLI flags layered on top.
 *
 * Sources, later wins:
 *   1. defaults (below),
 *   2. environment: DISE_BENCH_JOBS, DISE_BENCH_SCALE, DISE_BENCH_ONLY,
 *      DISE_BENCH_JSON, DISE_FAULT_TRIALS, DISE_FAULT_SEED,
 *      DISE_FAULT_FULL_REPLAY,
 *   3. CLI flags: --jobs N, --scale X, --only a,b, --json DIR,
 *      --fault-trials N, --fault-seed N, --fault-full-replay, --help.
 *
 * benchInit() (bench/harness.hpp) calls init() from every bench main;
 * init() strips the flags it consumed from argv so benches that parse
 * their own arguments afterwards (bench_engine_micro hands the rest to
 * Google Benchmark) see only what's left. Every value is validated on
 * entry — a bad DISE_BENCH_JOBS fails the bench loudly instead of
 * silently running serial.
 */

#ifndef DISE_SERVICE_BENCH_CONFIG_HPP
#define DISE_SERVICE_BENCH_CONFIG_HPP

#include <cstdint>
#include <string>

namespace dise {

struct BenchConfig
{
    /** Worker threads for sharded suites and campaign trials. */
    unsigned jobs = 1;
    /** Workload dynamic-instruction scale (0.25 = quick pass). */
    double scale = 1.0;
    /** Comma-separated benchmark names to run; empty = all. */
    std::string only;
    /** JSON-artifact directory; empty = no artifacts. */
    std::string jsonDir;
    /** Fault-campaign trials per regime. */
    uint32_t faultTrials = 48;
    /** Fault-campaign seed. */
    uint64_t faultSeed = 2003;

    /** The process-wide config (env applied on first use). */
    static BenchConfig &get();

    /**
     * Apply CLI flags on top of get(), stripping consumed flags from
     * @p argv. --help prints the flag reference and exits 0; any
     * malformed value fatal()s.
     */
    static void init(int &argc, char **argv, const char *benchName);

    /** Fault campaigns replay every trial from reset instead of from
     *  per-trigger snapshots (the O(n^2) reference configuration). */
    bool faultFullReplay = false;

    /** Does the --only/DISE_BENCH_ONLY filter select this name? */
    bool selected(const std::string &name) const;
};

/**
 * @name Strict numeric argument parsing.
 *
 * The validated parsers behind every BenchConfig value, shared with the
 * tool front-ends (diserun): the whole token must parse, trailing junk
 * and non-numeric input fatal() with @p what naming the flag. The
 * integer forms go through double, so they also reject fractions
 * ("0.5" is not a trial count) while accepting exponent spellings
 * ("1e6") that fit exactly.
 */
/// @{
/** A strictly positive value ("--scale 0.25"). */
double parsePositiveValue(const char *text, const std::string &what);
/** A strictly positive integer ("--jobs 4"). */
uint64_t parsePositiveInt(const char *text, const std::string &what);
/** A non-negative integer; 0 is meaningful ("--icache 0" = perfect). */
uint64_t parseNonNegativeInt(const char *text, const std::string &what);
/// @}

} // namespace dise

#endif // DISE_SERVICE_BENCH_CONFIG_HPP
