#include "src/sim/trap.hpp"

namespace dise {

const char *
trapCauseName(TrapCause cause)
{
    switch (cause) {
      case TrapCause::None:
        return "none";
      case TrapCause::UnexpandedCodeword:
        return "unexpanded-codeword";
      case TrapCause::InvalidInstruction:
        return "invalid-instruction";
      case TrapCause::PcOutOfText:
        return "pc-out-of-text";
      case TrapCause::UnknownSyscall:
        return "unknown-syscall";
      case TrapCause::DiseBranchOutOfRange:
        return "dise-branch-out-of-range";
      case TrapCause::DiseBranchInAppStream:
        return "dise-branch-in-app-stream";
    }
    return "?";
}

const char *
runOutcomeName(RunOutcome outcome)
{
    switch (outcome) {
      case RunOutcome::Running:
        return "running";
      case RunOutcome::Exit:
        return "exit";
      case RunOutcome::Trap:
        return "trap";
      case RunOutcome::Hang:
        return "hang";
    }
    return "?";
}

} // namespace dise
