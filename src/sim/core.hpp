/**
 * @file
 * The architectural execution core: fetches through the DISE engine,
 * executes the (possibly expanded) instruction stream, and exposes the
 * resulting correct-path dynamic instruction trace one instruction at a
 * time. The functional simulator is a thin loop over this core; the
 * cycle-level pipeline model consumes the same trace and adds timing.
 *
 * Replacement-sequence control semantics implemented here (Section 2.1):
 *
 *  - Every dynamic instruction carries a PC:DISEPC pair; DISEPC is 0 for
 *    application instructions.
 *  - DISE branches (dbeq/dbne/...) move only the DISEPC: a taken DISE
 *    branch jumps within the current replacement sequence (a target equal
 *    to the sequence length ends the sequence).
 *  - An application branch that is NOT the trigger is never predicted;
 *    the replacement instructions after it belong to its non-taken path,
 *    so if it is taken the rest of the sequence is discarded and fetch
 *    resumes at its target. (Indirect jumps/calls in sequences are
 *    always "taken" in this sense; a call links to the trigger's PC+4.)
 *  - An application branch that IS the trigger keeps the instructions
 *    after it on its predicted path: with the core's oracle view, the
 *    remainder of the sequence executes and the branch's outcome is
 *    applied when the sequence ends.
 */

#ifndef DISE_SIM_CORE_HPP
#define DISE_SIM_CORE_HPP

#include <array>
#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/acf/fusion.hpp"
#include "src/assembler/program.hpp"
#include "src/common/json.hpp"
#include "src/common/stats.hpp"
#include "src/dise/controller.hpp"
#include "src/mem/memory.hpp"
#include "src/sim/syscalls.hpp"
#include "src/sim/trace.hpp"
#include "src/sim/trap.hpp"

namespace dise {

struct SimSnapshot;

/** Aggregate results of an architectural run. */
struct RunResult
{
    bool exited = false;
    int exitCode = 0;
    uint64_t dynInsts = 0;  ///< total retired (app + replacement)
    uint64_t appInsts = 0;  ///< application-stream instructions
    uint64_t diseInsts = 0; ///< extra instructions DISE inserted
    uint64_t expansions = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    std::string output;

    /** How the run terminated (Exit, Trap, Hang; Running mid-run). */
    RunOutcome outcome = RunOutcome::Running;
    /** The architected trap when outcome == Trap. */
    Trap trap;
    /**
     * Control transfers into the program's "error" symbol — the
     * landing pad fault-detecting ACFs (MFI segment matching, the
     * watchpoint assertion) branch to. A nonzero count means an ACF
     * *detected* a violation, distinguishing that exit from a normal
     * one even when the handler terminates cleanly.
     */
    uint64_t acfDetections = 0;

    /**
     * The one serializer for architectural results: `diserun
     * --stats-json` (functional runs), the batch NDJSON stream, and
     * campaign golden runs all emit this object. Keys are stable
     * snake_case; the trap record appears only when outcome == Trap.
     */
    Json toJson() const;
};

/** The architectural core. */
class ExecCore
{
  public:
    /**
     * @param prog The program image (loaded into a fresh memory).
     * @param controller Optional DISE controller; when null, the fetch
     *                   stream executes unmodified.
     */
    explicit ExecCore(const Program &prog,
                      DiseController *controller = nullptr);

    /**
     * Execute and emit the next correct-path dynamic instruction.
     * @return False when the program has terminated — exited or took an
     *         architected trap (out is untouched).
     */
    bool step(DynInst &out);

    /**
     * Run to completion (or @p maxInsts dynamic instructions; hitting
     * the cap yields a Hang outcome, the watchdog-expiry result).
     */
    RunResult run(uint64_t maxInsts = ~uint64_t(0));

    /**
     * Batched retire-trace feed: execute forward — through the
     * translated fast path when enabled, step() otherwise — filling
     * @p ring with the DynInst records the same number of step() calls
     * would have produced, bit-identical field for field. Stops at
     * ring capacity, at @p maxDyn retired dynamic instructions (an
     * absolute result().dynInsts bound, run()-style), at termination
     * (exit/trap), or at a cooperative-cancel poll; like run(), a
     * return mid-replacement-sequence pins the suspended sequence so
     * the next call can resume it.
     *
     * @return The number of records written. 0 means no progress:
     *         terminated, budget already spent, or cancelled. Unlike
     *         run(), a budget expiry is NOT classified as a Hang —
     *         the caller owns outcome classification (the timing
     *         model applies its own instruction/cycle budgets).
     *
     * A retirement can consume budget without emitting exactly where
     * step() retires without returning a record (the out-of-range
     * DISE-branch trap), so callers must consume by record count, not
     * by dynInsts delta.
     */
    size_t fillTrace(DynInst *ring, size_t cap,
                     uint64_t maxDyn = ~uint64_t(0));

    bool exited() const { return exited_; }
    /** True once an architected trap terminated the run. */
    bool trapped() const { return trapped_; }
    /** The trap (cause None when none fired). */
    const Trap &trap() const { return result_.trap; }
    const RunResult &result() const { return result_; }

    /** @name Architectural state access (tests, ACF setup). */
    /// @{
    uint64_t reg(RegIndex r) const { return regs_[r]; }
    void setReg(RegIndex r, uint64_t value);
    DiseRegFile diseRegs() const;
    void setDiseReg(unsigned i, uint64_t value);
    Memory &memory() { return memory_; }
    const Memory &memory() const { return memory_; }
    Addr pc() const { return pc_; }
    /// @}

    /** @name Precise state and interrupt resume (paper Section 2.1).
     *
     * Every dynamic instruction boundary is a precise PC:DISEPC point.
     * interruptPoint() reports where execution stands (the pair the OS
     * would save); copyArchStateFrom() transfers the architectural state
     * (registers, dedicated registers, memory, heap break) into a fresh
     * core — what survives across a context switch; resumeAt() restarts
     * fetch at a PC:DISEPC pair: the fetch engine re-fetches PC, the
     * DISE engine re-expands, and the first DISEPC-1 replacement
     * instructions are skipped without re-executing.
     */
    /// @{
    /** Current precise point: the PC:DISEPC of the NEXT instruction. */
    std::pair<Addr, uint32_t> interruptPoint() const;
    /** Adopt another core's architectural state (not its control). */
    void copyArchStateFrom(const ExecCore &other);
    /** Restart at a saved PC:DISEPC pair. */
    void resumeAt(Addr pc, uint32_t disepc);
    /// @}

    /** @name Copy-on-write snapshots (src/sim/snapshot.hpp).
     *
     * saveSnapshot/restoreSnapshot capture and reinstate the complete
     * execution state at an application-instruction boundary; unlike
     * resumeAt, restore is a pure state copy (no engine re-expansion),
     * so a restored run is bit-identical — every counter, PT/RT stamp
     * and statistic — to one that executed the prefix itself. The core
     * must be at an application boundary to snapshot (no in-flight
     * replacement sequence; its instantiated instructions are a
     * non-owning span into the engine's caches and cannot be captured
     * by value). advanceToAppInst runs — via the translated fast path
     * when enabled — until exactly @p target application instructions
     * have retired and the core is at such a boundary, without
     * classifying a budget expiry as a Hang the way run() does.
     */
    /// @{
    /** No replacement sequence in flight: snapshots are legal here. */
    bool atAppBoundary() const { return seqSpec_ == nullptr; }
    /** Execute until result().appInsts == @p target (or termination),
     *  draining any in-flight sequence to the next boundary. */
    void advanceToAppInst(uint64_t target);
    /** Capture the complete execution state into @p out. */
    void saveSnapshot(SimSnapshot &out) const;
    /** Reinstate a capture; the snapshot must come from a core running
     *  the same program (and the same controller-attached-or-not
     *  shape) as this one. */
    void restoreSnapshot(const SimSnapshot &snap);
    /// @}

    /**
     * Drop all pre-decoded instructions (and translated traces). The
     * core invalidates affected entries itself on stores into the text
     * segment; callers that mutate text through memory() directly must
     * call this.
     */
    void invalidateDecodeCache();

    /** @name Translated basic-block fast path (src/sim/trace.hpp).
     *
     * run() executes through pre-translated straight-line micro-traces
     * when enabled (the default). Architectural behavior and every
     * simulator/engine statistic are bit-identical to the step() path;
     * the switch exists as an escape hatch (diserun --no-trace-cache)
     * and for differential testing. step() itself always takes the
     * slow path, so the timing model's trace stream is unaffected.
     */
    /// @{
    void setTraceCacheEnabled(bool on) { traceEnabled_ = on; }
    bool traceCacheEnabled() const { return traceEnabled_; }

    /**
     * Superblock chaining (DESIGN.md section 13): follow patched
     * successor edges block-to-block instead of returning to the
     * dispatch cache at every block boundary. On by default; the off
     * switch exists for differential benchmarking (bench_sim_throughput
     * reports both) and as a second-stage escape hatch behind
     * --no-trace-cache.
     */
    void setChainingEnabled(bool on) { chainEnabled_ = on; }
    bool chainingEnabled() const { return chainEnabled_; }

    /**
     * Translated-block residency cap (test hook; the default is ample
     * for every real workload). Crossing the cap evicts the whole block
     * map — with the epoch bump and graveyard parking that make
     * eviction safe mid-chain — so a tiny cap stress-tests the
     * invalidation machinery.
     */
    void setTraceBlockCap(size_t cap) { traceBlockCap_ = cap ? cap : 1; }

    /** Fast-path observability (bench/test only; not architectural). */
    struct TraceCacheStats
    {
        uint64_t blocksTranslated = 0;
        uint64_t evictions = 0; ///< whole-map cache-pressure evictions
        uint64_t chainFollows = 0;
    };
    TraceCacheStats traceCacheStats() const
    {
        return {statBlocksTranslated_, statTraceEvictions_,
                statChainFollows_};
    }
    /// @}

    /** @name Macro-op fusion ACF (src/acf/fusion).
     *
     * DISE run "in reverse": when enabled, the decode stage recognizes
     * adjacent dependent application pairs (cmp+branch, address
     * formation, shift+add, load-op) and executes them as one fused
     * internal op retiring both constituents — dynInsts/appInsts
     * advance by two, loads/stores count per constituent, so the
     * architectural RunResult is bit-identical to an unfused run; the
     * win is one trace record (one issue slot in PipelineSim) per
     * pair. Decisions are a pure per-PC function of the two text words
     * and production coverage (covered opcodes never fuse: expansion
     * takes priority), so the fast and slow paths agree by
     * construction. Off by default.
     *
     * Fusion retires two application instructions per boundary, which
     * breaks advanceToAppInst's exactly-N contract — the service layer
     * rejects fusion combined with warmup snapshots, sampling, and
     * campaigns.
     */
    /// @{
    void setFusionEnabled(bool on);
    bool fusionEnabled() const { return fusionEnabled_; }
    /** Fused-pair counters (total + per family), materialized into a
     *  StatGroup for single-walk registration as "acf.fusion". */
    const StatGroup &fusionStatGroup() const;
    uint64_t fusedPairs() const { return statFusedPairs_; }
    /// @}

    /** @name Cooperative cancellation.
     *
     * An external watchdog (the serving daemon's deadline monitor) may
     * point the core at an atomic flag; run() polls it at block-
     * dispatch boundaries (every ~1K instructions on the slow path)
     * and, when set, stops at the next precise instruction boundary
     * with a Hang outcome — the same architected classification a
     * budget expiry gets, so a wall-clock deadline and an instruction
     * watchdog are indistinguishable to the guest. Never consulted
     * when unset (the default), so batch and test runs are untouched.
     */
    /// @{
    void setCancelFlag(const std::atomic<bool> *flag)
    {
        cancelFlag_ = flag;
    }
    bool cancelRequested() const
    {
        return cancelFlag_ != nullptr &&
               cancelFlag_->load(std::memory_order_relaxed);
    }
    /// @}

  private:
    /**
     * Execute the fetched application instruction at pc_ and retire it.
     * Shared by step() (kEmit: fills @p out) and the translated fast
     * path (!kEmit: @p out unused). @return false on trap.
     */
    template <bool kEmit>
    bool execAppInst(const DecodedInst &fetched, DynInst *out);
    /**
     * Execute + retire the next slot of the in-flight replacement
     * sequence (seqSpec_ != nullptr). @return false on trap.
     */
    template <bool kEmit> bool execSeqSlot(DynInst *out);
    /** execSeqSlot body; @p dyn is caller-provided outcome storage. */
    template <bool kEmit> bool execSeqSlotBody(DynInst &dyn, DynInst *out);
    /**
     * Present the fetched instruction at pc_ to the DISE engine and set
     * up sequence state when it expands. Requires controller_.
     */
    bool beginExpansion(const DecodedInst &fetched);
    /** Adopt a just-produced expansion as the in-flight sequence. */
    void adoptExpansion(const ExpandResult &r);
    /** run() body when the trace cache is enabled. */
    void runTranslated(uint64_t maxInsts);
    /**
     * Execute the superblock chain starting at @p block (whose entry PC
     * is pc_): the direct-threaded interpreter runs the block's slots
     * and follows patched ChainEdges block-to-block until a budget
     * expiry, a cancellation poll, an untranslatable successor, a chain
     * invalidation, or termination. The caller must hold @p block alive
     * (dispatch-cache shared_ptr); chain successors are kept alive by
     * traces_ plus the retired_ graveyard.
     *
     * kEmit (the fillTrace feed): every retirement additionally writes
     * its DynInst record through the emit_ cursor, bit-identical to
     * what step() would have produced for the same instruction. The
     * caller bounds @p maxInsts so the ring cannot overrun (each
     * retired instruction emits at most one record).
     */
    template <bool kEmit>
    void runChain(const TransBlock *block, uint64_t maxInsts);
    /**
     * Chainable block entered at @p pc, translating on miss: null when
     * the target is unaligned, outside text, or untranslatable (the
     * chain exits to the dispatcher, which routes through step()).
     */
    const TransBlock *chainTarget(Addr pc);
    /** Current-generation block entered at @p pc (translating on miss). */
    std::shared_ptr<const TransBlock> lookupBlock(Addr pc);
    std::shared_ptr<const TransBlock> translateBlock(Addr entry);
    /** Drop translated blocks overlapping [addr, addr+size). */
    void invalidateTraceRange(Addr addr, unsigned size);
    /**
     * Rate-limited cooperative-cancel poll for the translated fast
     * path: cheap epoch arithmetic off the retired-instruction count,
     * touching the atomic only once per ~1K retirements — the same
     * stride the slow path polls at — so chained loops and spinning
     * replacement sequences observe a deadline within a bounded
     * overshoot.
     */
    bool
    cancelPollDue(uint64_t dynInsts)
    {
        if (dynInsts < nextCancelPoll_)
            return false;
        nextCancelPoll_ = dynInsts + 1024;
        return cancelRequested();
    }
    /**
     * Pre-translated form of the just-begun expansion (pendingExpand_),
     * cached on the Engine slot @p t. Null when the expansion is not
     * memoized or a slot falls outside the fast-path repertoire — the
     * caller then drains the sequence through execSeqSlot instead.
     */
    const SeqTrans *seqTransFor(const TransOp &t);
    /**
     * Drain the in-flight replacement sequence through its
     * pre-translated form. Equivalent to looping execSeqSlot<false>:
     * identical retirement counters, PC outcome, trap points, and
     * self-modifying-store invalidations. Suspends (leaving seqSpec_
     * and seqIdx_ consistent for a later generic resume) when the
     * instruction budget expires mid-sequence. kEmit mirrors
     * runChain: each retiring slot writes its trace record through
     * emit_ (equivalent to looping execSeqSlot<true>).
     */
    template <bool kEmit>
    void runSeqFast(const SeqTrans &st, uint64_t maxInsts);

    /**
     * Execute @p inst, recording outcome fields into @p dyn (the fast
     * path passes a scratch DynInst whose inst field is not populated;
     * @p inst is always the instruction to run).
     */
    void execute(const DecodedInst &inst, DynInst &dyn);

    /** @name Macro-op fusion internals. */
    /// @{
    /**
     * The fused pair starting at @p pc, or null when the words there
     * do not fuse. Memoized per text word; consulted identically by
     * step() and translateBlock so both tiers see one decision.
     * Requires fusionEnabled_ and prog_.inText(pc).
     */
    const DecodedInst *fusionAt(Addr pc);
    /**
     * Execute the fused pair at pc_ and retire both constituents as
     * one record. Mirrors execAppInst's contract; @return false on a
     * trap (fused constituents cannot trap themselves, but the core
     * may have been cancelled at the boundary).
     */
    template <bool kEmit>
    bool execFusedPair(const DecodedInst &fz, DynInst *out);
    /**
     * Fused semantics shared by both interpreter tiers: register and
     * memory effects plus @p dyn outcome fields (isMem/memAddr/taken/
     * actualTarget/isAppControl/isStore) and the acfDetections counter.
     * Does NOT advance pc_, the retirement counters, or loads/stores
     * (the chain interpreter accumulates those in locals), and does NOT
     * invalidate decode state on text stores — callers handle all of
     * that.
     * @return For FCMPBR, the taken flag; false otherwise.
     */
    bool executeFused(const DecodedInst &fz, Addr pc, DynInst &dyn);
    void clearFusionMap();
    /** Drop fusion decisions for pairs touching [addr, addr+size). */
    void invalidateFusionRange(Addr addr, unsigned size);
    /// @}
    /** Record an architected trap and halt the core (never throws). */
    void raiseTrap(TrapCause cause, Addr pc, uint32_t disepc,
                   uint64_t faultAddr, std::string message);
    /** Decode-once fetch: cached per static text PC. */
    const DecodedInst &fetchDecode(Addr pc);
    /** Drop cached decodes overlapping [addr, addr+size). */
    void invalidateDecodedRange(Addr addr, unsigned size);
    void doSyscall(DynInst &dyn);
    uint64_t readReg(RegIndex r) const
    {
        return r == kZeroReg ? 0 : regs_[r];
    }
    void
    writeReg(RegIndex r, uint64_t value)
    {
        if (r != kZeroReg)
            regs_[r] = value;
    }

    const Program &prog_;
    DiseController *controller_;
    /** External cancellation request; null = never cancelled. */
    const std::atomic<bool> *cancelFlag_ = nullptr;
    Memory memory_;
    std::array<uint64_t, kNumLogicalRegs> regs_{};
    Addr pc_;
    Addr brk_;
    bool exited_ = false;
    bool trapped_ = false;
    /** The program's "error" symbol (ACF violation landing pad); 0 when
     *  the program defines none. */
    Addr errorAddr_ = 0;
    RunResult result_;

    /** @name Pre-decoded text image (decode once per static PC). */
    /// @{
    std::vector<DecodedInst> decoded_;
    std::vector<uint8_t> decodedValid_;
    /** Decode slot for out-of-image fetches (fatal upstream anyway). */
    DecodedInst decodeFallback_;
    /// @}

    /** @name In-flight replacement sequence.
     *
     * The instantiated instructions are a non-owning span into the DISE
     * engine's expansion cache (see ExpandResult); it stays valid for
     * the whole sequence because the engine is not consulted again
     * until the sequence retires. When a run RETURNS with the sequence
     * still in flight (budget expiry, cooperative cancel) that
     * assumption breaks — the caller may install productions or flush
     * tables, freeing the storage under the span — so every public
     * entry point that can exit mid-sequence calls pinSuspendedSeq()
     * to copy the span and spec into the core-owned backing below.
     */
    /// @{
    const DecodedInst *seqInsts_ = nullptr;
    uint32_t seqLen_ = 0;
    const ReplacementSeq *seqSpec_ = nullptr;
    uint32_t seqIdx_ = 0;
    Addr seqTriggerPC_ = 0;
    bool seqHasPendingOutcome_ = false; ///< trigger branch seen, deferred
    bool seqPendingTaken_ = false;
    Addr seqPendingTarget_ = 0;
    bool seqFirstEmitted_ = false;
    ExpandResult pendingExpand_;
    /** Re-point a suspended sequence at core-owned copies (see the
     *  group comment). Idempotent; no-op at an app boundary. */
    void pinSuspendedSeq();
    /** Core-owned backing for a sequence suspended across an API
     *  return: engine mutations can free the original storage. */
    std::vector<DecodedInst> seqPinnedInsts_;
    ReplacementSeq seqPinnedSpec_;
    /** Outcome scratch for non-emitting sequence execution; only the
     *  fields execute() and the sequence-control logic read are reset
     *  per slot (cheaper than value-initializing a DynInst). */
    DynInst seqScratch_;
    /// @}

    /** @name Macro-op fusion state. */
    /// @{
    bool fusionEnabled_ = false;
    /** Lazy per-text-word fusion map: 0 unknown, 1 no-fuse, 2 fused
     *  (fusionInst_ holds the synthesized instruction). */
    std::vector<uint8_t> fusionState_;
    std::vector<DecodedInst> fusionInst_;
    /** Engine generation the map was computed against; any install or
     *  flush changes coverage, so a mismatch clears the whole map. */
    uint64_t fusionGen_ = 0;
    /** Executed fused pairs, total and per family (not architectural —
     *  identical across tiers within a regime, but fused-vs-native
     *  runs differ here by design). */
    uint64_t statFusedPairs_ = 0;
    std::array<uint64_t, kNumFusedFamilies> statFusedFamily_{};
    mutable StatGroup fusionGroup_{"acf.fusion"};
    /// @}

    /** @name Translated basic-block trace cache. */
    /// @{
    bool traceEnabled_ = true;
    bool chainEnabled_ = true;
    /** Blocks keyed by entry PC; validated against the engine
     *  generation at dispatch. shared_ptr keeps the block a store
     *  inside it invalidates alive until the block exits. */
    std::unordered_map<Addr, std::shared_ptr<const TransBlock>> traces_;
    /** Bumped on every trace invalidation; a running block exits when
     *  it observes a change (a replacement-sequence store may have
     *  rewritten text the block itself covers). */
    uint64_t traceEpoch_ = 0;
    /**
     * Graveyard for blocks removed from traces_ while translated code
     * may still be on the stack: SMC invalidation, cache-pressure
     * eviction, and generation-stale replacement all happen mid-chain,
     * when the interpreter holds raw pointers (the running block, its
     * ops cursor, patched chain edges) into blocks that traces_ no
     * longer owns. Every removal parks the shared_ptr here instead of
     * destroying it; the dispatcher clears the graveyard at the top of
     * its loop, the one point provably outside any chain. Reachability
     * is separately severed by the epoch bump / generation stamp, so
     * parked blocks are garbage the moment they land here — the
     * graveyard only defers destruction, never revival.
     */
    std::vector<std::shared_ptr<const TransBlock>> retired_;
    /**
     * Cache-pressure bound on traces_ (see setTraceBlockCap). At the
     * default, fig-scale workloads never evict; the cap exists so a
     * pathological or adversarial text footprint cannot grow the block
     * map without bound.
     */
    size_t traceBlockCap_ = 65536;
    /** Next dynInsts value at which the fast path polls cancelFlag_. */
    uint64_t nextCancelPoll_ = 0;
    /**
     * fillTrace emission cursor: the next free ring slot. Non-null
     * only while a fillTrace call is on the stack; the kEmit
     * interpreter variants keep a local copy and sync it here at
     * every flush point (CHAIN_FLUSH / SEQ_FLUSH / handler calls that
     * leave the interpreter).
     */
    DynInst *emit_ = nullptr;
    /** @name Fast-path counters (traceCacheStats; not architectural). */
    /// @{
    uint64_t statBlocksTranslated_ = 0;
    uint64_t statTraceEvictions_ = 0;
    uint64_t statChainFollows_ = 0;
    /// @}
    /**
     * Direct-mapped dispatch cache in front of traces_: entry PC ->
     * block, validated against the trace epoch and engine generation.
     * Entries own their block (shared_ptr), so a block invalidated
     * while executing stays alive until its entry is reused.
     */
    struct DispatchEntry
    {
        Addr pc = 0;
        uint64_t epoch = ~uint64_t(0);
        uint64_t gen = 0;
        std::shared_ptr<const TransBlock> block;
    };
    static constexpr size_t kDispatchEntries = 1024;
    std::array<DispatchEntry, kDispatchEntries> dispatch_{};
    /// @}
};

} // namespace dise

#endif // DISE_SIM_CORE_HPP
