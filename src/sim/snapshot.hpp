/**
 * @file
 * Copy-on-write execution-state snapshots.
 *
 * A SimSnapshot captures everything that determines an ExecCore's
 * future behavior at an application-instruction boundary: the register
 * file (integer and dedicated DISE registers live in one file), the
 * memory image, the precise PC, the heap break, the termination flags,
 * the accumulated RunResult, and — when a DISE controller is attached —
 * the complete engine (PT/RT residency and LRU stamps, expansion
 * cache, statistics, table generation).
 *
 * Cost model: the memory image forks copy-on-write (see
 * src/mem/memory.hpp), so taking a snapshot is O(pages touched)
 * pointer copies and restoring is the same — the restored core then
 * pays only for the pages it actually writes (O(delta)). The engine
 * copy is small (table metadata, not program state). Snapshots taken
 * once may be restored any number of times, from many threads
 * concurrently: a frozen snapshot is never mutated by restores.
 *
 * Restoring deliberately does NOT re-expand through the engine the way
 * ExecCore::resumeAt does — resumeAt consults the live engine (PT/RT
 * fills, LRU movement, inspection counters), which would perturb
 * statistics and residency relative to an uninterrupted run. Restore
 * is a pure state copy, so a restored run is bit-identical, statistic
 * for statistic, to one that executed the prefix itself. That property
 * is what lets snapshot-based fault campaigns replace full replay.
 */

#ifndef DISE_SIM_SNAPSHOT_HPP
#define DISE_SIM_SNAPSHOT_HPP

#include <array>
#include <memory>

#include "src/sim/core.hpp"

namespace dise {

/** One resumable execution point. Move-only (the engine copy is owned);
 *  share read-only across threads via shared_ptr<const SimSnapshot>. */
struct SimSnapshot
{
    /** Logical register file (includes the dedicated DISE registers). */
    std::array<uint64_t, kNumLogicalRegs> regs{};
    /** COW fork of the memory image at the snapshot point. */
    Memory memory;
    Addr pc = 0;
    Addr brk = 0;
    bool exited = false;
    bool trapped = false;
    /** Accumulated architectural result (counters, output, outcome). */
    RunResult result;
    /** Complete engine copy; null when the core has no controller. */
    std::unique_ptr<DiseEngine> engine;
    /** Application instructions retired at the snapshot point
     *  (== result.appInsts; kept explicit for cache keying). */
    uint64_t appInsts = 0;
};

} // namespace dise

#endif // DISE_SIM_SNAPSHOT_HPP
