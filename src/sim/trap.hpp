/**
 * @file
 * The architected trap model.
 *
 * Guest-visible failures (an unexpanded codeword reaching execute, an
 * invalid instruction, the PC escaping the text segment, ...) are not
 * simulator errors: a production-scale engine must degrade gracefully
 * rather than tear the host down. The simulators therefore *return* a
 * structured Trap describing the failure instead of throwing — fatal()
 * and panic() remain reserved for malformed user input and simulator
 * bugs respectively.
 *
 * Every run ends in exactly one RunOutcome:
 *
 *  - Exit: the program executed the exit syscall (the only outcome the
 *    pre-trap-model simulator could report without aborting).
 *  - Trap: an architected trap fired; RunResult::trap holds the cause,
 *    the faulting PC:DISEPC pair (the same precise point the interrupt
 *    machinery uses), and the offending address/word where applicable.
 *  - Hang: the dynamic-instruction (or cycle) watchdog budget expired
 *    without the program exiting — a classifiable result, not a warning.
 *
 * The fault-injection campaign harness (src/faults) builds its
 * detected-by-trap / hang classifications directly on these outcomes.
 */

#ifndef DISE_SIM_TRAP_HPP
#define DISE_SIM_TRAP_HPP

#include <cstdint>
#include <string>

#include "src/isa/inst.hpp"

namespace dise {

/** Architected trap causes (guest failures, not simulator bugs). */
enum class TrapCause : uint8_t {
    None,
    /** A codeword reached execute unexpanded (no matching production). */
    UnexpandedCodeword,
    /** An invalid encoding reached execute. */
    InvalidInstruction,
    /** Fetch left the text segment. */
    PcOutOfText,
    /** The syscall code names no handler. */
    UnknownSyscall,
    /** A taken DISE branch targeted a slot outside its sequence. */
    DiseBranchOutOfRange,
    /** A DISE-only instruction appeared in the application stream. */
    DiseBranchInAppStream,
};

/** How a run terminated. */
enum class RunOutcome : uint8_t {
    /** Still running (a step()-driven core that has not terminated). */
    Running,
    Exit,
    Trap,
    Hang,
};

/** One architected trap: the precise point and cause of a guest fault. */
struct Trap
{
    TrapCause cause = TrapCause::None;
    /** Faulting application PC. */
    Addr pc = 0;
    /** DISE context: 0 in the application stream, else the replacement
     *  slot (DISEPC) that faulted. */
    uint32_t disepc = 0;
    /** Offending address or raw word, per cause (0 when meaningless). */
    uint64_t faultAddr = 0;
    /** Human-readable description (diagnostics only). */
    std::string message;

    bool valid() const { return cause != TrapCause::None; }
};

/** Stable lower-case name of a trap cause (tables, logs). */
const char *trapCauseName(TrapCause cause);

/** Stable lower-case name of a run outcome. */
const char *runOutcomeName(RunOutcome outcome);

} // namespace dise

#endif // DISE_SIM_TRAP_HPP
