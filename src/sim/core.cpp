#include "src/sim/core.hpp"

#include <algorithm>

#include "src/common/bits.hpp"
#include "src/common/logging.hpp"
#include "src/isa/disasm.hpp"
#include "src/sim/snapshot.hpp"

namespace dise {

namespace {

/** Longest straight-line run one translated block may cover. */
constexpr size_t kMaxBlockLen = 128;

/** Outcome of a conditional (application or DISE) branch on value @p v.
 *  Single source of truth for execute() and the translated fast path. */
bool
condTaken(Opcode op, uint64_t v)
{
    const int64_t sv = static_cast<int64_t>(v);
    switch (op) {
      case Opcode::BEQ: case Opcode::DBEQ: return v == 0;
      case Opcode::BNE: case Opcode::DBNE: return v != 0;
      case Opcode::BLT: case Opcode::DBLT: return sv < 0;
      case Opcode::BLE: return sv <= 0;
      case Opcode::BGT: return sv > 0;
      case Opcode::BGE: case Opcode::DBGE: return sv >= 0;
      case Opcode::BLBC: return (v & 1) == 0;
      case Opcode::BLBS: return (v & 1) != 0;
      default: return false;
    }
}

} // namespace

Json
RunResult::toJson() const
{
    Json doc = Json::object();
    doc["outcome"] = Json(std::string(runOutcomeName(outcome)));
    doc["exited"] = Json(exited);
    doc["exit_code"] = Json(exitCode);
    doc["dyn_insts"] = Json(dynInsts);
    doc["app_insts"] = Json(appInsts);
    doc["dise_insts"] = Json(diseInsts);
    doc["expansions"] = Json(expansions);
    doc["loads"] = Json(loads);
    doc["stores"] = Json(stores);
    doc["acf_detections"] = Json(acfDetections);
    doc["output"] = Json(output);
    if (outcome == RunOutcome::Trap) {
        Json t = Json::object();
        t["cause"] = Json(std::string(trapCauseName(trap.cause)));
        t["pc"] = Json(uint64_t(trap.pc));
        t["disepc"] = Json(trap.disepc);
        t["fault_addr"] = Json(trap.faultAddr);
        t["message"] = Json(trap.message);
        doc["trap"] = std::move(t);
    }
    return doc;
}

ExecCore::ExecCore(const Program &prog, DiseController *controller)
    : prog_(prog), controller_(controller), pc_(prog.entry)
{
    memory_.loadProgram(prog);
    regs_.fill(0);
    regs_[kSpReg] = prog.stackTop;
    brk_ = (prog.dataBase + prog.data.size() + 0xffff) & ~Addr(0xffff);
    decoded_.resize(prog.text.size());
    decodedValid_.assign(prog.text.size(), 0);
    const auto errorSym = prog.symbols.find("error");
    if (errorSym != prog.symbols.end())
        errorAddr_ = errorSym->second;
}

void
ExecCore::raiseTrap(TrapCause cause, Addr pc, uint32_t disepc,
                    uint64_t faultAddr, std::string message)
{
    trapped_ = true;
    result_.outcome = RunOutcome::Trap;
    result_.trap.cause = cause;
    result_.trap.pc = pc;
    result_.trap.disepc = disepc;
    result_.trap.faultAddr = faultAddr;
    result_.trap.message = std::move(message);
}

const DecodedInst &
ExecCore::fetchDecode(Addr pc)
{
    const Addr off = pc - prog_.textBase;
    const size_t idx = static_cast<size_t>(off >> 2);
    if ((off & 3) != 0 || idx >= decoded_.size()) {
        decodeFallback_ = dise::decode(memory_.readWord(pc));
        return decodeFallback_;
    }
    if (!decodedValid_[idx]) {
        decoded_[idx] = dise::decode(memory_.readWord(pc));
        decodedValid_[idx] = 1;
    }
    return decoded_[idx];
}

void
ExecCore::invalidateDecodeCache()
{
    decodedValid_.assign(decodedValid_.size(), 0);
    ++traceEpoch_;
    traces_.clear();
}

void
ExecCore::invalidateDecodedRange(Addr addr, unsigned size)
{
    const Addr end = std::min<Addr>(addr + size, prog_.textEnd());
    Addr first = std::max(addr, prog_.textBase);
    for (Addr a = first & ~Addr(3); a < end; a += 4) {
        const size_t idx = static_cast<size_t>((a - prog_.textBase) >> 2);
        if (idx < decodedValid_.size())
            decodedValid_[idx] = 0;
    }
    invalidateTraceRange(addr, size);
}

void
ExecCore::invalidateTraceRange(Addr addr, unsigned size)
{
    ++traceEpoch_;
    if (traces_.empty())
        return;
    const Addr end = addr + size;
    for (auto it = traces_.begin(); it != traces_.end();) {
        const TransBlock &b = *it->second;
        if (b.entryPC < end && b.coveredEnd() > addr)
            it = traces_.erase(it);
        else
            ++it;
    }
}

void
ExecCore::setReg(RegIndex r, uint64_t value)
{
    if (r != kZeroReg)
        regs_[r] = value;
}

DiseRegFile
ExecCore::diseRegs() const
{
    DiseRegFile file;
    for (unsigned i = 0; i < kNumDiseRegs; ++i)
        file[i] = regs_[kDiseRegBase + i];
    return file;
}

void
ExecCore::setDiseReg(unsigned i, uint64_t value)
{
    DISE_ASSERT(i < kNumDiseRegs, "bad dedicated register index");
    regs_[kDiseRegBase + i] = value;
}

void
ExecCore::doSyscall(DynInst &dyn)
{
    dyn.isSyscall = true;
    const auto code = static_cast<SyscallCode>(readReg(kRetReg));
    const uint64_t a0 = readReg(kArg0Reg);
    switch (code) {
      case SyscallCode::Exit:
        exited_ = true;
        result_.exited = true;
        result_.outcome = RunOutcome::Exit;
        result_.exitCode = static_cast<int>(a0);
        break;
      case SyscallCode::PutChar:
        result_.output += static_cast<char>(a0 & 0xff);
        break;
      case SyscallCode::PutInt:
        result_.output += std::to_string(static_cast<int64_t>(a0));
        break;
      case SyscallCode::Brk: {
        writeReg(kRetReg, brk_);
        brk_ += a0;
        break;
      }
      default:
        raiseTrap(TrapCause::UnknownSyscall, dyn.pc, dyn.disepc,
                  readReg(kRetReg),
                  strFormat("unknown syscall %llu at pc 0x%llx",
                            (unsigned long long)readReg(kRetReg),
                            (unsigned long long)dyn.pc));
        break;
    }
}

void
ExecCore::execute(const DecodedInst &inst, DynInst &dyn)
{
    const uint64_t vA = readReg(inst.ra);
    const uint64_t vB = inst.useLit ? static_cast<uint64_t>(inst.imm)
                                    : readReg(inst.rb);

    switch (inst.op) {
      case Opcode::NOP:
        break;
      case Opcode::LDA:
        writeReg(inst.ra,
                 readReg(inst.rb) + static_cast<uint64_t>(inst.imm));
        break;
      case Opcode::LDAH:
        writeReg(inst.ra, readReg(inst.rb) +
                              (static_cast<uint64_t>(inst.imm) << 16));
        break;
      case Opcode::LDBU:
      case Opcode::LDL:
      case Opcode::LDQ: {
        dyn.isMem = true;
        dyn.memAddr = readReg(inst.rb) + static_cast<uint64_t>(inst.imm);
        ++result_.loads;
        uint64_t value;
        if (inst.op == Opcode::LDBU) {
            value = memory_.read(dyn.memAddr, 1);
        } else if (inst.op == Opcode::LDL) {
            value = static_cast<uint64_t>(
                signExtend(memory_.read(dyn.memAddr, 4), 32));
        } else {
            value = memory_.read(dyn.memAddr, 8);
        }
        writeReg(inst.ra, value);
        break;
      }
      case Opcode::STB:
      case Opcode::STL:
      case Opcode::STQ: {
        dyn.isMem = true;
        dyn.isStore = true;
        dyn.memAddr = readReg(inst.rb) + static_cast<uint64_t>(inst.imm);
        ++result_.stores;
        const unsigned size =
            inst.op == Opcode::STB ? 1 : (inst.op == Opcode::STL ? 4 : 8);
        memory_.write(dyn.memAddr, vA, size);
        // Self-modifying code: drop stale pre-decoded words.
        if (dyn.memAddr < prog_.textEnd() &&
            dyn.memAddr + size > prog_.textBase) {
            invalidateDecodedRange(dyn.memAddr, size);
        }
        break;
      }
      case Opcode::BR:
      case Opcode::BSR:
        dyn.isAppControl = true;
        dyn.taken = true;
        dyn.actualTarget = inst.branchTarget(dyn.pc);
        writeReg(inst.ra, dyn.pc + 4);
        break;
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BLE: case Opcode::BGT: case Opcode::BGE:
      case Opcode::BLBC: case Opcode::BLBS:
        dyn.isAppControl = true;
        dyn.taken = condTaken(inst.op, vA);
        dyn.actualTarget = inst.branchTarget(dyn.pc);
        break;
      case Opcode::JMP:
      case Opcode::JSR:
      case Opcode::RET:
        dyn.isAppControl = true;
        dyn.taken = true;
        dyn.actualTarget = readReg(inst.rb) & ~Addr(3);
        writeReg(inst.ra, dyn.pc + 4);
        break;
      case Opcode::SYSCALL:
        doSyscall(dyn);
        break;
      case Opcode::ADDQ:
        writeReg(inst.rc, vA + vB);
        break;
      case Opcode::SUBQ:
        writeReg(inst.rc, vA - vB);
        break;
      case Opcode::MULQ:
        writeReg(inst.rc, vA * vB);
        break;
      case Opcode::AND:
        writeReg(inst.rc, vA & vB);
        break;
      case Opcode::BIC:
        writeReg(inst.rc, vA & ~vB);
        break;
      case Opcode::OR:
        writeReg(inst.rc, vA | vB);
        break;
      case Opcode::ORNOT:
        writeReg(inst.rc, vA | ~vB);
        break;
      case Opcode::XOR:
        writeReg(inst.rc, vA ^ vB);
        break;
      case Opcode::SLL:
        writeReg(inst.rc, vA << (vB & 63));
        break;
      case Opcode::SRL:
        writeReg(inst.rc, vA >> (vB & 63));
        break;
      case Opcode::SRA:
        writeReg(inst.rc, static_cast<uint64_t>(
                              static_cast<int64_t>(vA) >> (vB & 63)));
        break;
      case Opcode::CMPEQ:
        writeReg(inst.rc, vA == vB ? 1 : 0);
        break;
      case Opcode::CMPLT:
        writeReg(inst.rc,
                 static_cast<int64_t>(vA) < static_cast<int64_t>(vB) ? 1
                                                                     : 0);
        break;
      case Opcode::CMPLE:
        writeReg(inst.rc,
                 static_cast<int64_t>(vA) <= static_cast<int64_t>(vB) ? 1
                                                                      : 0);
        break;
      case Opcode::CMPULT:
        writeReg(inst.rc, vA < vB ? 1 : 0);
        break;
      case Opcode::CMPULE:
        writeReg(inst.rc, vA <= vB ? 1 : 0);
        break;
      case Opcode::CMOVEQ:
        if (vA == 0)
            writeReg(inst.rc, vB);
        break;
      case Opcode::CMOVNE:
        if (vA != 0)
            writeReg(inst.rc, vB);
        break;
      case Opcode::DBEQ: case Opcode::DBNE: case Opcode::DBLT:
      case Opcode::DBGE:
        dyn.taken = condTaken(inst.op, vA);
        break;
      case Opcode::DBR:
        dyn.taken = true;
        break;
      case Opcode::RES0: case Opcode::RES1: case Opcode::RES2:
      case Opcode::RES3:
        raiseTrap(TrapCause::UnexpandedCodeword, dyn.pc, dyn.disepc,
                  inst.raw,
                  strFormat("codeword executed unexpanded at pc 0x%llx "
                            "(missing decompression productions?)",
                            (unsigned long long)dyn.pc));
        break;
      default:
        raiseTrap(TrapCause::InvalidInstruction, dyn.pc, dyn.disepc,
                  inst.raw,
                  strFormat("executed invalid instruction 0x%08x at "
                            "0x%llx",
                            inst.raw, (unsigned long long)dyn.pc));
        break;
    }

    // An explicit control transfer into the program's "error" symbol is
    // the architected signature of an ACF-detected violation (MFI
    // segment matching, watchpoint assertions): count it so callers can
    // distinguish a detected fault from a normal exit.
    if (dyn.isAppControl && dyn.taken && errorAddr_ != 0 &&
        dyn.actualTarget == errorAddr_) {
        ++result_.acfDetections;
    }
}

bool
ExecCore::beginExpansion(const DecodedInst &fetched)
{
    const ExpandResult r = controller_->engine().expand(fetched, pc_);
    if (!r.expanded)
        return false;
    seqInsts_ = r.insts;
    seqLen_ = r.numInsts;
    seqSpec_ = r.seq;
    seqIdx_ = 0;
    seqTriggerPC_ = pc_;
    seqHasPendingOutcome_ = false;
    pendingExpand_ = r;
    ++result_.expansions;
    ++result_.appInsts;
    return true;
}

template <bool kEmit>
bool
ExecCore::execAppInst(const DecodedInst &fetched, DynInst *out)
{
    DynInst dyn;
    dyn.pc = pc_;
    dyn.disepc = 0;
    dyn.inst = fetched;
    if (fetched.isDiseBranch()) {
        raiseTrap(TrapCause::DiseBranchInAppStream, pc_, 0, fetched.raw,
                  strFormat("DISE branch in application stream "
                            "at 0x%llx",
                            (unsigned long long)pc_));
        return false;
    }
    execute(fetched, dyn);
    if (trapped_)
        return false; // the faulting instruction does not retire
    ++result_.dynInsts;
    ++result_.appInsts;
    if (!exited_) {
        pc_ = (dyn.isAppControl && dyn.taken) ? dyn.actualTarget
                                              : pc_ + 4;
    }
    if constexpr (kEmit)
        *out = dyn;
    return true;
}

bool
ExecCore::step(DynInst &out)
{
    if (exited_ || trapped_)
        return false;

    if (!seqSpec_) {
        // Fetch and present to the DISE engine.
        if (!prog_.inText(pc_) &&
            !(pc_ >= prog_.textBase && pc_ < prog_.textEnd())) {
            raiseTrap(TrapCause::PcOutOfText, pc_, 0, pc_,
                      strFormat("pc left text segment: 0x%llx",
                                (unsigned long long)pc_));
            return false;
        }
        const DecodedInst &fetched = fetchDecode(pc_);
        if (controller_)
            beginExpansion(fetched);
        if (!seqSpec_) {
            // Ordinary application instruction.
            return execAppInst<true>(fetched, &out);
        }
    }

    return execSeqSlot<true>(&out);
}

template <bool kEmit>
bool
ExecCore::execSeqSlot(DynInst *out)
{
    if constexpr (kEmit) {
        DynInst dyn;
        return execSeqSlotBody<true>(dyn, out);
    } else {
        // Reset only the outcome fields the body reads; the rest of the
        // scratch DynInst is trace-stream metadata nothing consumes.
        seqScratch_.isAppControl = false;
        seqScratch_.taken = false;
        seqScratch_.isMem = false;
        seqScratch_.isStore = false;
        seqScratch_.isSyscall = false;
        return execSeqSlotBody<false>(seqScratch_, nullptr);
    }
}

template <bool kEmit>
bool
ExecCore::execSeqSlotBody(DynInst &dyn, DynInst *out)
{
    // Emit the next slot of the in-flight replacement sequence.
    const uint32_t slot = seqIdx_;
    DISE_ASSERT(slot < seqLen_, "replacement sequence overrun");
    const DecodedInst &inst = seqInsts_[slot];
    // T.INSN is the trigger itself; a T.OP re-emission (e.g. the rebased
    // access in sandboxing) is the trigger in modified form — both are
    // the application's own instruction, not DISE-inserted work.
    const bool triggerSlot =
        seqSpec_->insts[slot].isTriggerInsn ||
        seqSpec_->insts[slot].opDir == OpDirective::Trigger;
    dyn.pc = seqTriggerPC_;
    dyn.disepc = slot + 1;
    if constexpr (kEmit) {
        dyn.inst = inst;
        dyn.expanded = true;
        dyn.triggerSlot = triggerSlot;
        dyn.firstOfSeq = (slot == 0);
        dyn.seqLen = seqLen_;
        if (slot == 0) {
            dyn.ptMiss = pendingExpand_.ptMiss;
            dyn.rtMiss = pendingExpand_.rtMiss;
            dyn.missPenalty = pendingExpand_.missPenalty;
            // Sequence-level prediction class (DynInst::seqPredClass).
            const DecodedInst &trigger = fetchDecode(seqTriggerPC_);
            if (isControlClass(trigger.cls)) {
                dyn.seqPredClass = trigger.cls;
            } else if (seqLen_ > 0 &&
                       isControlClass(seqInsts_[seqLen_ - 1].cls)) {
                dyn.seqPredClass = seqInsts_[seqLen_ - 1].cls;
            }
        }
    }
    ++seqIdx_;

    execute(inst, dyn);
    if (trapped_) {
        // The faulting slot does not retire; drop the in-flight
        // sequence (the trap records the precise PC:DISEPC point).
        seqSpec_ = nullptr;
        seqInsts_ = nullptr;
        seqLen_ = 0;
        seqIdx_ = 0;
        seqHasPendingOutcome_ = false;
        return false;
    }
    ++result_.dynInsts;
    if (!triggerSlot)
        ++result_.diseInsts;

    bool endSeq = false;
    Addr redirect = 0;
    bool haveRedirect = false;

    if (exited_) {
        endSeq = true;
    } else if (inst.isDiseBranch()) {
        if (dyn.taken) {
            const int64_t target = static_cast<int64_t>(slot) + 1 +
                                   inst.imm;
            if (target < 0 ||
                target > static_cast<int64_t>(seqLen_)) {
                raiseTrap(TrapCause::DiseBranchOutOfRange,
                          seqTriggerPC_, dyn.disepc,
                          static_cast<uint64_t>(target),
                          strFormat("DISE branch target %lld outside "
                                    "sequence of length %u",
                                    (long long)target, seqLen_));
                seqSpec_ = nullptr;
                seqInsts_ = nullptr;
                seqLen_ = 0;
                seqIdx_ = 0;
                seqHasPendingOutcome_ = false;
                return false;
            }
            if constexpr (kEmit)
                dyn.diseTarget = static_cast<uint32_t>(target);
            seqIdx_ = static_cast<uint32_t>(target);
            if (seqIdx_ == seqLen_)
                endSeq = true;
        }
    } else if (dyn.isAppControl) {
        if (triggerSlot) {
            // Trigger branch: instructions after it ride its predicted
            // (here: actual) path; apply the outcome at sequence end.
            seqHasPendingOutcome_ = true;
            seqPendingTaken_ = dyn.taken;
            seqPendingTarget_ = dyn.actualTarget;
        } else if (dyn.taken) {
            // Non-trigger branch: post-branch slots belong to the
            // non-taken path, so a taken branch discards them.
            endSeq = true;
            haveRedirect = true;
            redirect = dyn.actualTarget;
        }
    }

    if (!endSeq && seqIdx_ >= seqLen_)
        endSeq = true;

    if (endSeq) {
        if constexpr (kEmit)
            dyn.lastOfSeq = true;
        if (!exited_) {
            if (haveRedirect) {
                pc_ = redirect;
            } else if (seqHasPendingOutcome_ && seqPendingTaken_) {
                pc_ = seqPendingTarget_;
            } else {
                pc_ = seqTriggerPC_ + 4;
            }
        }
        seqSpec_ = nullptr;
        seqInsts_ = nullptr;
        seqLen_ = 0;
        seqIdx_ = 0;
        seqHasPendingOutcome_ = false;
    }

    if constexpr (kEmit)
        *out = dyn;
    return true;
}

std::pair<Addr, uint32_t>
ExecCore::interruptPoint() const
{
    if (seqSpec_)
        return {seqTriggerPC_, seqIdx_ + 1};
    return {pc_, 0};
}

void
ExecCore::copyArchStateFrom(const ExecCore &other)
{
    regs_ = other.regs_;
    memory_ = other.memory_;
    brk_ = other.brk_;
    // The adopted memory image may differ from what was pre-decoded.
    invalidateDecodeCache();
}

void
ExecCore::advanceToAppInst(uint64_t target)
{
    // Chunked advance: each pass budgets dynInsts so that appInsts
    // cannot overshoot target (every dynamic instruction advances
    // appInsts by at most one), then re-budgets. Unlike run(), a
    // budget expiry here is not a Hang — the caller is positioning the
    // core, not classifying a run. A tripped cancel flag abandons the
    // advance wherever it stands (the caller observes the flag).
    while (!exited_ && !trapped_ && result_.appInsts < target &&
           !cancelRequested()) {
        const uint64_t budget =
            result_.dynInsts + (target - result_.appInsts);
        if (traceEnabled_) {
            runTranslated(budget);
        } else {
            DynInst dyn;
            while (result_.dynInsts < budget && step(dyn)) {
                if ((result_.dynInsts & 0x3ff) == 0 && cancelRequested())
                    break;
            }
        }
    }
    // Drain any in-flight replacement sequence: the target application
    // instruction may have expanded, and its effects are complete only
    // when the sequence retires.
    while (seqSpec_ && !exited_ && !trapped_)
        execSeqSlot<false>(nullptr);
}

void
ExecCore::saveSnapshot(SimSnapshot &out) const
{
    // A terminated core is snapshottable regardless: any in-flight
    // sequence is dead control state a restore would discard anyway.
    DISE_ASSERT(seqSpec_ == nullptr || exited_ || trapped_,
                "saveSnapshot requires an application-instruction "
                "boundary (no in-flight replacement sequence)");
    out.regs = regs_;
    out.memory = memory_; // COW fork: O(pages) pointer copies
    out.pc = pc_;
    out.brk = brk_;
    out.exited = exited_;
    out.trapped = trapped_;
    out.result = result_;
    out.appInsts = result_.appInsts;
    if (controller_)
        out.engine = std::make_unique<DiseEngine>(controller_->engine());
    else
        out.engine.reset();
}

void
ExecCore::restoreSnapshot(const SimSnapshot &snap)
{
    DISE_ASSERT(bool(controller_) == bool(snap.engine),
                "snapshot controller shape does not match this core");
    regs_ = snap.regs;
    memory_ = snap.memory; // COW fork back; the snapshot stays frozen
    pc_ = snap.pc;
    brk_ = snap.brk;
    exited_ = snap.exited;
    trapped_ = snap.trapped;
    result_ = snap.result;
    // Snapshots are taken at application boundaries; clear any control
    // state this core had in flight.
    seqSpec_ = nullptr;
    seqInsts_ = nullptr;
    seqLen_ = 0;
    seqIdx_ = 0;
    seqHasPendingOutcome_ = false;
    if (controller_)
        controller_->restoreEngine(*snap.engine);
    // The restored image may differ from what was pre-decoded or
    // translated (and the engine generation may have moved backwards).
    invalidateDecodeCache();
}

void
ExecCore::resumeAt(Addr pc, uint32_t disepc)
{
    // Discard any in-flight control state; the caller supplies the
    // precise point.
    seqSpec_ = nullptr;
    seqInsts_ = nullptr;
    seqLen_ = 0;
    seqIdx_ = 0;
    seqHasPendingOutcome_ = false;
    pc_ = pc;
    if (disepc == 0)
        return;

    DISE_ASSERT(controller_ != nullptr,
                "resumeAt with a DISEPC requires a DISE controller");
    // Fetch ignores the DISEPC; the DISE engine recognizes it and
    // expands the replacement sequence, skipping the first DISEPC-1
    // instructions (which already retired before the interrupt).
    const DecodedInst &fetched = fetchDecode(pc);
    const ExpandResult r = controller_->engine().expand(fetched, pc);
    if (!r.expanded) {
        fatal(strFormat("resumeAt: instruction at 0x%llx no longer "
                        "expands (production set changed?)",
                        (unsigned long long)pc));
    }
    DISE_ASSERT(disepc - 1 < r.numInsts,
                "resume DISEPC outside the replacement sequence");
    seqInsts_ = r.insts;
    seqLen_ = r.numInsts;
    seqSpec_ = r.seq;
    seqTriggerPC_ = pc;
    seqIdx_ = disepc - 1;
    pendingExpand_ = r;
    pendingExpand_.missPenalty = 0; // already charged before the trap
}

std::shared_ptr<const TransBlock>
ExecCore::translateBlock(Addr entry)
{
    auto block = std::make_shared<TransBlock>();
    block->entryPC = entry;
    block->engineGen =
        controller_ ? controller_->engine().generation() : 0;

    Addr pc = entry;
    while (block->ops.size() < kMaxBlockLen && prog_.inText(pc)) {
        const DecodedInst &d = fetchDecode(pc);

        TransOp op;
        op.op = d.op;
        op.ra = d.ra;
        op.rb = d.rb;
        op.rc = d.rc;
        op.useLit = d.useLit;
        op.imm = d.imm;
        op.inst = d;

        if (controller_ && controller_->engine().opcodeCovered(d.op)) {
            // The engine may expand this instruction; decide at run
            // time. A control trigger may also redirect, so it ends the
            // static block either way.
            op.kind = TransKind::Engine;
            block->ops.push_back(op);
            pc += 4;
            if (d.isControl())
                break;
            continue;
        }

        bool translatable = true;
        bool terminator = false;
        switch (d.op) {
          case Opcode::NOP: case Opcode::LDA: case Opcode::LDAH:
          case Opcode::ADDQ: case Opcode::SUBQ: case Opcode::MULQ:
          case Opcode::AND: case Opcode::BIC: case Opcode::OR:
          case Opcode::ORNOT: case Opcode::XOR: case Opcode::SLL:
          case Opcode::SRL: case Opcode::SRA: case Opcode::CMPEQ:
          case Opcode::CMPLT: case Opcode::CMPLE: case Opcode::CMPULT:
          case Opcode::CMPULE: case Opcode::CMOVEQ: case Opcode::CMOVNE:
            op.kind = TransKind::Alu;
            break;
          case Opcode::LDBU:
            op.kind = TransKind::Load;
            op.size = 1;
            break;
          case Opcode::LDL:
            op.kind = TransKind::Load;
            op.size = 4;
            break;
          case Opcode::LDQ:
            op.kind = TransKind::Load;
            op.size = 8;
            break;
          case Opcode::STB:
            op.kind = TransKind::Store;
            op.size = 1;
            break;
          case Opcode::STL:
            op.kind = TransKind::Store;
            op.size = 4;
            break;
          case Opcode::STQ:
            op.kind = TransKind::Store;
            op.size = 8;
            break;
          case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
          case Opcode::BLE: case Opcode::BGT: case Opcode::BGE:
          case Opcode::BLBC: case Opcode::BLBS:
            op.kind = TransKind::CondBranch;
            op.target = d.branchTarget(pc);
            terminator = true;
            break;
          case Opcode::BR: case Opcode::BSR:
            op.kind = TransKind::DirBranch;
            op.target = d.branchTarget(pc);
            terminator = true;
            break;
          case Opcode::JMP: case Opcode::JSR: case Opcode::RET:
            op.kind = TransKind::Jump;
            terminator = true;
            break;
          default:
            // Syscalls, codewords, DISE branches, reserved/invalid
            // encodings: end the block; the dispatcher executes them
            // through step(), which models their traps and side
            // effects.
            translatable = false;
            break;
        }
        if (!translatable)
            break;
        block->ops.push_back(op);
        pc += 4;
        if (terminator)
            break;
    }
    return block;
}

std::shared_ptr<const TransBlock>
ExecCore::lookupBlock(Addr pc)
{
    const uint64_t gen =
        controller_ ? controller_->engine().generation() : 0;
    auto [it, inserted] = traces_.try_emplace(pc);
    if (inserted || !it->second || it->second->engineGen != gen)
        it->second = translateBlock(pc);
    return it->second;
}

namespace {

/**
 * Lower a memoized replacement sequence into SeqOps. Leaves
 * @c st.usable false (fast path declines, generic path runs) when any
 * slot is outside the repertoire: syscalls, codewords, invalid
 * encodings.
 */
void
translateSeq(const ExpandResult &r, SeqTrans &st, uint64_t gen)
{
    st.insts = r.insts;
    st.numInsts = r.numInsts;
    st.gen = gen;
    st.usable = false;
    st.ops.clear();
    if (r.seq == nullptr || r.seq->insts.size() != r.numInsts)
        return;
    st.ops.reserve(r.numInsts);
    for (uint32_t s = 0; s < r.numInsts; ++s) {
        const DecodedInst &d = r.insts[s];
        SeqOp op;
        op.op = d.op;
        op.ra = d.ra;
        op.rb = d.rb;
        op.rc = d.rc;
        op.useLit = d.useLit;
        op.imm = d.imm;
        // T.INSN / T.OP slots retire as the application's own
        // instruction (see execSeqSlotBody).
        op.trigger = r.seq->insts[s].isTriggerInsn ||
                     r.seq->insts[s].opDir == OpDirective::Trigger;
        switch (d.op) {
          case Opcode::NOP: case Opcode::LDA: case Opcode::LDAH:
          case Opcode::ADDQ: case Opcode::SUBQ: case Opcode::MULQ:
          case Opcode::AND: case Opcode::BIC: case Opcode::OR:
          case Opcode::ORNOT: case Opcode::XOR: case Opcode::SLL:
          case Opcode::SRL: case Opcode::SRA: case Opcode::CMPEQ:
          case Opcode::CMPLT: case Opcode::CMPLE: case Opcode::CMPULT:
          case Opcode::CMPULE: case Opcode::CMOVEQ: case Opcode::CMOVNE:
            op.kind = SeqOpKind::Alu;
            break;
          case Opcode::LDBU:
            op.kind = SeqOpKind::Load;
            op.size = 1;
            break;
          case Opcode::LDL:
            op.kind = SeqOpKind::Load;
            op.size = 4;
            break;
          case Opcode::LDQ:
            op.kind = SeqOpKind::Load;
            op.size = 8;
            break;
          case Opcode::STB:
            op.kind = SeqOpKind::Store;
            op.size = 1;
            break;
          case Opcode::STL:
            op.kind = SeqOpKind::Store;
            op.size = 4;
            break;
          case Opcode::STQ:
            op.kind = SeqOpKind::Store;
            op.size = 8;
            break;
          case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
          case Opcode::BLE: case Opcode::BGT: case Opcode::BGE:
          case Opcode::BLBC: case Opcode::BLBS:
            op.kind = SeqOpKind::CondBranch;
            break;
          case Opcode::BR: case Opcode::BSR:
            op.kind = SeqOpKind::DirBranch;
            break;
          case Opcode::JMP: case Opcode::JSR: case Opcode::RET:
            op.kind = SeqOpKind::Jump;
            break;
          case Opcode::DBEQ: case Opcode::DBNE: case Opcode::DBLT:
          case Opcode::DBGE: case Opcode::DBR: {
            op.kind = d.op == Opcode::DBR ? SeqOpKind::DiseBr
                                          : SeqOpKind::DiseCond;
            const int64_t target =
                static_cast<int64_t>(s) + 1 + d.imm;
            op.diseValid =
                target >= 0 && target <= static_cast<int64_t>(r.numInsts);
            op.diseTarget =
                op.diseValid ? static_cast<uint32_t>(target) : 0;
            break;
          }
          default:
            st.ops.clear();
            return;
        }
        st.ops.push_back(op);
    }
    st.usable = true;
}

} // namespace

const SeqTrans *
ExecCore::seqTransFor(const TransOp &t)
{
    const ExpandResult &r = pendingExpand_;
    if (!r.memoized)
        return nullptr; // span contents may differ call to call
    SeqTrans &st = t.seqCache;
    const uint64_t gen = controller_->engine().generation();
    if (st.insts != r.insts || st.numInsts != r.numInsts ||
        st.gen != gen)
        translateSeq(r, st, gen);
    return st.usable ? &st : nullptr;
}

void
ExecCore::runSeqFast(const SeqTrans &st, uint64_t maxInsts)
{
    const Addr tpc = seqTriggerPC_;
    const SeqOp *const ops = st.ops.data();
    const uint32_t len = st.numInsts;
    uint32_t j = 0;
    // Deferred trigger-branch outcome (seqHasPendingOutcome_ et al. in
    // the generic path), applied when the sequence runs off its end.
    bool pendingHas = false;
    bool pendingTaken = false;
    Addr pendingTarget = 0;

    // Inside the loop, `continue` advances to the next slot; falling
    // out of the switch (case `break`) ends the sequence.
    for (;;) {
        if (j >= len) {
            pc_ = (pendingHas && pendingTaken) ? pendingTarget
                                               : tpc + 4;
            break;
        }
        if (result_.dynInsts >= maxInsts) {
            // Budget expired mid-sequence: write the cursor and the
            // deferred outcome back so the generic path can resume.
            seqIdx_ = j;
            seqHasPendingOutcome_ = pendingHas;
            seqPendingTaken_ = pendingTaken;
            seqPendingTarget_ = pendingTarget;
            return;
        }
        const SeqOp &t = ops[j];
        switch (t.kind) {
          case SeqOpKind::Alu: {
            const uint64_t vA = readReg(t.ra);
            const uint64_t vB = t.useLit
                                    ? static_cast<uint64_t>(t.imm)
                                    : readReg(t.rb);
            switch (t.op) {
              case Opcode::NOP:
                break;
              case Opcode::LDA:
                writeReg(t.ra, readReg(t.rb) +
                                   static_cast<uint64_t>(t.imm));
                break;
              case Opcode::LDAH:
                writeReg(t.ra,
                         readReg(t.rb) +
                             (static_cast<uint64_t>(t.imm) << 16));
                break;
              case Opcode::ADDQ: writeReg(t.rc, vA + vB); break;
              case Opcode::SUBQ: writeReg(t.rc, vA - vB); break;
              case Opcode::MULQ: writeReg(t.rc, vA * vB); break;
              case Opcode::AND: writeReg(t.rc, vA & vB); break;
              case Opcode::BIC: writeReg(t.rc, vA & ~vB); break;
              case Opcode::OR: writeReg(t.rc, vA | vB); break;
              case Opcode::ORNOT: writeReg(t.rc, vA | ~vB); break;
              case Opcode::XOR: writeReg(t.rc, vA ^ vB); break;
              case Opcode::SLL: writeReg(t.rc, vA << (vB & 63)); break;
              case Opcode::SRL: writeReg(t.rc, vA >> (vB & 63)); break;
              case Opcode::SRA:
                writeReg(t.rc,
                         static_cast<uint64_t>(
                             static_cast<int64_t>(vA) >> (vB & 63)));
                break;
              case Opcode::CMPEQ:
                writeReg(t.rc, vA == vB ? 1 : 0);
                break;
              case Opcode::CMPLT:
                writeReg(t.rc, static_cast<int64_t>(vA) <
                                       static_cast<int64_t>(vB)
                                   ? 1
                                   : 0);
                break;
              case Opcode::CMPLE:
                writeReg(t.rc, static_cast<int64_t>(vA) <=
                                       static_cast<int64_t>(vB)
                                   ? 1
                                   : 0);
                break;
              case Opcode::CMPULT:
                writeReg(t.rc, vA < vB ? 1 : 0);
                break;
              case Opcode::CMPULE:
                writeReg(t.rc, vA <= vB ? 1 : 0);
                break;
              case Opcode::CMOVEQ:
                if (vA == 0)
                    writeReg(t.rc, vB);
                break;
              case Opcode::CMOVNE:
                if (vA != 0)
                    writeReg(t.rc, vB);
                break;
              default:
                break; // unreachable: translateSeq admits no others
            }
            ++result_.dynInsts;
            if (!t.trigger)
                ++result_.diseInsts;
            ++j;
            continue;
          }
          case SeqOpKind::Load: {
            const Addr addr =
                readReg(t.rb) + static_cast<uint64_t>(t.imm);
            ++result_.loads;
            uint64_t value;
            if (t.op == Opcode::LDBU)
                value = memory_.read(addr, 1);
            else if (t.op == Opcode::LDL)
                value = static_cast<uint64_t>(
                    signExtend(memory_.read(addr, 4), 32));
            else
                value = memory_.read(addr, 8);
            writeReg(t.ra, value);
            ++result_.dynInsts;
            if (!t.trigger)
                ++result_.diseInsts;
            ++j;
            continue;
          }
          case SeqOpKind::Store: {
            const Addr addr =
                readReg(t.rb) + static_cast<uint64_t>(t.imm);
            ++result_.stores;
            memory_.write(addr, readReg(t.ra), t.size);
            // Self-modifying store: the sequence itself lives in the
            // engine's tables and keeps running; the enclosing block's
            // staleness is caught by the Engine slot's epoch check.
            if (addr < prog_.textEnd() &&
                addr + t.size > prog_.textBase)
                invalidateDecodedRange(addr, t.size);
            ++result_.dynInsts;
            if (!t.trigger)
                ++result_.diseInsts;
            ++j;
            continue;
          }
          case SeqOpKind::CondBranch: {
            const bool taken = condTaken(t.op, readReg(t.ra));
            const Addr target =
                tpc + 4 + static_cast<uint64_t>(t.imm) * 4;
            ++result_.dynInsts;
            if (!t.trigger)
                ++result_.diseInsts;
            if (taken && errorAddr_ != 0 && target == errorAddr_)
                ++result_.acfDetections;
            if (t.trigger) {
                // Trigger branch: later slots ride its path; apply the
                // outcome at sequence end.
                pendingHas = true;
                pendingTaken = taken;
                pendingTarget = target;
            } else if (taken) {
                // Non-trigger branch: post-branch slots belong to the
                // non-taken path, so a taken branch discards them.
                pc_ = target;
                break;
            }
            ++j;
            continue;
          }
          case SeqOpKind::DirBranch:
          case SeqOpKind::Jump: {
            // Jump reads the target before the link write (execute()
            // order; the two may name the same register).
            const Addr target =
                t.kind == SeqOpKind::Jump
                    ? readReg(t.rb) & ~Addr(3)
                    : tpc + 4 + static_cast<uint64_t>(t.imm) * 4;
            writeReg(t.ra, tpc + 4);
            ++result_.dynInsts;
            if (!t.trigger)
                ++result_.diseInsts;
            if (errorAddr_ != 0 && target == errorAddr_)
                ++result_.acfDetections;
            if (t.trigger) {
                pendingHas = true;
                pendingTaken = true;
                pendingTarget = target;
                ++j;
                continue;
            }
            pc_ = target;
            break;
          }
          case SeqOpKind::DiseCond:
          case SeqOpKind::DiseBr: {
            const bool taken = t.kind == SeqOpKind::DiseBr ||
                               condTaken(t.op, readReg(t.ra));
            ++result_.dynInsts;
            if (!t.trigger)
                ++result_.diseInsts;
            if (!taken) {
                ++j;
                continue;
            }
            if (!t.diseValid) {
                const int64_t target =
                    static_cast<int64_t>(j) + 1 + t.imm;
                raiseTrap(TrapCause::DiseBranchOutOfRange, tpc, j + 1,
                          static_cast<uint64_t>(target),
                          strFormat("DISE branch target %lld outside "
                                    "sequence of length %u",
                                    (long long)target, len));
                break;
            }
            j = t.diseTarget;
            continue;
          }
        }
        break;
    }

    seqSpec_ = nullptr;
    seqInsts_ = nullptr;
    seqLen_ = 0;
    seqIdx_ = 0;
    seqHasPendingOutcome_ = false;
}

void
ExecCore::runBlock(const TransBlock &block, uint64_t maxInsts)
{
    const TransOp *const ops = block.ops.data();
    const size_t n = block.ops.size();
    const bool haveEngine = controller_ != nullptr;
    size_t i = 0;
    Addr pc = block.entryPC;
    const uint64_t epoch0 = traceEpoch_;
    // Uncovered-opcode slots bypass expand(); their inspections are
    // accounted in bulk at block exit (see DiseEngine::noteInspected).
    uint64_t inspected = 0;

    // Inside the loop, `continue` advances to the next slot; falling
    // out of the switch (case `break`) exits the block with pc_ set.
    for (;;) {
        if (i == n || result_.dynInsts >= maxInsts) {
            pc_ = pc;
            break;
        }
        const TransOp &t = ops[i];
        switch (t.kind) {
          case TransKind::Alu: {
            const uint64_t vA = readReg(t.ra);
            const uint64_t vB = t.useLit
                                    ? static_cast<uint64_t>(t.imm)
                                    : readReg(t.rb);
            switch (t.op) {
              case Opcode::NOP:
                break;
              case Opcode::LDA:
                writeReg(t.ra, readReg(t.rb) +
                                   static_cast<uint64_t>(t.imm));
                break;
              case Opcode::LDAH:
                writeReg(t.ra,
                         readReg(t.rb) +
                             (static_cast<uint64_t>(t.imm) << 16));
                break;
              case Opcode::ADDQ: writeReg(t.rc, vA + vB); break;
              case Opcode::SUBQ: writeReg(t.rc, vA - vB); break;
              case Opcode::MULQ: writeReg(t.rc, vA * vB); break;
              case Opcode::AND: writeReg(t.rc, vA & vB); break;
              case Opcode::BIC: writeReg(t.rc, vA & ~vB); break;
              case Opcode::OR: writeReg(t.rc, vA | vB); break;
              case Opcode::ORNOT: writeReg(t.rc, vA | ~vB); break;
              case Opcode::XOR: writeReg(t.rc, vA ^ vB); break;
              case Opcode::SLL: writeReg(t.rc, vA << (vB & 63)); break;
              case Opcode::SRL: writeReg(t.rc, vA >> (vB & 63)); break;
              case Opcode::SRA:
                writeReg(t.rc,
                         static_cast<uint64_t>(
                             static_cast<int64_t>(vA) >> (vB & 63)));
                break;
              case Opcode::CMPEQ:
                writeReg(t.rc, vA == vB ? 1 : 0);
                break;
              case Opcode::CMPLT:
                writeReg(t.rc, static_cast<int64_t>(vA) <
                                       static_cast<int64_t>(vB)
                                   ? 1
                                   : 0);
                break;
              case Opcode::CMPLE:
                writeReg(t.rc, static_cast<int64_t>(vA) <=
                                       static_cast<int64_t>(vB)
                                   ? 1
                                   : 0);
                break;
              case Opcode::CMPULT:
                writeReg(t.rc, vA < vB ? 1 : 0);
                break;
              case Opcode::CMPULE:
                writeReg(t.rc, vA <= vB ? 1 : 0);
                break;
              case Opcode::CMOVEQ:
                if (vA == 0)
                    writeReg(t.rc, vB);
                break;
              case Opcode::CMOVNE:
                if (vA != 0)
                    writeReg(t.rc, vB);
                break;
              default:
                break; // unreachable: translateBlock admits no others
            }
            ++result_.dynInsts;
            ++result_.appInsts;
            inspected += haveEngine;
            ++i;
            pc += 4;
            continue;
          }
          case TransKind::Load: {
            const Addr addr =
                readReg(t.rb) + static_cast<uint64_t>(t.imm);
            ++result_.loads;
            uint64_t value;
            if (t.op == Opcode::LDBU)
                value = memory_.read(addr, 1);
            else if (t.op == Opcode::LDL)
                value = static_cast<uint64_t>(
                    signExtend(memory_.read(addr, 4), 32));
            else
                value = memory_.read(addr, 8);
            writeReg(t.ra, value);
            ++result_.dynInsts;
            ++result_.appInsts;
            inspected += haveEngine;
            ++i;
            pc += 4;
            continue;
          }
          case TransKind::Store: {
            const Addr addr =
                readReg(t.rb) + static_cast<uint64_t>(t.imm);
            ++result_.stores;
            memory_.write(addr, readReg(t.ra), t.size);
            ++result_.dynInsts;
            ++result_.appInsts;
            inspected += haveEngine;
            if (addr < prog_.textEnd() &&
                addr + t.size > prog_.textBase) {
                // Self-modifying store: drop stale decodes and traces
                // (possibly this block — kept alive by the caller's
                // shared_ptr) and leave the fast path so the rewritten
                // code is re-translated before it executes.
                invalidateDecodedRange(addr, t.size);
                pc_ = pc + 4;
                break;
            }
            ++i;
            pc += 4;
            continue;
          }
          case TransKind::CondBranch: {
            const bool taken = condTaken(t.op, readReg(t.ra));
            ++result_.dynInsts;
            ++result_.appInsts;
            inspected += haveEngine;
            if (!taken) {
                ++i;
                pc += 4;
                continue;
            }
            if (errorAddr_ != 0 && t.target == errorAddr_)
                ++result_.acfDetections;
            pc_ = t.target;
            break;
          }
          case TransKind::DirBranch: {
            writeReg(t.ra, pc + 4);
            ++result_.dynInsts;
            ++result_.appInsts;
            inspected += haveEngine;
            if (errorAddr_ != 0 && t.target == errorAddr_)
                ++result_.acfDetections;
            pc_ = t.target;
            break;
          }
          case TransKind::Jump: {
            // Target read before the link write (execute() order; the
            // two may name the same register).
            const Addr target = readReg(t.rb) & ~Addr(3);
            writeReg(t.ra, pc + 4);
            ++result_.dynInsts;
            ++result_.appInsts;
            inspected += haveEngine;
            if (errorAddr_ != 0 && target == errorAddr_)
                ++result_.acfDetections;
            pc_ = target;
            break;
          }
          case TransKind::Engine: {
            pc_ = pc;
            if (!beginExpansion(t.inst)) {
                if (!execAppInst<false>(t.inst, nullptr))
                    break; // trapped
            } else if (const SeqTrans *st = seqTransFor(t)) {
                runSeqFast(*st, maxInsts);
            } else {
                while (seqSpec_ && result_.dynInsts < maxInsts)
                    execSeqSlot<false>(nullptr);
            }
            if (exited_ || trapped_ || seqSpec_)
                break; // done, or budget expired mid-sequence
            if (pc_ != pc + 4)
                break; // redirected out of the block
            if (traceEpoch_ != epoch0)
                break; // a sequence store rewrote text: re-translate
            ++i;
            pc += 4;
            continue;
          }
        }
        break;
    }

    if (inspected != 0)
        controller_->engine().noteInspected(inspected);
}

void
ExecCore::runTranslated(uint64_t maxInsts)
{
    DynInst dyn;
    while (!exited_ && !trapped_ && result_.dynInsts < maxInsts &&
           !cancelRequested()) {
        if (seqSpec_) {
            // Resumed mid-sequence (resumeAt, or a budget expiry that
            // was later raised): drain the sequence first.
            execSeqSlot<false>(nullptr);
            continue;
        }
        if ((pc_ & 3) != 0 || pc_ < prog_.textBase ||
            pc_ >= prog_.textEnd()) {
            // Out-of-text (traps) and unaligned fetches stay on the
            // slow path.
            if (!step(dyn))
                break;
            continue;
        }
        DispatchEntry &de =
            dispatch_[(pc_ >> 2) & (kDispatchEntries - 1)];
        const uint64_t gen =
            controller_ ? controller_->engine().generation() : 0;
        if (de.pc != pc_ || de.epoch != traceEpoch_ || de.gen != gen) {
            de.block = lookupBlock(pc_);
            de.pc = pc_;
            de.epoch = traceEpoch_;
            de.gen = gen;
        }
        const TransBlock &block = *de.block;
        if (block.ops.empty()) {
            // Leading untranslatable instruction (syscall, codeword,
            // ...): execute it through the full machinery.
            if (!step(dyn))
                break;
            continue;
        }
        runBlock(block, maxInsts);
    }
}

RunResult
ExecCore::run(uint64_t maxInsts)
{
    if (traceEnabled_) {
        runTranslated(maxInsts);
    } else {
        DynInst dyn;
        while (result_.dynInsts < maxInsts && step(dyn)) {
            if ((result_.dynInsts & 0x3ff) == 0 && cancelRequested())
                break;
        }
    }
    // Watchdog expiry is an architected, classifiable outcome: the
    // instruction budget ran out — or an external deadline cancelled
    // the run — with the program still live.
    if (!exited_ && !trapped_ &&
        (result_.dynInsts >= maxInsts || cancelRequested())) {
        result_.outcome = RunOutcome::Hang;
    }
    return result_;
}

} // namespace dise
