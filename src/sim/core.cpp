#include "src/sim/core.hpp"

#include <algorithm>

#include "src/common/bits.hpp"
#include "src/common/logging.hpp"
#include "src/isa/disasm.hpp"
#include "src/sim/snapshot.hpp"

namespace dise {

namespace {

/** Longest straight-line run one translated block may cover. */
constexpr size_t kMaxBlockLen = 128;

/**
 * Map an opcode to its flat interpreter handler (writing the access
 * size for memory ops); OpHandler::NUM when the opcode is outside the
 * translated repertoire (syscalls, codewords, reserved/invalid
 * encodings). Shared by block and replacement-sequence translation so
 * the two interpreters agree on the repertoire.
 */
OpHandler
baseHandler(Opcode op, uint8_t &size)
{
    switch (op) {
      case Opcode::NOP: return OpHandler::Nop;
      case Opcode::LDA: return OpHandler::Lda;
      case Opcode::LDAH: return OpHandler::Ldah;
      case Opcode::ADDQ: return OpHandler::Addq;
      case Opcode::SUBQ: return OpHandler::Subq;
      case Opcode::MULQ: return OpHandler::Mulq;
      case Opcode::AND: return OpHandler::And;
      case Opcode::BIC: return OpHandler::Bic;
      case Opcode::OR: return OpHandler::Or;
      case Opcode::ORNOT: return OpHandler::Ornot;
      case Opcode::XOR: return OpHandler::Xor;
      case Opcode::SLL: return OpHandler::Sll;
      case Opcode::SRL: return OpHandler::Srl;
      case Opcode::SRA: return OpHandler::Sra;
      case Opcode::CMPEQ: return OpHandler::Cmpeq;
      case Opcode::CMPLT: return OpHandler::Cmplt;
      case Opcode::CMPLE: return OpHandler::Cmple;
      case Opcode::CMPULT: return OpHandler::Cmpult;
      case Opcode::CMPULE: return OpHandler::Cmpule;
      case Opcode::CMOVEQ: return OpHandler::Cmoveq;
      case Opcode::CMOVNE: return OpHandler::Cmovne;
      case Opcode::LDBU: size = 1; return OpHandler::Ldbu;
      case Opcode::LDL: size = 4; return OpHandler::Ldl;
      case Opcode::LDQ: size = 8; return OpHandler::Ldq;
      case Opcode::STB: size = 1; return OpHandler::Store;
      case Opcode::STL: size = 4; return OpHandler::Store;
      case Opcode::STQ: size = 8; return OpHandler::Store;
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BLE: case Opcode::BGT: case Opcode::BGE:
      case Opcode::BLBC: case Opcode::BLBS:
        return OpHandler::CondBranch;
      case Opcode::BR: case Opcode::BSR:
        return OpHandler::DirBranch;
      case Opcode::JMP: case Opcode::JSR: case Opcode::RET:
        return OpHandler::Jump;
      case Opcode::DBEQ: case Opcode::DBNE: case Opcode::DBLT:
      case Opcode::DBGE:
        return OpHandler::DiseCond;
      case Opcode::DBR:
        return OpHandler::DiseBr;
      default:
        return OpHandler::NUM;
    }
}

/** Outcome of a conditional (application or DISE) branch on value @p v.
 *  Single source of truth for execute() and the translated fast path. */
bool
condTaken(Opcode op, uint64_t v)
{
    const int64_t sv = static_cast<int64_t>(v);
    switch (op) {
      case Opcode::BEQ: case Opcode::DBEQ: return v == 0;
      case Opcode::BNE: case Opcode::DBNE: return v != 0;
      case Opcode::BLT: case Opcode::DBLT: return sv < 0;
      case Opcode::BLE: return sv <= 0;
      case Opcode::BGT: return sv > 0;
      case Opcode::BGE: case Opcode::DBGE: return sv >= 0;
      case Opcode::BLBC: return (v & 1) == 0;
      case Opcode::BLBS: return (v & 1) != 0;
      default: return false;
    }
}

} // namespace

Json
RunResult::toJson() const
{
    Json doc = Json::object();
    doc["outcome"] = Json(std::string(runOutcomeName(outcome)));
    doc["exited"] = Json(exited);
    doc["exit_code"] = Json(exitCode);
    doc["dyn_insts"] = Json(dynInsts);
    doc["app_insts"] = Json(appInsts);
    doc["dise_insts"] = Json(diseInsts);
    doc["expansions"] = Json(expansions);
    doc["loads"] = Json(loads);
    doc["stores"] = Json(stores);
    doc["acf_detections"] = Json(acfDetections);
    doc["output"] = Json(output);
    if (outcome == RunOutcome::Trap) {
        Json t = Json::object();
        t["cause"] = Json(std::string(trapCauseName(trap.cause)));
        t["pc"] = Json(uint64_t(trap.pc));
        t["disepc"] = Json(trap.disepc);
        t["fault_addr"] = Json(trap.faultAddr);
        t["message"] = Json(trap.message);
        doc["trap"] = std::move(t);
    }
    return doc;
}

ExecCore::ExecCore(const Program &prog, DiseController *controller)
    : prog_(prog), controller_(controller), pc_(prog.entry)
{
    memory_.loadProgram(prog);
    regs_.fill(0);
    regs_[kSpReg] = prog.stackTop;
    brk_ = (prog.dataBase + prog.data.size() + 0xffff) & ~Addr(0xffff);
    decoded_.resize(prog.text.size());
    decodedValid_.assign(prog.text.size(), 0);
    const auto errorSym = prog.symbols.find("error");
    if (errorSym != prog.symbols.end())
        errorAddr_ = errorSym->second;
}

void
ExecCore::raiseTrap(TrapCause cause, Addr pc, uint32_t disepc,
                    uint64_t faultAddr, std::string message)
{
    trapped_ = true;
    result_.outcome = RunOutcome::Trap;
    result_.trap.cause = cause;
    result_.trap.pc = pc;
    result_.trap.disepc = disepc;
    result_.trap.faultAddr = faultAddr;
    result_.trap.message = std::move(message);
}

const DecodedInst &
ExecCore::fetchDecode(Addr pc)
{
    const Addr off = pc - prog_.textBase;
    const size_t idx = static_cast<size_t>(off >> 2);
    if ((off & 3) != 0 || idx >= decoded_.size()) {
        decodeFallback_ = dise::decode(memory_.readWord(pc));
        return decodeFallback_;
    }
    if (!decodedValid_[idx]) {
        decoded_[idx] = dise::decode(memory_.readWord(pc));
        decodedValid_[idx] = 1;
    }
    return decoded_[idx];
}

void
ExecCore::invalidateDecodeCache()
{
    decodedValid_.assign(decodedValid_.size(), 0);
    clearFusionMap();
    ++traceEpoch_;
    for (auto &kv : traces_) {
        if (kv.second)
            retired_.push_back(std::move(kv.second));
    }
    traces_.clear();
}

void
ExecCore::invalidateDecodedRange(Addr addr, unsigned size)
{
    const Addr end = std::min<Addr>(addr + size, prog_.textEnd());
    Addr first = std::max(addr, prog_.textBase);
    for (Addr a = first & ~Addr(3); a < end; a += 4) {
        const size_t idx = static_cast<size_t>((a - prog_.textBase) >> 2);
        if (idx < decodedValid_.size())
            decodedValid_[idx] = 0;
    }
    invalidateFusionRange(addr, size);
    invalidateTraceRange(addr, size);
}

void
ExecCore::setFusionEnabled(bool on)
{
    if (on == fusionEnabled_)
        return;
    fusionEnabled_ = on;
    // Translated blocks bake fusion decisions into their slots, so the
    // whole trace cache (and the memoized decisions) must go.
    invalidateDecodeCache();
}

void
ExecCore::clearFusionMap()
{
    fusionState_.clear();
    fusionInst_.clear();
}

void
ExecCore::invalidateFusionRange(Addr addr, unsigned size)
{
    if (fusionState_.empty())
        return;
    const Addr end = std::min<Addr>(addr + size, prog_.textEnd());
    Addr first = std::max(addr, prog_.textBase) & ~Addr(3);
    // A pair starting one word earlier spans into the written range.
    if (first >= prog_.textBase + 4)
        first -= 4;
    for (Addr a = first; a < end; a += 4) {
        const size_t idx = static_cast<size_t>((a - prog_.textBase) >> 2);
        if (idx < fusionState_.size())
            fusionState_[idx] = 0;
    }
}

const DecodedInst *
ExecCore::fusionAt(Addr pc)
{
    if (controller_) {
        // Coverage feeds the decision, so any table install or flush
        // (generation bump) restarts the memo from scratch.
        const uint64_t gen = controller_->engine().generation();
        if (gen != fusionGen_) {
            fusionGen_ = gen;
            clearFusionMap();
        }
    }
    if (fusionState_.empty()) {
        fusionState_.assign(decoded_.size(), 0);
        fusionInst_.assign(decoded_.size(), DecodedInst{});
    }
    const Addr off = pc - prog_.textBase;
    if ((off & 3) != 0)
        return nullptr;
    const size_t idx = static_cast<size_t>(off >> 2);
    if (idx + 1 >= fusionState_.size())
        return nullptr; // the pair would cross the end of text
    if (fusionState_[idx] == 1)
        return nullptr;
    if (fusionState_[idx] == 2)
        return &fusionInst_[idx];
    const DecodedInst &first = fetchDecode(pc);
    const DecodedInst &second = fetchDecode(pc + 4);
    bool ok = fusePair(first, second, &fusionInst_[idx]);
    if (ok && controller_) {
        // Expansion takes priority over contraction: a covered opcode
        // must reach the engine exactly as fetched.
        const DiseEngine &eng = controller_->engine();
        if (eng.opcodeCovered(first.op) || eng.opcodeCovered(second.op))
            ok = false;
    }
    fusionState_[idx] = ok ? 2 : 1;
    return ok ? &fusionInst_[idx] : nullptr;
}

const StatGroup &
ExecCore::fusionStatGroup() const
{
    fusionGroup_.set("fused_pairs", statFusedPairs_);
    fusionGroup_.set("fused_insts", 2 * statFusedPairs_);
    for (int i = 0; i < kNumFusedFamilies; ++i) {
        fusionGroup_.set(std::string("pairs_") + fusedFamilyName(i),
                         statFusedFamily_[i]);
    }
    return fusionGroup_;
}

void
ExecCore::invalidateTraceRange(Addr addr, unsigned size)
{
    // The epoch bump orphans every dispatch entry and chain edge, so
    // nothing re-enters a dropped block; the graveyard keeps the
    // storage alive in case the interpreter is currently *inside* one
    // (SMC invalidation runs mid-chain). See the retired_ member doc.
    ++traceEpoch_;
    if (traces_.empty())
        return;
    const Addr end = addr + size;
    for (auto it = traces_.begin(); it != traces_.end();) {
        const TransBlock &b = *it->second;
        if (b.entryPC < end && b.coveredEnd() > addr) {
            retired_.push_back(std::move(it->second));
            it = traces_.erase(it);
        } else {
            ++it;
        }
    }
}

void
ExecCore::setReg(RegIndex r, uint64_t value)
{
    if (r != kZeroReg)
        regs_[r] = value;
}

DiseRegFile
ExecCore::diseRegs() const
{
    DiseRegFile file;
    for (unsigned i = 0; i < kNumDiseRegs; ++i)
        file[i] = regs_[kDiseRegBase + i];
    return file;
}

void
ExecCore::setDiseReg(unsigned i, uint64_t value)
{
    DISE_ASSERT(i < kNumDiseRegs, "bad dedicated register index");
    regs_[kDiseRegBase + i] = value;
}

void
ExecCore::doSyscall(DynInst &dyn)
{
    dyn.isSyscall = true;
    const auto code = static_cast<SyscallCode>(readReg(kRetReg));
    const uint64_t a0 = readReg(kArg0Reg);
    switch (code) {
      case SyscallCode::Exit:
        exited_ = true;
        result_.exited = true;
        result_.outcome = RunOutcome::Exit;
        result_.exitCode = static_cast<int>(a0);
        break;
      case SyscallCode::PutChar:
        result_.output += static_cast<char>(a0 & 0xff);
        break;
      case SyscallCode::PutInt:
        result_.output += std::to_string(static_cast<int64_t>(a0));
        break;
      case SyscallCode::Brk: {
        writeReg(kRetReg, brk_);
        brk_ += a0;
        break;
      }
      default:
        raiseTrap(TrapCause::UnknownSyscall, dyn.pc, dyn.disepc,
                  readReg(kRetReg),
                  strFormat("unknown syscall %llu at pc 0x%llx",
                            (unsigned long long)readReg(kRetReg),
                            (unsigned long long)dyn.pc));
        break;
    }
}

void
ExecCore::execute(const DecodedInst &inst, DynInst &dyn)
{
    const uint64_t vA = readReg(inst.ra);
    const uint64_t vB = inst.useLit ? static_cast<uint64_t>(inst.imm)
                                    : readReg(inst.rb);

    switch (inst.op) {
      case Opcode::NOP:
        break;
      case Opcode::LDA:
        writeReg(inst.ra,
                 readReg(inst.rb) + static_cast<uint64_t>(inst.imm));
        break;
      case Opcode::LDAH:
        writeReg(inst.ra, readReg(inst.rb) +
                              (static_cast<uint64_t>(inst.imm) << 16));
        break;
      case Opcode::LDBU:
      case Opcode::LDL:
      case Opcode::LDQ: {
        dyn.isMem = true;
        dyn.memAddr = readReg(inst.rb) + static_cast<uint64_t>(inst.imm);
        ++result_.loads;
        uint64_t value;
        if (inst.op == Opcode::LDBU) {
            value = memory_.read(dyn.memAddr, 1);
        } else if (inst.op == Opcode::LDL) {
            value = static_cast<uint64_t>(
                signExtend(memory_.read(dyn.memAddr, 4), 32));
        } else {
            value = memory_.read(dyn.memAddr, 8);
        }
        writeReg(inst.ra, value);
        break;
      }
      case Opcode::STB:
      case Opcode::STL:
      case Opcode::STQ: {
        dyn.isMem = true;
        dyn.isStore = true;
        dyn.memAddr = readReg(inst.rb) + static_cast<uint64_t>(inst.imm);
        ++result_.stores;
        const unsigned size =
            inst.op == Opcode::STB ? 1 : (inst.op == Opcode::STL ? 4 : 8);
        memory_.write(dyn.memAddr, vA, size);
        // Self-modifying code: drop stale pre-decoded words.
        if (dyn.memAddr < prog_.textEnd() &&
            dyn.memAddr + size > prog_.textBase) {
            invalidateDecodedRange(dyn.memAddr, size);
        }
        break;
      }
      case Opcode::BR:
      case Opcode::BSR:
        dyn.isAppControl = true;
        dyn.taken = true;
        dyn.actualTarget = inst.branchTarget(dyn.pc);
        writeReg(inst.ra, dyn.pc + 4);
        break;
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BLE: case Opcode::BGT: case Opcode::BGE:
      case Opcode::BLBC: case Opcode::BLBS:
        dyn.isAppControl = true;
        dyn.taken = condTaken(inst.op, vA);
        dyn.actualTarget = inst.branchTarget(dyn.pc);
        break;
      case Opcode::JMP:
      case Opcode::JSR:
      case Opcode::RET:
        dyn.isAppControl = true;
        dyn.taken = true;
        dyn.actualTarget = readReg(inst.rb) & ~Addr(3);
        writeReg(inst.ra, dyn.pc + 4);
        break;
      case Opcode::SYSCALL:
        doSyscall(dyn);
        break;
      case Opcode::ADDQ:
        writeReg(inst.rc, vA + vB);
        break;
      case Opcode::SUBQ:
        writeReg(inst.rc, vA - vB);
        break;
      case Opcode::MULQ:
        writeReg(inst.rc, vA * vB);
        break;
      case Opcode::AND:
        writeReg(inst.rc, vA & vB);
        break;
      case Opcode::BIC:
        writeReg(inst.rc, vA & ~vB);
        break;
      case Opcode::OR:
        writeReg(inst.rc, vA | vB);
        break;
      case Opcode::ORNOT:
        writeReg(inst.rc, vA | ~vB);
        break;
      case Opcode::XOR:
        writeReg(inst.rc, vA ^ vB);
        break;
      case Opcode::SLL:
        writeReg(inst.rc, vA << (vB & 63));
        break;
      case Opcode::SRL:
        writeReg(inst.rc, vA >> (vB & 63));
        break;
      case Opcode::SRA:
        writeReg(inst.rc, static_cast<uint64_t>(
                              static_cast<int64_t>(vA) >> (vB & 63)));
        break;
      case Opcode::CMPEQ:
        writeReg(inst.rc, vA == vB ? 1 : 0);
        break;
      case Opcode::CMPLT:
        writeReg(inst.rc,
                 static_cast<int64_t>(vA) < static_cast<int64_t>(vB) ? 1
                                                                     : 0);
        break;
      case Opcode::CMPLE:
        writeReg(inst.rc,
                 static_cast<int64_t>(vA) <= static_cast<int64_t>(vB) ? 1
                                                                      : 0);
        break;
      case Opcode::CMPULT:
        writeReg(inst.rc, vA < vB ? 1 : 0);
        break;
      case Opcode::CMPULE:
        writeReg(inst.rc, vA <= vB ? 1 : 0);
        break;
      case Opcode::CMOVEQ:
        if (vA == 0)
            writeReg(inst.rc, vB);
        break;
      case Opcode::CMOVNE:
        if (vA != 0)
            writeReg(inst.rc, vB);
        break;
      case Opcode::DBEQ: case Opcode::DBNE: case Opcode::DBLT:
      case Opcode::DBGE:
        dyn.taken = condTaken(inst.op, vA);
        break;
      case Opcode::DBR:
        dyn.taken = true;
        break;
      case Opcode::RES0: case Opcode::RES1: case Opcode::RES2:
      case Opcode::RES3:
        raiseTrap(TrapCause::UnexpandedCodeword, dyn.pc, dyn.disepc,
                  inst.raw,
                  strFormat("codeword executed unexpanded at pc 0x%llx "
                            "(missing decompression productions?)",
                            (unsigned long long)dyn.pc));
        break;
      default:
        raiseTrap(TrapCause::InvalidInstruction, dyn.pc, dyn.disepc,
                  inst.raw,
                  strFormat("executed invalid instruction 0x%08x at "
                            "0x%llx",
                            inst.raw, (unsigned long long)dyn.pc));
        break;
    }

    // An explicit control transfer into the program's "error" symbol is
    // the architected signature of an ACF-detected violation (MFI
    // segment matching, watchpoint assertions): count it so callers can
    // distinguish a detected fault from a normal exit.
    if (dyn.isAppControl && dyn.taken && errorAddr_ != 0 &&
        dyn.actualTarget == errorAddr_) {
        ++result_.acfDetections;
    }
}

void
ExecCore::adoptExpansion(const ExpandResult &r)
{
    seqInsts_ = r.insts;
    seqLen_ = r.numInsts;
    seqSpec_ = r.seq;
    seqIdx_ = 0;
    seqTriggerPC_ = pc_;
    seqHasPendingOutcome_ = false;
    pendingExpand_ = r;
    ++result_.expansions;
    ++result_.appInsts;
}

bool
ExecCore::beginExpansion(const DecodedInst &fetched)
{
    const ExpandResult r = controller_->engine().expand(fetched, pc_);
    if (!r.expanded)
        return false;
    adoptExpansion(r);
    return true;
}

template <bool kEmit>
bool
ExecCore::execAppInst(const DecodedInst &fetched, DynInst *out)
{
    DynInst dyn;
    dyn.pc = pc_;
    dyn.disepc = 0;
    dyn.inst = fetched;
    if (fetched.isDiseBranch()) {
        raiseTrap(TrapCause::DiseBranchInAppStream, pc_, 0, fetched.raw,
                  strFormat("DISE branch in application stream "
                            "at 0x%llx",
                            (unsigned long long)pc_));
        return false;
    }
    execute(fetched, dyn);
    if (trapped_)
        return false; // the faulting instruction does not retire
    ++result_.dynInsts;
    ++result_.appInsts;
    if (!exited_) {
        pc_ = (dyn.isAppControl && dyn.taken) ? dyn.actualTarget
                                              : pc_ + 4;
    }
    if constexpr (kEmit)
        *out = dyn;
    return true;
}

bool
ExecCore::executeFused(const DecodedInst &fz, Addr pc, DynInst &dyn)
{
    switch (fz.op) {
      case Opcode::FCMPBR: {
        const CmpBrFields f = unpackCmpBr(fz.tag);
        const uint64_t vA = readReg(fz.ra);
        const uint64_t vB =
            fz.useLit ? static_cast<uint64_t>(f.lit) : readReg(fz.rb);
        uint64_t r;
        switch (f.cmpOp) {
          case Opcode::CMPEQ:
            r = vA == vB ? 1 : 0;
            break;
          case Opcode::CMPLT:
            r = static_cast<int64_t>(vA) < static_cast<int64_t>(vB) ? 1
                                                                    : 0;
            break;
          case Opcode::CMPLE:
            r = static_cast<int64_t>(vA) <= static_cast<int64_t>(vB) ? 1
                                                                     : 0;
            break;
          case Opcode::CMPULT:
            r = vA < vB ? 1 : 0;
            break;
          default: // CMPULE
            r = vA <= vB ? 1 : 0;
            break;
        }
        writeReg(fz.rc, r);
        dyn.isAppControl = true;
        dyn.taken = condTaken(f.brOp, r);
        dyn.actualTarget = fz.branchTarget(pc);
        if (dyn.taken && errorAddr_ != 0 &&
            dyn.actualTarget == errorAddr_) {
            ++result_.acfDetections;
        }
        return dyn.taken;
      }
      case Opcode::FLDAC:
        writeReg(fz.rc, readReg(fz.ra) + static_cast<uint64_t>(fz.imm));
        return false;
      case Opcode::FSHADD: {
        const uint64_t v = readReg(fz.ra) << (fz.tag & 63);
        writeReg(fz.rc, v + (fz.useLit ? static_cast<uint64_t>(fz.imm)
                                       : readReg(fz.rb)));
        return false;
      }
      case Opcode::FLDAL: {
        dyn.isMem = true;
        dyn.memAddr = readReg(fz.rb) + static_cast<uint64_t>(fz.imm);
        const auto ld = static_cast<Opcode>(fz.tag);
        uint64_t value;
        if (ld == Opcode::LDBU) {
            value = memory_.read(dyn.memAddr, 1);
        } else if (ld == Opcode::LDL) {
            value = static_cast<uint64_t>(
                signExtend(memory_.read(dyn.memAddr, 4), 32));
        } else {
            value = memory_.read(dyn.memAddr, 8);
        }
        writeReg(fz.ra, value);
        return false;
      }
      case Opcode::FLDAS: {
        dyn.isMem = true;
        dyn.isStore = true;
        const Addr addr = readReg(fz.rb) + static_cast<uint64_t>(fz.imm);
        dyn.memAddr = addr;
        const auto st = static_cast<Opcode>(fz.tag);
        const unsigned size =
            st == Opcode::STB ? 1 : (st == Opcode::STL ? 4 : 8);
        memory_.write(addr, readReg(fz.ra), size);
        writeReg(fz.rc, addr); // the lda half's result survives the pair
        return false;
      }
      case Opcode::FLDOP: {
        dyn.isMem = true;
        dyn.memAddr = readReg(fz.rb) + static_cast<uint64_t>(fz.imm);
        const uint64_t loaded = memory_.read(dyn.memAddr, 8);
        const LoadOpFields f = unpackLoadOp(fz.tag);
        uint64_t vA, vB;
        if (f.useLit) {
            vA = loaded;
            vB = f.lit;
        } else if (f.swapped) {
            vA = readReg(fz.rc);
            vB = loaded;
        } else {
            vA = loaded;
            vB = readReg(fz.rc);
        }
        uint64_t r;
        switch (f.aluOp) {
          case Opcode::ADDQ: r = vA + vB; break;
          case Opcode::SUBQ: r = vA - vB; break;
          case Opcode::AND: r = vA & vB; break;
          case Opcode::BIC: r = vA & ~vB; break;
          case Opcode::OR: r = vA | vB; break;
          case Opcode::ORNOT: r = vA | ~vB; break;
          case Opcode::XOR: r = vA ^ vB; break;
          case Opcode::SLL: r = vA << (vB & 63); break;
          case Opcode::SRL: r = vA >> (vB & 63); break;
          case Opcode::SRA:
            r = static_cast<uint64_t>(static_cast<int64_t>(vA) >>
                                      (vB & 63));
            break;
          case Opcode::CMPEQ: r = vA == vB ? 1 : 0; break;
          case Opcode::CMPLT:
            r = static_cast<int64_t>(vA) < static_cast<int64_t>(vB) ? 1
                                                                    : 0;
            break;
          case Opcode::CMPLE:
            r = static_cast<int64_t>(vA) <= static_cast<int64_t>(vB) ? 1
                                                                     : 0;
            break;
          case Opcode::CMPULT: r = vA < vB ? 1 : 0; break;
          default: // CMPULE (fusePair admits nothing else)
            r = vA <= vB ? 1 : 0;
            break;
        }
        writeReg(fz.ra, r);
        return false;
      }
      default:
        fatal("executeFused: not a fused opcode");
    }
}

template <bool kEmit>
bool
ExecCore::execFusedPair(const DecodedInst &fz, DynInst *out)
{
    DynInst dyn;
    dyn.pc = pc_;
    dyn.disepc = 0;
    dyn.inst = fz;
    if (controller_) {
        // Natively both constituents would be presented to the engine
        // (and declined — fusionAt vetoes covered opcodes).
        controller_->engine().noteInspected(2);
    }
    const bool taken = executeFused(fz, pc_, dyn);
    // One record, two retirements: the architectural counters advance
    // exactly as the unfused pair would.
    result_.dynInsts += 2;
    result_.appInsts += 2;
    if (dyn.isMem) {
        if (dyn.isStore)
            ++result_.stores;
        else
            ++result_.loads;
    }
    ++statFusedPairs_;
    ++statFusedFamily_[fusedFamilyIndex(fz.op)];
    if (fz.op == Opcode::FLDAS && dyn.memAddr < prog_.textEnd() &&
        dyn.memAddr + 8 > prog_.textBase) {
        // Self-modifying store (conservative width: at most a quadword).
        invalidateDecodedRange(dyn.memAddr, 8);
    }
    pc_ = taken ? dyn.actualTarget : pc_ + 8;
    if constexpr (kEmit)
        *out = dyn;
    return true;
}

bool
ExecCore::step(DynInst &out)
{
    if (exited_ || trapped_)
        return false;

    if (!seqSpec_) {
        // Fetch and present to the DISE engine.
        if (!prog_.inText(pc_) &&
            !(pc_ >= prog_.textBase && pc_ < prog_.textEnd())) {
            raiseTrap(TrapCause::PcOutOfText, pc_, 0, pc_,
                      strFormat("pc left text segment: 0x%llx",
                                (unsigned long long)pc_));
            return false;
        }
        const DecodedInst &fetched = fetchDecode(pc_);
        if (fusionEnabled_) {
            // Contraction before expansion is safe: fusionAt() refuses
            // any pair touching a covered opcode, so the engine still
            // sees everything it would see natively.
            if (const DecodedInst *fz = fusionAt(pc_))
                return execFusedPair<true>(*fz, &out);
        }
        if (controller_)
            beginExpansion(fetched);
        if (!seqSpec_) {
            // Ordinary application instruction.
            return execAppInst<true>(fetched, &out);
        }
    }

    return execSeqSlot<true>(&out);
}

template <bool kEmit>
bool
ExecCore::execSeqSlot(DynInst *out)
{
    if constexpr (kEmit) {
        DynInst dyn;
        return execSeqSlotBody<true>(dyn, out);
    } else {
        // Reset only the outcome fields the body reads; the rest of the
        // scratch DynInst is trace-stream metadata nothing consumes.
        seqScratch_.isAppControl = false;
        seqScratch_.taken = false;
        seqScratch_.isMem = false;
        seqScratch_.isStore = false;
        seqScratch_.isSyscall = false;
        return execSeqSlotBody<false>(seqScratch_, nullptr);
    }
}

template <bool kEmit>
bool
ExecCore::execSeqSlotBody(DynInst &dyn, DynInst *out)
{
    // Emit the next slot of the in-flight replacement sequence.
    const uint32_t slot = seqIdx_;
    DISE_ASSERT(slot < seqLen_, "replacement sequence overrun");
    const DecodedInst &inst = seqInsts_[slot];
    // T.INSN is the trigger itself; a T.OP re-emission (e.g. the rebased
    // access in sandboxing) is the trigger in modified form — both are
    // the application's own instruction, not DISE-inserted work.
    const bool triggerSlot =
        seqSpec_->insts[slot].isTriggerInsn ||
        seqSpec_->insts[slot].opDir == OpDirective::Trigger;
    dyn.pc = seqTriggerPC_;
    dyn.disepc = slot + 1;
    if constexpr (kEmit) {
        dyn.inst = inst;
        dyn.expanded = true;
        dyn.triggerSlot = triggerSlot;
        dyn.firstOfSeq = (slot == 0);
        dyn.seqLen = seqLen_;
        if (slot == 0) {
            dyn.ptMiss = pendingExpand_.ptMiss;
            dyn.rtMiss = pendingExpand_.rtMiss;
            dyn.missPenalty = pendingExpand_.missPenalty;
            // Sequence-level prediction class (DynInst::seqPredClass).
            const DecodedInst &trigger = fetchDecode(seqTriggerPC_);
            if (isControlClass(trigger.cls)) {
                dyn.seqPredClass = trigger.cls;
            } else if (seqLen_ > 0 &&
                       isControlClass(seqInsts_[seqLen_ - 1].cls)) {
                dyn.seqPredClass = seqInsts_[seqLen_ - 1].cls;
            }
        }
    }
    ++seqIdx_;

    execute(inst, dyn);
    if (trapped_) {
        // The faulting slot does not retire; drop the in-flight
        // sequence (the trap records the precise PC:DISEPC point).
        seqSpec_ = nullptr;
        seqInsts_ = nullptr;
        seqLen_ = 0;
        seqIdx_ = 0;
        seqHasPendingOutcome_ = false;
        return false;
    }
    ++result_.dynInsts;
    if (!triggerSlot)
        ++result_.diseInsts;

    bool endSeq = false;
    Addr redirect = 0;
    bool haveRedirect = false;

    if (exited_) {
        endSeq = true;
    } else if (inst.isDiseBranch()) {
        if (dyn.taken) {
            const int64_t target = static_cast<int64_t>(slot) + 1 +
                                   inst.imm;
            if (target < 0 ||
                target > static_cast<int64_t>(seqLen_)) {
                raiseTrap(TrapCause::DiseBranchOutOfRange,
                          seqTriggerPC_, dyn.disepc,
                          static_cast<uint64_t>(target),
                          strFormat("DISE branch target %lld outside "
                                    "sequence of length %u",
                                    (long long)target, seqLen_));
                seqSpec_ = nullptr;
                seqInsts_ = nullptr;
                seqLen_ = 0;
                seqIdx_ = 0;
                seqHasPendingOutcome_ = false;
                return false;
            }
            if constexpr (kEmit)
                dyn.diseTarget = static_cast<uint32_t>(target);
            seqIdx_ = static_cast<uint32_t>(target);
            if (seqIdx_ == seqLen_)
                endSeq = true;
        }
    } else if (dyn.isAppControl) {
        if (triggerSlot) {
            // Trigger branch: instructions after it ride its predicted
            // (here: actual) path; apply the outcome at sequence end.
            seqHasPendingOutcome_ = true;
            seqPendingTaken_ = dyn.taken;
            seqPendingTarget_ = dyn.actualTarget;
        } else if (dyn.taken) {
            // Non-trigger branch: post-branch slots belong to the
            // non-taken path, so a taken branch discards them.
            endSeq = true;
            haveRedirect = true;
            redirect = dyn.actualTarget;
        }
    }

    if (!endSeq && seqIdx_ >= seqLen_)
        endSeq = true;

    if (endSeq) {
        if constexpr (kEmit)
            dyn.lastOfSeq = true;
        if (!exited_) {
            if (haveRedirect) {
                pc_ = redirect;
            } else if (seqHasPendingOutcome_ && seqPendingTaken_) {
                pc_ = seqPendingTarget_;
            } else {
                pc_ = seqTriggerPC_ + 4;
            }
        }
        seqSpec_ = nullptr;
        seqInsts_ = nullptr;
        seqLen_ = 0;
        seqIdx_ = 0;
        seqHasPendingOutcome_ = false;
    }

    if constexpr (kEmit)
        *out = dyn;
    return true;
}

std::pair<Addr, uint32_t>
ExecCore::interruptPoint() const
{
    if (seqSpec_)
        return {seqTriggerPC_, seqIdx_ + 1};
    return {pc_, 0};
}

void
ExecCore::copyArchStateFrom(const ExecCore &other)
{
    regs_ = other.regs_;
    memory_ = other.memory_;
    brk_ = other.brk_;
    // The adopted memory image may differ from what was pre-decoded.
    invalidateDecodeCache();
}

void
ExecCore::pinSuspendedSeq()
{
    // A sequence suspended across an API return must not keep pointing
    // into engine-owned storage: the caller may install a new
    // production set or flush tables before resuming, freeing the
    // expansion-cache span and the ProductionSet that owns the spec.
    // Copy both into core-owned backing and re-point. Idempotent, so a
    // run that suspends repeatedly re-pins only once.
    if (seqSpec_ == nullptr || seqSpec_ == &seqPinnedSpec_)
        return;
    seqPinnedInsts_.assign(seqInsts_, seqInsts_ + seqLen_);
    seqPinnedSpec_ = *seqSpec_;
    seqInsts_ = seqPinnedInsts_.data();
    seqSpec_ = &seqPinnedSpec_;
}

void
ExecCore::advanceToAppInst(uint64_t target)
{
    // A fused boundary retires two application instructions at once,
    // which breaks the exactly-N contract below; the service layer
    // rejects fusion combined with every advance-based feature.
    DISE_ASSERT(!fusionEnabled_,
                "advanceToAppInst requires at most one application "
                "instruction per retirement boundary; fusion retires "
                "pairs");
    // Chunked advance: each pass budgets dynInsts so that appInsts
    // cannot overshoot target (every dynamic instruction advances
    // appInsts by at most one), then re-budgets. Unlike run(), a
    // budget expiry here is not a Hang — the caller is positioning the
    // core, not classifying a run. A tripped cancel flag abandons the
    // advance wherever it stands (the caller observes the flag).
    while (!exited_ && !trapped_ && result_.appInsts < target &&
           !cancelRequested()) {
        const uint64_t budget =
            result_.dynInsts + (target - result_.appInsts);
        if (traceEnabled_) {
            runTranslated(budget);
        } else {
            DynInst dyn;
            while (result_.dynInsts < budget && step(dyn)) {
                if ((result_.dynInsts & 0x3ff) == 0 && cancelRequested())
                    break;
            }
        }
    }
    // Drain any in-flight replacement sequence: the target application
    // instruction may have expanded, and its effects are complete only
    // when the sequence retires. A DISE-branch loop can spin here
    // indefinitely, so the cancel flag is honored too.
    while (seqSpec_ && !exited_ && !trapped_ && !cancelRequested())
        execSeqSlot<false>(nullptr);
    pinSuspendedSeq();
}

void
ExecCore::saveSnapshot(SimSnapshot &out) const
{
    // A terminated core is snapshottable regardless: any in-flight
    // sequence is dead control state a restore would discard anyway.
    DISE_ASSERT(seqSpec_ == nullptr || exited_ || trapped_,
                "saveSnapshot requires an application-instruction "
                "boundary (no in-flight replacement sequence)");
    out.regs = regs_;
    out.memory = memory_; // COW fork: O(pages) pointer copies
    out.pc = pc_;
    out.brk = brk_;
    out.exited = exited_;
    out.trapped = trapped_;
    out.result = result_;
    out.appInsts = result_.appInsts;
    if (controller_)
        out.engine = std::make_unique<DiseEngine>(controller_->engine());
    else
        out.engine.reset();
}

void
ExecCore::restoreSnapshot(const SimSnapshot &snap)
{
    DISE_ASSERT(bool(controller_) == bool(snap.engine),
                "snapshot controller shape does not match this core");
    regs_ = snap.regs;
    memory_ = snap.memory; // COW fork back; the snapshot stays frozen
    pc_ = snap.pc;
    brk_ = snap.brk;
    exited_ = snap.exited;
    trapped_ = snap.trapped;
    result_ = snap.result;
    // Snapshots are taken at application boundaries; clear any control
    // state this core had in flight.
    seqSpec_ = nullptr;
    seqInsts_ = nullptr;
    seqLen_ = 0;
    seqIdx_ = 0;
    seqHasPendingOutcome_ = false;
    if (controller_)
        controller_->restoreEngine(*snap.engine);
    // The restored image may differ from what was pre-decoded or
    // translated (and the engine generation may have moved backwards).
    invalidateDecodeCache();
}

void
ExecCore::resumeAt(Addr pc, uint32_t disepc)
{
    // Discard any in-flight control state; the caller supplies the
    // precise point.
    seqSpec_ = nullptr;
    seqInsts_ = nullptr;
    seqLen_ = 0;
    seqIdx_ = 0;
    seqHasPendingOutcome_ = false;
    pc_ = pc;
    if (disepc == 0)
        return;

    DISE_ASSERT(controller_ != nullptr,
                "resumeAt with a DISEPC requires a DISE controller");
    // Fetch ignores the DISEPC; the DISE engine recognizes it and
    // expands the replacement sequence, skipping the first DISEPC-1
    // instructions (which already retired before the interrupt).
    const DecodedInst &fetched = fetchDecode(pc);
    const ExpandResult r = controller_->engine().expand(fetched, pc);
    if (!r.expanded) {
        fatal(strFormat("resumeAt: instruction at 0x%llx no longer "
                        "expands (production set changed?)",
                        (unsigned long long)pc));
    }
    DISE_ASSERT(disepc - 1 < r.numInsts,
                "resume DISEPC outside the replacement sequence");
    seqInsts_ = r.insts;
    seqLen_ = r.numInsts;
    seqSpec_ = r.seq;
    seqTriggerPC_ = pc;
    seqIdx_ = disepc - 1;
    pendingExpand_ = r;
    pendingExpand_.missPenalty = 0; // already charged before the trap
}

std::shared_ptr<const TransBlock>
ExecCore::translateBlock(Addr entry)
{
    auto block = std::make_shared<TransBlock>();
    block->entryPC = entry;
    block->engineGen =
        controller_ ? controller_->engine().generation() : 0;

    Addr pc = entry;
    while (block->ops.size() < kMaxBlockLen && prog_.inText(pc)) {
        if (fusionEnabled_) {
            // Same per-PC decision step() takes, baked into one slot
            // covering two words (see the numInsts accounting below).
            if (const DecodedInst *fz = fusionAt(pc)) {
                TransOp fop;
                fop.op = fz->op;
                fop.ra = fz->ra;
                fop.rb = fz->rb;
                fop.rc = fz->rc;
                fop.useLit = fz->useLit;
                fop.imm = fz->imm;
                fop.inst = *fz;
                bool fusedTerm = false;
                switch (fz->op) {
                  case Opcode::FCMPBR:
                    fop.handler = OpHandler::FCmpBr;
                    fop.target = fz->branchTarget(pc);
                    fusedTerm = true;
                    break;
                  case Opcode::FLDAC:
                    fop.handler = OpHandler::FLdaC;
                    break;
                  case Opcode::FSHADD:
                    fop.handler = OpHandler::FShAdd;
                    break;
                  case Opcode::FLDAL:
                    fop.handler = OpHandler::FLdaL;
                    break;
                  case Opcode::FLDAS: {
                    fop.handler = OpHandler::FLdaS;
                    const auto st = static_cast<Opcode>(fz->tag);
                    fop.size = st == Opcode::STB
                                   ? 1
                                   : (st == Opcode::STL ? 4 : 8);
                    break;
                  }
                  default: // FLDOP
                    fop.handler = OpHandler::FLdOp;
                    break;
                }
                block->ops.push_back(fop);
                pc += 8;
                if (fusedTerm)
                    break;
                continue;
            }
        }
        const DecodedInst &d = fetchDecode(pc);

        TransOp op;
        op.op = d.op;
        op.ra = d.ra;
        op.rb = d.rb;
        op.rc = d.rc;
        op.useLit = d.useLit;
        op.imm = d.imm;
        op.inst = d;

        if (controller_ && controller_->engine().opcodeCovered(d.op)) {
            // The engine may expand this instruction; decide at run
            // time. A control trigger may also redirect, so it ends the
            // static block either way.
            op.handler = OpHandler::Engine;
            block->ops.push_back(op);
            pc += 4;
            if (d.isControl())
                break;
            continue;
        }

        const OpHandler h = baseHandler(d.op, op.size);
        if (h == OpHandler::NUM || h == OpHandler::DiseCond ||
            h == OpHandler::DiseBr) {
            // Syscalls, codewords, DISE branches, reserved/invalid
            // encodings: end the block; the dispatcher executes them
            // through step(), which models their traps and side
            // effects.
            break;
        }
        op.handler = h;
        bool terminator = false;
        if (h == OpHandler::CondBranch || h == OpHandler::DirBranch) {
            op.target = d.branchTarget(pc);
            terminator = true;
        } else if (h == OpHandler::Jump) {
            terminator = true;
        }
        block->ops.push_back(op);
        pc += 4;
        if (terminator)
            break;
    }
    // Words covered, not slots: every translated slot advanced pc by
    // its own width (4, or 8 for a fused pair), so coveredEnd() keeps
    // seeing the fused second words for SMC overlap checks.
    block->numInsts = static_cast<uint32_t>((pc - entry) / 4);
    if (!block->ops.empty()) {
        // Close the slot array with the End sentinel (the fall-through
        // exit) so the interpreter needs no bounds check.
        TransOp end;
        end.handler = OpHandler::End;
        block->ops.push_back(end);
    }
    return block;
}

std::shared_ptr<const TransBlock>
ExecCore::lookupBlock(Addr pc)
{
    const uint64_t gen =
        controller_ ? controller_->engine().generation() : 0;
    auto it = traces_.find(pc);
    if (it == traces_.end()) {
        if (traces_.size() >= traceBlockCap_) {
            // Cache pressure: evict the whole map (rare — the cap is
            // far above any real text footprint) rather than maintain
            // an LRU on the hot path. The epoch bump orphans every
            // dispatch entry and chain edge into the evicted blocks;
            // the graveyard keeps them alive through any chain
            // currently on the stack (this path runs mid-chain via
            // chainTarget).
            ++traceEpoch_;
            ++statTraceEvictions_;
            for (auto &kv : traces_) {
                if (kv.second)
                    retired_.push_back(std::move(kv.second));
            }
            traces_.clear();
        }
        it = traces_.emplace(pc, nullptr).first;
    }
    if (!it->second || it->second->engineGen != gen) {
        if (it->second) {
            // Generation-stale block: park it rather than destroy it.
            // Its stale stamp already keeps every edge and dispatch
            // entry from re-entering it, but the interpreter may still
            // be executing it right now (a mid-chain engine-generation
            // bump), and pre-chaining code destroyed it here — the
            // DispatchEntry::block dangle this PR's bugfix sweep
            // closes.
            retired_.push_back(std::move(it->second));
        }
        it->second = translateBlock(pc);
        ++statBlocksTranslated_;
    }
    return it->second;
}

const TransBlock *
ExecCore::chainTarget(Addr pc)
{
    if ((pc & 3) != 0 || pc < prog_.textBase || pc >= prog_.textEnd())
        return nullptr; // out-of-text successors run through step()
    const TransBlock *b = lookupBlock(pc).get();
    return b->numInsts == 0 ? nullptr : b;
}

namespace {

/**
 * Lower a memoized replacement sequence into SeqOps. Leaves
 * @c st.usable false (fast path declines, generic path runs) when any
 * slot is outside the repertoire: syscalls, codewords, invalid
 * encodings.
 */
void
translateSeq(const ExpandResult &r, SeqTrans &st, uint64_t gen,
             OpClass triggerCls)
{
    st.insts = r.insts;
    st.numInsts = r.numInsts;
    st.gen = gen;
    st.usable = false;
    st.ops.clear();
    st.tmpl.clear();
    if (r.seq == nullptr || r.seq->insts.size() != r.numInsts)
        return;
    st.ops.reserve(r.numInsts + 1);
    for (uint32_t s = 0; s < r.numInsts; ++s) {
        const DecodedInst &d = r.insts[s];
        SeqOp op;
        op.op = d.op;
        op.ra = d.ra;
        op.rb = d.rb;
        op.rc = d.rc;
        op.useLit = d.useLit;
        op.imm = d.imm;
        // T.INSN / T.OP slots retire as the application's own
        // instruction (see execSeqSlotBody).
        op.trigger = r.seq->insts[s].isTriggerInsn ||
                     r.seq->insts[s].opDir == OpDirective::Trigger;
        op.handler = baseHandler(d.op, op.size);
        if (op.handler == OpHandler::NUM) {
            st.ops.clear();
            return;
        }
        if (op.handler == OpHandler::DiseCond ||
            op.handler == OpHandler::DiseBr) {
            const int64_t target =
                static_cast<int64_t>(s) + 1 + d.imm;
            op.diseValid =
                target >= 0 && target <= static_cast<int64_t>(r.numInsts);
            op.diseTarget =
                op.diseValid ? static_cast<uint32_t>(target) : 0;
        }
        st.ops.push_back(op);
    }
    // End sentinel: running off the sequence (including a DISE branch
    // targeting slot == length) lands here and completes it.
    SeqOp end;
    end.handler = OpHandler::End;
    st.ops.push_back(end);
    // Trace-record templates: everything static for the sequence is
    // stamped once here; the emitting interpreter copies a template and
    // fills in only the per-execution fields (see SEQ_EMIT_BASE).
    st.tmpl.resize(r.numInsts);
    for (uint32_t s = 0; s < r.numInsts; ++s) {
        DynInst &d = st.tmpl[s];
        d.disepc = s + 1;
        d.inst = r.insts[s];
        d.expanded = true;
        d.triggerSlot = st.ops[s].trigger;
        d.firstOfSeq = s == 0;
        d.seqLen = r.numInsts;
    }
    // Sequence-level prediction class (see DynInst::seqPredClass): a
    // translation-time constant of (trigger, sequence), so the emitting
    // interpreter never recomputes it. execSeqSlotBody derives the
    // identical value per visit on the generic path.
    OpClass predCls = OpClass::Nop;
    if (isControlClass(triggerCls))
        predCls = triggerCls;
    else if (r.numInsts > 0 && isControlClass(r.insts[r.numInsts - 1].cls))
        predCls = r.insts[r.numInsts - 1].cls;
    if (r.numInsts > 0)
        st.tmpl[0].seqPredClass = predCls;
    st.usable = true;
}

} // namespace

const SeqTrans *
ExecCore::seqTransFor(const TransOp &t)
{
    const ExpandResult &r = pendingExpand_;
    if (!r.memoized)
        return nullptr; // span contents may differ call to call
    SeqTrans &st = t.seqCache;
    const uint64_t gen = controller_->engine().generation();
    if (st.insts != r.insts || st.numInsts != r.numInsts ||
        st.gen != gen)
        translateSeq(r, st, gen, t.inst.cls);
    return st.usable ? &st : nullptr;
}

/*
 * Dispatch scaffolding for the two translated interpreters (runSeqFast
 * and runChain). Under GCC/Clang every slot ends in one indirect jump
 * through a per-function label table ("direct threading"); building
 * with -DDISE_NO_COMPUTED_GOTO — or another compiler — selects a
 * portable switch driven through a dispatch label instead. CI builds
 * the switch variant once per run to keep it compiled and tested.
 *
 * Shape rules both interpreters follow:
 *  - every handler body is a brace block ending in a goto (dispatch,
 *    a trampoline label, or an exit), so the two dispatch modes share
 *    the handler text verbatim;
 *  - architectural counters are accumulated in locals and written back
 *    at every exit (and around any call that touches result_ itself),
 *    keeping the member read-modify-writes off the per-slot path;
 *  - slot arrays end in an OpHandler::End sentinel, so the inner loop
 *    has no bounds check.
 */
#if defined(__GNUC__) && !defined(DISE_NO_COMPUTED_GOTO)
#define DISE_THREADED_DISPATCH 1
#define DISE_CASE(name) lbl_##name:
#else
#define DISE_THREADED_DISPATCH 0
#define DISE_CASE(name) case OpHandler::name:
#endif

template <bool kEmit>
void
ExecCore::runSeqFast(const SeqTrans &st, uint64_t maxInsts)
{
    const Addr tpc = seqTriggerPC_;
    const SeqOp *const ops = st.ops.data();
    const uint32_t len = st.numInsts;
    uint32_t j = 0;
    // Deferred trigger-branch outcome (seqHasPendingOutcome_ et al. in
    // the generic path), applied when the sequence runs off its end.
    bool pendingHas = false;
    bool pendingTaken = false;
    Addr pendingTarget = 0;
    uint64_t dyn = result_.dynInsts;
    uint64_t dise = result_.diseInsts;
    uint64_t loads = result_.loads;
    uint64_t stores = result_.stores;
    // Emission cursor (kEmit only); runSeqFast always enters at slot 0,
    // so seqBase marks where this sequence's records start.
    [[maybe_unused]] DynInst *eout = emit_;
    [[maybe_unused]] DynInst *const seqBase = eout;
    // Pre-built per-slot records (see translateSeq): SEQ_EMIT_BASE
    // copies one — slot 0's template already carries the sequence-level
    // prediction class — and stamps only the per-execution fields.
    [[maybe_unused]] const DynInst *const tmpl = st.tmpl.data();

#define SEQ_FLUSH()                                                         \
    do {                                                                    \
        result_.dynInsts = dyn;                                             \
        result_.diseInsts = dise;                                           \
        result_.loads = loads;                                              \
        result_.stores = stores;                                            \
        if constexpr (kEmit)                                                \
            emit_ = eout;                                                   \
    } while (0)
    /* The step()-identical trace record for the retiring slot @p t
     * (kEmit call sites only); outcome extras are the caller's. */
#define SEQ_EMIT_BASE(t)                                                    \
    do {                                                                    \
        *eout = tmpl[j];                                                    \
        eout->pc = tpc;                                                     \
        if (j == 0) {                                                       \
            eout->ptMiss = pendingExpand_.ptMiss;                           \
            eout->rtMiss = pendingExpand_.rtMiss;                           \
            eout->missPenalty = pendingExpand_.missPenalty;                 \
        }                                                                   \
    } while (0)
#define SEQ_EMIT_PLAIN(t)                                                   \
    do {                                                                    \
        if constexpr (kEmit) {                                              \
            SEQ_EMIT_BASE(t);                                               \
            ++eout;                                                         \
        }                                                                   \
    } while (0)
    /* Budget/deadline prologue of every executing slot. The End
     * sentinel skips it: running off the end completes the sequence
     * even with the budget exactly exhausted, matching the generic
     * path's check order (end-of-sequence tested before the budget). */
#define SEQ_CHECK()                                                         \
    do {                                                                    \
        if (dyn >= maxInsts || cancelPollDue(dyn))                          \
            goto suspend;                                                   \
    } while (0)
#define SEQ_RETIRE(isTrigger)                                               \
    do {                                                                    \
        ++dyn;                                                              \
        dise += !(isTrigger);                                               \
    } while (0)
#if DISE_THREADED_DISPATCH
#define SEQ_DISPATCH() goto *kTab[static_cast<size_t>(ops[j].handler)]
#else
#define SEQ_DISPATCH() goto dispatch
#endif
#define SEQ_BINOP(name, expr)                                               \
    DISE_CASE(name)                                                         \
    {                                                                       \
        SEQ_CHECK();                                                        \
        const SeqOp &t = ops[j];                                            \
        const uint64_t vA = readReg(t.ra);                                  \
        const uint64_t vB = t.useLit ? static_cast<uint64_t>(t.imm)         \
                                     : readReg(t.rb);                       \
        writeReg(t.rc, (expr));                                             \
        SEQ_RETIRE(t.trigger);                                              \
        SEQ_EMIT_PLAIN(t);                                                  \
        ++j;                                                                \
        SEQ_DISPATCH();                                                     \
    }
#define SEQ_CMOV(name, cond)                                                \
    DISE_CASE(name)                                                         \
    {                                                                       \
        SEQ_CHECK();                                                        \
        const SeqOp &t = ops[j];                                            \
        const uint64_t vA = readReg(t.ra);                                  \
        if (cond)                                                           \
            writeReg(t.rc, t.useLit ? static_cast<uint64_t>(t.imm)          \
                                    : readReg(t.rb));                       \
        SEQ_RETIRE(t.trigger);                                              \
        SEQ_EMIT_PLAIN(t);                                                  \
        ++j;                                                                \
        SEQ_DISPATCH();                                                     \
    }
#define SEQ_LOAD(name, readExpr)                                            \
    DISE_CASE(name)                                                         \
    {                                                                       \
        SEQ_CHECK();                                                        \
        const SeqOp &t = ops[j];                                            \
        const Addr addr = readReg(t.rb) + static_cast<uint64_t>(t.imm);     \
        ++loads;                                                            \
        writeReg(t.ra, (readExpr));                                         \
        SEQ_RETIRE(t.trigger);                                              \
        if constexpr (kEmit) {                                              \
            SEQ_EMIT_BASE(t);                                               \
            eout->isMem = true;                                             \
            eout->memAddr = addr;                                           \
            ++eout;                                                         \
        }                                                                   \
        ++j;                                                                \
        SEQ_DISPATCH();                                                     \
    }

#if DISE_THREADED_DISPATCH
    static void *const kTab[] = {
        &&lbl_Nop, &&lbl_Lda, &&lbl_Ldah, &&lbl_Addq, &&lbl_Subq,
        &&lbl_Mulq, &&lbl_And, &&lbl_Bic, &&lbl_Or, &&lbl_Ornot,
        &&lbl_Xor, &&lbl_Sll, &&lbl_Srl, &&lbl_Sra, &&lbl_Cmpeq,
        &&lbl_Cmplt, &&lbl_Cmple, &&lbl_Cmpult, &&lbl_Cmpule,
        &&lbl_Cmoveq, &&lbl_Cmovne, &&lbl_Ldbu, &&lbl_Ldl, &&lbl_Ldq,
        &&lbl_Store, &&lbl_CondBranch, &&lbl_DirBranch, &&lbl_Jump,
        &&lbl_bad /* Engine */, &&lbl_DiseCond, &&lbl_DiseBr,
        // Fused ops never appear in replacement sequences (fusion is
        // not a ProductionSet; translateSeq cannot produce them).
        &&lbl_bad /* FCmpBr */, &&lbl_bad /* FLdaC */,
        &&lbl_bad /* FShAdd */, &&lbl_bad /* FLdaL */,
        &&lbl_bad /* FLdaS */, &&lbl_bad /* FLdOp */,
        &&lbl_End,
    };
    static_assert(sizeof(kTab) / sizeof(kTab[0]) ==
                      static_cast<size_t>(OpHandler::NUM),
                  "sequence handler table out of sync with OpHandler");
    SEQ_DISPATCH();
#else
dispatch:
    switch (ops[j].handler) {
#endif

    DISE_CASE(Nop)
    {
        SEQ_CHECK();
        SEQ_RETIRE(ops[j].trigger);
        SEQ_EMIT_PLAIN(ops[j]);
        ++j;
        SEQ_DISPATCH();
    }
    DISE_CASE(Lda)
    {
        SEQ_CHECK();
        const SeqOp &t = ops[j];
        writeReg(t.ra, readReg(t.rb) + static_cast<uint64_t>(t.imm));
        SEQ_RETIRE(t.trigger);
        SEQ_EMIT_PLAIN(t);
        ++j;
        SEQ_DISPATCH();
    }
    DISE_CASE(Ldah)
    {
        SEQ_CHECK();
        const SeqOp &t = ops[j];
        writeReg(t.ra,
                 readReg(t.rb) + (static_cast<uint64_t>(t.imm) << 16));
        SEQ_RETIRE(t.trigger);
        SEQ_EMIT_PLAIN(t);
        ++j;
        SEQ_DISPATCH();
    }
    SEQ_BINOP(Addq, vA + vB)
    SEQ_BINOP(Subq, vA - vB)
    SEQ_BINOP(Mulq, vA * vB)
    SEQ_BINOP(And, vA & vB)
    SEQ_BINOP(Bic, vA & ~vB)
    SEQ_BINOP(Or, vA | vB)
    SEQ_BINOP(Ornot, vA | ~vB)
    SEQ_BINOP(Xor, vA ^ vB)
    SEQ_BINOP(Sll, vA << (vB & 63))
    SEQ_BINOP(Srl, vA >> (vB & 63))
    SEQ_BINOP(Sra,
              static_cast<uint64_t>(static_cast<int64_t>(vA) >> (vB & 63)))
    SEQ_BINOP(Cmpeq, vA == vB ? 1 : 0)
    SEQ_BINOP(Cmplt,
              static_cast<int64_t>(vA) < static_cast<int64_t>(vB) ? 1 : 0)
    SEQ_BINOP(Cmple,
              static_cast<int64_t>(vA) <= static_cast<int64_t>(vB) ? 1 : 0)
    SEQ_BINOP(Cmpult, vA < vB ? 1 : 0)
    SEQ_BINOP(Cmpule, vA <= vB ? 1 : 0)
    SEQ_CMOV(Cmoveq, vA == 0)
    SEQ_CMOV(Cmovne, vA != 0)
    SEQ_LOAD(Ldbu, memory_.read(addr, 1))
    SEQ_LOAD(Ldl,
             static_cast<uint64_t>(signExtend(memory_.read(addr, 4), 32)))
    SEQ_LOAD(Ldq, memory_.read(addr, 8))
    DISE_CASE(Store)
    {
        SEQ_CHECK();
        const SeqOp &t = ops[j];
        const Addr addr = readReg(t.rb) + static_cast<uint64_t>(t.imm);
        ++stores;
        memory_.write(addr, readReg(t.ra), t.size);
        // Self-modifying store: the sequence itself lives in the
        // engine's tables and keeps running; the enclosing block's
        // staleness is caught by the Engine slot's epoch check.
        if (addr < prog_.textEnd() && addr + t.size > prog_.textBase)
            invalidateDecodedRange(addr, t.size);
        SEQ_RETIRE(t.trigger);
        if constexpr (kEmit) {
            SEQ_EMIT_BASE(t);
            eout->isMem = true;
            eout->isStore = true;
            eout->memAddr = addr;
            ++eout;
        }
        ++j;
        SEQ_DISPATCH();
    }
    DISE_CASE(CondBranch)
    {
        SEQ_CHECK();
        const SeqOp &t = ops[j];
        const bool taken = condTaken(t.op, readReg(t.ra));
        const Addr target = tpc + 4 + static_cast<uint64_t>(t.imm) * 4;
        SEQ_RETIRE(t.trigger);
        if constexpr (kEmit) {
            // actualTarget is stamped even when not taken (execute()
            // sets it unconditionally for conditional branches).
            SEQ_EMIT_BASE(t);
            eout->isAppControl = true;
            eout->taken = taken;
            eout->actualTarget = target;
            ++eout;
        }
        if (taken && errorAddr_ != 0 && target == errorAddr_)
            ++result_.acfDetections;
        if (t.trigger) {
            // Trigger branch: later slots ride its path; apply the
            // outcome at sequence end.
            pendingHas = true;
            pendingTaken = taken;
            pendingTarget = target;
        } else if (taken) {
            // Non-trigger branch: post-branch slots belong to the
            // non-taken path, so a taken branch discards them.
            if constexpr (kEmit)
                eout[-1].lastOfSeq = true;
            pc_ = target;
            goto seq_done;
        }
        ++j;
        SEQ_DISPATCH();
    }
    DISE_CASE(DirBranch)
    DISE_CASE(Jump)
    {
        SEQ_CHECK();
        const SeqOp &t = ops[j];
        // Jump reads the target before the link write (execute()
        // order; the two may name the same register).
        const Addr target =
            t.handler == OpHandler::Jump
                ? readReg(t.rb) & ~Addr(3)
                : tpc + 4 + static_cast<uint64_t>(t.imm) * 4;
        writeReg(t.ra, tpc + 4);
        SEQ_RETIRE(t.trigger);
        if constexpr (kEmit) {
            SEQ_EMIT_BASE(t);
            eout->isAppControl = true;
            eout->taken = true;
            eout->actualTarget = target;
            ++eout;
        }
        if (errorAddr_ != 0 && target == errorAddr_)
            ++result_.acfDetections;
        if (t.trigger) {
            pendingHas = true;
            pendingTaken = true;
            pendingTarget = target;
            ++j;
            SEQ_DISPATCH();
        }
        if constexpr (kEmit)
            eout[-1].lastOfSeq = true;
        pc_ = target;
        goto seq_done;
    }
    DISE_CASE(DiseCond)
    DISE_CASE(DiseBr)
    {
        SEQ_CHECK();
        const SeqOp &t = ops[j];
        const bool taken = t.handler == OpHandler::DiseBr ||
                           condTaken(t.op, readReg(t.ra));
        SEQ_RETIRE(t.trigger);
        if (!taken) {
            SEQ_EMIT_PLAIN(t);
            ++j;
            SEQ_DISPATCH();
        }
        if (!t.diseValid) {
            // The slot retires but emits nothing: step() counts the
            // retirement, then returns false without writing a record
            // (execSeqSlotBody traps before its *out store).
            const int64_t target = static_cast<int64_t>(j) + 1 + t.imm;
            raiseTrap(TrapCause::DiseBranchOutOfRange, tpc, j + 1,
                      static_cast<uint64_t>(target),
                      strFormat("DISE branch target %lld outside "
                                "sequence of length %u",
                                (long long)target, len));
            goto seq_done; // the slot retired; pc_ is the trap state
        }
        if constexpr (kEmit) {
            SEQ_EMIT_BASE(t);
            eout->taken = true;
            eout->diseTarget = t.diseTarget;
            ++eout;
        }
        j = t.diseTarget; // target == len lands on the End sentinel
        SEQ_DISPATCH();
    }
    DISE_CASE(End)
    {
        // Running off the end completes the sequence: the generic path
        // marks the final retiring slot lastOfSeq in the same pass.
        if constexpr (kEmit) {
            if (eout != seqBase)
                eout[-1].lastOfSeq = true;
        }
        pc_ = (pendingHas && pendingTaken) ? pendingTarget : tpc + 4;
        goto seq_done;
    }

#if DISE_THREADED_DISPATCH
lbl_bad:
    fatal("runSeqFast: handler outside the sequence repertoire");
#else
      default:
        fatal("runSeqFast: handler outside the sequence repertoire");
    }
#endif

suspend:
    // Budget or deadline expired mid-sequence: write the cursor and
    // the deferred outcome back so the generic path can resume.
    seqIdx_ = j;
    seqHasPendingOutcome_ = pendingHas;
    seqPendingTaken_ = pendingTaken;
    seqPendingTarget_ = pendingTarget;
    SEQ_FLUSH();
    return;

seq_done:
    seqSpec_ = nullptr;
    seqInsts_ = nullptr;
    seqLen_ = 0;
    seqIdx_ = 0;
    seqHasPendingOutcome_ = false;
    SEQ_FLUSH();

#undef SEQ_FLUSH
#undef SEQ_EMIT_BASE
#undef SEQ_EMIT_PLAIN
#undef SEQ_CHECK
#undef SEQ_RETIRE
#undef SEQ_DISPATCH
#undef SEQ_BINOP
#undef SEQ_CMOV
#undef SEQ_LOAD
}

template <bool kEmit>
void
ExecCore::runChain(const TransBlock *block, uint64_t maxInsts)
{
    const bool haveEngine = controller_ != nullptr;
    const TransBlock *blk = block;
    const TransOp *t = blk->ops.data();
    Addr pc = blk->entryPC;
    uint64_t epoch0 = traceEpoch_;
    // Successor hand-off registers for the `chain` trampoline.
    Addr nextPC = 0;
    ChainEdge *edge = nullptr;
    uint64_t dyn = result_.dynInsts;
    uint64_t app = result_.appInsts;
    uint64_t loads = result_.loads;
    uint64_t stores = result_.stores;
    // Uncovered-opcode slots bypass expand(); their inspections are
    // accounted in bulk at chain exit (see DiseEngine::noteInspected).
    uint64_t inspected = 0;
    uint64_t chainFollows = 0;
    // Emission cursor (kEmit only), synced with emit_ at every flush
    // point so the Engine handler's callees see a current cursor.
    [[maybe_unused]] DynInst *eout = emit_;

#define CHAIN_FLUSH()                                                       \
    do {                                                                    \
        result_.dynInsts = dyn;                                             \
        result_.appInsts = app;                                             \
        result_.loads = loads;                                              \
        result_.stores = stores;                                            \
        if constexpr (kEmit)                                                \
            emit_ = eout;                                                   \
    } while (0)
#define CHAIN_RELOAD()                                                      \
    do {                                                                    \
        dyn = result_.dynInsts;                                             \
        app = result_.appInsts;                                             \
        loads = result_.loads;                                              \
        stores = result_.stores;                                            \
        if constexpr (kEmit)                                                \
            eout = emit_;                                                   \
    } while (0)
    /* The step()-identical trace record for the retiring application
     * instruction at @p pc (kEmit call sites only); outcome extras are
     * the caller's. */
#define CHAIN_EMIT()                                                        \
    do {                                                                    \
        if constexpr (kEmit) {                                              \
            *eout = DynInst{};                                              \
            eout->pc = pc;                                                  \
            eout->inst = t->inst;                                           \
            ++eout;                                                         \
        }                                                                   \
    } while (0)
#if DISE_THREADED_DISPATCH
#define CHAIN_DISPATCH()                                                    \
    do {                                                                    \
        if (dyn >= maxInsts)                                                \
            goto budget_stop;                                               \
        goto *kTab[static_cast<size_t>(t->handler)];                        \
    } while (0)
#else
#define CHAIN_DISPATCH()                                                    \
    do {                                                                    \
        if (dyn >= maxInsts)                                                \
            goto budget_stop;                                               \
        goto dispatch;                                                      \
    } while (0)
#endif
#define CHAIN_RETIRE()                                                      \
    do {                                                                    \
        ++dyn;                                                              \
        ++app;                                                              \
        inspected += haveEngine;                                            \
    } while (0)
    /* A fused slot retires both constituents (and natively the engine
     * would have inspected both). */
#define CHAIN_RETIRE_FUSED()                                                \
    do {                                                                    \
        dyn += 2;                                                           \
        app += 2;                                                           \
        inspected += 2 * haveEngine;                                        \
        ++statFusedPairs_;                                                  \
        ++statFusedFamily_[fusedFamilyIndex(t->op)];                        \
    } while (0)
#define CHAIN_BINOP(name, expr)                                             \
    DISE_CASE(name)                                                         \
    {                                                                       \
        const uint64_t vA = readReg(t->ra);                                 \
        const uint64_t vB = t->useLit ? static_cast<uint64_t>(t->imm)       \
                                      : readReg(t->rb);                     \
        writeReg(t->rc, (expr));                                            \
        CHAIN_RETIRE();                                                     \
        CHAIN_EMIT();                                                       \
        ++t;                                                                \
        pc += 4;                                                            \
        CHAIN_DISPATCH();                                                   \
    }
#define CHAIN_CMOV(name, cond)                                              \
    DISE_CASE(name)                                                         \
    {                                                                       \
        const uint64_t vA = readReg(t->ra);                                 \
        if (cond)                                                           \
            writeReg(t->rc, t->useLit ? static_cast<uint64_t>(t->imm)       \
                                      : readReg(t->rb));                    \
        CHAIN_RETIRE();                                                     \
        CHAIN_EMIT();                                                       \
        ++t;                                                                \
        pc += 4;                                                            \
        CHAIN_DISPATCH();                                                   \
    }
#define CHAIN_LOAD(name, readExpr)                                          \
    DISE_CASE(name)                                                         \
    {                                                                       \
        const Addr addr = readReg(t->rb) + static_cast<uint64_t>(t->imm);   \
        ++loads;                                                            \
        writeReg(t->ra, (readExpr));                                        \
        CHAIN_RETIRE();                                                     \
        if constexpr (kEmit) {                                              \
            *eout = DynInst{};                                              \
            eout->pc = pc;                                                  \
            eout->inst = t->inst;                                           \
            eout->isMem = true;                                             \
            eout->memAddr = addr;                                           \
            ++eout;                                                         \
        }                                                                   \
        ++t;                                                                \
        pc += 4;                                                            \
        CHAIN_DISPATCH();                                                   \
    }

#if DISE_THREADED_DISPATCH
    static void *const kTab[] = {
        &&lbl_Nop, &&lbl_Lda, &&lbl_Ldah, &&lbl_Addq, &&lbl_Subq,
        &&lbl_Mulq, &&lbl_And, &&lbl_Bic, &&lbl_Or, &&lbl_Ornot,
        &&lbl_Xor, &&lbl_Sll, &&lbl_Srl, &&lbl_Sra, &&lbl_Cmpeq,
        &&lbl_Cmplt, &&lbl_Cmple, &&lbl_Cmpult, &&lbl_Cmpule,
        &&lbl_Cmoveq, &&lbl_Cmovne, &&lbl_Ldbu, &&lbl_Ldl, &&lbl_Ldq,
        &&lbl_Store, &&lbl_CondBranch, &&lbl_DirBranch, &&lbl_Jump,
        &&lbl_Engine, &&lbl_bad /* DiseCond */, &&lbl_bad /* DiseBr */,
        &&lbl_FCmpBr, &&lbl_FLdaC, &&lbl_FShAdd, &&lbl_FLdaL,
        &&lbl_FLdaS, &&lbl_FLdOp, &&lbl_End,
    };
    static_assert(sizeof(kTab) / sizeof(kTab[0]) ==
                      static_cast<size_t>(OpHandler::NUM),
                  "block handler table out of sync with OpHandler");
    CHAIN_DISPATCH();
#else
dispatch:
    switch (t->handler) {
#endif

    DISE_CASE(Nop)
    {
        CHAIN_RETIRE();
        CHAIN_EMIT();
        ++t;
        pc += 4;
        CHAIN_DISPATCH();
    }
    DISE_CASE(Lda)
    {
        writeReg(t->ra, readReg(t->rb) + static_cast<uint64_t>(t->imm));
        CHAIN_RETIRE();
        CHAIN_EMIT();
        ++t;
        pc += 4;
        CHAIN_DISPATCH();
    }
    DISE_CASE(Ldah)
    {
        writeReg(t->ra,
                 readReg(t->rb) + (static_cast<uint64_t>(t->imm) << 16));
        CHAIN_RETIRE();
        CHAIN_EMIT();
        ++t;
        pc += 4;
        CHAIN_DISPATCH();
    }
    CHAIN_BINOP(Addq, vA + vB)
    CHAIN_BINOP(Subq, vA - vB)
    CHAIN_BINOP(Mulq, vA * vB)
    CHAIN_BINOP(And, vA & vB)
    CHAIN_BINOP(Bic, vA & ~vB)
    CHAIN_BINOP(Or, vA | vB)
    CHAIN_BINOP(Ornot, vA | ~vB)
    CHAIN_BINOP(Xor, vA ^ vB)
    CHAIN_BINOP(Sll, vA << (vB & 63))
    CHAIN_BINOP(Srl, vA >> (vB & 63))
    CHAIN_BINOP(Sra,
                static_cast<uint64_t>(static_cast<int64_t>(vA) >>
                                      (vB & 63)))
    CHAIN_BINOP(Cmpeq, vA == vB ? 1 : 0)
    CHAIN_BINOP(Cmplt,
                static_cast<int64_t>(vA) < static_cast<int64_t>(vB) ? 1 : 0)
    CHAIN_BINOP(Cmple,
                static_cast<int64_t>(vA) <= static_cast<int64_t>(vB) ? 1
                                                                     : 0)
    CHAIN_BINOP(Cmpult, vA < vB ? 1 : 0)
    CHAIN_BINOP(Cmpule, vA <= vB ? 1 : 0)
    CHAIN_CMOV(Cmoveq, vA == 0)
    CHAIN_CMOV(Cmovne, vA != 0)
    CHAIN_LOAD(Ldbu, memory_.read(addr, 1))
    CHAIN_LOAD(Ldl,
               static_cast<uint64_t>(signExtend(memory_.read(addr, 4), 32)))
    CHAIN_LOAD(Ldq, memory_.read(addr, 8))
    DISE_CASE(Store)
    {
        const Addr addr = readReg(t->rb) + static_cast<uint64_t>(t->imm);
        ++stores;
        memory_.write(addr, readReg(t->ra), t->size);
        CHAIN_RETIRE();
        if constexpr (kEmit) {
            *eout = DynInst{};
            eout->pc = pc;
            eout->inst = t->inst;
            eout->isMem = true;
            eout->isStore = true;
            eout->memAddr = addr;
            ++eout;
        }
        if (addr < prog_.textEnd() && addr + t->size > prog_.textBase) {
            // Self-modifying store: drop stale decodes and traces
            // (possibly blocks of this very chain — parked on the
            // graveyard, so the cursor stays valid) and leave the fast
            // path so the rewritten code is re-translated before it
            // executes.
            invalidateDecodedRange(addr, t->size);
            pc_ = pc + 4;
            goto exit_flush;
        }
        ++t;
        pc += 4;
        CHAIN_DISPATCH();
    }
    DISE_CASE(CondBranch)
    {
        const bool taken = condTaken(t->op, readReg(t->ra));
        CHAIN_RETIRE();
        if constexpr (kEmit) {
            // actualTarget is stamped even when not taken (execute()
            // sets it unconditionally for conditional branches).
            *eout = DynInst{};
            eout->pc = pc;
            eout->inst = t->inst;
            eout->isAppControl = true;
            eout->taken = taken;
            eout->actualTarget = t->target;
            ++eout;
        }
        if (!taken) {
            ++t;
            pc += 4;
            CHAIN_DISPATCH();
        }
        if (errorAddr_ != 0 && t->target == errorAddr_)
            ++result_.acfDetections;
        nextPC = t->target;
        edge = &t->chain;
        goto chain;
    }
    DISE_CASE(DirBranch)
    {
        writeReg(t->ra, pc + 4);
        CHAIN_RETIRE();
        if constexpr (kEmit) {
            *eout = DynInst{};
            eout->pc = pc;
            eout->inst = t->inst;
            eout->isAppControl = true;
            eout->taken = true;
            eout->actualTarget = t->target;
            ++eout;
        }
        if (errorAddr_ != 0 && t->target == errorAddr_)
            ++result_.acfDetections;
        nextPC = t->target;
        edge = &t->chain;
        goto chain;
    }
    DISE_CASE(Jump)
    {
        // Target read before the link write (execute() order; the two
        // may name the same register).
        const Addr target = readReg(t->rb) & ~Addr(3);
        writeReg(t->ra, pc + 4);
        CHAIN_RETIRE();
        if constexpr (kEmit) {
            *eout = DynInst{};
            eout->pc = pc;
            eout->inst = t->inst;
            eout->isAppControl = true;
            eout->taken = true;
            eout->actualTarget = target;
            ++eout;
        }
        if (errorAddr_ != 0 && target == errorAddr_)
            ++result_.acfDetections;
        nextPC = target;
        edge = &t->chain;
        goto chain;
    }
    DISE_CASE(FCmpBr)
    {
        DynInst fdyn;
        const bool taken = executeFused(t->inst, pc, fdyn);
        CHAIN_RETIRE_FUSED();
        if constexpr (kEmit) {
            fdyn.pc = pc;
            fdyn.inst = t->inst;
            *eout = fdyn;
            ++eout;
        }
        if (!taken) {
            ++t;
            pc += 8;
            CHAIN_DISPATCH();
        }
        nextPC = t->target;
        edge = &t->chain;
        goto chain;
    }
    DISE_CASE(FLdaC)
    DISE_CASE(FShAdd)
    {
        DynInst fdyn;
        executeFused(t->inst, pc, fdyn);
        CHAIN_RETIRE_FUSED();
        if constexpr (kEmit) {
            fdyn.pc = pc;
            fdyn.inst = t->inst;
            *eout = fdyn;
            ++eout;
        }
        ++t;
        pc += 8;
        CHAIN_DISPATCH();
    }
    DISE_CASE(FLdaL)
    DISE_CASE(FLdOp)
    {
        DynInst fdyn;
        executeFused(t->inst, pc, fdyn);
        ++loads;
        CHAIN_RETIRE_FUSED();
        if constexpr (kEmit) {
            fdyn.pc = pc;
            fdyn.inst = t->inst;
            *eout = fdyn;
            ++eout;
        }
        ++t;
        pc += 8;
        CHAIN_DISPATCH();
    }
    DISE_CASE(FLdaS)
    {
        DynInst fdyn;
        executeFused(t->inst, pc, fdyn);
        ++stores;
        CHAIN_RETIRE_FUSED();
        if constexpr (kEmit) {
            fdyn.pc = pc;
            fdyn.inst = t->inst;
            *eout = fdyn;
            ++eout;
        }
        if (fdyn.memAddr < prog_.textEnd() &&
            fdyn.memAddr + 8 > prog_.textBase) {
            // Self-modifying store, same conservative width as the
            // step-path fused store: leave the fast path so the
            // rewritten code is re-translated before it executes.
            invalidateDecodedRange(fdyn.memAddr, 8);
            pc_ = pc + 8;
            goto exit_flush;
        }
        ++t;
        pc += 8;
        CHAIN_DISPATCH();
    }
    DISE_CASE(Engine)
    {
        pc_ = pc;
        CHAIN_FLUSH();
        {
            DiseEngine &eng = controller_->engine();
            ExpandResult r;
            if (!eng.expandFast(t->memo, r)) {
                // Full inspection; refresh the slot's memo from its
                // outcome so the next dynamic instance takes the
                // memoized path.
                r = eng.expand(t->inst, pc);
                eng.fillMemo(t->memo, t->inst, r);
            }
            if (!r.expanded) {
                // Pass-through (or trap: checked below via trapped_).
                if constexpr (kEmit) {
                    if (execAppInst<true>(t->inst, emit_))
                        ++emit_;
                } else {
                    execAppInst<false>(t->inst, nullptr);
                }
            } else {
                adoptExpansion(r);
                if (const SeqTrans *sq = seqTransFor(*t)) {
                    runSeqFast<kEmit>(*sq, maxInsts);
                } else {
                    while (seqSpec_ && result_.dynInsts < maxInsts &&
                           !cancelPollDue(result_.dynInsts)) {
                        if constexpr (kEmit) {
                            if (execSeqSlot<true>(emit_))
                                ++emit_;
                        } else {
                            execSeqSlot<false>(nullptr);
                        }
                    }
                }
            }
        }
        CHAIN_RELOAD();
        if (exited_ || trapped_ || seqSpec_)
            goto exit_flush; // done, or budget/deadline mid-sequence
        if (traceEpoch_ != epoch0)
            goto exit_flush; // a sequence store rewrote text (pc_ set)
        if (pc_ == pc + 4) {
            ++t;
            pc += 4;
            CHAIN_DISPATCH();
        }
        // Expansion redirect: chain straight into the successor block,
        // so a hot memoized expansion costs zero dispatcher trips.
        nextPC = pc_;
        edge = &t->chain;
        goto chain;
    }
    DISE_CASE(End)
    {
        nextPC = pc; // pc is already past the last covered slot
        edge = &blk->fallChain;
        goto chain;
    }

#if DISE_THREADED_DISPATCH
lbl_bad:
    fatal("runChain: handler outside the block repertoire");
#else
      default:
        fatal("runChain: handler outside the block repertoire");
    }
#endif

chain:
    // Block exit with a known successor PC: follow (or patch) the
    // taken/fall-through edge and keep executing without a dispatcher
    // round trip.
    if (!chainEnabled_) {
        pc_ = nextPC;
        goto exit_flush;
    }
    if (cancelPollDue(dyn)) {
        // Deadline observed at a block boundary — a precise
        // instruction boundary; run() classifies the outcome.
        pc_ = nextPC;
        goto exit_flush;
    }
    {
        const uint64_t gen =
            haveEngine ? controller_->engine().generation() : 0;
        const TransBlock *nb;
        if (edge->next != nullptr && edge->epoch == traceEpoch_ &&
            edge->gen == gen && edge->target == nextPC) {
            nb = edge->next;
        } else {
            // Patch (or re-patch) the edge. chainTarget may evict or
            // retranslate — either bumps traceEpoch_, so the stamps
            // are read only after it returns. (The engine generation
            // cannot move inside a run.)
            nb = chainTarget(nextPC);
            if (nb == nullptr) {
                pc_ = nextPC; // untranslatable successor: dispatcher
                goto exit_flush;
            }
            edge->next = nb;
            edge->epoch = traceEpoch_;
            edge->gen = gen;
            edge->target = nextPC;
        }
        blk = nb;
    }
    ++chainFollows;
    t = blk->ops.data();
    pc = nextPC;
    epoch0 = traceEpoch_;
    CHAIN_DISPATCH();

budget_stop:
    pc_ = pc;
exit_flush:
    CHAIN_FLUSH();
    statChainFollows_ += chainFollows;
    if (inspected != 0)
        controller_->engine().noteInspected(inspected);

#undef CHAIN_FLUSH
#undef CHAIN_RELOAD
#undef CHAIN_EMIT
#undef CHAIN_DISPATCH
#undef CHAIN_RETIRE
#undef CHAIN_RETIRE_FUSED
#undef CHAIN_BINOP
#undef CHAIN_CMOV
#undef CHAIN_LOAD
}

void
ExecCore::runTranslated(uint64_t maxInsts)
{
    DynInst dyn;
    while (!exited_ && !trapped_ && result_.dynInsts < maxInsts &&
           !cancelRequested()) {
        // Dispatcher top is the one point provably outside any chain
        // (no runChain frame live), so retired blocks parked by
        // invalidation/eviction can finally be freed.
        retired_.clear();
        if (seqSpec_) {
            // Resumed mid-sequence (resumeAt, or a budget expiry that
            // was later raised): drain the sequence first.
            execSeqSlot<false>(nullptr);
            continue;
        }
        if ((pc_ & 3) != 0 || pc_ < prog_.textBase ||
            pc_ >= prog_.textEnd()) {
            // Out-of-text (traps) and unaligned fetches stay on the
            // slow path.
            if (!step(dyn))
                break;
            continue;
        }
        DispatchEntry &de =
            dispatch_[(pc_ >> 2) & (kDispatchEntries - 1)];
        const uint64_t gen =
            controller_ ? controller_->engine().generation() : 0;
        if (de.pc != pc_ || de.epoch != traceEpoch_ || de.gen != gen) {
            de.block = lookupBlock(pc_);
            de.pc = pc_;
            de.epoch = traceEpoch_;
            de.gen = gen;
        }
        if (de.block->numInsts == 0) {
            // Leading untranslatable instruction (syscall, codeword,
            // ...): execute it through the full machinery.
            if (!step(dyn))
                break;
            continue;
        }
        runChain<false>(de.block.get(), maxInsts);
    }
}

size_t
ExecCore::fillTrace(DynInst *ring, size_t cap, uint64_t maxDyn)
{
    if (exited_ || trapped_ || cap == 0)
        return 0;
    // Budget in retirement units: every retired instruction emits at
    // most one record, so bounding dynInsts bounds the ring too.
    const uint64_t budget =
        std::min(maxDyn, result_.dynInsts + cap);

    if (!traceEnabled_) {
        // Reference path: step() straight into the ring, with the slow
        // loop's cancel-poll stride.
        DynInst *out = ring;
        DynInst *const end = ring + cap;
        while (out != end && result_.dynInsts < budget) {
            if (!step(*out))
                break;
            ++out;
            if ((result_.dynInsts & 0x3ff) == 0 && cancelRequested())
                break;
        }
        pinSuspendedSeq();
        return static_cast<size_t>(out - ring);
    }

    // Translated path: runTranslated's dispatcher with the emitting
    // interpreter variants. emit_ is live for the duration of the
    // call; every exit from the interpreters syncs it.
    emit_ = ring;
    DynInst *const end = ring + cap;
    while (!exited_ && !trapped_ && result_.dynInsts < budget &&
           emit_ != end && !cancelRequested()) {
        retired_.clear();
        if (seqSpec_) {
            // Resumed mid-sequence (a prior batch boundary landed
            // inside an expansion): drain it a slot at a time.
            if (execSeqSlot<true>(emit_))
                ++emit_;
            continue;
        }
        if ((pc_ & 3) != 0 || pc_ < prog_.textBase ||
            pc_ >= prog_.textEnd()) {
            if (!step(*emit_))
                break;
            ++emit_;
            continue;
        }
        DispatchEntry &de =
            dispatch_[(pc_ >> 2) & (kDispatchEntries - 1)];
        const uint64_t gen =
            controller_ ? controller_->engine().generation() : 0;
        if (de.pc != pc_ || de.epoch != traceEpoch_ || de.gen != gen) {
            de.block = lookupBlock(pc_);
            de.pc = pc_;
            de.epoch = traceEpoch_;
            de.gen = gen;
        }
        if (de.block->numInsts == 0) {
            if (!step(*emit_))
                break;
            ++emit_;
            continue;
        }
        runChain<true>(de.block.get(), budget);
    }
    pinSuspendedSeq();
    const size_t n = static_cast<size_t>(emit_ - ring);
    emit_ = nullptr;
    return n;
}

RunResult
ExecCore::run(uint64_t maxInsts)
{
    if (traceEnabled_) {
        runTranslated(maxInsts);
    } else {
        DynInst dyn;
        while (result_.dynInsts < maxInsts && step(dyn)) {
            if ((result_.dynInsts & 0x3ff) == 0 && cancelRequested())
                break;
        }
    }
    // Watchdog expiry is an architected, classifiable outcome: the
    // instruction budget ran out — or an external deadline cancelled
    // the run — with the program still live.
    if (!exited_ && !trapped_ &&
        (result_.dynInsts >= maxInsts || cancelRequested())) {
        result_.outcome = RunOutcome::Hang;
    }
    // If the budget (or a cancel) suspended us mid-replacement-sequence,
    // the in-flight sequence state points into engine-owned storage that
    // the application may invalidate (install(), flushTables()) before
    // resuming. Copy it into core-owned storage.
    pinSuspendedSeq();
    return result_;
}

} // namespace dise
