#include "src/sim/core.hpp"

#include <algorithm>

#include "src/common/bits.hpp"
#include "src/common/logging.hpp"
#include "src/isa/disasm.hpp"

namespace dise {

ExecCore::ExecCore(const Program &prog, DiseController *controller)
    : prog_(prog), controller_(controller), pc_(prog.entry)
{
    memory_.loadProgram(prog);
    regs_.fill(0);
    regs_[kSpReg] = prog.stackTop;
    brk_ = (prog.dataBase + prog.data.size() + 0xffff) & ~Addr(0xffff);
    decoded_.resize(prog.text.size());
    decodedValid_.assign(prog.text.size(), 0);
    const auto errorSym = prog.symbols.find("error");
    if (errorSym != prog.symbols.end())
        errorAddr_ = errorSym->second;
}

void
ExecCore::raiseTrap(TrapCause cause, Addr pc, uint32_t disepc,
                    uint64_t faultAddr, std::string message)
{
    trapped_ = true;
    result_.outcome = RunOutcome::Trap;
    result_.trap.cause = cause;
    result_.trap.pc = pc;
    result_.trap.disepc = disepc;
    result_.trap.faultAddr = faultAddr;
    result_.trap.message = std::move(message);
}

const DecodedInst &
ExecCore::fetchDecode(Addr pc)
{
    const Addr off = pc - prog_.textBase;
    const size_t idx = static_cast<size_t>(off >> 2);
    if ((off & 3) != 0 || idx >= decoded_.size()) {
        decodeFallback_ = dise::decode(memory_.readWord(pc));
        return decodeFallback_;
    }
    if (!decodedValid_[idx]) {
        decoded_[idx] = dise::decode(memory_.readWord(pc));
        decodedValid_[idx] = 1;
    }
    return decoded_[idx];
}

void
ExecCore::invalidateDecodeCache()
{
    decodedValid_.assign(decodedValid_.size(), 0);
}

void
ExecCore::invalidateDecodedRange(Addr addr, unsigned size)
{
    const Addr end = std::min<Addr>(addr + size, prog_.textEnd());
    Addr first = std::max(addr, prog_.textBase);
    for (Addr a = first & ~Addr(3); a < end; a += 4) {
        const size_t idx = static_cast<size_t>((a - prog_.textBase) >> 2);
        if (idx < decodedValid_.size())
            decodedValid_[idx] = 0;
    }
}

void
ExecCore::setReg(RegIndex r, uint64_t value)
{
    if (r != kZeroReg)
        regs_[r] = value;
}

DiseRegFile
ExecCore::diseRegs() const
{
    DiseRegFile file;
    for (unsigned i = 0; i < kNumDiseRegs; ++i)
        file[i] = regs_[kDiseRegBase + i];
    return file;
}

void
ExecCore::setDiseReg(unsigned i, uint64_t value)
{
    DISE_ASSERT(i < kNumDiseRegs, "bad dedicated register index");
    regs_[kDiseRegBase + i] = value;
}

void
ExecCore::doSyscall(DynInst &dyn)
{
    dyn.isSyscall = true;
    const auto code = static_cast<SyscallCode>(readReg(kRetReg));
    const uint64_t a0 = readReg(kArg0Reg);
    switch (code) {
      case SyscallCode::Exit:
        exited_ = true;
        result_.exited = true;
        result_.outcome = RunOutcome::Exit;
        result_.exitCode = static_cast<int>(a0);
        break;
      case SyscallCode::PutChar:
        result_.output += static_cast<char>(a0 & 0xff);
        break;
      case SyscallCode::PutInt:
        result_.output += std::to_string(static_cast<int64_t>(a0));
        break;
      case SyscallCode::Brk: {
        writeReg(kRetReg, brk_);
        brk_ += a0;
        break;
      }
      default:
        raiseTrap(TrapCause::UnknownSyscall, dyn.pc, dyn.disepc,
                  readReg(kRetReg),
                  strFormat("unknown syscall %llu at pc 0x%llx",
                            (unsigned long long)readReg(kRetReg),
                            (unsigned long long)dyn.pc));
        break;
    }
}

void
ExecCore::execute(DynInst &dyn)
{
    const DecodedInst &inst = dyn.inst;
    const uint64_t vA = readReg(inst.ra);
    const uint64_t vB = inst.useLit ? static_cast<uint64_t>(inst.imm)
                                    : readReg(inst.rb);

    auto condTaken = [&](Opcode op, uint64_t v) {
        const int64_t sv = static_cast<int64_t>(v);
        switch (op) {
          case Opcode::BEQ: case Opcode::DBEQ: return v == 0;
          case Opcode::BNE: case Opcode::DBNE: return v != 0;
          case Opcode::BLT: case Opcode::DBLT: return sv < 0;
          case Opcode::BLE: return sv <= 0;
          case Opcode::BGT: return sv > 0;
          case Opcode::BGE: case Opcode::DBGE: return sv >= 0;
          case Opcode::BLBC: return (v & 1) == 0;
          case Opcode::BLBS: return (v & 1) != 0;
          default: return false;
        }
    };

    switch (inst.op) {
      case Opcode::NOP:
        break;
      case Opcode::LDA:
        writeReg(inst.ra,
                 readReg(inst.rb) + static_cast<uint64_t>(inst.imm));
        break;
      case Opcode::LDAH:
        writeReg(inst.ra, readReg(inst.rb) +
                              (static_cast<uint64_t>(inst.imm) << 16));
        break;
      case Opcode::LDBU:
      case Opcode::LDL:
      case Opcode::LDQ: {
        dyn.isMem = true;
        dyn.memAddr = readReg(inst.rb) + static_cast<uint64_t>(inst.imm);
        ++result_.loads;
        uint64_t value;
        if (inst.op == Opcode::LDBU) {
            value = memory_.read(dyn.memAddr, 1);
        } else if (inst.op == Opcode::LDL) {
            value = static_cast<uint64_t>(
                signExtend(memory_.read(dyn.memAddr, 4), 32));
        } else {
            value = memory_.read(dyn.memAddr, 8);
        }
        writeReg(inst.ra, value);
        break;
      }
      case Opcode::STB:
      case Opcode::STL:
      case Opcode::STQ: {
        dyn.isMem = true;
        dyn.isStore = true;
        dyn.memAddr = readReg(inst.rb) + static_cast<uint64_t>(inst.imm);
        ++result_.stores;
        const unsigned size =
            inst.op == Opcode::STB ? 1 : (inst.op == Opcode::STL ? 4 : 8);
        memory_.write(dyn.memAddr, vA, size);
        // Self-modifying code: drop stale pre-decoded words.
        if (dyn.memAddr < prog_.textEnd() &&
            dyn.memAddr + size > prog_.textBase) {
            invalidateDecodedRange(dyn.memAddr, size);
        }
        break;
      }
      case Opcode::BR:
      case Opcode::BSR:
        dyn.isAppControl = true;
        dyn.taken = true;
        dyn.actualTarget = inst.branchTarget(dyn.pc);
        writeReg(inst.ra, dyn.pc + 4);
        break;
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BLE: case Opcode::BGT: case Opcode::BGE:
      case Opcode::BLBC: case Opcode::BLBS:
        dyn.isAppControl = true;
        dyn.taken = condTaken(inst.op, vA);
        dyn.actualTarget = inst.branchTarget(dyn.pc);
        break;
      case Opcode::JMP:
      case Opcode::JSR:
      case Opcode::RET:
        dyn.isAppControl = true;
        dyn.taken = true;
        dyn.actualTarget = readReg(inst.rb) & ~Addr(3);
        writeReg(inst.ra, dyn.pc + 4);
        break;
      case Opcode::SYSCALL:
        doSyscall(dyn);
        break;
      case Opcode::ADDQ:
        writeReg(inst.rc, vA + vB);
        break;
      case Opcode::SUBQ:
        writeReg(inst.rc, vA - vB);
        break;
      case Opcode::MULQ:
        writeReg(inst.rc, vA * vB);
        break;
      case Opcode::AND:
        writeReg(inst.rc, vA & vB);
        break;
      case Opcode::BIC:
        writeReg(inst.rc, vA & ~vB);
        break;
      case Opcode::OR:
        writeReg(inst.rc, vA | vB);
        break;
      case Opcode::ORNOT:
        writeReg(inst.rc, vA | ~vB);
        break;
      case Opcode::XOR:
        writeReg(inst.rc, vA ^ vB);
        break;
      case Opcode::SLL:
        writeReg(inst.rc, vA << (vB & 63));
        break;
      case Opcode::SRL:
        writeReg(inst.rc, vA >> (vB & 63));
        break;
      case Opcode::SRA:
        writeReg(inst.rc, static_cast<uint64_t>(
                              static_cast<int64_t>(vA) >> (vB & 63)));
        break;
      case Opcode::CMPEQ:
        writeReg(inst.rc, vA == vB ? 1 : 0);
        break;
      case Opcode::CMPLT:
        writeReg(inst.rc,
                 static_cast<int64_t>(vA) < static_cast<int64_t>(vB) ? 1
                                                                     : 0);
        break;
      case Opcode::CMPLE:
        writeReg(inst.rc,
                 static_cast<int64_t>(vA) <= static_cast<int64_t>(vB) ? 1
                                                                      : 0);
        break;
      case Opcode::CMPULT:
        writeReg(inst.rc, vA < vB ? 1 : 0);
        break;
      case Opcode::CMPULE:
        writeReg(inst.rc, vA <= vB ? 1 : 0);
        break;
      case Opcode::CMOVEQ:
        if (vA == 0)
            writeReg(inst.rc, vB);
        break;
      case Opcode::CMOVNE:
        if (vA != 0)
            writeReg(inst.rc, vB);
        break;
      case Opcode::DBEQ: case Opcode::DBNE: case Opcode::DBLT:
      case Opcode::DBGE:
        dyn.taken = condTaken(inst.op, vA);
        break;
      case Opcode::DBR:
        dyn.taken = true;
        break;
      case Opcode::RES0: case Opcode::RES1: case Opcode::RES2:
      case Opcode::RES3:
        raiseTrap(TrapCause::UnexpandedCodeword, dyn.pc, dyn.disepc,
                  inst.raw,
                  strFormat("codeword executed unexpanded at pc 0x%llx "
                            "(missing decompression productions?)",
                            (unsigned long long)dyn.pc));
        break;
      default:
        raiseTrap(TrapCause::InvalidInstruction, dyn.pc, dyn.disepc,
                  inst.raw,
                  strFormat("executed invalid instruction 0x%08x at "
                            "0x%llx",
                            inst.raw, (unsigned long long)dyn.pc));
        break;
    }

    // An explicit control transfer into the program's "error" symbol is
    // the architected signature of an ACF-detected violation (MFI
    // segment matching, watchpoint assertions): count it so callers can
    // distinguish a detected fault from a normal exit.
    if (dyn.isAppControl && dyn.taken && errorAddr_ != 0 &&
        dyn.actualTarget == errorAddr_) {
        ++result_.acfDetections;
    }
}

bool
ExecCore::step(DynInst &out)
{
    if (exited_ || trapped_)
        return false;

    DynInst dyn;

    if (!seqSpec_) {
        // Fetch and present to the DISE engine.
        if (!prog_.inText(pc_) &&
            !(pc_ >= prog_.textBase && pc_ < prog_.textEnd())) {
            raiseTrap(TrapCause::PcOutOfText, pc_, 0, pc_,
                      strFormat("pc left text segment: 0x%llx",
                                (unsigned long long)pc_));
            return false;
        }
        const DecodedInst &fetched = fetchDecode(pc_);
        if (controller_) {
            const ExpandResult r =
                controller_->engine().expand(fetched, pc_);
            if (r.expanded) {
                seqInsts_ = r.insts;
                seqLen_ = r.numInsts;
                seqSpec_ = r.seq;
                seqIdx_ = 0;
                seqTriggerPC_ = pc_;
                seqHasPendingOutcome_ = false;
                pendingExpand_ = r;
                ++result_.expansions;
                ++result_.appInsts;
            }
        }
        if (!seqSpec_) {
            // Ordinary application instruction.
            dyn.pc = pc_;
            dyn.disepc = 0;
            dyn.inst = fetched;
            if (fetched.isDiseBranch()) {
                raiseTrap(TrapCause::DiseBranchInAppStream, pc_, 0,
                          fetched.raw,
                          strFormat("DISE branch in application stream "
                                    "at 0x%llx",
                                    (unsigned long long)pc_));
                return false;
            }
            execute(dyn);
            if (trapped_)
                return false; // the faulting instruction does not retire
            ++result_.dynInsts;
            ++result_.appInsts;
            if (!exited_) {
                pc_ = (dyn.isAppControl && dyn.taken) ? dyn.actualTarget
                                                      : pc_ + 4;
            }
            out = dyn;
            return true;
        }
    }

    // Emit the next slot of the in-flight replacement sequence.
    const uint32_t slot = seqIdx_;
    DISE_ASSERT(slot < seqLen_, "replacement sequence overrun");
    dyn.pc = seqTriggerPC_;
    dyn.disepc = slot + 1;
    dyn.inst = seqInsts_[slot];
    dyn.expanded = true;
    // T.INSN is the trigger itself; a T.OP re-emission (e.g. the rebased
    // access in sandboxing) is the trigger in modified form — both are
    // the application's own instruction, not DISE-inserted work.
    dyn.triggerSlot = seqSpec_->insts[slot].isTriggerInsn ||
                      seqSpec_->insts[slot].opDir == OpDirective::Trigger;
    dyn.firstOfSeq = (slot == 0);
    dyn.seqLen = seqLen_;
    if (slot == 0) {
        dyn.ptMiss = pendingExpand_.ptMiss;
        dyn.rtMiss = pendingExpand_.rtMiss;
        dyn.missPenalty = pendingExpand_.missPenalty;
        // Sequence-level prediction class (see DynInst::seqPredClass).
        const DecodedInst &trigger = fetchDecode(seqTriggerPC_);
        if (isControlClass(trigger.cls)) {
            dyn.seqPredClass = trigger.cls;
        } else if (seqLen_ > 0 &&
                   isControlClass(seqInsts_[seqLen_ - 1].cls)) {
            dyn.seqPredClass = seqInsts_[seqLen_ - 1].cls;
        }
    }
    ++seqIdx_;

    execute(dyn);
    if (trapped_) {
        // The faulting slot does not retire; drop the in-flight
        // sequence (the trap records the precise PC:DISEPC point).
        seqSpec_ = nullptr;
        seqInsts_ = nullptr;
        seqLen_ = 0;
        seqIdx_ = 0;
        seqHasPendingOutcome_ = false;
        return false;
    }
    ++result_.dynInsts;
    if (!dyn.triggerSlot)
        ++result_.diseInsts;

    bool endSeq = false;
    Addr redirect = 0;
    bool haveRedirect = false;

    if (exited_) {
        endSeq = true;
    } else if (dyn.inst.isDiseBranch()) {
        if (dyn.taken) {
            const int64_t target = static_cast<int64_t>(slot) + 1 +
                                   dyn.inst.imm;
            if (target < 0 ||
                target > static_cast<int64_t>(seqLen_)) {
                raiseTrap(TrapCause::DiseBranchOutOfRange,
                          seqTriggerPC_, dyn.disepc,
                          static_cast<uint64_t>(target),
                          strFormat("DISE branch target %lld outside "
                                    "sequence of length %u",
                                    (long long)target, seqLen_));
                seqSpec_ = nullptr;
                seqInsts_ = nullptr;
                seqLen_ = 0;
                seqIdx_ = 0;
                seqHasPendingOutcome_ = false;
                return false;
            }
            dyn.diseTarget = static_cast<uint32_t>(target);
            seqIdx_ = dyn.diseTarget;
            if (seqIdx_ == seqLen_)
                endSeq = true;
        }
    } else if (dyn.isAppControl) {
        if (dyn.triggerSlot) {
            // Trigger branch: instructions after it ride its predicted
            // (here: actual) path; apply the outcome at sequence end.
            seqHasPendingOutcome_ = true;
            seqPendingTaken_ = dyn.taken;
            seqPendingTarget_ = dyn.actualTarget;
        } else if (dyn.taken) {
            // Non-trigger branch: post-branch slots belong to the
            // non-taken path, so a taken branch discards them.
            endSeq = true;
            haveRedirect = true;
            redirect = dyn.actualTarget;
        }
    }

    if (!endSeq && seqIdx_ >= seqLen_)
        endSeq = true;

    if (endSeq) {
        dyn.lastOfSeq = true;
        if (!exited_) {
            if (haveRedirect) {
                pc_ = redirect;
            } else if (seqHasPendingOutcome_ && seqPendingTaken_) {
                pc_ = seqPendingTarget_;
            } else {
                pc_ = seqTriggerPC_ + 4;
            }
        }
        seqSpec_ = nullptr;
        seqInsts_ = nullptr;
        seqLen_ = 0;
        seqIdx_ = 0;
        seqHasPendingOutcome_ = false;
    }

    out = dyn;
    return true;
}

std::pair<Addr, uint32_t>
ExecCore::interruptPoint() const
{
    if (seqSpec_)
        return {seqTriggerPC_, seqIdx_ + 1};
    return {pc_, 0};
}

void
ExecCore::copyArchStateFrom(const ExecCore &other)
{
    regs_ = other.regs_;
    memory_ = other.memory_;
    brk_ = other.brk_;
    // The adopted memory image may differ from what was pre-decoded.
    invalidateDecodeCache();
}

void
ExecCore::resumeAt(Addr pc, uint32_t disepc)
{
    // Discard any in-flight control state; the caller supplies the
    // precise point.
    seqSpec_ = nullptr;
    seqInsts_ = nullptr;
    seqLen_ = 0;
    seqIdx_ = 0;
    seqHasPendingOutcome_ = false;
    pc_ = pc;
    if (disepc == 0)
        return;

    DISE_ASSERT(controller_ != nullptr,
                "resumeAt with a DISEPC requires a DISE controller");
    // Fetch ignores the DISEPC; the DISE engine recognizes it and
    // expands the replacement sequence, skipping the first DISEPC-1
    // instructions (which already retired before the interrupt).
    const DecodedInst &fetched = fetchDecode(pc);
    const ExpandResult r = controller_->engine().expand(fetched, pc);
    if (!r.expanded) {
        fatal(strFormat("resumeAt: instruction at 0x%llx no longer "
                        "expands (production set changed?)",
                        (unsigned long long)pc));
    }
    DISE_ASSERT(disepc - 1 < r.numInsts,
                "resume DISEPC outside the replacement sequence");
    seqInsts_ = r.insts;
    seqLen_ = r.numInsts;
    seqSpec_ = r.seq;
    seqTriggerPC_ = pc;
    seqIdx_ = disepc - 1;
    pendingExpand_ = r;
    pendingExpand_.missPenalty = 0; // already charged before the trap
}

RunResult
ExecCore::run(uint64_t maxInsts)
{
    DynInst dyn;
    while (result_.dynInsts < maxInsts && step(dyn)) {
    }
    // Watchdog expiry is an architected, classifiable outcome: the
    // instruction budget ran out with the program still live.
    if (!exited_ && !trapped_ && result_.dynInsts >= maxInsts)
        result_.outcome = RunOutcome::Hang;
    return result_;
}

} // namespace dise
