/**
 * @file
 * The minimal OS interface the workloads use. A SYSCALL instruction reads
 * the function code from v0 (r0) and arguments from a0/a1 (r16/r17).
 */

#ifndef DISE_SIM_SYSCALLS_HPP
#define DISE_SIM_SYSCALLS_HPP

#include <cstdint>

namespace dise {

/** Syscall function codes (in v0 at the SYSCALL). */
enum class SyscallCode : uint64_t {
    Exit = 0,   ///< terminate; exit code in a0
    PutChar = 1, ///< write the low byte of a0 to the output stream
    PutInt = 2, ///< write a0 as a signed decimal to the output stream
    Brk = 3,    ///< grow the heap by a0 bytes; old break returned in v0
};

} // namespace dise

#endif // DISE_SIM_SYSCALLS_HPP
