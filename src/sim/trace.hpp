/**
 * @file
 * Translated basic-block micro-traces: the functional simulator's
 * fast-path representation of straight-line guest code.
 *
 * A TransBlock pre-resolves one basic block of decoded instructions into
 * compact slots — a flat dispatch handler, operand register indices,
 * pre-sign-extended immediate, pre-computed direct-branch target —
 * executed by a direct-threaded interpreter in ExecCore (see core.cpp)
 * that bypasses the per-instruction fetch/decode/DISE-inspection
 * machinery of step(). Handlers are flattened to one jump per slot
 * (computed goto under GCC/Clang, a portable switch under
 * -DDISE_NO_COMPUTED_GOTO), and every slot array ends in an OpHandler::
 * End sentinel so the inner loop needs no bounds check.
 *
 * Steady-state execution additionally follows **superblock chain
 * edges**: each terminator slot (and the block-level fall-through)
 * carries a patchable ChainEdge naming its successor block, stamped
 * with the trace epoch and engine generation at patch time. A valid
 * edge jumps block-to-block without consulting the dispatch cache or
 * the block map at all; a stale stamp falls back to a lookup and
 * re-patch. See DESIGN.md section 13 for the edge-invalidation rules
 * and the pointer-stability contract (every block erasure either bumps
 * the trace epoch or strictly advances the generation, and erased
 * blocks are parked on a graveyard until the interpreter is outside
 * any chain).
 *
 * Slots whose opcode the active DISE production set covers are kept as
 * Engine slots: they consult the engine at run time (exactly like the
 * slow path), so PT/RT residency state, miss events, and every engine
 * counter evolve bit-identically to a step()-driven run. A per-slot
 * ExpandMemo short-circuits the engine's pattern match and expansion-
 * cache hash lookup for repeated clean hits (see
 * DiseEngine::expandFast). Instructions the fast path cannot model
 * (syscalls, codewords, invalid encodings, DISE branches in the
 * application stream) terminate translation and execute through the
 * ordinary step() fallback.
 *
 * Invalidation (see DESIGN.md sections 9 and 13):
 *  - blocks are keyed by entry PC and stamped with the DISE engine's
 *    table generation; any production install, table flush, or injected
 *    table corruption bumps the generation and orphans stale blocks and
 *    chain edges;
 *  - stores into the text segment route through
 *    ExecCore::invalidateDecodedRange, which bumps the trace epoch
 *    (orphaning every chain edge and dispatch entry) and drops every
 *    block overlapping the written range;
 *  - cache-pressure eviction (the block map is bounded) also bumps the
 *    trace epoch, so no cached pointer ever outlives its target's
 *    residency unnoticed.
 */

#ifndef DISE_SIM_TRACE_HPP
#define DISE_SIM_TRACE_HPP

#include <cstdint>
#include <vector>

#include "src/dise/engine.hpp"
#include "src/isa/inst.hpp"

namespace dise {

struct TransBlock;

/**
 * Flat dispatch handler of one translated slot: one indirect jump per
 * slot selects the full behavior (opcode and addressing mode folded
 * in), with no nested switch. Shared by the block interpreter and the
 * pre-translated replacement-sequence interpreter; each implements the
 * subset that can appear in its slot stream.
 */
enum class OpHandler : uint8_t {
    /** @name Straight-line compute (both interpreters). */
    /// @{
    Nop, Lda, Ldah, Addq, Subq, Mulq, And, Bic, Or, Ornot, Xor,
    Sll, Srl, Sra, Cmpeq, Cmplt, Cmple, Cmpult, Cmpule, Cmoveq, Cmovne,
    /// @}
    /** @name Memory (size/sign pre-resolved; both interpreters). */
    /// @{
    Ldbu, Ldl, Ldq, Store,
    /// @}
    /** @name Control (block: terminators; sequence: trigger-relative). */
    /// @{
    CondBranch, DirBranch, Jump,
    /// @}
    /** Opcode covered by the DISE production set: consult the engine
     *  at run time (block interpreter only). */
    Engine,
    /** @name DISE branches (sequence interpreter only). */
    /// @{
    DiseCond, DiseBr,
    /// @}
    /** @name Fused internal ops (macro-op fusion ACF; block interpreter
     *  only — fused ops never appear in replacement sequences). */
    /// @{
    FCmpBr, FLdaC, FShAdd, FLdaL, FLdaS, FLdOp,
    /// @}
    /** Sentinel closing every slot array: block fall-through exit /
     *  replacement-sequence end. */
    End,
    NUM,
};

/**
 * A patchable successor edge: the direct-threaded jump from one block
 * exit to the next block's first slot. Valid iff the stamped (epoch,
 * gen) pair still matches the core's live trace epoch and the engine's
 * table generation AND the recorded target PC equals the dynamic
 * successor PC (indirect jumps and expansion redirects patch a
 * monomorphic target; a mispredicted target re-patches). The pointer
 * is raw by design — it is only dereferenced after the stamps
 * validate, and the core guarantees no block is destroyed without
 * either a trace-epoch bump or a generation advance (see the
 * graveyard in ExecCore).
 */
struct ChainEdge
{
    const TransBlock *next = nullptr;
    uint64_t epoch = ~uint64_t(0);
    uint64_t gen = 0;
    Addr target = 0;
};

/**
 * One correct-path dynamic instruction with its execution outcome.
 *
 * Packed into exactly one cache line: the trace feed moves one record
 * per retired instruction from the emitting interpreters to the timing
 * model, so record size is ring and cache traffic. The narrow fields
 * are safe by construction — disepc/seqLen/diseTarget index into a
 * replacement sequence, and dictionary sequences are bounded far below
 * 64Ki slots.
 */
struct alignas(64) DynInst
{
    Addr pc = 0;
    Addr memAddr = 0;      ///< valid when isMem
    Addr actualTarget = 0; ///< taken app-control target
    DecodedInst inst;

    /** @name Expansion bookkeeping. */
    /// @{
    uint32_t missPenalty = 0; ///< set on the first slot only
    uint16_t disepc = 0;      ///< slot + 1; 0 for application insts
    uint16_t seqLen = 0;
    uint16_t diseTarget = 0; ///< taken DISE-branch target slot
    /**
     * Prediction class of the whole expansion (set on the first slot):
     * the front end predicts once per fetched trigger PC — the trigger's
     * own class when the trigger is a control instruction, else the
     * class of the sequence's final instruction when that is application
     * control (e.g. the compressed-out branch ending a dictionary
     * entry), else Nop (predict fall-through).
     */
    OpClass seqPredClass = OpClass::Nop;
    bool expanded : 1 = false;    ///< part of a replacement sequence
    bool triggerSlot : 1 = false; ///< this slot is T.INSN
    bool firstOfSeq : 1 = false;
    bool lastOfSeq : 1 = false;
    bool ptMiss : 1 = false; ///< set on the first slot only
    bool rtMiss : 1 = false;
    /// @}

    /** @name Execution outcome. */
    /// @{
    bool isAppControl : 1 = false; ///< application-level control transfer
    bool taken : 1 = false;        ///< app control or DISE branch outcome
    bool isMem : 1 = false;
    bool isStore : 1 = false;
    bool isSyscall : 1 = false;
    /// @}
};
static_assert(sizeof(DynInst) == 64,
              "DynInst must stay a single cache line — the trace feed "
              "streams one record per retired instruction");

/** One pre-translated slot of a memoized replacement sequence. */
struct SeqOp
{
    OpHandler handler = OpHandler::End;
    Opcode op = Opcode::NOP;
    RegIndex ra = 0;
    RegIndex rb = 0;
    RegIndex rc = 0;
    bool useLit = false;
    /** Slot retires as the application's own instruction (T.INSN /
     *  T.OP re-emission), not DISE-inserted work. */
    bool trigger = false;
    uint8_t size = 0;        ///< memory access size (Store)
    bool diseValid = false;  ///< DISE-branch target is within range
    int64_t imm = 0;         ///< pre-sign-extended immediate / literal
    uint32_t diseTarget = 0; ///< resolved DISE-branch target slot
};

/**
 * Pre-translated form of one memoized replacement sequence, cached per
 * Engine slot. Valid while the engine still hands out the same span
 * (same insts pointer/length) at the same table generation; expansions
 * that are not memoized (scratch-backed or fault-garbled) never use it.
 * @c ops holds numInsts real slots plus the End sentinel.
 */
struct SeqTrans
{
    const DecodedInst *insts = nullptr;
    uint32_t numInsts = 0;
    uint64_t gen = 0;
    /** False when a slot is outside the fast-path repertoire (e.g. a
     *  syscall): the generic per-slot path runs instead. */
    bool usable = false;
    std::vector<SeqOp> ops;
    /**
     * Pre-built trace records, one per real slot: every field that is
     * static for the sequence (slot position, decoded instruction,
     * expansion flags) is stamped at translation time, so the emitting
     * interpreter copies a record and fills in only the trigger PC,
     * the slot-0 expansion outcome, and per-execution extras. Same
     * validity as @c ops.
     */
    std::vector<DynInst> tmpl;
};

/** One pre-resolved slot of a translated basic block. */
struct TransOp
{
    OpHandler handler = OpHandler::End;
    Opcode op = Opcode::NOP;
    RegIndex ra = 0;
    RegIndex rb = 0;
    RegIndex rc = 0;
    bool useLit = false;
    uint8_t size = 0; ///< memory access size (Store)
    int64_t imm = 0;  ///< pre-sign-extended immediate / literal
    Addr target = 0;  ///< pre-computed direct-branch target
    /** Full decode, for Engine slots and diagnostics. */
    DecodedInst inst;
    /** @name Execution-time state of slots in a block the dispatcher
     *  otherwise treats as immutable (patched on first execution,
     *  validated by stamps on every use). */
    /// @{
    /** Terminators and Engine slots: the patched successor edge. */
    mutable ChainEdge chain;
    /** Engine slots: the engine-side expansion memo (skips the pattern
     *  match and cache hash on repeated clean hits). */
    mutable ExpandMemo memo;
    /** Engine slots: cached translation of this slot's memoized
     *  replacement sequence (see SeqTrans). */
    mutable SeqTrans seqCache;
    /// @}
};

/**
 * A translated straight-line micro-trace. @c ops holds numInsts real
 * slots plus one OpHandler::End sentinel; numInsts == 0 marks an entry
 * whose first instruction is untranslatable (the dispatcher remembers
 * the decision and routes the PC through step() without re-probing).
 */
struct TransBlock
{
    Addr entryPC = 0;
    /** Static instruction WORDS covered (excludes the End sentinel).
     *  A fused slot covers two words, so this can exceed the slot
     *  count; coveredEnd() depends on it for SMC overlap checks. */
    uint32_t numInsts = 0;
    /** DiseEngine::generation() at build time (0 without a controller). */
    uint64_t engineGen = 0;
    std::vector<TransOp> ops;
    /** Patched successor for the fall-through exit (End sentinel). */
    mutable ChainEdge fallChain;

    /** First address past the last static instruction word covered. */
    Addr
    coveredEnd() const
    {
        return entryPC + (numInsts == 0 ? 1 : numInsts) * 4;
    }
};

} // namespace dise

#endif // DISE_SIM_TRACE_HPP
