/**
 * @file
 * Translated basic-block micro-traces: the functional simulator's
 * fast-path representation of straight-line guest code.
 *
 * A TransBlock pre-resolves one basic block of decoded instructions into
 * compact slots — handler kind, operand register indices, pre-sign-
 * extended immediate, pre-computed direct-branch target — executed by a
 * tight dispatch loop in ExecCore (see core.cpp) that bypasses the
 * per-instruction fetch/decode/DISE-inspection machinery of step().
 *
 * Slots whose opcode the active DISE production set covers are kept as
 * Engine slots: they consult the engine at run time (exactly like the
 * slow path), so PT/RT residency state, miss events, and every engine
 * counter evolve bit-identically to a step()-driven run. Instructions
 * the fast path cannot model (syscalls, codewords, invalid encodings,
 * DISE branches in the application stream) terminate translation and
 * execute through the ordinary step() fallback.
 *
 * Invalidation (see DESIGN.md section 9):
 *  - blocks are keyed by entry PC and stamped with the DISE engine's
 *    table generation; any production install, table flush, or injected
 *    table corruption bumps the generation and orphans stale blocks;
 *  - stores into the text segment route through
 *    ExecCore::invalidateDecodedRange, which drops every block
 *    overlapping the written range (and the store exits its own block,
 *    so self-modified code is re-translated before it executes).
 */

#ifndef DISE_SIM_TRACE_HPP
#define DISE_SIM_TRACE_HPP

#include <cstdint>
#include <vector>

#include "src/isa/inst.hpp"

namespace dise {

/** Dispatch class of one translated slot. */
enum class TransKind : uint8_t {
    Alu,        ///< register/immediate compute, LDA/LDAH, NOP, CMOV
    Load,       ///< LDBU/LDL/LDQ
    Store,      ///< STB/STL/STQ
    CondBranch, ///< direct conditional branch (block terminator)
    DirBranch,  ///< BR/BSR: unconditional direct + link (terminator)
    Jump,       ///< JMP/JSR/RET: indirect + link (terminator)
    Engine,     ///< opcode covered by the DISE production set: consult
                ///< the engine at run time (may expand)
};

/** Dispatch class of one pre-translated replacement-sequence slot. */
enum class SeqOpKind : uint8_t {
    Alu,
    Load,
    Store,
    CondBranch, ///< application conditional branch (trigger-PC-relative)
    DirBranch,  ///< BR/BSR
    Jump,       ///< JMP/JSR/RET
    DiseCond,   ///< dbeq/dbne/dblt/dbge: moves the DISEPC
    DiseBr,     ///< dbr: unconditional DISEPC move
};

/** One pre-translated slot of a memoized replacement sequence. */
struct SeqOp
{
    SeqOpKind kind = SeqOpKind::Alu;
    Opcode op = Opcode::NOP;
    RegIndex ra = 0;
    RegIndex rb = 0;
    RegIndex rc = 0;
    bool useLit = false;
    /** Slot retires as the application's own instruction (T.INSN /
     *  T.OP re-emission), not DISE-inserted work. */
    bool trigger = false;
    uint8_t size = 0;        ///< memory access size (Load/Store)
    bool diseValid = false;  ///< DISE-branch target is within range
    int64_t imm = 0;         ///< pre-sign-extended immediate / literal
    uint32_t diseTarget = 0; ///< resolved DISE-branch target slot
};

/**
 * Pre-translated form of one memoized replacement sequence, cached per
 * Engine slot. Valid while the engine still hands out the same span
 * (same insts pointer/length) at the same table generation; expansions
 * that are not memoized (scratch-backed or fault-garbled) never use it.
 */
struct SeqTrans
{
    const DecodedInst *insts = nullptr;
    uint32_t numInsts = 0;
    uint64_t gen = 0;
    /** False when a slot is outside the fast-path repertoire (e.g. a
     *  syscall): the generic per-slot path runs instead. */
    bool usable = false;
    std::vector<SeqOp> ops;
};

/** One pre-resolved slot of a translated basic block. */
struct TransOp
{
    TransKind kind = TransKind::Alu;
    Opcode op = Opcode::NOP;
    RegIndex ra = 0;
    RegIndex rb = 0;
    RegIndex rc = 0;
    bool useLit = false;
    uint8_t size = 0; ///< memory access size (Load/Store)
    int64_t imm = 0;  ///< pre-sign-extended immediate / literal
    Addr target = 0;  ///< pre-computed direct-branch target
    /** Full decode, for Engine slots and diagnostics. */
    DecodedInst inst;
    /** Engine slots: cached translation of this slot's memoized
     *  replacement sequence (see SeqTrans). Execution-time state of a
     *  block the dispatcher otherwise treats as immutable. */
    mutable SeqTrans seqCache;
};

/**
 * A translated straight-line micro-trace. Empty @c ops marks an entry
 * whose first instruction is untranslatable (the dispatcher remembers
 * the decision and routes the PC through step() without re-probing).
 */
struct TransBlock
{
    Addr entryPC = 0;
    /** DiseEngine::generation() at build time (0 without a controller). */
    uint64_t engineGen = 0;
    std::vector<TransOp> ops;

    /** First address past the last static instruction word covered. */
    Addr
    coveredEnd() const
    {
        return entryPC + (ops.empty() ? 1 : ops.size()) * 4;
    }
};

} // namespace dise

#endif // DISE_SIM_TRACE_HPP
