#include "src/assembler/assembler.hpp"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <vector>

#include "src/common/bits.hpp"
#include "src/common/logging.hpp"

namespace dise {

namespace {

/** One source line split into label / mnemonic / operand strings. */
struct SrcLine
{
    int number = 0;
    std::string label;
    std::string mnemonic;
    std::vector<std::string> operands;
    std::string stringArg; ///< for .ascii/.asciiz
    bool hasStringArg = false;
};

[[noreturn]] void
asmError(int line, const std::string &msg)
{
    fatal(strFormat("asm line %d: %s", line, msg.c_str()));
    abort(); // unreachable; fatal() throws
}

std::string
trim(const std::string &s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Strip comments, honouring string literals. */
std::string
stripComment(const std::string &line)
{
    bool inStr = false;
    for (size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (c == '"')
            inStr = !inStr;
        if (inStr)
            continue;
        if (c == ';')
            return line.substr(0, i);
        if (c == '/' && i + 1 < line.size() && line[i + 1] == '/')
            return line.substr(0, i);
    }
    return line;
}

/** Split operand text on commas at depth 0 (parens). */
std::vector<std::string>
splitOperands(const std::string &text)
{
    std::vector<std::string> ops;
    int depth = 0;
    std::string cur;
    for (const char c : text) {
        if (c == '(')
            ++depth;
        if (c == ')')
            --depth;
        if (c == ',' && depth == 0) {
            ops.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    const std::string last = trim(cur);
    if (!last.empty())
        ops.push_back(last);
    return ops;
}

/** Parse a C-style escaped string literal body. */
std::string
parseStringLiteral(int line, const std::string &text)
{
    const std::string t = trim(text);
    if (t.size() < 2 || t.front() != '"' || t.back() != '"')
        asmError(line, "expected string literal");
    std::string out;
    for (size_t i = 1; i + 1 < t.size(); ++i) {
        char c = t[i];
        if (c == '\\' && i + 2 < t.size()) {
            ++i;
            switch (t[i]) {
              case 'n': c = '\n'; break;
              case 't': c = '\t'; break;
              case '0': c = '\0'; break;
              case '\\': c = '\\'; break;
              case '"': c = '"'; break;
              default: asmError(line, "bad escape in string");
            }
        }
        out += c;
    }
    return out;
}

std::optional<int64_t>
parseNumber(const std::string &text)
{
    std::string t = trim(text);
    if (t.empty())
        return std::nullopt;
    if (t[0] == '#')
        t = t.substr(1);
    if (t.empty())
        return std::nullopt;
    bool neg = false;
    size_t i = 0;
    if (t[0] == '-' || t[0] == '+') {
        neg = t[0] == '-';
        i = 1;
    }
    if (i >= t.size())
        return std::nullopt;
    uint64_t value = 0;
    if (t.size() > i + 1 && t[i] == '0' &&
        (t[i + 1] == 'x' || t[i + 1] == 'X')) {
        for (size_t j = i + 2; j < t.size(); ++j) {
            const char c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(t[j])));
            int digit;
            if (c >= '0' && c <= '9')
                digit = c - '0';
            else if (c >= 'a' && c <= 'f')
                digit = c - 'a' + 10;
            else
                return std::nullopt;
            value = value * 16 + static_cast<uint64_t>(digit);
        }
        if (t.size() == i + 2)
            return std::nullopt;
    } else {
        for (size_t j = i; j < t.size(); ++j) {
            if (!std::isdigit(static_cast<unsigned char>(t[j])))
                return std::nullopt;
            value = value * 10 + static_cast<uint64_t>(t[j] - '0');
        }
    }
    const int64_t sval = static_cast<int64_t>(value);
    return neg ? -sval : sval;
}

/** The assembler proper: two passes over pre-parsed lines. */
class Assembler
{
  public:
    explicit Assembler(const AsmOptions &opts) : opts_(opts) {}

    Program
    run(const std::string &source)
    {
        parseLines(source);
        layoutPass();
        emitPass();
        prog_.textBase = opts_.textBase;
        prog_.dataBase = opts_.dataBase;
        prog_.symbols = symbols_;
        const auto it = symbols_.find("main");
        prog_.entry = (it != symbols_.end()) ? it->second : opts_.textBase;
        return prog_;
    }

  private:
    enum class Section { Text, Data };

    void
    parseLines(const std::string &source)
    {
        std::istringstream is(source);
        std::string raw;
        int number = 0;
        while (std::getline(is, raw)) {
            ++number;
            std::string line = trim(stripComment(raw));
            // Peel off any leading labels (several may share a line).
            for (;;) {
                const size_t colon = line.find(':');
                if (colon == std::string::npos)
                    break;
                const std::string head = trim(line.substr(0, colon));
                if (head.empty() || head.find(' ') != std::string::npos ||
                    head.find('"') != std::string::npos) {
                    break;
                }
                SrcLine labelLine;
                labelLine.number = number;
                labelLine.label = head;
                lines_.push_back(labelLine);
                line = trim(line.substr(colon + 1));
            }
            if (line.empty())
                continue;
            SrcLine sl;
            sl.number = number;
            const size_t sp = line.find_first_of(" \t");
            sl.mnemonic = (sp == std::string::npos) ? line
                                                    : line.substr(0, sp);
            const std::string rest =
                (sp == std::string::npos) ? "" : trim(line.substr(sp + 1));
            if (sl.mnemonic == ".ascii" || sl.mnemonic == ".asciiz") {
                sl.stringArg = parseStringLiteral(number, rest);
                sl.hasStringArg = true;
            } else if (!rest.empty()) {
                sl.operands = splitOperands(rest);
            }
            lines_.push_back(sl);
        }
    }

    /** Instruction word count, fixed per mnemonic so labels resolve. */
    uint32_t
    instWords(const SrcLine &sl) const
    {
        if (sl.mnemonic == "li" || sl.mnemonic == "laq")
            return 2;
        return 1;
    }

    void
    layoutPass()
    {
        Section section = Section::Text;
        uint64_t textOff = 0;
        uint64_t dataOff = 0;
        for (const auto &sl : lines_) {
            if (!sl.label.empty()) {
                if (symbols_.count(sl.label))
                    asmError(sl.number, "duplicate label " + sl.label);
                symbols_[sl.label] = (section == Section::Text)
                                         ? opts_.textBase + textOff
                                         : opts_.dataBase + dataOff;
                continue;
            }
            if (sl.mnemonic == ".text") {
                section = Section::Text;
            } else if (sl.mnemonic == ".data") {
                section = Section::Data;
            } else if (sl.mnemonic[0] == '.') {
                if (section != Section::Data)
                    asmError(sl.number, "data directive outside .data");
                dataOff += directiveSize(sl, dataOff);
            } else {
                if (section != Section::Text)
                    asmError(sl.number, "instruction outside .text");
                textOff += instWords(sl) * 4ull;
            }
        }
    }

    uint64_t
    directiveSize(const SrcLine &sl, uint64_t dataOff) const
    {
        if (sl.mnemonic == ".quad")
            return sl.operands.size() * 8ull;
        if (sl.mnemonic == ".long")
            return sl.operands.size() * 4ull;
        if (sl.mnemonic == ".byte")
            return sl.operands.size();
        if (sl.mnemonic == ".ascii")
            return sl.stringArg.size();
        if (sl.mnemonic == ".asciiz")
            return sl.stringArg.size() + 1;
        if (sl.mnemonic == ".space") {
            const auto n = parseNumber(sl.operands.at(0));
            if (!n || *n < 0)
                asmError(sl.number, "bad .space size");
            return static_cast<uint64_t>(*n);
        }
        if (sl.mnemonic == ".align") {
            const auto n = parseNumber(sl.operands.at(0));
            if (!n || *n <= 0 || !isPow2(static_cast<uint64_t>(*n)))
                asmError(sl.number, "bad .align");
            const uint64_t a = static_cast<uint64_t>(*n);
            return (a - (dataOff % a)) % a;
        }
        asmError(sl.number, "unknown directive " + sl.mnemonic);
    }

    /** Resolve 'label', 'label+N', 'label-N', or a bare number. */
    int64_t
    resolveValue(const SrcLine &sl, const std::string &text) const
    {
        if (const auto num = parseNumber(text))
            return *num;
        std::string name = trim(text);
        int64_t offset = 0;
        const size_t plus = name.find_last_of("+-");
        if (plus != std::string::npos && plus > 0) {
            const auto off = parseNumber(name.substr(plus));
            if (off) {
                offset = *off;
                name = trim(name.substr(0, plus));
            }
        }
        const auto it = symbols_.find(name);
        if (it == symbols_.end())
            asmError(sl.number, "unknown symbol " + name);
        return static_cast<int64_t>(it->second) + offset;
    }

    RegIndex
    parseReg(const SrcLine &sl, const std::string &text) const
    {
        const auto r = regFromName(trim(text));
        if (!r)
            asmError(sl.number, "bad register " + text);
        if (!isArchReg(*r)) {
            asmError(sl.number,
                     "dedicated register " + text +
                         " is not encodable in application code");
        }
        return *r;
    }

    /** Parse 'disp(rb)' memory operands. */
    std::pair<int64_t, RegIndex>
    parseMemOperand(const SrcLine &sl, const std::string &text) const
    {
        const size_t open = text.find('(');
        const size_t close = text.rfind(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open) {
            asmError(sl.number, "bad memory operand " + text);
        }
        const std::string dispText = trim(text.substr(0, open));
        int64_t disp = 0;
        if (!dispText.empty()) {
            const auto n = parseNumber(dispText);
            if (!n)
                asmError(sl.number, "bad displacement " + dispText);
            disp = *n;
        }
        const RegIndex rb =
            parseReg(sl, text.substr(open + 1, close - open - 1));
        return {disp, rb};
    }

    void
    expectOperands(const SrcLine &sl, size_t n) const
    {
        if (sl.operands.size() != n) {
            asmError(sl.number,
                     strFormat("%s expects %zu operands, got %zu",
                               sl.mnemonic.c_str(), n,
                               sl.operands.size()));
        }
    }

    void
    emitPass()
    {
        Section section = Section::Text;
        for (const auto &sl : lines_) {
            if (!sl.label.empty())
                continue;
            if (sl.mnemonic == ".text") {
                section = Section::Text;
            } else if (sl.mnemonic == ".data") {
                section = Section::Data;
            } else if (sl.mnemonic[0] == '.') {
                emitDirective(sl);
            } else if (section == Section::Text) {
                emitInstruction(sl);
            }
        }
    }

    void
    emitDirective(const SrcLine &sl)
    {
        auto &data = prog_.data;
        auto appendBytes = [&](uint64_t value, unsigned count) {
            for (unsigned i = 0; i < count; ++i)
                data.push_back(static_cast<uint8_t>(value >> (8 * i)));
        };
        if (sl.mnemonic == ".quad") {
            for (const auto &op : sl.operands)
                appendBytes(
                    static_cast<uint64_t>(resolveValue(sl, op)), 8);
        } else if (sl.mnemonic == ".long") {
            for (const auto &op : sl.operands)
                appendBytes(
                    static_cast<uint64_t>(resolveValue(sl, op)), 4);
        } else if (sl.mnemonic == ".byte") {
            for (const auto &op : sl.operands)
                appendBytes(
                    static_cast<uint64_t>(resolveValue(sl, op)), 1);
        } else if (sl.mnemonic == ".ascii" || sl.mnemonic == ".asciiz") {
            for (const char c : sl.stringArg)
                data.push_back(static_cast<uint8_t>(c));
            if (sl.mnemonic == ".asciiz")
                data.push_back(0);
        } else if (sl.mnemonic == ".space") {
            const auto n = parseNumber(sl.operands.at(0));
            data.insert(data.end(), static_cast<size_t>(*n), 0);
        } else if (sl.mnemonic == ".align") {
            const uint64_t a =
                static_cast<uint64_t>(*parseNumber(sl.operands.at(0)));
            while (data.size() % a != 0)
                data.push_back(0);
        }
    }

    /** Emit the ldah/lda pair that materializes a 32-bit constant. */
    void
    emitLoadImmediate(int64_t value, RegIndex rd)
    {
        const int64_t lo = signExtend(static_cast<uint64_t>(value), 16);
        const int64_t hi = (value - lo) >> 16;
        DISE_ASSERT(fitsSigned(hi, 16), "li/laq immediate out of range");
        // ldah rd, hi(zero); lda rd, lo(rd)  =>  rd = (hi << 16) + lo.
        prog_.text.push_back(makeMemory(Opcode::LDAH, rd, kZeroReg, hi));
        prog_.text.push_back(makeMemory(Opcode::LDA, rd, rd, lo));
    }

    void
    emitInstruction(const SrcLine &sl)
    {
        const Addr pc = opts_.textBase + prog_.text.size() * 4ull;
        const std::string &m = sl.mnemonic;

        // Pseudo-instructions first.
        if (m == "mov") {
            expectOperands(sl, 2);
            const RegIndex rs = parseReg(sl, sl.operands[0]);
            const RegIndex rd = parseReg(sl, sl.operands[1]);
            prog_.text.push_back(
                makeOperate(Opcode::OR, rs, kZeroReg, rd));
            return;
        }
        if (m == "li" || m == "laq") {
            expectOperands(sl, 2);
            const int64_t value = resolveValue(sl, sl.operands[0]);
            const RegIndex rd = parseReg(sl, sl.operands[1]);
            emitLoadImmediate(value, rd);
            return;
        }
        if (m == "call") {
            expectOperands(sl, 1);
            const int64_t target = resolveValue(sl, sl.operands[0]);
            const int64_t disp = (target - static_cast<int64_t>(pc) - 4) / 4;
            prog_.text.push_back(makeBranch(Opcode::BSR, kRaReg, disp));
            return;
        }
        if (m == "ret" && sl.operands.empty()) {
            prog_.text.push_back(makeJump(Opcode::RET, kZeroReg, kRaReg));
            return;
        }

        const auto opc = opFromName(m);
        if (!opc)
            asmError(sl.number, "unknown mnemonic " + m);
        const OpInfo &info = opInfo(*opc);
        if (info.cls == OpClass::DiseBranch) {
            asmError(sl.number,
                     m + " is a DISE-internal branch; it may only appear "
                         "in replacement sequences");
        }
        switch (info.format) {
          case InstFormat::Nop:
            prog_.text.push_back(makeNop());
            break;
          case InstFormat::Syscall:
            prog_.text.push_back(makeSyscall());
            break;
          case InstFormat::Memory: {
            expectOperands(sl, 2);
            const RegIndex ra = parseReg(sl, sl.operands[0]);
            const auto [disp, rb] = parseMemOperand(sl, sl.operands[1]);
            prog_.text.push_back(makeMemory(*opc, ra, rb, disp));
            break;
          }
          case InstFormat::Branch: {
            expectOperands(sl, 2);
            const RegIndex ra = parseReg(sl, sl.operands[0]);
            const std::string &t = sl.operands[1];
            int64_t disp;
            if (t.size() > 2 && t[0] == '.' && (t[1] == '+' || t[1] == '-')) {
                const auto n = parseNumber(t.substr(1));
                if (!n)
                    asmError(sl.number, "bad relative target " + t);
                disp = *n;
            } else {
                const int64_t target = resolveValue(sl, t);
                if ((target & 3) != 0)
                    asmError(sl.number, "misaligned branch target");
                disp = (target - static_cast<int64_t>(pc) - 4) / 4;
            }
            prog_.text.push_back(makeBranch(*opc, ra, disp));
            break;
          }
          case InstFormat::Jump: {
            expectOperands(sl, 2);
            const RegIndex ra = parseReg(sl, sl.operands[0]);
            std::string rbText = trim(sl.operands[1]);
            if (rbText.size() >= 2 && rbText.front() == '(' &&
                rbText.back() == ')') {
                rbText = rbText.substr(1, rbText.size() - 2);
            }
            const RegIndex rb = parseReg(sl, rbText);
            prog_.text.push_back(makeJump(*opc, ra, rb));
            break;
          }
          case InstFormat::Operate: {
            expectOperands(sl, 3);
            const RegIndex ra = parseReg(sl, sl.operands[0]);
            const RegIndex rc = parseReg(sl, sl.operands[2]);
            const std::string &src2 = sl.operands[1];
            if (regFromName(trim(src2))) {
                prog_.text.push_back(
                    makeOperate(*opc, ra, parseReg(sl, src2), rc));
            } else {
                const auto lit = parseNumber(src2);
                if (!lit || *lit < 0 || *lit > 255) {
                    asmError(sl.number,
                             "operate literal must be 0..255: " + src2);
                }
                prog_.text.push_back(makeOperateImm(
                    *opc, ra, static_cast<uint8_t>(*lit), rc));
            }
            break;
          }
          case InstFormat::Codeword: {
            expectOperands(sl, 4);
            const auto tag = parseNumber(sl.operands[0]);
            const auto p1 = parseNumber(sl.operands[1]);
            const auto p2 = parseNumber(sl.operands[2]);
            const auto p3 = parseNumber(sl.operands[3]);
            if (!tag || !p1 || !p2 || !p3)
                asmError(sl.number, "bad codeword fields");
            prog_.text.push_back(makeCodeword(
                *opc, static_cast<uint16_t>(*tag),
                static_cast<uint8_t>(*p1), static_cast<uint8_t>(*p2),
                static_cast<uint8_t>(*p3)));
            break;
          }
        }
    }

    AsmOptions opts_;
    std::vector<SrcLine> lines_;
    std::map<std::string, Addr> symbols_;
    Program prog_;
};

} // namespace

Program
assemble(const std::string &source, const AsmOptions &opts)
{
    Assembler assembler(opts);
    return assembler.run(source);
}

} // namespace dise
