/**
 * @file
 * Program image: the output of the assembler and the input to the
 * simulators, the binary rewriter and the code compressor.
 *
 * Memory layout (segments are 2^26 bytes, matching the paper's
 * "srl addr, 26" segment-id extraction in Figure 1):
 *
 *   segment 1 (0x0400'0000): text
 *   segment 2 (0x0800'0000): data + heap + stack
 *
 * A module's "legal data segment identifier" (held in $dr2 by the memory
 * fault isolation ACF) is therefore 2 for all programs in this repository
 * unless relocated.
 */

#ifndef DISE_ASSEMBLER_PROGRAM_HPP
#define DISE_ASSEMBLER_PROGRAM_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/isa/inst.hpp"

namespace dise {

/** Right-shift count that turns an address into a segment id. */
constexpr unsigned kSegmentShift = 26;

/** Default segment bases. */
constexpr Addr kDefaultTextBase = Addr(1) << kSegmentShift;
constexpr Addr kDefaultDataBase = Addr(2) << kSegmentShift;

/** An assembled (or transformed) executable image. */
struct Program
{
    Addr textBase = kDefaultTextBase;
    std::vector<Word> text;

    Addr dataBase = kDefaultDataBase;
    std::vector<uint8_t> data;

    /** Initial PC. */
    Addr entry = kDefaultTextBase;
    /** Initial stack pointer (grows down, inside the data segment). */
    Addr stackTop = kDefaultDataBase + (Addr(1) << (kSegmentShift - 1));

    /** Symbol table (labels from the assembler). */
    std::map<std::string, Addr> symbols;

    /** Text size in bytes. */
    uint64_t textBytes() const { return text.size() * 4; }

    /** Address one past the end of text. */
    Addr textEnd() const { return textBase + textBytes(); }

    /** True if @p addr names an instruction in this image. */
    bool
    inText(Addr addr) const
    {
        return addr >= textBase && addr < textEnd() && (addr & 3) == 0;
    }

    /** Instruction word at @p addr (must be in text). */
    Word fetch(Addr addr) const;

    /** Segment id of the data region. */
    uint64_t dataSegment() const { return dataBase >> kSegmentShift; }

    /** Look up a symbol; fatal() when missing. */
    Addr symbol(const std::string &name) const;
};

/**
 * Basic-block partition of a program's text.
 *
 * Leaders are: the entry point, every text symbol (conservatively treated
 * as a potential indirect-jump/call target), every direct branch target,
 * and every instruction following a control transfer. Used by the code
 * compressor (candidate sequences must not straddle blocks) and by the
 * binary rewriter.
 */
struct BasicBlocks
{
    /** leader[i] is true when text word i starts a basic block. */
    std::vector<bool> leader;

    /** Half-open index ranges [first, last) of each block, in order. */
    std::vector<std::pair<uint32_t, uint32_t>> blocks;
};

/** Compute the basic-block partition of @p prog. */
BasicBlocks analyzeBasicBlocks(const Program &prog);

} // namespace dise

#endif // DISE_ASSEMBLER_PROGRAM_HPP
