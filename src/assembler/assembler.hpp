/**
 * @file
 * Two-pass assembler for the DISE target ISA.
 *
 * Syntax (Alpha-flavoured; one instruction/directive per line, comments
 * start with ';' or '//'):
 *
 *   .text / .data          switch sections
 *   label:                 define a symbol at the current location
 *   .quad v, ...           64-bit data (numbers or label[+/-off])
 *   .long v, ...           32-bit data
 *   .byte v, ...           8-bit data
 *   .asciiz "s"            NUL-terminated string
 *   .ascii "s"             string without terminator
 *   .space n               n zero bytes
 *   .align n               align to n bytes (data section)
 *
 *   ldq a0, 8(sp)          memory format
 *   addq a0, t1, v0        operate, register form
 *   addq a0, #5, v0        operate, 8-bit literal form ('#' optional)
 *   beq a0, label          branch (label or '.+N' word offset)
 *   jsr ra, (t12)          jump format
 *   res0 17, 1, 2, 3       codeword: tag, p1, p2, p3
 *   syscall / nop
 *
 * Pseudo-instructions (sizes are fixed so pass 1 can lay out labels):
 *   mov  rs, rd            1 inst:  or rs, zero, rd
 *   li   imm, rd           2 insts: ldah+lda (32-bit signed immediates)
 *   laq  label[+off], rd   2 insts: ldah+lda absolute address
 *   call label             1 inst:  bsr ra, label
 *   ret                    1 inst:  ret zero, (ra)
 */

#ifndef DISE_ASSEMBLER_ASSEMBLER_HPP
#define DISE_ASSEMBLER_ASSEMBLER_HPP

#include <string>

#include "src/assembler/program.hpp"

namespace dise {

/** Assembler configuration. */
struct AsmOptions
{
    Addr textBase = kDefaultTextBase;
    Addr dataBase = kDefaultDataBase;
};

/**
 * Assemble a complete source string into a program image.
 * Throws FatalError with a line-numbered message on any syntax error.
 * The entry point is the 'main' symbol if defined, else the start of text.
 */
Program assemble(const std::string &source, const AsmOptions &opts = {});

} // namespace dise

#endif // DISE_ASSEMBLER_ASSEMBLER_HPP
