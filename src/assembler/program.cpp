#include "src/assembler/program.hpp"

#include "src/common/logging.hpp"

namespace dise {

Word
Program::fetch(Addr addr) const
{
    DISE_ASSERT(inText(addr), strFormat("fetch outside text: 0x%llx",
                                        (unsigned long long)addr));
    return text[(addr - textBase) / 4];
}

Addr
Program::symbol(const std::string &name) const
{
    const auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("unknown symbol: " + name);
    return it->second;
}

BasicBlocks
analyzeBasicBlocks(const Program &prog)
{
    BasicBlocks bb;
    const size_t n = prog.text.size();
    bb.leader.assign(n, false);
    if (n == 0)
        return bb;

    auto mark = [&](Addr addr) {
        if (prog.inText(addr))
            bb.leader[(addr - prog.textBase) / 4] = true;
    };

    mark(prog.entry);
    bb.leader[0] = true;
    for (const auto &kv : prog.symbols)
        mark(kv.second);

    for (size_t i = 0; i < n; ++i) {
        const DecodedInst inst = decode(prog.text[i]);
        if (!inst.isControl())
            continue;
        const Addr pc = prog.textBase + i * 4;
        // Direct targets start blocks.
        if (inst.cls == OpClass::CondBranch ||
            inst.cls == OpClass::UncondBranch ||
            inst.cls == OpClass::Call) {
            mark(inst.branchTarget(pc));
        }
        // The fall-through after any control transfer starts a block.
        if (i + 1 < n)
            bb.leader[i + 1] = true;
    }

    uint32_t start = 0;
    for (uint32_t i = 1; i < n; ++i) {
        if (bb.leader[i]) {
            bb.blocks.emplace_back(start, i);
            start = i;
        }
    }
    bb.blocks.emplace_back(start, static_cast<uint32_t>(n));
    return bb;
}

} // namespace dise
