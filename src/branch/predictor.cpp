#include "src/branch/predictor.hpp"

#include "src/common/bits.hpp"
#include "src/common/logging.hpp"

namespace dise {

BranchPredictor::BranchPredictor(const PredictorParams &params)
    : params_(params), stats_("bpred")
{
    DISE_ASSERT(isPow2(params_.gshareEntries), "gshare size must be pow2");
    DISE_ASSERT(isPow2(params_.btbEntries / params_.btbAssoc),
                "btb sets must be pow2");
    counters_.assign(params_.gshareEntries, 1); // weakly not-taken
    btb_.assign(params_.btbEntries, BtbEntry());
    ras_.assign(params_.rasEntries, 0);
}

unsigned
BranchPredictor::gshareIndex(Addr pc) const
{
    const uint64_t hist = history_ & ((uint64_t(1) << params_.historyBits) - 1);
    return static_cast<unsigned>(((pc >> 2) ^ hist) &
                                 (params_.gshareEntries - 1));
}

BranchPredictor::BtbEntry *
BranchPredictor::btbLookup(Addr pc)
{
    const uint32_t sets = params_.btbEntries / params_.btbAssoc;
    const uint64_t set = (pc >> 2) & (sets - 1);
    const uint64_t tag = (pc >> 2) / sets;
    BtbEntry *way = &btb_[set * params_.btbAssoc];
    for (uint32_t w = 0; w < params_.btbAssoc; ++w)
        if (way[w].valid && way[w].tag == tag)
            return &way[w];
    return nullptr;
}

void
BranchPredictor::btbInsert(Addr pc, Addr target)
{
    const uint32_t sets = params_.btbEntries / params_.btbAssoc;
    const uint64_t set = (pc >> 2) & (sets - 1);
    const uint64_t tag = (pc >> 2) / sets;
    BtbEntry *way = &btb_[set * params_.btbAssoc];
    BtbEntry *victim = &way[0];
    for (uint32_t w = 0; w < params_.btbAssoc; ++w) {
        if (way[w].valid && way[w].tag == tag) {
            victim = &way[w];
            break;
        }
        if (!way[w].valid || way[w].lastUse < victim->lastUse)
            victim = &way[w];
    }
    victim->valid = true;
    victim->tag = tag;
    victim->target = target;
    victim->lastUse = ++useCounter_;
}

BranchPredictor::Prediction
BranchPredictor::predict(Addr pc, OpClass cls, Addr fallThrough)
{
    stats_.add("predictions");
    return predictHot(pc, cls, fallThrough);
}

BranchPredictor::Prediction
BranchPredictor::predictHot(Addr pc, OpClass cls, Addr fallThrough)
{
    Prediction pred;
    pred.target = fallThrough;

    switch (cls) {
      case OpClass::CondBranch: {
        const unsigned idx = gshareIndex(pc);
        pred.taken = counters_[idx] >= 2;
        if (pred.taken) {
            if (BtbEntry *entry = btbLookup(pc)) {
                entry->lastUse = ++useCounter_;
                pred.target = entry->target;
                pred.targetKnown = true;
            } else {
                // Taken prediction without a target is useless; fetch
                // falls through and the branch resolves as a mispredict.
                pred.taken = false;
            }
        } else {
            pred.targetKnown = true;
        }
        break;
      }
      case OpClass::UncondBranch:
      case OpClass::Call:
        pred.taken = true;
        if (BtbEntry *entry = btbLookup(pc)) {
            entry->lastUse = ++useCounter_;
            pred.target = entry->target;
            pred.targetKnown = true;
        }
        break;
      case OpClass::Return:
        pred.taken = true;
        if (rasTop_ > 0) {
            --rasTop_;
            pred.target = ras_[rasTop_ % params_.rasEntries];
            pred.targetKnown = true;
        } else if (BtbEntry *entry = btbLookup(pc)) {
            pred.target = entry->target;
            pred.targetKnown = true;
        }
        break;
      case OpClass::Jump:
      case OpClass::CallIndirect:
        pred.taken = true;
        if (BtbEntry *entry = btbLookup(pc)) {
            entry->lastUse = ++useCounter_;
            pred.target = entry->target;
            pred.targetKnown = true;
        }
        break;
      default:
        break;
    }
    return pred;
}

void
BranchPredictor::update(Addr pc, OpClass cls, bool taken, Addr target)
{
    stats_.add("updates");
    updateHot(pc, cls, taken, target);
}

void
BranchPredictor::updateHot(Addr pc, OpClass cls, bool taken, Addr target)
{
    if (cls == OpClass::CondBranch) {
        const unsigned idx = gshareIndex(pc);
        uint8_t &counter = counters_[idx];
        if (taken && counter < 3)
            ++counter;
        else if (!taken && counter > 0)
            --counter;
        history_ = (history_ << 1) | (taken ? 1 : 0);
    }
    if (taken && cls != OpClass::Return)
        btbInsert(pc, target);
}

void
BranchPredictor::pushReturn(Addr returnAddr)
{
    ras_[rasTop_ % params_.rasEntries] = returnAddr;
    ++rasTop_;
}

} // namespace dise
