/**
 * @file
 * Branch prediction: gshare direction predictor, set-associative BTB,
 * and a return-address stack. Matches the "aggressive branch speculation"
 * of the paper's simulated MIPS R10000-like machine.
 *
 * DISE interaction (paper Section 2.2): DISE-internal branches and
 * non-trigger application branches inside replacement sequences are never
 * predicted and must not update the BTB; the pipeline model enforces this
 * by simply not consulting the predictor for them.
 */

#ifndef DISE_BRANCH_PREDICTOR_HPP
#define DISE_BRANCH_PREDICTOR_HPP

#include <cstdint>
#include <vector>

#include "src/common/stats.hpp"
#include "src/isa/inst.hpp"

namespace dise {

/** Predictor configuration. */
struct PredictorParams
{
    uint32_t gshareEntries = 4096; ///< 2-bit counters
    uint32_t historyBits = 8;
    uint32_t btbEntries = 2048;
    uint32_t btbAssoc = 4;
    uint32_t rasEntries = 16;
};

/** Combined direction + target predictor. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const PredictorParams &params = {});

    /** A complete front-end prediction for one control instruction. */
    struct Prediction
    {
        bool taken = false;
        Addr target = 0;
        bool targetKnown = false; ///< BTB/RAS supplied a target
    };

    /**
     * Predict a control instruction at @p pc.
     * @param cls Its opcode class (drives direction/target policy).
     * @param fallThrough pc + 4.
     */
    Prediction predict(Addr pc, OpClass cls, Addr fallThrough);

    /**
     * Train on the resolved outcome.
     * @param pc Branch PC.
     * @param cls Opcode class.
     * @param taken Actual direction.
     * @param target Actual target.
     */
    void update(Addr pc, OpClass cls, bool taken, Addr target);

    /**
     * @name Caller-accounted hot variants.
     * predict()/update() are implemented as a "predictions"/"updates"
     * counter bump plus these, so direction, BTB, RAS, and history
     * behaviour is identical by construction. Hot consumers (the
     * trace-feed timing path and sampled-mode warming) call these and
     * bump cached StatGroup::cell() pointers themselves, keeping the
     * per-branch path free of map lookups.
     */
    /// @{
    Prediction predictHot(Addr pc, OpClass cls, Addr fallThrough);
    void updateHot(Addr pc, OpClass cls, bool taken, Addr target);
    /// @}

    /** Push a return address (on calls). */
    void pushReturn(Addr returnAddr);

    const StatGroup &stats() const { return stats_; }
    StatGroup &stats() { return stats_; }

  private:
    struct BtbEntry
    {
        bool valid = false;
        uint64_t tag = 0;
        Addr target = 0;
        uint64_t lastUse = 0;
    };

    unsigned gshareIndex(Addr pc) const;
    BtbEntry *btbLookup(Addr pc);
    void btbInsert(Addr pc, Addr target);

    PredictorParams params_;
    std::vector<uint8_t> counters_;
    uint64_t history_ = 0;
    std::vector<BtbEntry> btb_;
    std::vector<Addr> ras_;
    size_t rasTop_ = 0;
    uint64_t useCounter_ = 0;
    StatGroup stats_;
};

} // namespace dise

#endif // DISE_BRANCH_PREDICTOR_HPP
