#include "src/workloads/generator.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "src/assembler/assembler.hpp"
#include "src/common/logging.hpp"
#include "src/common/rng.hpp"
#include "src/isa/regs.hpp"

namespace dise {

namespace {

/** Bytes of the single data region every memory operand lands in. */
constexpr uint32_t kRegionBytes = 16384;
/** Aligned-8 offset mask (loaded into a register: too wide for the
 *  8-bit operate literal). Keeps masked quadword accesses in
 *  [0, 8191], well inside the region. */
constexpr uint32_t kOffsetMask = 8184;

/** Registers generated code may use, shuffled per program. s0..s4
 *  stay reserved (rewriter scavenging), a0/v0 do syscalls. */
const std::vector<RegIndex> kGenPool = {1,  2,  3,  4,  5,  6,  7,
                                        8,  14, 17, 18, 19, 20, 21,
                                        22, 23, 24, 25};

struct GenState
{
    Rng rng;
    std::ostringstream os;
    uint32_t nextLabel = 0;
    std::string base;  ///< data-region base (laq gdat)
    std::string mask;  ///< holds kOffsetMask
    std::string outer; ///< outer-loop counter
    std::string inner; ///< inner-loop counter
    std::vector<std::string> vals; ///< general value registers

    explicit GenState(uint64_t seed) : rng(seed) {}

    std::string
    label()
    {
        return "Lg" + std::to_string(nextLabel++);
    }

    const std::string &
    val()
    {
        return vals[rng.below(vals.size())];
    }

    /** @p n distinct value registers (idioms whose semantics need
     *  role separation, e.g. a store's data vs. address register). */
    std::vector<std::string>
    distinct(size_t n)
    {
        DISE_ASSERT(n <= vals.size(), "distinct() over pool size");
        std::vector<size_t> idx(vals.size());
        for (size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        // Partial Fisher-Yates driven by the program's own stream.
        std::vector<std::string> out;
        for (size_t i = 0; i < n; ++i) {
            const size_t j =
                i + static_cast<size_t>(rng.below(idx.size() - i));
            std::swap(idx[i], idx[j]);
            out.push_back(vals[idx[i]]);
        }
        return out;
    }
};

const char *
pickCompare(Rng &rng)
{
    static const char *const ops[] = {"cmpeq", "cmplt", "cmple",
                                      "cmpult", "cmpule"};
    return ops[rng.below(5)];
}

const char *
pickBranch(Rng &rng)
{
    static const char *const ops[] = {"beq", "bne", "blt", "bge",
                                      "bgt", "ble", "blbc", "blbs"};
    return ops[rng.below(8)];
}

const char *
pickLoadOpAlu(Rng &rng)
{
    static const char *const ops[] = {"addq", "subq", "and",  "bic",
                                      "or",   "ornot", "xor", "sll",
                                      "srl",  "sra",  "cmpeq", "cmplt",
                                      "cmpule"};
    return ops[rng.below(13)];
}

/** Masked in-bounds quadword address: addr = base + (v & mask). */
void
emitMaskedAddr(GenState &g, const std::string &v, const std::string &o)
{
    g.os << "    and " << v << ", " << g.mask << ", " << o << "\n"
         << "    addq " << g.base << ", " << o << ", " << o << "\n";
}

/** A few register-only filler instructions. */
uint32_t
emitAluFiller(GenState &g, uint32_t count)
{
    uint32_t emitted = 0;
    for (uint32_t i = 0; i < count; ++i) {
        const std::string a = g.val(), b = g.val(), c = g.val();
        switch (g.rng.below(6)) {
          case 0:
            g.os << "    addq " << a << ", " << b << ", " << c << "\n";
            break;
          case 1:
            g.os << "    subq " << a << ", "
                 << g.rng.below(256) << ", " << c << "\n";
            break;
          case 2:
            g.os << "    xor " << a << ", " << b << ", " << c << "\n";
            break;
          case 3:
            g.os << "    mulq " << a << ", "
                 << (1 + g.rng.below(255)) << ", " << c << "\n";
            break;
          case 4:
            g.os << "    srl " << a << ", " << g.rng.below(16) << ", "
                 << c << "\n";
            break;
          default:
            g.os << "    cmovne " << a << ", " << b << ", " << c
                 << "\n";
            break;
        }
        ++emitted;
    }
    return emitted;
}

/**
 * Emit one idiom of the weighted mix. Fusible-pair idioms dominate so
 * the differential harness exercises every fusion family; each one is
 * written exactly in the shape fusePair matches (and occasionally in
 * a near-miss shape, which must simply execute natively).
 */
void
emitIdiom(GenState &g)
{
    Rng &rng = g.rng;
    switch (rng.below(12)) {
      case 0: { // cmp+branch (fusible) over a short skipped tail
        const auto r = g.distinct(2);
        const std::string skip = g.label();
        g.os << "    " << pickCompare(rng) << " " << r[0] << ", ";
        if (rng.chance(0.5))
            g.os << rng.below(256);
        else
            g.os << r[1];
        g.os << ", " << r[0] << "\n";
        g.os << "    " << pickBranch(rng) << " " << r[0] << ", " << skip
             << "\n";
        emitAluFiller(g, 1 + uint32_t(rng.below(3)));
        g.os << skip << ":\n";
        break;
      }
      case 1: { // ldah+lda constant formation (fusible)
        const std::string r = g.val();
        g.os << "    ldah " << r << ", " << rng.below(256)
             << "(zero)\n"
             << "    lda " << r << ", " << rng.below(4096) << "(" << r
             << ")\n";
        break;
      }
      case 2: { // sll+addq scaled index (fusible)
        const auto r = g.distinct(3);
        g.os << "    sll " << r[0] << ", " << rng.below(8) << ", "
             << r[1] << "\n";
        if (rng.chance(0.4)) {
            g.os << "    addq " << r[1] << ", " << rng.below(256)
                 << ", " << r[1] << "\n";
        } else {
            g.os << "    addq " << r[1] << ", " << r[2] << ", " << r[1]
                 << "\n";
        }
        break;
      }
      case 3: { // lda+ldq address-formed load (fusible)
        const std::string r = g.val();
        g.os << "    lda " << r << ", " << rng.below(512) * 8 << "("
             << g.base << ")\n"
             << "    ldq " << r << ", " << rng.below(256) * 8 << "("
             << r << ")\n";
        break;
      }
      case 4: { // lda+stq address-formed store (fusible)
        const auto r = g.distinct(2);
        g.os << "    lda " << r[0] << ", " << rng.below(1024) * 8
             << "(" << g.base << ")\n"
             << "    stq " << r[1] << ", 0(" << r[0] << ")\n";
        break;
      }
      case 5: { // ldq+op load-feeding-ALU (fusible)
        const auto r = g.distinct(2);
        g.os << "    ldq " << r[0] << ", " << rng.below(1024) * 8
             << "(" << g.base << ")\n";
        const char *op = pickLoadOpAlu(rng);
        if (rng.chance(0.4)) {
            g.os << "    " << op << " " << r[0] << ", "
                 << rng.below(256) << ", " << r[0] << "\n";
        } else if (rng.chance(0.5)) {
            g.os << "    " << op << " " << r[0] << ", " << r[1] << ", "
                 << r[0] << "\n";
        } else {
            g.os << "    " << op << " " << r[1] << ", " << r[0] << ", "
                 << r[0] << "\n";
        }
        break;
      }
      case 6: { // forward branch landing on the SECOND word of a
                // fusible lda+ldq pair: a fused decode at the pair
                // head must not change what a jump to the middle sees.
        const auto r = g.distinct(3);
        const std::string mid = g.label();
        emitMaskedAddr(g, r[1], r[0]);
        g.os << "    " << pickCompare(rng) << " " << r[1] << ", "
             << r[2] << ", " << r[2] << "\n"
             << "    " << (rng.chance(0.5) ? "beq" : "bne") << " "
             << r[2] << ", " << mid << "\n"
             << "    lda " << r[0] << ", " << rng.below(512) * 8 << "("
             << g.base << ")\n"
             << mid << ":\n"
             << "    ldq " << r[0] << ", 0(" << r[0] << ")\n";
        break;
      }
      case 7: { // masked random-address load
        const auto r = g.distinct(2);
        emitMaskedAddr(g, r[1], r[0]);
        g.os << "    ldq " << r[1] << ", 0(" << r[0] << ")\n";
        break;
      }
      case 8: { // masked random-address store
        const auto r = g.distinct(2);
        emitMaskedAddr(g, r[1], r[0]);
        g.os << "    stq " << r[1] << ", 0(" << r[0] << ")\n";
        break;
      }
      case 9: { // byte load + mix
        const auto r = g.distinct(2);
        emitMaskedAddr(g, r[1], r[0]);
        g.os << "    ldbu " << r[1] << ", " << rng.below(8) << "("
             << r[0] << ")\n"
             << "    xor " << r[1] << ", " << g.val() << ", "
             << g.val() << "\n";
        break;
      }
      case 10: { // bounded inner loop around a couple of idioms
        const std::string top = g.label();
        g.os << "    li " << 2 + rng.below(5) << ", " << g.inner
             << "\n"
             << top << ":\n";
        const uint32_t body = 1 + uint32_t(rng.below(2));
        for (uint32_t i = 0; i < body; ++i) {
            // Flat idiom subset only, so nesting depth is exactly one.
            switch (rng.below(10)) {
              case 0:
                emitAluFiller(g, 2);
                break;
              case 1: {
                const auto r = g.distinct(2);
                g.os << "    ldq " << r[0] << ", "
                     << rng.below(1024) * 8 << "(" << g.base << ")\n"
                     << "    addq " << r[0] << ", " << r[1] << ", "
                     << r[0] << "\n";
                break;
              }
              default: {
                const auto r = g.distinct(2);
                emitMaskedAddr(g, r[1], r[0]);
                if (rng.chance(0.5))
                    g.os << "    ldq " << r[1] << ", 0(" << r[0]
                         << ")\n";
                else
                    g.os << "    stq " << r[1] << ", 0(" << r[0]
                         << ")\n";
                break;
              }
            }
        }
        g.os << "    subq " << g.inner << ", 1, " << g.inner << "\n"
             << "    bne " << g.inner << ", " << top << "\n";
        break;
      }
      default: // plain ALU filler
        emitAluFiller(g, 1 + uint32_t(rng.below(3)));
        break;
    }
}

} // namespace

std::string
generateRandomSource(const GeneratorOptions &opts)
{
    DISE_ASSERT(opts.minIdioms >= 1 && opts.minIdioms <= opts.maxIdioms,
                "generator idiom range");
    DISE_ASSERT(opts.minIters >= 1 && opts.minIters <= opts.maxIters,
                "generator iteration range");
    GenState g(opts.seed);

    // Role assignment: shuffle the pool so register pressure patterns
    // differ between seeds.
    std::vector<RegIndex> pool = kGenPool;
    for (size_t i = 0; i + 1 < pool.size(); ++i) {
        const size_t j =
            i + static_cast<size_t>(g.rng.below(pool.size() - i));
        std::swap(pool[i], pool[j]);
    }
    g.base = regName(pool[0]);
    g.mask = regName(pool[1]);
    g.outer = regName(pool[2]);
    g.inner = regName(pool[3]);
    for (size_t i = 4; i < 12; ++i)
        g.vals.push_back(regName(pool[i]));

    const uint32_t idioms = opts.minIdioms +
                            uint32_t(g.rng.below(
                                opts.maxIdioms - opts.minIdioms + 1));
    const uint32_t iters =
        opts.minIters +
        uint32_t(g.rng.below(opts.maxIters - opts.minIters + 1));

    g.os << "    .text\n"
         << "main:\n";
    // Every register the body may read gets a defined value first.
    g.os << "    laq gdat, " << g.base << "\n"
         << "    li " << kOffsetMask << ", " << g.mask << "\n"
         << "    li 1, " << g.inner << "\n";
    for (const std::string &v : g.vals)
        g.os << "    li " << g.rng.below(1 << 20) << ", " << v << "\n";

    // Seed the data region with an LCG so loads see varied values.
    {
        const auto r = g.distinct(3);
        g.os << "    laq gdat, " << r[0] << "\n"
             << "    li " << (kRegionBytes / 8) << ", " << r[1] << "\n"
             << "    li " << (1 + g.rng.below(65536)) << ", " << r[2]
             << "\n"
             << "init_l:\n"
             << "    mulq " << r[2] << ", 213, " << r[2] << "\n"
             << "    addq " << r[2] << ", 251, " << r[2] << "\n"
             << "    stq " << r[2] << ", 0(" << r[0] << ")\n"
             << "    lda " << r[0] << ", 8(" << r[0] << ")\n"
             << "    subq " << r[1] << ", 1, " << r[1] << "\n"
             << "    bne " << r[1] << ", init_l\n";
    }

    g.os << "    li " << iters << ", " << g.outer << "\n"
         << "loop:\n";
    for (uint32_t i = 0; i < idioms; ++i)
        emitIdiom(g);
    g.os << "    subq " << g.outer << ", 1, " << g.outer << "\n"
         << "    bne " << g.outer << ", loop\n";

    // Fold every value register into a checksum, print it, exit(0).
    // The checksum makes architectural divergence visible in the
    // run's output, not just in the counters.
    g.os << "    li 0, a0\n";
    for (const std::string &v : g.vals)
        g.os << "    xor a0, " << v << ", a0\n";
    g.os << "    li 2, v0\n"
         << "    syscall\n"
         << "    li 0, v0\n"
         << "    li 0, a0\n"
         << "    syscall\n";
    // Error-handler symbol so the program also runs under MFI.
    g.os << "error:\n"
         << "    li 0, v0\n"
         << "    li 42, a0\n"
         << "    syscall\n";

    g.os << "    .data\n"
         << "gdat:\n    .space " << kRegionBytes << "\n";
    return g.os.str();
}

Program
generateRandomProgram(const GeneratorOptions &opts)
{
    return assemble(generateRandomSource(opts));
}

} // namespace dise
