/**
 * @file
 * Synthetic SPEC2000-integer-like workload suite.
 *
 * The paper evaluates on the SPECint 2000 binaries (Alpha, GCC -O4); we
 * cannot redistribute those, so each benchmark is replaced by a program
 * with the same name generated from a per-benchmark profile plus a
 * hand-written kernel capturing its flavour (compression loops for
 * bzip2/gzip, pointer chasing for mcf/vortex, a branchy state machine
 * for parser/perlbmk, bitboard arithmetic for crafty/eon, ...). The
 * profile controls the properties the paper's experiments actually
 * measure against:
 *
 *  - static text size / instruction working set (crafty, gzip and vpr
 *    exceed 32 KB; about half the suite exceeds 8 KB — Section 4.2),
 *  - memory-operation density (~30-40 % of dynamic instructions, so MFI
 *    expands ~30 % of the stream — Section 4.1),
 *  - branch density and code redundancy (drives compressibility and the
 *    parameterization benefit — Section 4.2).
 *
 * Constraints the ACFs rely on: no text addresses stored in data or
 * registers (so the binary rewriter can relocate code), and registers
 * s0..s4 are reserved for the rewriter to scavenge.
 */

#ifndef DISE_WORKLOADS_WORKLOADS_HPP
#define DISE_WORKLOADS_WORKLOADS_HPP

#include <string>
#include <vector>

#include "src/assembler/program.hpp"

namespace dise {

/** Generation profile for one benchmark. */
struct WorkloadSpec
{
    std::string name;
    uint64_t seed = 1;
    /** Hand-written kernel family ("compress", "chase", "parse",
     *  "bits", "sort", "arith"). */
    std::string kernel = "arith";
    /** Kernel inner iteration count. */
    uint32_t kernelIters = 2000;
    /** Generated leaf/caller functions (static footprint driver). */
    uint32_t numFunctions = 40;
    /** Idioms per generated function body. */
    uint32_t idiomsPerBody = 4;
    /** Inner-loop trip count of generated functions. */
    uint32_t loopIters = 24;
    /** Probability an idiom uses canonical registers (redundancy). */
    double idiomReuse = 0.5;
    /** Probability an idiom is a memory idiom. */
    double memDensity = 0.45;
    /** Probability an idiom contains a conditional branch. */
    double branchDensity = 0.18;
    /** Data working set in KB (split across regions). */
    uint32_t dataKB = 64;
    /** Approximate dynamic instruction target. */
    uint64_t targetDynInsts = 1200000;
};

/** The twelve SPECint-2000-named profiles. */
const std::vector<WorkloadSpec> &spec2000();

/** Look up a profile by name; fatal() when unknown. */
const WorkloadSpec &workloadSpec(const std::string &name);

/** Generate the assembly source for a profile. */
std::string generateWorkloadSource(const WorkloadSpec &spec);

/** Generate and assemble a benchmark. */
Program buildWorkload(const WorkloadSpec &spec);
Program buildWorkload(const std::string &name);

} // namespace dise

#endif // DISE_WORKLOADS_WORKLOADS_HPP
