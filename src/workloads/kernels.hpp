/**
 * @file
 * Hand-written assembly kernels giving each synthetic benchmark its
 * characteristic flavour. Each kernel is a leaf function named "kernel"
 * that folds its result into the shared "chk" checksum cell.
 */

#ifndef DISE_WORKLOADS_KERNELS_HPP
#define DISE_WORKLOADS_KERNELS_HPP

#include <cstdint>
#include <string>

namespace dise {

/**
 * Text section of a kernel.
 * @param family One of "compress", "chase", "parse", "bits", "sort",
 *               "arith".
 * @param iters Inner iteration count.
 */
std::string kernelText(const std::string &family, uint32_t iters);

/**
 * Data section a kernel needs (labels only it uses). The chase kernel's
 * pointer ring must not be clobbered by the generator's LCG data
 * initialization, so kernel data is emitted after the init window.
 * @param ringNodes Node count for the chase kernel's ring.
 */
std::string kernelData(const std::string &family, uint32_t ringNodes);

/** Approximate dynamic instructions per kernel invocation. */
uint64_t kernelDynCost(const std::string &family, uint32_t iters);

} // namespace dise

#endif // DISE_WORKLOADS_KERNELS_HPP
