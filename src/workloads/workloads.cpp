#include "src/workloads/workloads.hpp"

#include <algorithm>
#include <sstream>

#include "src/assembler/assembler.hpp"
#include "src/common/logging.hpp"
#include "src/common/rng.hpp"
#include "src/workloads/kernels.hpp"

namespace dise {

namespace {

/** Registers generated code may use. s0..s4 are reserved for the binary
 *  rewriter to scavenge, fp holds the driver counter, a0/v0 do syscalls. */
const std::vector<RegIndex> kPool = {1,  2,  3,  4,  5,  6,  7,  8, 14,
                                     17, 18, 19, 20, 21, 22, 23, 24, 25};

/** Role assignment for one generated function. */
struct Roles
{
    std::string ptr, off, lim, acc, v, u, w, c, k;
};

Roles
rolesFrom(const std::vector<RegIndex> &regs)
{
    auto name = [&](size_t i) { return regName(regs[i]); };
    return Roles{name(0), name(1), name(2), name(3), name(4),
                 name(5), name(6), name(7), name(8)};
}

/** Emit one idiom; returns its instruction count. */
uint32_t
emitIdiom(std::ostringstream &os, Rng &rng, const Roles &r,
          uint32_t regionBytes, const std::string &labelBase,
          uint32_t idiomKind)
{
    switch (idiomKind) {
      case 0: // strided load with wraparound
        os << "    addq " << r.off << ", 8, " << r.off << "\n"
           << "    cmplt " << r.off << ", " << r.lim << ", " << r.c
           << "\n"
           << "    cmoveq " << r.c << ", zero, " << r.off << "\n"
           << "    addq " << r.ptr << ", " << r.off << ", " << r.u << "\n"
           << "    ldq " << r.v << ", 0(" << r.u << ")\n";
        return 5;
      case 1: // strided store
        os << "    addq " << r.off << ", 16, " << r.off << "\n"
           << "    cmplt " << r.off << ", " << r.lim << ", " << r.c
           << "\n"
           << "    cmoveq " << r.c << ", zero, " << r.off << "\n"
           << "    addq " << r.ptr << ", " << r.off << ", " << r.u << "\n"
           << "    stq " << r.acc << ", 0(" << r.u << ")\n";
        return 5;
      case 2: { // fixed-offset read-modify-write
        const uint32_t k = static_cast<uint32_t>(
                               rng.below(regionBytes / 8)) *
                           8 % 32760;
        os << "    ldq " << r.u << ", " << k << "(" << r.ptr << ")\n"
           << "    addq " << r.u << ", " << r.v << ", " << r.u << "\n"
           << "    stq " << r.u << ", " << k << "(" << r.ptr << ")\n";
        return 3;
      }
      case 3: { // byte load + mix
        const uint32_t k = static_cast<uint32_t>(
            rng.below(std::min(regionBytes, 32760u)));
        os << "    ldbu " << r.w << ", " << k << "(" << r.ptr << ")\n"
           << "    xor " << r.acc << ", " << r.w << ", " << r.acc << "\n";
        return 2;
      }
      case 4: // hash mix
        os << "    sll " << r.acc << ", 5, " << r.u << "\n"
           << "    srl " << r.acc << ", 3, " << r.w << "\n"
           << "    xor " << r.u << ", " << r.w << ", " << r.acc << "\n"
           << "    addq " << r.acc << ", " << r.v << ", " << r.acc
           << "\n";
        return 4;
      case 5: // data-dependent skip branch
        os << "    cmplt " << r.v << ", " << r.acc << ", " << r.c << "\n"
           << "    beq " << r.c << ", " << labelBase << "\n"
           << "    subq " << r.acc << ", " << r.v << ", " << r.acc
           << "\n"
           << "    addq " << r.v << ", 1, " << r.v << "\n"
           << labelBase << ":\n";
        return 4;
      case 6: // bounded multiply-accumulate
        os << "    mulq " << r.v << ", 7, " << r.u << "\n"
           << "    addq " << r.acc << ", " << r.u << ", " << r.acc
           << "\n"
           << "    and " << r.u << ", 255, " << r.v << "\n";
        return 3;
      case 8: { // two loads, combine, store back (memory-dense)
        const uint32_t base = std::min(regionBytes, 32760u) / 8;
        const uint32_t k1 =
            static_cast<uint32_t>(rng.below(base)) * 8 % 32760;
        const uint32_t k2 =
            static_cast<uint32_t>(rng.below(base)) * 8 % 32760;
        os << "    ldq " << r.u << ", " << k1 << "(" << r.ptr << ")\n"
           << "    ldq " << r.w << ", " << k2 << "(" << r.ptr << ")\n"
           << "    addq " << r.u << ", " << r.w << ", " << r.u << "\n"
           << "    stq " << r.u << ", " << k1 << "(" << r.ptr << ")\n";
        return 4;
      }
      default: // conditional move select
        os << "    cmpeq " << r.u << ", " << r.w << ", " << r.c << "\n"
           << "    cmovne " << r.c << ", " << r.u << ", " << r.acc
           << "\n";
        return 2;
    }
}

/** Pick an idiom kind from the density profile. */
uint32_t
pickIdiom(Rng &rng, const WorkloadSpec &spec)
{
    if (rng.chance(spec.memDensity)) {
        // Weighted toward memory-dense idioms so the dynamic stream has
        // the paper's ~30% load/store fraction.
        const uint32_t memKinds[] = {0, 1, 2, 2, 3, 8, 8, 8};
        return memKinds[rng.below(8)];
    }
    if (rng.chance(spec.branchDensity /
                   std::max(1e-9, 1.0 - spec.memDensity))) {
        return 5;
    }
    const uint32_t aluKinds[] = {4, 6, 7};
    return aluKinds[rng.below(3)];
}

} // namespace

const std::vector<WorkloadSpec> &
spec2000()
{
    static const std::vector<WorkloadSpec> specs = [] {
        std::vector<WorkloadSpec> v;
        auto add = [&](const char *name, const char *kernel,
                       uint32_t kIters, uint32_t funcs, uint32_t idioms,
                       uint32_t loop, double reuse, double mem,
                       double branch, uint32_t dataKB) {
            WorkloadSpec spec;
            spec.name = name;
            spec.seed = 0x5EC0000 + v.size() * 977;
            spec.kernel = kernel;
            spec.kernelIters = kIters;
            spec.numFunctions = funcs;
            spec.idiomsPerBody = idioms;
            spec.loopIters = loop;
            spec.idiomReuse = reuse;
            spec.memDensity = mem;
            spec.branchDensity = branch;
            spec.dataKB = dataKB;
            spec.targetDynInsts = 1200000;
            v.push_back(spec);
        };
        // Note on idiomReuse: it controls how often generated idioms use
        // canonical (byte-identical) register assignments. Real compiled
        // code repeats *shapes* far more than exact register bindings,
        // which is precisely why the paper's parameterized dictionary
        // entries beat the dedicated decompressor's exact-match ones;
        // values near 0.15-0.25 reproduce that relationship (Figure 7).
        //   name       kernel      kIters funcs idm loop reuse mem  br   dataKB
        add("bzip2",    "compress", 3000,  28,  4, 40, 0.25, 0.60, 0.15, 64);
        add("crafty",   "bits",     2000, 330,  5,  6, 0.15, 0.45, 0.20, 96);
        add("eon",      "bits",     2500, 140,  5, 10, 0.20, 0.50, 0.12, 64);
        add("gap",      "arith",    3000,  45,  4, 30, 0.25, 0.55, 0.15, 48);
        add("gcc",      "arith",    1200, 200,  4,  5, 0.12, 0.55, 0.25, 80);
        add("gzip",     "compress", 2500, 270,  4,  7, 0.20, 0.60, 0.15, 128);
        add("mcf",      "chase",   20000,  30,  4, 35, 0.22, 0.65, 0.12, 256);
        add("parser",   "parse",    3000,  95,  4, 14, 0.15, 0.55, 0.25, 64);
        add("perlbmk",  "parse",    2500, 160,  4,  9, 0.15, 0.55, 0.22, 96);
        add("twolf",    "sort",       60,  60,  4, 25, 0.22, 0.60, 0.18, 48);
        add("vortex",   "chase",    8000, 120,  5, 10, 0.18, 0.65, 0.15, 256);
        add("vpr",      "sort",       50, 380,  5,  6, 0.15, 0.55, 0.20, 64);
        return v;
    }();
    return specs;
}

const WorkloadSpec &
workloadSpec(const std::string &name)
{
    for (const auto &spec : spec2000())
        if (spec.name == name)
            return spec;
    fatal("unknown workload: " + name);
}

std::string
generateWorkloadSource(const WorkloadSpec &spec)
{
    Rng rng(spec.seed);
    std::ostringstream text;
    std::ostringstream funcs;

    const uint32_t numRegions = 8;
    uint32_t regionBytes = 1024;
    while (regionBytes * numRegions < spec.dataKB * 1024u)
        regionBytes *= 2;
    const uint64_t initBytes = uint64_t(regionBytes) * numRegions;
    const uint32_t ringNodes = spec.dataKB >= 256 ? 16384 : 4096;

    // Canonical role registers (used with probability idiomReuse) make
    // idiom instances byte-identical across functions, which is what
    // unparameterized compression exploits; shuffled assignments leave
    // redundancy only parameterization can capture.
    const Roles canonical = rolesFrom(kPool);

    // ---- Generated functions. ----
    struct FuncInfo
    {
        uint64_t dynCost = 0;
        bool isCaller = false;
    };
    std::vector<FuncInfo> info(spec.numFunctions);

    for (uint32_t f = 0; f < spec.numFunctions; ++f) {
        const bool caller =
            f > 2 && rng.chance(0.12) && spec.numFunctions > 8;
        info[f].isCaller = caller;
        funcs << "f" << f << ":\n";
        if (caller) {
            // Save the return address, call a few earlier leaves.
            funcs << "    lda sp, -16(sp)\n    stq ra, 0(sp)\n";
            const uint32_t calls = 2 + rng.below(2);
            uint64_t cost = 8;
            for (uint32_t c = 0; c < calls; ++c) {
                uint32_t target = rng.below(f);
                if (info[target].isCaller)
                    target = 0; // keep the call graph two-deep
                funcs << "    call f" << target << "\n";
                cost += info[target].dynCost + 1;
            }
            funcs << "    ldq ra, 0(sp)\n    lda sp, 16(sp)\n    ret\n";
            info[f].dynCost = cost;
            continue;
        }

        Roles roles;
        if (rng.chance(spec.idiomReuse)) {
            roles = canonical;
        } else {
            std::vector<RegIndex> regs = kPool;
            for (size_t i = regs.size(); i > 1; --i)
                std::swap(regs[i - 1], regs[rng.below(i)]);
            roles = rolesFrom(regs);
        }
        const uint32_t region = rng.below(numRegions);
        funcs << "    laq arr" << region << ", " << roles.ptr << "\n"
              << "    li " << regionBytes << ", " << roles.lim << "\n"
              << "    mov zero, " << roles.off << "\n"
              << "    mov zero, " << roles.acc << "\n"
              << "    li " << (17 + rng.below(200)) << ", " << roles.v
              << "\n"
              << "    mov zero, " << roles.u << "\n"
              << "    mov zero, " << roles.w << "\n"
              << "    li " << spec.loopIters << ", " << roles.k << "\n";
        funcs << "f" << f << "_l:\n";
        uint32_t bodyInsts = 0;
        for (uint32_t b = 0; b < spec.idiomsPerBody; ++b) {
            const std::string label =
                strFormat("f%u_s%u", f, b);
            bodyInsts += emitIdiom(funcs, rng, roles, regionBytes, label,
                                   pickIdiom(rng, spec));
        }
        funcs << "    subq " << roles.k << ", 1, " << roles.k << "\n"
              << "    bne " << roles.k << ", f" << f << "_l\n";
        // Fold the accumulator into the shared checksum.
        funcs << "    laq chk, " << roles.u << "\n"
              << "    ldq " << roles.w << ", 0(" << roles.u << ")\n"
              << "    xor " << roles.w << ", " << roles.acc << ", "
              << roles.w << "\n"
              << "    stq " << roles.w << ", 0(" << roles.u << ")\n"
              << "    ret\n";
        info[f].dynCost =
            12 + uint64_t(spec.loopIters) * (bodyInsts + 2) + 8;
    }

    // ---- Dynamic length budget. ----
    uint64_t perPass = kernelDynCost(spec.kernel, spec.kernelIters) + 2;
    for (uint32_t f = 0; f < spec.numFunctions; ++f)
        perPass += info[f].dynCost + 1;
    const uint64_t initCost = (initBytes / 8) * 5 + 8;
    uint64_t driverIters = 2;
    if (spec.targetDynInsts > initCost + 2 * perPass) {
        driverIters = std::max<uint64_t>(
            2, (spec.targetDynInsts - initCost) / perPass);
    }

    // ---- Main, data init, driver. ----
    text << "    .text\n";
    text << "main:\n";
    text << "    laq arr0, t0\n"
         << "    li " << (initBytes / 8) << ", t1\n"
         << "    li 12345, t2\n"
         << "    li 25173, t3\n"
         << "init_l:\n"
         << "    mulq t2, t3, t2\n"
         << "    addq t2, 239, t2\n"
         << "    stq t2, 0(t0)\n"
         << "    lda t0, 8(t0)\n"
         << "    subq t1, 1, t1\n"
         << "    bne t1, init_l\n";
    text << "    li " << driverIters << ", fp\n";
    text << "driver:\n";
    text << "    call kernel\n";
    for (uint32_t f = 0; f < spec.numFunctions; ++f)
        text << "    call f" << f << "\n";
    text << "    subq fp, 1, fp\n"
         << "    bne fp, driver\n";
    // Print the checksum and exit cleanly.
    text << "    laq chk, t0\n"
         << "    ldq a0, 0(t0)\n"
         << "    li 2, v0\n"
         << "    syscall\n"
         << "    li 0, v0\n"
         << "    li 0, a0\n"
         << "    syscall\n";
    // MFI error handler: exit(42).
    text << "error:\n"
         << "    li 0, v0\n"
         << "    li 42, a0\n"
         << "    syscall\n";

    text << kernelText(spec.kernel, spec.kernelIters);
    text << funcs.str();

    // ---- Data. ----
    text << "    .data\n";
    for (uint32_t r = 0; r < numRegions; ++r)
        text << "arr" << r << ":\n    .space " << regionBytes << "\n";
    // Kernel data sits after the LCG-initialized window (the chase ring
    // holds pointers that must survive).
    text << kernelData(spec.kernel, ringNodes);
    text << "chk:\n    .quad 0\n";
    return text.str();
}

Program
buildWorkload(const WorkloadSpec &spec)
{
    return assemble(generateWorkloadSource(spec));
}

Program
buildWorkload(const std::string &name)
{
    return buildWorkload(workloadSpec(name));
}

} // namespace dise
