#include "src/workloads/kernels.hpp"

#include "src/common/logging.hpp"

namespace dise {

namespace {

/** Shared epilogue: fold t2 into the checksum cell and return. */
const char *kFold =
    "    laq chk, t9\n"
    "    ldq t10, 0(t9)\n"
    "    xor t10, t2, t10\n"
    "    addq t10, 1, t10\n"
    "    stq t10, 0(t9)\n"
    "    ret\n";

std::string
compressKernel(uint32_t iters)
{
    // bzip2/gzip flavour: byte scan with histogram update and run-length
    // state; load/store heavy with a data-dependent branch.
    return strFormat(
        "kernel:\n"
        "    laq kbuf, t0\n"
        "    laq khist, t1\n"
        "    li %u, t2\n"
        "    mov zero, t3\n"
        "    mov zero, t4\n"
        "    mov t2, t11\n"
        "kc_loop:\n"
        "    ldbu t5, 0(t0)\n"
        "    lda t0, 1(t0)\n"
        "    and t5, 63, t5\n"
        "    sll t5, 3, t6\n"
        "    addq t1, t6, t6\n"
        "    ldq t7, 0(t6)\n"
        "    addq t7, 1, t7\n"
        "    stq t7, 0(t6)\n"
        "    cmpeq t5, t4, t8\n"
        "    beq t8, kc_newrun\n"
        "    addq t3, 1, t3\n"
        "    br zero, kc_next\n"
        "kc_newrun:\n"
        "    addq t2, t3, t2\n"
        "    mov zero, t3\n"
        "    mov t5, t4\n"
        "kc_next:\n"
        "    subq t11, 1, t11\n"
        "    bne t11, kc_loop\n"
        "%s",
        iters, kFold);
}

std::string
chaseKernel(uint32_t iters)
{
    // mcf/vortex flavour: pointer chasing over a shuffled ring with a
    // dependent payload update (cache-hostile, low ILP).
    return strFormat(
        "kernel:\n"
        "    laq kring, t0\n"
        "    li %u, t1\n"
        "    mov zero, t2\n"
        "kh_loop:\n"
        "    ldq t3, 8(t0)\n"
        "    addq t2, t3, t2\n"
        "    stq t2, 8(t0)\n"
        "    ldq t0, 0(t0)\n"
        "    subq t1, 1, t1\n"
        "    bne t1, kh_loop\n"
        "%s",
        iters, kFold);
}

std::string
parseKernel(uint32_t iters)
{
    // parser/perlbmk flavour: byte-driven state machine with
    // hard-to-predict multiway branches.
    return strFormat(
        "kernel:\n"
        "    laq kbuf, t0\n"
        "    li %u, t1\n"
        "    mov zero, t2\n"
        "    mov zero, t3\n"
        "kp_loop:\n"
        "    ldbu t4, 0(t0)\n"
        "    lda t0, 1(t0)\n"
        "    and t4, 63, t5\n"
        "    cmplt t5, 10, t6\n"
        "    bne t6, kp_digit\n"
        "    cmplt t5, 40, t6\n"
        "    bne t6, kp_alpha\n"
        "    addq t3, 1, t3\n"
        "    addq t2, t3, t2\n"
        "    br zero, kp_next\n"
        "kp_digit:\n"
        "    sll t2, 1, t2\n"
        "    addq t2, t4, t2\n"
        "    br zero, kp_next\n"
        "kp_alpha:\n"
        "    xor t2, t4, t2\n"
        "kp_next:\n"
        "    subq t1, 1, t1\n"
        "    bne t1, kp_loop\n"
        "%s",
        iters, kFold);
}

std::string
bitsKernel(uint32_t iters)
{
    // crafty/eon flavour: xorshift bit mixing, table update, multiply.
    return strFormat(
        "kernel:\n"
        "    li %u, t0\n"
        "    li 305419896, t1\n"
        "    laq ktab, t6\n"
        "    mov zero, t2\n"
        "kb_loop:\n"
        "    sll t1, 13, t3\n"
        "    xor t1, t3, t1\n"
        "    srl t1, 7, t3\n"
        "    xor t1, t3, t1\n"
        "    sll t1, 17, t3\n"
        "    xor t1, t3, t1\n"
        "    and t1, 255, t4\n"
        "    sll t4, 3, t4\n"
        "    addq t6, t4, t5\n"
        "    ldq t7, 0(t5)\n"
        "    mulq t1, 37, t8\n"
        "    addq t7, t8, t7\n"
        "    stq t7, 0(t5)\n"
        "    addq t2, t7, t2\n"
        "    subq t0, 1, t0\n"
        "    bne t0, kb_loop\n"
        "%s",
        iters, kFold);
}

std::string
sortKernel(uint32_t iters)
{
    // twolf/vpr flavour: compare-and-swap passes over an array.
    return strFormat(
        "kernel:\n"
        "    li %u, t0\n"
        "    mov zero, t2\n"
        "ks_pass:\n"
        "    laq karr, t1\n"
        "    li 255, t6\n"
        "ks_inner:\n"
        "    ldq t3, 0(t1)\n"
        "    ldq t4, 8(t1)\n"
        "    cmple t3, t4, t5\n"
        "    bne t5, ks_skip\n"
        "    stq t4, 0(t1)\n"
        "    stq t3, 8(t1)\n"
        "    addq t2, 1, t2\n"
        "ks_skip:\n"
        "    lda t1, 8(t1)\n"
        "    subq t6, 1, t6\n"
        "    bne t6, ks_inner\n"
        "    subq t0, 1, t0\n"
        "    bne t0, ks_pass\n"
        "%s",
        iters, kFold);
}

std::string
arithKernel(uint32_t iters)
{
    // gap/gcc flavour: multiply-accumulate recurrence.
    return strFormat(
        "kernel:\n"
        "    li %u, t0\n"
        "    li 3, t1\n"
        "    mov zero, t2\n"
        "ka_loop:\n"
        "    mulq t1, t1, t3\n"
        "    addq t3, 7, t3\n"
        "    and t3, 255, t1\n"
        "    addq t1, 3, t1\n"
        "    mulq t1, 5, t4\n"
        "    addq t2, t4, t2\n"
        "    subq t0, 1, t0\n"
        "    bne t0, ka_loop\n"
        "%s",
        iters, kFold);
}

} // namespace

std::string
kernelText(const std::string &family, uint32_t iters)
{
    if (family == "compress")
        return compressKernel(iters);
    if (family == "chase")
        return chaseKernel(iters);
    if (family == "parse")
        return parseKernel(iters);
    if (family == "bits")
        return bitsKernel(iters);
    if (family == "sort")
        return sortKernel(iters);
    if (family == "arith")
        return arithKernel(iters);
    fatal("unknown kernel family: " + family);
}

std::string
kernelData(const std::string &family, uint32_t ringNodes)
{
    std::string data;
    if (family == "compress" || family == "parse") {
        data += "kbuf:\n    .space 8192\n";
        data += "khist:\n    .space 2048\n";
    } else if (family == "chase") {
        // A shuffled ring: next pointers stride through the nodes with a
        // step coprime to the count, payloads start distinct.
        data += "kring:\n";
        const uint32_t n = ringNodes;
        const uint32_t step = (n / 2) | 1; // odd => coprime with pow2 n
        for (uint32_t i = 0; i < n; ++i) {
            const uint32_t next = (i + step) % n;
            // Payloads stay below the text segment base so nothing in
            // data can be mistaken for (or abused as) a code pointer.
            data += strFormat("    .quad kring+%u, %u\n", next * 16,
                              (i * 2654435761u) & 0x3ffffffu);
        }
    } else if (family == "bits") {
        data += "ktab:\n    .space 2048\n";
    } else if (family == "sort") {
        data += "karr:\n";
        uint32_t x = 123456789;
        for (unsigned i = 0; i < 256; ++i) {
            x = x * 1103515245u + 12345u;
            data += strFormat("    .quad %u\n", x >> 8);
        }
    }
    return data;
}

uint64_t
kernelDynCost(const std::string &family, uint32_t iters)
{
    // Instructions per inner iteration (approximate, from the listings).
    uint64_t perIter = 8;
    if (family == "compress")
        perIter = 13;
    else if (family == "chase")
        perIter = 5;
    else if (family == "parse")
        perIter = 9;
    else if (family == "bits")
        perIter = 15;
    else if (family == "sort")
        perIter = 8 * 255 / 255 + 7; // inner pass ~8/elt
    else if (family == "arith")
        perIter = 8;
    if (family == "sort")
        return uint64_t(iters) * 255 * 8;
    return uint64_t(iters) * perIter;
}

} // namespace dise
