/**
 * @file
 * Seeded random Alpha-program generator.
 *
 * Feeds the fusion differential harness (`diserun --gen-diff`): each
 * seed deterministically produces a program that is guaranteed to
 *
 *  - assemble (only mnemonics/operand shapes the assembler defines),
 *  - terminate (every loop counts a pre-loaded counter down; all other
 *    branches are forward),
 *  - avoid undefined traps (every register is initialized before the
 *    body runs; memory operands are masked into one aligned in-bounds
 *    data region; the only syscalls are the checksum print and exit).
 *
 * The instruction mix is weighted toward the dependent pairs the
 * fusion ACF matches (cmp+branch, ldah/lda and lda+load/store address
 * formation, shift+add indexing, load+op), including deliberately
 * adversarial placements — forward branches landing on the *second*
 * word of a fusible pair — so the differential harness exercises the
 * decode-window edge cases, not just the happy path.
 *
 * Seed policy: the same seed always yields byte-identical source
 * (Rng is xoshiro256**, fixed across hosts). Harnesses derive
 * per-program seeds from a base seed with Rng::deriveSeed(base, i) so
 * one reported seed reproduces one failing program exactly.
 */

#ifndef DISE_WORKLOADS_GENERATOR_HPP
#define DISE_WORKLOADS_GENERATOR_HPP

#include <string>

#include "src/assembler/program.hpp"

namespace dise {

/** Shape knobs for one generated program. */
struct GeneratorOptions
{
    uint64_t seed = 1;
    /** Idiom count of the main loop body (static size driver). */
    uint32_t minIdioms = 12;
    uint32_t maxIdioms = 48;
    /** Outer-loop trip-count range. */
    uint32_t minIters = 4;
    uint32_t maxIters = 32;
};

/** Generate the assembly source for one seed. */
std::string generateRandomSource(const GeneratorOptions &opts);

/** Generate and assemble one seed's program. */
Program generateRandomProgram(const GeneratorOptions &opts);

} // namespace dise

#endif // DISE_WORKLOADS_GENERATOR_HPP
