/**
 * @file
 * Single-flight build cache: a concurrent map where at most one caller
 * runs the (expensive) builder per key; everyone else blocks on the
 * in-flight build and shares its result. Used by the bench harness so
 * sharded workers never build the same workload twice, and by the
 * serving layer as an idempotent result cache.
 */

#ifndef DISE_COMMON_SINGLEFLIGHT_HPP
#define DISE_COMMON_SINGLEFLIGHT_HPP

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <map>
#include <mutex>
#include <utility>

namespace dise {

/**
 * A keyed cache whose values are built at most once each.
 *
 * get(key, build) returns a reference to the cached value, calling
 * build() exactly once per key across all threads: the first caller to
 * miss becomes the builder (the lock is released while build() runs);
 * concurrent callers for the same key wait for it. References stay
 * valid for the cache's lifetime (std::map nodes are stable).
 *
 * A builder that throws propagates the exception to itself and every
 * waiter. What happens to the key afterwards is the constructor's
 * choice:
 *
 *  - retryFailures = false (default): the key stays failed and later
 *    get() calls rethrow without retrying — right when a failed build
 *    is fatal anyway (the benches).
 *  - retryFailures = true: the failure is not cached; the next get()
 *    for the key becomes a fresh builder. Right when the builder can
 *    fail for reasons of the *request* rather than the key (a warmup
 *    that traps, a cancelled run) and one bad caller must not poison
 *    the key for well-formed retries. Still single-flight: concurrent
 *    callers never build the same key twice at once, and each get()
 *    runs the builder at most once before returning or throwing.
 */
template <typename Key, typename Value>
class SingleFlightCache
{
  public:
    explicit SingleFlightCache(bool retryFailures = false)
        : retryFailures_(retryFailures)
    {
    }

    template <typename Build>
    const Value &
    get(const Key &key, Build &&build)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        Entry &entry = entries_[key];
        for (;;) {
            if (entry.state == State::Ready)
                return entry.value;
            if (entry.state == State::Failed) {
                if (!retryFailures_)
                    std::rethrow_exception(entry.error);
                entry.state = State::Empty;
            }
            if (entry.state == State::Empty) {
                entry.state = State::Building;
                lock.unlock();
                try {
                    Value built = build();
                    lock.lock();
                    entry.value = std::move(built);
                    entry.state = State::Ready;
                } catch (...) {
                    lock.lock();
                    entry.error = std::current_exception();
                    entry.state = State::Failed;
                    ready_.notify_all();
                    std::rethrow_exception(entry.error);
                }
                ready_.notify_all();
                return entry.value;
            }
            // Building: wait out the in-flight build, then re-examine.
            ready_.wait(lock, [&entry] {
                return entry.state != State::Building;
            });
        }
    }

    /** Number of keys present (Ready, Failed, or Building). */
    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return entries_.size();
    }

  private:
    enum class State { Empty, Building, Ready, Failed };

    struct Entry
    {
        State state = State::Empty;
        Value value{};
        std::exception_ptr error;
    };

    const bool retryFailures_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::map<Key, Entry> entries_;
};

} // namespace dise

#endif // DISE_COMMON_SINGLEFLIGHT_HPP
