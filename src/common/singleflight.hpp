/**
 * @file
 * Single-flight build cache: a concurrent map where at most one caller
 * runs the (expensive) builder per key; everyone else blocks on the
 * in-flight build and shares its result. Used by the bench harness so
 * sharded workers never build the same workload twice, and by the
 * serving layer as an idempotent result cache.
 */

#ifndef DISE_COMMON_SINGLEFLIGHT_HPP
#define DISE_COMMON_SINGLEFLIGHT_HPP

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <list>
#include <map>
#include <mutex>
#include <utility>

namespace dise {

/**
 * A keyed cache whose values are built at most once each.
 *
 * get(key, build) returns a reference to the cached value, calling
 * build() exactly once per key across all threads: the first caller to
 * miss becomes the builder (the lock is released while build() runs);
 * concurrent callers for the same key wait for it.
 *
 * A builder that throws propagates the exception to itself and every
 * waiter. What happens to the key afterwards is the constructor's
 * choice:
 *
 *  - retryFailures = false (default): the key stays failed and later
 *    get() calls rethrow without retrying — right when a failed build
 *    is fatal anyway (the benches).
 *  - retryFailures = true: the failure is not cached; the next get()
 *    for the key becomes a fresh builder. Right when the builder can
 *    fail for reasons of the *request* rather than the key (a warmup
 *    that traps, a cancelled run) and one bad caller must not poison
 *    the key for well-formed retries. Still single-flight: concurrent
 *    callers never build the same key twice at once, and each get()
 *    runs the builder at most once before returning or throwing.
 *
 * maxEntries = 0 (default) never evicts, so references get() returns
 * stay valid for the cache's lifetime (std::map nodes are stable).
 * maxEntries > 0 bounds the cache: once more keys than that exist,
 * inserting a new one evicts least-recently-used entries — but never
 * one that is mid-build or that a get()/getCopy() call is currently
 * touching, so the bound is soft while keys are in use. With eviction
 * on, a reference from get() can dangle as soon as the internal lock
 * is released; use getCopy(), which copies the value out under the
 * lock, instead.
 */
template <typename Key, typename Value>
class SingleFlightCache
{
  public:
    explicit SingleFlightCache(bool retryFailures = false,
                               size_t maxEntries = 0)
        : retryFailures_(retryFailures), maxEntries_(maxEntries)
    {
    }

    template <typename Build>
    const Value &
    get(const Key &key, Build &&build)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        return acquire(key, build, lock);
    }

    /** Like get(), but returns the value by copy, made before the
     *  cache lock is released — the only safe accessor when
     *  maxEntries > 0, where concurrent eviction can invalidate the
     *  reference get() hands out. */
    template <typename Build>
    Value
    getCopy(const Key &key, Build &&build)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        return acquire(key, build, lock);
    }

    /** Number of keys present (Ready, Failed, or Building). */
    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return entries_.size();
    }

  private:
    enum class State { Empty, Building, Ready, Failed };

    struct Entry
    {
        State state = State::Empty;
        Value value{};
        std::exception_ptr error;
        size_t refs = 0; ///< get()/getCopy() calls touching this entry
        typename std::list<Key>::iterator lruIt;
    };

    /** Decrements Entry::refs on every exit path; the caller holds the
     *  cache mutex whenever this destructs. */
    struct RefGuard
    {
        Entry &entry;
        ~RefGuard() { --entry.refs; }
    };

    /** Core of get()/getCopy(). @p lock is held on entry and on every
     *  exit (normal or throwing); it is released only around build().
     *  The returned reference is valid while the lock stays held. */
    template <typename Build>
    Value &
    acquire(const Key &key, Build &&build,
            std::unique_lock<std::mutex> &lock)
    {
        const auto emplaced = entries_.emplace(key, Entry{});
        Entry &entry = emplaced.first->second;
        if (emplaced.second) {
            lru_.push_front(key);
            entry.lruIt = lru_.begin();
        }
        ++entry.refs;
        RefGuard guard{entry};
        if (emplaced.second)
            evictOver(); // refs protects the key just inserted
        for (;;) {
            if (entry.state == State::Ready) {
                touch(entry);
                return entry.value;
            }
            if (entry.state == State::Failed) {
                if (!retryFailures_)
                    std::rethrow_exception(entry.error);
                entry.state = State::Empty;
            }
            if (entry.state == State::Empty) {
                entry.state = State::Building;
                lock.unlock();
                try {
                    Value built = build();
                    lock.lock();
                    entry.value = std::move(built);
                    entry.state = State::Ready;
                } catch (...) {
                    lock.lock();
                    entry.error = std::current_exception();
                    entry.state = State::Failed;
                    ready_.notify_all();
                    std::rethrow_exception(entry.error);
                }
                ready_.notify_all();
                touch(entry);
                // Keys built concurrently are all mid-build when each
                // is inserted, so insertion-time eviction skips them;
                // shrink back under the cap as each build lands (this
                // entry is ref-protected).
                evictOver();
                return entry.value;
            }
            // Building: wait out the in-flight build, then re-examine.
            ready_.wait(lock, [&entry] {
                return entry.state != State::Building;
            });
        }
    }

    void
    touch(Entry &entry)
    {
        lru_.splice(lru_.begin(), lru_, entry.lruIt);
    }

    /** Evict least-recently-used entries until back under the cap,
     *  skipping entries that are mid-build or in use. Caller holds
     *  the mutex. */
    void
    evictOver()
    {
        if (maxEntries_ == 0 || entries_.size() <= maxEntries_)
            return;
        for (auto it = std::prev(lru_.end());;) {
            const auto entryIt = entries_.find(*it);
            const bool evictable =
                entryIt->second.state != State::Building &&
                entryIt->second.refs == 0;
            const bool atFront = it == lru_.begin();
            const auto victim = it;
            if (!atFront)
                --it;
            if (evictable) {
                entries_.erase(entryIt);
                lru_.erase(victim);
                if (entries_.size() <= maxEntries_)
                    return;
            }
            if (atFront)
                return;
        }
    }

    const bool retryFailures_;
    const size_t maxEntries_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::map<Key, Entry> entries_;
    std::list<Key> lru_; ///< most-recently-used first
};

} // namespace dise

#endif // DISE_COMMON_SINGLEFLIGHT_HPP
