/**
 * @file
 * Single-flight build cache: a concurrent map where at most one caller
 * runs the (expensive) builder per key; everyone else blocks on the
 * in-flight build and shares its result. Used by the bench harness so
 * sharded workers never build the same workload twice.
 */

#ifndef DISE_COMMON_SINGLEFLIGHT_HPP
#define DISE_COMMON_SINGLEFLIGHT_HPP

#include <condition_variable>
#include <exception>
#include <map>
#include <mutex>
#include <utility>

namespace dise {

/**
 * A keyed cache whose values are built at most once each.
 *
 * get(key, build) returns a reference to the cached value, calling
 * build() exactly once per key across all threads: the first caller to
 * miss becomes the builder (the lock is released while build() runs);
 * concurrent callers for the same key wait for it. References stay
 * valid for the cache's lifetime (std::map nodes are stable).
 *
 * A builder that throws propagates the exception to itself and every
 * waiter, and leaves the key failed: later get() calls rethrow without
 * retrying (the benches treat a failed build as fatal anyway).
 */
template <typename Key, typename Value>
class SingleFlightCache
{
  public:
    template <typename Build>
    const Value &
    get(const Key &key, Build &&build)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        Entry &entry = entries_[key];
        if (entry.state == State::Empty) {
            entry.state = State::Building;
            lock.unlock();
            try {
                Value built = build();
                lock.lock();
                entry.value = std::move(built);
                entry.state = State::Ready;
            } catch (...) {
                lock.lock();
                entry.error = std::current_exception();
                entry.state = State::Failed;
            }
            ready_.notify_all();
        } else {
            ready_.wait(lock, [&entry] {
                return entry.state == State::Ready ||
                       entry.state == State::Failed;
            });
        }
        if (entry.state == State::Failed)
            std::rethrow_exception(entry.error);
        return entry.value;
    }

  private:
    enum class State { Empty, Building, Ready, Failed };

    struct Entry
    {
        State state = State::Empty;
        Value value{};
        std::exception_ptr error;
    };

    std::mutex mutex_;
    std::condition_variable ready_;
    std::map<Key, Entry> entries_;
};

} // namespace dise

#endif // DISE_COMMON_SINGLEFLIGHT_HPP
