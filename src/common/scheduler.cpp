#include "src/common/scheduler.hpp"

#include "src/common/logging.hpp"

namespace dise {

namespace {

/**
 * The batch state of the task this thread is currently executing;
 * null outside task bodies. Serves two purposes: a nested runBatch
 * from a task thread must run inline (taking a pool slot for a
 * blocking wait would deadlock the pool) and shares its enclosing
 * batch's cancellation flag, and cancel()/cancelled() from a task
 * address that task's own batch — never a concurrent one.
 */
thread_local void *tlsBatchState = nullptr;

} // namespace

SimScheduler::SimScheduler(unsigned workers)
    : workers_(workers == 0 ? 1 : workers)
{
    if (workers_ <= 1)
        return;
    deques_.resize(workers_);
    threads_.reserve(workers_);
    for (unsigned w = 0; w < workers_; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

SimScheduler::~SimScheduler()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // A live batch would leave workers touching freed state; this
        // is a host-code bug, not a recoverable condition.
        if (tasks_ != nullptr)
            std::terminate();
        stop_ = true;
    }
    workCv_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

void
SimScheduler::cancel()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (tlsBatchState != nullptr) {
        // From inside a task: cancel the batch that task belongs to.
        static_cast<BatchState *>(tlsBatchState)->cancelled = true;
        return;
    }
    // From outside: the pool batch is the only addressable one.
    // Idle scheduler: nothing to cancel — a later batch must start
    // uncancelled, so this is a genuine no-op.
    if (tasks_ != nullptr)
        poolBatch_.cancelled = true;
}

bool
SimScheduler::cancelled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (tlsBatchState != nullptr)
        return static_cast<BatchState *>(tlsBatchState)->cancelled;
    return tasks_ != nullptr && poolBatch_.cancelled;
}

SimScheduler::BatchStats
SimScheduler::runInline(std::vector<std::function<void()>> &tasks)
{
    // A nested batch shares its enclosing batch's cancellation flag —
    // a cancel there cancels both. A top-level inline batch gets a
    // fresh flag of its own, invisible to any concurrent batch.
    BatchState local;
    BatchState *const state =
        tlsBatchState != nullptr ? static_cast<BatchState *>(tlsBatchState)
                                 : &local;
    BatchStats stats;
    std::exception_ptr error;
    for (auto &task : tasks) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (state->cancelled) {
                ++stats.skipped;
                continue;
            }
        }
        void *const wasBatch = tlsBatchState;
        tlsBatchState = state;
        try {
            task();
            ++stats.completed;
        } catch (...) {
            ++stats.completed;
            if (!error)
                error = std::current_exception();
            std::lock_guard<std::mutex> lock(mutex_);
            state->cancelled = true;
        }
        tlsBatchState = wasBatch;
    }
    if (error)
        std::rethrow_exception(error);
    return stats;
}

SimScheduler::BatchStats
SimScheduler::runBatch(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return BatchStats{};

    // Inline paths: no pool, or a nested submission from a task of
    // this (or any) scheduler. The nested case keeps its enclosing
    // batch's cancellation flag — a cancel() there cancels both; a
    // top-level inline batch gets a fresh flag inside runInline.
    if (workers_ <= 1 || tlsBatchState != nullptr)
        return runInline(tasks);

    std::unique_lock<std::mutex> lock(mutex_);
    if (tasks_ != nullptr) {
        // A second thread submitted while a batch is in flight; run it
        // inline rather than corrupting the pool's batch state.
        lock.unlock();
        return runInline(tasks);
    }
    tasks_ = &tasks;
    pending_ = tasks.size();
    poolBatch_.cancelled = false;
    error_ = nullptr;
    completed_ = 0;
    skipped_ = 0;
    for (size_t i = 0; i < tasks.size(); ++i)
        deques_[i % workers_].push_back(i);
    ++batchGen_;
    workCv_.notify_all();
    doneCv_.wait(lock, [this] { return pending_ == 0; });
    tasks_ = nullptr;
    const BatchStats stats{completed_, skipped_};
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    if (error)
        std::rethrow_exception(error);
    return stats;
}

bool
SimScheduler::popTask(unsigned self, size_t &index)
{
    // Own work first, newest-first (cache-warm); then steal the oldest
    // task of the fullest other deque.
    if (!deques_[self].empty()) {
        index = deques_[self].back();
        deques_[self].pop_back();
        return true;
    }
    size_t victim = workers_;
    size_t most = 0;
    for (unsigned w = 0; w < workers_; ++w) {
        if (w != self && deques_[w].size() > most) {
            most = deques_[w].size();
            victim = w;
        }
    }
    if (victim == workers_)
        return false;
    index = deques_[victim].front();
    deques_[victim].pop_front();
    return true;
}

void
SimScheduler::finishOne()
{
    if (--pending_ == 0)
        doneCv_.notify_all();
}

void
SimScheduler::runTasks(unsigned self, std::unique_lock<std::mutex> &lock)
{
    size_t index = 0;
    while (popTask(self, index)) {
        if (poolBatch_.cancelled) {
            ++skipped_;
            finishOne();
            continue;
        }
        lock.unlock();
        tlsBatchState = &poolBatch_;
        std::exception_ptr error;
        try {
            (*tasks_)[index]();
        } catch (...) {
            error = std::current_exception();
        }
        tlsBatchState = nullptr;
        lock.lock();
        ++completed_;
        if (error) {
            if (!error_)
                error_ = error;
            poolBatch_.cancelled = true;
        }
        finishOne();
    }
}

void
SimScheduler::workerLoop(unsigned self)
{
    std::unique_lock<std::mutex> lock(mutex_);
    uint64_t seenGen = 0;
    for (;;) {
        workCv_.wait(lock, [this, seenGen] {
            return stop_ || (tasks_ != nullptr && batchGen_ != seenGen);
        });
        if (stop_)
            return;
        seenGen = batchGen_;
        runTasks(self, lock);
    }
}

} // namespace dise
