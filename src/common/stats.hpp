/**
 * @file
 * Lightweight statistics counters and registries.
 *
 * Every simulation component exposes its counters through a StatGroup so
 * that tests and benches can introspect them by name without knowing the
 * component's concrete type.
 */

#ifndef DISE_COMMON_STATS_HPP
#define DISE_COMMON_STATS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dise {

/** A named group of scalar counters. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Increment (creating if necessary) the counter @p key. */
    void add(const std::string &key, uint64_t delta = 1);

    /** Set a counter to an absolute value. */
    void set(const std::string &key, uint64_t value);

    /** Read a counter; returns 0 when absent. */
    uint64_t get(const std::string &key) const;

    /** All counters in insertion-independent (sorted) order. */
    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }

    /** Reset every counter to zero. */
    void reset();

    /** Render as "group.key value" lines. */
    std::string dump() const;

  private:
    std::string name_;
    std::map<std::string, uint64_t> counters_;
};

/** Ratio helper that tolerates zero denominators. */
double safeRatio(double num, double den);

} // namespace dise

#endif // DISE_COMMON_STATS_HPP
