/**
 * @file
 * Lightweight statistics counters and registries.
 *
 * Every simulation component exposes its counters through a StatGroup so
 * that tests and benches can introspect them by name without knowing the
 * component's concrete type. A StatsRegistry aggregates the groups of a
 * whole simulator instance under hierarchical dotted names ("mem.l1i",
 * "dise", "pipeline"), adds registry-owned scalars (host wall clock,
 * run metadata) and derived ratios (miss rates, CPI), and serializes
 * everything to JSON for machine-readable artifacts.
 */

#ifndef DISE_COMMON_STATS_HPP
#define DISE_COMMON_STATS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/json.hpp"

namespace dise {

/** A named group of scalar counters. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Increment (creating if necessary) the counter @p key. */
    void add(const std::string &key, uint64_t delta = 1);

    /** Set a counter to an absolute value. */
    void set(const std::string &key, uint64_t value);

    /** Read a counter; returns 0 when absent. */
    uint64_t get(const std::string &key) const;

    /**
     * Stable pointer to the counter cell for @p key (created at 0 if
     * absent). Hot paths bump the cell directly, skipping the map
     * lookup and string construction of add(); map nodes never move,
     * so the pointer stays valid until the map itself is replaced
     * (copy-assignment from another StatGroup, e.g. a snapshot
     * restore) — holders must re-derive their cells after that.
     */
    uint64_t *cell(const std::string &key) { return &counters_[key]; }

    /** All counters in insertion-independent (sorted) order. */
    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }

    /** Reset every counter to zero. */
    void reset();

    /** Render as "group.key value" lines. */
    std::string dump() const;

  private:
    std::string name_;
    std::map<std::string, uint64_t> counters_;
};

/** Ratio helper that tolerates zero denominators. */
double safeRatio(double num, double den);

/**
 * A view over the StatGroups of one simulator instance.
 *
 * Components register their groups under hierarchical dotted paths; the
 * registry does not own them and reads their counters lazily, so it must
 * be serialized while the components are still alive. Registry-owned
 * scalars carry values that live outside any component (wall-clock time,
 * run outcome), and derived ratios are computed from two counter paths
 * at serialization time.
 */
class StatsRegistry
{
  public:
    /** Register @p group under @p path (e.g. "mem.l1i"); not owned. */
    void add(const std::string &path, const StatGroup *group);

    /** Set a registry-owned scalar (number, string, bool...). */
    void set(const std::string &path, Json value);

    /**
     * Define a derived ratio at @p path computed as the counter (or
     * scalar) at @p numPath over the one at @p denPath; a zero
     * denominator yields 0 (safeRatio).
     */
    void addRatio(const std::string &path, const std::string &numPath,
                  const std::string &denPath);

    /**
     * Read one value by full dotted path — a group counter
     * ("mem.l1i.misses"), a registry scalar, or a derived ratio.
     * Returns 0 for unknown paths (mirrors StatGroup::get).
     */
    double value(const std::string &path) const;

    /**
     * Serialize to a JSON object nested along the dotted paths:
     * {"mem": {"l1i": {"misses": 63, "miss_rate": 0.0027, ...}}}.
     */
    Json toJson() const;

    /** Flat "path value" text lines, sorted by path (debugging). */
    std::string dump() const;

  private:
    /** Numeric lookup without ratio resolution (ratio inputs). */
    bool rawValue(const std::string &path, double &out) const;

    struct Ratio
    {
        std::string path;
        std::string numPath;
        std::string denPath;
    };

    std::map<std::string, const StatGroup *> groups_;
    std::map<std::string, Json> scalars_;
    std::vector<Ratio> ratios_;
};

} // namespace dise

#endif // DISE_COMMON_STATS_HPP
