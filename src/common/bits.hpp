/**
 * @file
 * Bit-manipulation utilities shared by the ISA, DISE engine and caches.
 */

#ifndef DISE_COMMON_BITS_HPP
#define DISE_COMMON_BITS_HPP

#include <cstdint>
#include <type_traits>

namespace dise {

/**
 * Extract the bit field [lo, lo+width) from a value.
 *
 * @param value Source word.
 * @param lo Least-significant bit of the field.
 * @param width Field width in bits (1..64).
 * @return The field, right-justified and zero-extended.
 */
constexpr uint64_t
bits(uint64_t value, unsigned lo, unsigned width)
{
    if (width >= 64)
        return value >> lo;
    return (value >> lo) & ((uint64_t(1) << width) - 1);
}

/**
 * Insert a field into a word at [lo, lo+width), replacing the old contents.
 */
constexpr uint64_t
insertBits(uint64_t word, unsigned lo, unsigned width, uint64_t field)
{
    const uint64_t mask =
        (width >= 64) ? ~uint64_t(0) : ((uint64_t(1) << width) - 1);
    return (word & ~(mask << lo)) | ((field & mask) << lo);
}

/**
 * Sign-extend the low @p width bits of a value to 64 bits.
 */
constexpr int64_t
signExtend(uint64_t value, unsigned width)
{
    if (width == 0 || width >= 64)
        return static_cast<int64_t>(value);
    const uint64_t sign = uint64_t(1) << (width - 1);
    const uint64_t masked = value & ((uint64_t(1) << width) - 1);
    return static_cast<int64_t>((masked ^ sign) - sign);
}

/** True if @p value fits in a @p width-bit signed field. */
constexpr bool
fitsSigned(int64_t value, unsigned width)
{
    if (width >= 64)
        return true;
    const int64_t lo = -(int64_t(1) << (width - 1));
    const int64_t hi = (int64_t(1) << (width - 1)) - 1;
    return value >= lo && value <= hi;
}

/** True if @p value fits in a @p width-bit unsigned field. */
constexpr bool
fitsUnsigned(uint64_t value, unsigned width)
{
    if (width >= 64)
        return true;
    return value < (uint64_t(1) << width);
}

/** Integer base-2 logarithm (value must be a power of two). */
constexpr unsigned
log2i(uint64_t value)
{
    unsigned n = 0;
    while (value > 1) {
        value >>= 1;
        ++n;
    }
    return n;
}

/** True if @p value is a (nonzero) power of two. */
constexpr bool
isPow2(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Count of set bits. */
constexpr unsigned
popCount(uint64_t value)
{
    unsigned n = 0;
    while (value) {
        value &= value - 1;
        ++n;
    }
    return n;
}

} // namespace dise

#endif // DISE_COMMON_BITS_HPP
