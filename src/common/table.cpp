#include "src/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/common/logging.hpp"

namespace dise {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    DISE_ASSERT(row.size() == header_.size(), "table row arity mismatch");
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emit(header_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

} // namespace dise
