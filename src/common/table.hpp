/**
 * @file
 * Plain-text table renderer used by the benchmark harnesses to print
 * paper-figure data series in a uniform, diffable format.
 */

#ifndef DISE_COMMON_TABLE_HPP
#define DISE_COMMON_TABLE_HPP

#include <string>
#include <vector>

namespace dise {

/** A simple column-aligned text table. */
class TextTable
{
  public:
    /** @param header Column titles; fixes the column count. */
    explicit TextTable(std::vector<std::string> header);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p precision digits. */
    static std::string num(double value, int precision = 3);

    /** Render with aligned columns and a separator under the header. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace dise

#endif // DISE_COMMON_TABLE_HPP
