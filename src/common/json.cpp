#include "src/common/json.hpp"

#include <cmath>
#include <cstdio>

#include "src/common/logging.hpp"

namespace dise {

Json &
Json::operator[](const std::string &key)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    DISE_ASSERT(type_ == Type::Object, "operator[] on non-object Json");
    return obj_[key];
}

const Json &
Json::at(const std::string &key) const
{
    DISE_ASSERT(type_ == Type::Object, "at() on non-object Json");
    const auto it = obj_.find(key);
    if (it == obj_.end())
        panic("Json::at: no member \"" + key + "\"");
    return it->second;
}

bool
Json::contains(const std::string &key) const
{
    return type_ == Type::Object && obj_.count(key) > 0;
}

void
Json::push_back(Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    DISE_ASSERT(type_ == Type::Array, "push_back on non-array Json");
    arr_.push_back(std::move(value));
}

size_t
Json::size() const
{
    switch (type_) {
      case Type::Array:
        return arr_.size();
      case Type::Object:
        return obj_.size();
      default:
        return 0;
    }
}

bool
Json::asBool() const
{
    DISE_ASSERT(type_ == Type::Bool, "asBool on non-bool Json");
    return bool_;
}

uint64_t
Json::asUInt() const
{
    DISE_ASSERT(type_ == Type::UInt, "asUInt on non-integer Json");
    return uint_;
}

double
Json::asDouble() const
{
    if (type_ == Type::UInt)
        return double(uint_);
    DISE_ASSERT(type_ == Type::Number, "asDouble on non-number Json");
    return num_;
}

const std::string &
Json::asString() const
{
    DISE_ASSERT(type_ == Type::String, "asString on non-string Json");
    return str_;
}

namespace {

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad(size_t(indent) * (depth + 1), ' ');
    const std::string closePad(size_t(indent) * depth, ' ');
    const char *nl = indent > 0 ? "\n" : "";
    const char *colon = indent > 0 ? ": " : ":";
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::UInt: {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(uint_));
        out += buf;
        break;
      }
      case Type::Number: {
        // Non-finite values are not representable in JSON; emit 0.
        const double v = std::isfinite(num_) ? num_ : 0.0;
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        out += buf;
        break;
      }
      case Type::String:
        escapeString(out, str_);
        break;
      case Type::Array: {
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        bool first = true;
        for (const Json &item : arr_) {
            if (!first)
                out += ',';
            first = false;
            out += nl;
            out += pad;
            item.dumpTo(out, indent, depth + 1);
        }
        out += nl;
        out += closePad;
        out += ']';
        break;
      }
      case Type::Object: {
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        bool first = true;
        for (const auto &kv : obj_) {
            if (!first)
                out += ',';
            first = false;
            out += nl;
            out += pad;
            escapeString(out, kv.first);
            out += colon;
            kv.second.dumpTo(out, indent, depth + 1);
        }
        out += nl;
        out += closePad;
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

// ---- Parser. ----

namespace {

struct Parser
{
    const std::string &text;
    size_t pos = 0;

    [[noreturn]] void
    fail(const std::string &what)
    {
        fatal(strFormat("JSON parse error at offset %zu: %s", pos,
                        what.c_str()));
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(strFormat("expected '%c', got '%c'", c, text[pos]));
        ++pos;
    }

    bool
    consumeWord(const char *word)
    {
        const size_t len = std::string(word).size();
        if (text.compare(pos, len, word) == 0) {
            pos += len;
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            const char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            const char esc = text[pos++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos + 4 > text.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // ASCII only (our emitter never produces more).
                if (code > 0x7f)
                    fail("non-ASCII \\u escape unsupported");
                out += char(code);
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    Json
    parseNumber()
    {
        const size_t start = pos;
        bool isInteger = true;
        if (peek() == '-') {
            isInteger = false;
            ++pos;
        }
        while (pos < text.size() &&
               ((text[pos] >= '0' && text[pos] <= '9') ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-')) {
            if (text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E')
                isInteger = false;
            ++pos;
        }
        const std::string tok = text.substr(start, pos - start);
        if (tok.empty() || tok == "-")
            fail("malformed number");
        if (isInteger) {
            char *end = nullptr;
            const unsigned long long v =
                std::strtoull(tok.c_str(), &end, 10);
            if (end != tok.c_str() + tok.size())
                fail("malformed integer");
            return Json(uint64_t(v));
        }
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            fail("malformed number");
        return Json(v);
    }

    Json
    parseValue()
    {
        skipWs();
        const char c = peek();
        if (c == '{') {
            ++pos;
            Json obj = Json::object();
            skipWs();
            if (peek() == '}') {
                ++pos;
                return obj;
            }
            while (true) {
                skipWs();
                const std::string key = parseString();
                skipWs();
                expect(':');
                obj[key] = parseValue();
                skipWs();
                if (peek() == ',') {
                    ++pos;
                    continue;
                }
                expect('}');
                return obj;
            }
        }
        if (c == '[') {
            ++pos;
            Json arr = Json::array();
            skipWs();
            if (peek() == ']') {
                ++pos;
                return arr;
            }
            while (true) {
                arr.push_back(parseValue());
                skipWs();
                if (peek() == ',') {
                    ++pos;
                    continue;
                }
                expect(']');
                return arr;
            }
        }
        if (c == '"')
            return Json(parseString());
        if (consumeWord("true"))
            return Json(true);
        if (consumeWord("false"))
            return Json(false);
        if (consumeWord("null"))
            return Json();
        return parseNumber();
    }
};

} // namespace

Json
Json::parse(const std::string &text)
{
    Parser parser{text};
    Json value = parser.parseValue();
    parser.skipWs();
    if (parser.pos != text.size())
        parser.fail("trailing garbage");
    return value;
}

} // namespace dise
