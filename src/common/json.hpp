/**
 * @file
 * Minimal JSON value type for the observability layer: build a tree,
 * serialize it deterministically, and parse it back (tests and tools
 * validate emitted artifacts by round-tripping them).
 *
 * Deliberately small: objects are sorted maps (deterministic output),
 * unsigned integers keep full 64-bit precision (simulation counters),
 * everything else is a double. Not a general-purpose JSON library —
 * just enough for stats registries and bench artifacts.
 */

#ifndef DISE_COMMON_JSON_HPP
#define DISE_COMMON_JSON_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dise {

/** One JSON value (null, bool, number, string, array or object). */
class Json
{
  public:
    enum class Type { Null, Bool, UInt, Number, String, Array, Object };

    Json() = default;
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(uint64_t u) : type_(Type::UInt), uint_(u) {}
    Json(int i) : type_(Type::UInt), uint_(uint64_t(i)) {}
    Json(unsigned i) : type_(Type::UInt), uint_(i) {}
    Json(double d) : type_(Type::Number), num_(d) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}

    static Json array() { Json j; j.type_ = Type::Array; return j; }
    static Json object() { Json j; j.type_ = Type::Object; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isObject() const { return type_ == Type::Object; }
    bool isArray() const { return type_ == Type::Array; }
    bool isNumeric() const
    {
        return type_ == Type::UInt || type_ == Type::Number;
    }
    bool isString() const { return type_ == Type::String; }

    /** Object access; creates members (and coerces Null to Object). */
    Json &operator[](const std::string &key);
    /** Read-only object member; panics when absent or not an object. */
    const Json &at(const std::string &key) const;
    bool contains(const std::string &key) const;
    const std::map<std::string, Json> &members() const { return obj_; }

    /** Array append (coerces Null to Array). */
    void push_back(Json value);
    const std::vector<Json> &items() const { return arr_; }
    size_t size() const;

    /** @name Scalar reads (panic on type mismatch). */
    /// @{
    bool asBool() const;
    uint64_t asUInt() const;
    double asDouble() const; ///< UInt converts implicitly
    const std::string &asString() const;
    /// @}

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces per
     * level; 0 emits a compact single line. Object keys are sorted, so
     * equal trees always serialize identically.
     */
    std::string dump(int indent = 0) const;

    /** Parse @p text; fatal() on malformed input or trailing garbage. */
    static Json parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    uint64_t uint_ = 0;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::map<std::string, Json> obj_;
};

} // namespace dise

#endif // DISE_COMMON_JSON_HPP
