/**
 * @file
 * SimScheduler — the bounded work-stealing job scheduler behind every
 * multi-run workload (figure benches, fault campaigns, diserun --batch).
 *
 * A scheduler owns a fixed pool of worker threads (created once,
 * reused across batches) and executes *batches* of independent jobs:
 *
 *  - Work stealing: a batch's tasks are dealt round-robin into one
 *    deque per worker; an idle worker pops its own deque from the back
 *    and steals from the front of the busiest other deque, so uneven
 *    job lengths (a campaign trial that hangs to its watchdog next to
 *    one that traps instantly) still keep every worker busy.
 *  - Deterministic result ordering: tasks are indexed, and map()
 *    writes each result into its own pre-sized slot, so a batch's
 *    result vector is bit-identical at any worker count regardless of
 *    execution interleaving.
 *  - Exception channel: a throwing task cancels the rest of its batch
 *    (started tasks finish, unstarted ones are skipped) and the first
 *    exception is rethrown from runBatch() on the submitting thread —
 *    the same propagation contract SingleFlightCache gives waiters.
 *    Workers never std::exit; FatalError/PanicError from check()/
 *    fatal()/panic() unwind through this channel to the caller.
 *  - Cancellation: cancel() marks a batch cancelled; tasks not yet
 *    started are skipped and runBatch() returns normally with the
 *    skip count. Cancellation is scoped to one batch: a task calling
 *    cancel() cancels the batch it belongs to (and, for a nested
 *    inline batch, its enclosing batch — they share one flag); an
 *    external thread cancels the pool batch in flight. With no batch
 *    running, cancel() is a no-op — a later batch starts uncancelled.
 *    Concurrent batches (the pool batch plus inline batches submitted
 *    by other threads) never observe each other's cancellation.
 *
 * A scheduler with workers <= 1 runs batches inline on the submitting
 * thread (no pool), preserving the same cancellation and exception
 * semantics. Nested submission — a task submitting a batch to its own
 * scheduler, e.g. a fault campaign scheduled as one job of a larger
 * batch — is detected and run inline on the worker thread, so it can
 * never deadlock the pool.
 */

#ifndef DISE_COMMON_SCHEDULER_HPP
#define DISE_COMMON_SCHEDULER_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dise {

/** The work-stealing simulation-job scheduler. */
class SimScheduler
{
  public:
    /** How one batch ended (counts cover every submitted task). */
    struct BatchStats
    {
        size_t completed = 0; ///< tasks that ran (including a thrower)
        size_t skipped = 0;   ///< tasks skipped after cancel/error
    };

    /**
     * @param workers Worker-thread count; <= 1 means no pool (batches
     *                run inline on the submitting thread).
     */
    explicit SimScheduler(unsigned workers = 1);

    /** Joins the pool. Must not be called with a batch in flight. */
    ~SimScheduler();

    SimScheduler(const SimScheduler &) = delete;
    SimScheduler &operator=(const SimScheduler &) = delete;

    unsigned workers() const { return workers_; }

    /**
     * Execute every task of @p tasks and block until the batch has
     * quiesced (all tasks completed or skipped). One batch runs at a
     * time; submitting from a worker thread of this scheduler runs the
     * nested batch inline. The first exception a task throws cancels
     * the remaining unstarted tasks and is rethrown here.
     */
    BatchStats runBatch(std::vector<std::function<void()>> tasks);

    /**
     * Cancel a batch in flight: tasks not yet started are skipped.
     * From a worker task, cancels that task's own batch; from any
     * other thread, cancels the pool batch. A no-op when no batch is
     * running (see the file header for the scoping rules).
     */
    void cancel();

    /** True while the calling context's batch is cancelled (or
     *  errored): a task's own batch from inside a task, the pool
     *  batch otherwise. False when no batch is running. */
    bool cancelled() const;

    /**
     * Run @p fn over every item, scheduled as one batch, and return
     * the results in item order (deterministic at any worker count).
     * The result type must be default-constructible; slots of skipped
     * tasks (after cancel()) keep their default value.
     */
    template <typename T, typename Fn>
    auto
    map(const std::vector<T> &items, Fn fn)
        -> std::vector<decltype(fn(items.front()))>
    {
        using Result = decltype(fn(items.front()));
        std::vector<Result> results(items.size());
        std::vector<std::function<void()>> tasks;
        tasks.reserve(items.size());
        for (size_t i = 0; i < items.size(); ++i) {
            tasks.push_back([&results, &items, fn, i]() {
                results[i] = fn(items[i]);
            });
        }
        runBatch(std::move(tasks));
        return results;
    }

  private:
    /** Cancellation flag of one batch (pool or inline); tasks reach
     *  their own batch's state through a thread-local pointer. */
    struct BatchState
    {
        bool cancelled = false;
    };

    void workerLoop(unsigned self);
    /** Drain tasks (own deque back, then steal fronts) until none
     *  remain; runs under @p lock, unlocking around each task body. */
    void runTasks(unsigned self, std::unique_lock<std::mutex> &lock);
    /** Pop the next task index for worker @p self; false when every
     *  deque is empty. Caller holds the mutex. */
    bool popTask(unsigned self, size_t &index);
    /** Inline execution path (workers <= 1 and nested submissions). */
    BatchStats runInline(std::vector<std::function<void()>> &tasks);
    void finishOne();

    const unsigned workers_;
    mutable std::mutex mutex_;
    std::condition_variable workCv_; ///< workers wait for a batch
    std::condition_variable doneCv_; ///< submitter waits for quiesce
    std::vector<std::thread> threads_;
    std::vector<std::deque<size_t>> deques_;

    /** @name Current pool batch (guarded by mutex_). */
    /// @{
    std::vector<std::function<void()>> *tasks_ = nullptr;
    size_t pending_ = 0;   ///< tasks not yet completed or skipped
    uint64_t batchGen_ = 0;
    BatchState poolBatch_;
    std::exception_ptr error_;
    size_t completed_ = 0;
    size_t skipped_ = 0;
    /// @}

    bool stop_ = false;
};

} // namespace dise

#endif // DISE_COMMON_SCHEDULER_HPP
