#include "src/common/logging.hpp"

#include <cstdio>
#include <vector>

namespace dise {

std::string
strFormat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (needed > 0) {
        std::vector<char> buf(static_cast<size_t>(needed) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, args);
        out.assign(buf.data(), static_cast<size_t>(needed));
    }
    va_end(args);
    return out;
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    throw PanicError(msg);
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace dise
