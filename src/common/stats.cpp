#include "src/common/stats.hpp"

#include <sstream>

namespace dise {

void
StatGroup::add(const std::string &key, uint64_t delta)
{
    counters_[key] += delta;
}

void
StatGroup::set(const std::string &key, uint64_t value)
{
    counters_[key] = value;
}

uint64_t
StatGroup::get(const std::string &key) const
{
    const auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
}

void
StatGroup::reset()
{
    for (auto &kv : counters_)
        kv.second = 0;
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &kv : counters_)
        os << name_ << '.' << kv.first << ' ' << kv.second << '\n';
    return os.str();
}

double
safeRatio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

} // namespace dise
