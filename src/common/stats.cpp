#include "src/common/stats.hpp"

#include <sstream>

namespace dise {

void
StatGroup::add(const std::string &key, uint64_t delta)
{
    counters_[key] += delta;
}

void
StatGroup::set(const std::string &key, uint64_t value)
{
    counters_[key] = value;
}

uint64_t
StatGroup::get(const std::string &key) const
{
    const auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
}

void
StatGroup::reset()
{
    for (auto &kv : counters_)
        kv.second = 0;
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &kv : counters_)
        os << name_ << '.' << kv.first << ' ' << kv.second << '\n';
    return os.str();
}

double
safeRatio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

// ---- StatsRegistry. ----

void
StatsRegistry::add(const std::string &path, const StatGroup *group)
{
    groups_[path] = group;
}

void
StatsRegistry::set(const std::string &path, Json value)
{
    scalars_[path] = std::move(value);
}

void
StatsRegistry::addRatio(const std::string &path,
                        const std::string &numPath,
                        const std::string &denPath)
{
    ratios_.push_back({path, numPath, denPath});
}

bool
StatsRegistry::rawValue(const std::string &path, double &out) const
{
    const auto sit = scalars_.find(path);
    if (sit != scalars_.end() && sit->second.isNumeric()) {
        out = sit->second.asDouble();
        return true;
    }
    // Group counters: the path is "<group path>.<counter key>"; try
    // every '.' split from the right so group paths may contain dots.
    // Only a counter that actually exists counts as found — a ratio
    // may live at "<group path>.<name>" without shadowing.
    for (size_t dot = path.rfind('.'); dot != std::string::npos;
         dot = dot == 0 ? std::string::npos : path.rfind('.', dot - 1)) {
        const auto git = groups_.find(path.substr(0, dot));
        if (git != groups_.end()) {
            const auto &counters = git->second->counters();
            const auto cit = counters.find(path.substr(dot + 1));
            if (cit != counters.end()) {
                out = double(cit->second);
                return true;
            }
        }
    }
    return false;
}

double
StatsRegistry::value(const std::string &path) const
{
    double out = 0;
    if (rawValue(path, out))
        return out;
    for (const Ratio &ratio : ratios_) {
        if (ratio.path != path)
            continue;
        double num = 0, den = 0;
        rawValue(ratio.numPath, num);
        rawValue(ratio.denPath, den);
        return safeRatio(num, den);
    }
    return 0;
}

namespace {

/** Insert @p value at the dotted @p path inside the object @p root. */
void
insertAtPath(Json &root, const std::string &path, Json value)
{
    Json *node = &root;
    size_t start = 0;
    for (size_t dot = path.find('.'); dot != std::string::npos;
         dot = path.find('.', start)) {
        node = &(*node)[path.substr(start, dot - start)];
        start = dot + 1;
    }
    (*node)[path.substr(start)] = std::move(value);
}

} // namespace

Json
StatsRegistry::toJson() const
{
    Json root = Json::object();
    for (const auto &kv : groups_) {
        for (const auto &counter : kv.second->counters())
            insertAtPath(root, kv.first + "." + counter.first,
                         Json(counter.second));
    }
    for (const auto &kv : scalars_)
        insertAtPath(root, kv.first, kv.second);
    for (const Ratio &ratio : ratios_) {
        double num = 0, den = 0;
        rawValue(ratio.numPath, num);
        rawValue(ratio.denPath, den);
        insertAtPath(root, ratio.path, Json(safeRatio(num, den)));
    }
    return root;
}

std::string
StatsRegistry::dump() const
{
    // Collect into a sorted map so group counters, scalars and ratios
    // interleave by path.
    std::map<std::string, std::string> lines;
    for (const auto &kv : groups_) {
        for (const auto &counter : kv.second->counters())
            lines[kv.first + "." + counter.first] =
                std::to_string(counter.second);
    }
    for (const auto &kv : scalars_)
        lines[kv.first] = kv.second.dump();
    for (const Ratio &ratio : ratios_) {
        double num = 0, den = 0;
        rawValue(ratio.numPath, num);
        rawValue(ratio.denPath, den);
        lines[ratio.path] = Json(safeRatio(num, den)).dump();
    }
    std::ostringstream os;
    for (const auto &kv : lines)
        os << kv.first << ' ' << kv.second << '\n';
    return os.str();
}

} // namespace dise
