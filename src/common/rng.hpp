/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Used by the workload generator and property tests. We avoid std::mt19937
 * so that generated workloads are bit-identical across standard libraries.
 */

#ifndef DISE_COMMON_RNG_HPP
#define DISE_COMMON_RNG_HPP

#include <cstdint>

#include "src/common/logging.hpp"

namespace dise {

/** xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void
    reseed(uint64_t seed)
    {
        // splitmix64 to fill the state.
        uint64_t x = seed;
        for (auto &s : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            s = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        DISE_ASSERT(bound != 0, "Rng::below(0)");
        // Rejection sampling to avoid modulo bias.
        const uint64_t threshold = (-bound) % bound;
        for (;;) {
            const uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        DISE_ASSERT(lo <= hi, "Rng::range lo > hi");
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Derive an independent child seed from @p seed and @p stream
     * (splitmix64 over their combination). Used by fault campaigns to
     * give every trial its own deterministic generator.
     */
    static uint64_t
    deriveSeed(uint64_t seed, uint64_t stream)
    {
        uint64_t z = seed + stream * 0x9e3779b97f4a7c15ULL +
                     0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace dise

#endif // DISE_COMMON_RNG_HPP
