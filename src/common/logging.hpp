/**
 * @file
 * Error-reporting helpers in the spirit of gem5's panic()/fatal().
 *
 * panic() marks simulator bugs (conditions that should be impossible no
 * matter what the user does); fatal() marks user errors (bad configuration,
 * malformed assembly, invalid production syntax). Both throw typed
 * exceptions so that library users and tests can intercept them.
 */

#ifndef DISE_COMMON_LOGGING_HPP
#define DISE_COMMON_LOGGING_HPP

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace dise {

/** Thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the user supplied an invalid input or config. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** printf-style string formatting. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal simulator bug and throw PanicError. */
[[noreturn]] void panic(const std::string &msg);

/** Report a user-level error and throw FatalError. */
[[noreturn]] void fatal(const std::string &msg);

/** Print a non-fatal warning to stderr. */
void warn(const std::string &msg);

} // namespace dise

/** Assert an invariant; panics with location info when violated. */
#define DISE_ASSERT(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::dise::panic(::dise::strFormat(                                \
                "%s:%d: assertion '%s' failed: %s", __FILE__, __LINE__,     \
                #cond, std::string(msg).c_str()));                          \
        }                                                                   \
    } while (0)

#endif // DISE_COMMON_LOGGING_HPP
