/**
 * @file
 * Cycle-level timing model of a MIPS R10000-like superscalar processor
 * with the DISE engine at decode — the substrate of the paper's
 * evaluation (Section 4): 4-wide, 12-stage, 128-entry reorder buffer,
 * 80 reservation stations, aggressive branch and load speculation, 32 KB
 * L1 caches and a unified 1 MB L2.
 *
 * The model executes the correct-path dynamic instruction trace produced
 * by the architectural core (ExecCore) and computes per-instruction
 * fetch, dispatch, issue, complete and commit timestamps in one pass:
 *
 *  - Front end: line-granular instruction fetch through the I-cache,
 *    width instructions per cycle, fetch groups broken by taken branches
 *    and line crossings; gshare+BTB+RAS prediction; mispredicted
 *    branches stall correct-path delivery until they resolve in the
 *    backend plus the front-end refill depth.
 *  - DISE at decode: replacement instructions consume front-end slots;
 *    engine placement is Free (no overhead), Stall (one-cycle stall per
 *    expansion) or Pipe (one extra front-end stage, deeper mispredict
 *    refill); PT/RT misses flush the front end and stall it for the
 *    controller's fill latency. Per the paper, DISE-internal branches
 *    and non-trigger application branches inside replacement sequences
 *    are never predicted: when taken they cost a full mispredict.
 *  - Back end: dataflow-limited issue via register ready-times (renaming
 *    removes false dependences), dispatch/commit bandwidth of the
 *    machine width, ROB and RS occupancy via ring buffers of commit and
 *    issue timestamps, loads access the D-cache at issue, stores at
 *    commit (store buffer hides their latency).
 *
 * Deliberate simplifications (documented in DESIGN.md): wrong-path fetch
 * consumes the mispredict shadow but does not pollute the I-cache;
 * issue-port contention is subsumed by dispatch/commit width.
 */

#ifndef DISE_PIPELINE_PIPELINE_HPP
#define DISE_PIPELINE_PIPELINE_HPP

#include <memory>

#include "src/branch/predictor.hpp"
#include "src/mem/cache.hpp"
#include "src/sim/core.hpp"
#include "src/sim/snapshot.hpp"

namespace dise {

/** Machine configuration (defaults = the paper's baseline). */
struct PipelineParams
{
    uint32_t width = 4;
    uint32_t robEntries = 128;
    uint32_t rsEntries = 80;
    /**
     * Fetch-to-dispatch depth in cycles; with the 5 back-end stages this
     * models the paper's 12-stage pipeline. The Pipe DISE placement adds
     * one stage.
     */
    uint32_t frontendDepth = 7;
    /** Cheap decode-stage redirect for direct branches that miss the BTB. */
    uint32_t decodeRedirectPenalty = 2;
    uint32_t intAluLatency = 1;
    uint32_t intMultLatency = 3;
    uint32_t syscallLatency = 30;
    MemHierarchyParams mem;
    PredictorParams bpred;
};

/**
 * Per-stage cycle accounting: every simulated cycle lands in exactly
 * one bucket, so the buckets always sum to TimingResult::cycles (the
 * simulator asserts this at the end of every run).
 *
 * Attribution happens on the in-order commit clock: each instruction's
 * commit-clock advance is charged to the stall causes observed along
 * its fetch→dispatch→issue→complete chain, clamped in the fixed
 * priority order DISE → I-miss → branch → drain → D-miss → hazard
 * (overlapped stalls are charged to the first cause only), and the
 * unattributed remainder — useful issue/commit bandwidth and pipeline
 * fill — goes to @c issue.
 */
struct CycleBreakdown
{
    uint64_t issue = 0;       ///< base bandwidth, latency, pipeline fill
    uint64_t imissStall = 0;  ///< I-cache miss latency gating fetch
    uint64_t dmissStall = 0;  ///< D-cache miss latency gating commit
    uint64_t branchFlush = 0; ///< mispredict/decode-redirect recovery
    uint64_t diseStall = 0;   ///< expansion stalls, PT/RT fills,
                              ///< unpredicted DISE-branch redirects
    uint64_t hazard = 0;      ///< RAW dependences, ROB/RS occupancy
    uint64_t drain = 0;       ///< syscall serialization
    uint64_t
    total() const
    {
        return issue + imissStall + dmissStall + branchFlush +
               diseStall + hazard + drain;
    }
};

/** Timing results of one run. */
struct TimingResult
{
    uint64_t cycles = 0;
    /** Where every one of those cycles went (sums to cycles). */
    CycleBreakdown buckets;
    /**
     * Architectural results, including the run outcome: Exit, Trap
     * (with the trap record), or Hang when either watchdog budget —
     * instructions or cycles — expired before the program exited.
     */
    RunResult arch;
    uint64_t mispredicts = 0;
    uint64_t decodeRedirects = 0;
    uint64_t diseMispredicts = 0; ///< taken unpredicted (DISE/seq) branches
    uint64_t expansionStalls = 0;
    uint64_t missStallCycles = 0; ///< PT/RT fill stalls
    uint64_t icacheMisses = 0;
    uint64_t dcacheMisses = 0;
    uint64_t l2Misses = 0;

    double
    ipc() const
    {
        return cycles ? double(arch.dynInsts) / double(cycles) : 0.0;
    }
};

/**
 * Complete timing-simulator checkpoint: the architectural SimSnapshot
 * plus every piece of timing state — cache lines/LRU/stats (held in a
 * standalone same-geometry hierarchy), branch-predictor tables, the
 * accumulated TimingResult, and the pipeline's clock/occupancy
 * scalars. PipelineSim::run is resumable (all loop state lives in
 * members), so restoring a checkpoint and running on is bit-identical
 * — cycles, buckets, counters — to a run that never stopped.
 */
struct TimingSnapshot
{
    SimSnapshot core;
    TimingResult result;
    std::unique_ptr<MemHierarchy> mem;
    std::unique_ptr<BranchPredictor> bpred;
    /** Opaque pipeline scalar state (front end, accounting, back end,
     *  sequence-level prediction); filled by PipelineSim. */
    std::vector<uint64_t> scalars;
};

/** The timing simulator. */
class PipelineSim
{
  public:
    /**
     * @param prog Program image.
     * @param params Machine configuration.
     * @param controller Optional DISE controller (engine placement and
     *                   PT/RT geometry come from its DiseConfig).
     */
    PipelineSim(const Program &prog, const PipelineParams &params,
                DiseController *controller = nullptr);

    /**
     * Run to program exit, a trap, or watchdog expiry.
     *
     * @param maxInsts Dynamic-instruction budget; expiry yields a Hang
     *                 outcome in TimingResult::arch (mirrors
     *                 ExecCore::run).
     * @param maxCycles Cycle budget (0 = unlimited): the timing-level
     *                  watchdog — stops the run once the commit clock
     *                  passes the budget, also a Hang outcome.
     */
    TimingResult run(uint64_t maxInsts = ~uint64_t(0),
                     uint64_t maxCycles = 0);

    ExecCore &core() { return core_; }
    MemHierarchy &mem() { return mem_; }
    BranchPredictor &predictor() { return bpred_; }

    /** @name Checkpoint/restore (see TimingSnapshot).
     *
     * Legal at any point between run() calls at an application
     * boundary — in practice: after a run(maxInsts) that stopped on
     * its instruction budget, or before the first run. A restored
     * simulator continues exactly where the checkpoint was taken.
     */
    /// @{
    void saveSnapshot(TimingSnapshot &out) const;
    void restoreSnapshot(const TimingSnapshot &snap);
    /// @}

    /**
     * Register every component's StatGroup (caches, predictor, engine
     * when present, the pipeline's own cycle accounting, and the
     * architectural run counters) into @p reg under hierarchical names,
     * plus the standard derived ratios (miss rates, IPC/CPI). Call
     * after run(); the registry reads the groups lazily, so it must be
     * serialized while this simulator is alive.
     */
    void registerStats(StatsRegistry &reg);

  private:
    /** What raised the pending front-end redirect (for accounting). */
    enum class StallCause : uint8_t { None, Branch, Dise, Drain };

    /** Front-end delivery: returns the decode cycle of @p dyn. */
    uint64_t frontend(const DynInst &dyn);

    /** Raise the pending redirect to @p cycle, tracking its cause. */
    void raiseRedirect(uint64_t cycle, StallCause cause);

    /** Start a new fetch group at @p cycle fetching @p pc. */
    void newFetchGroup(uint64_t cycle, Addr pc, bool accessICache);

    uint32_t instLatency(const DynInst &dyn) const;

    /**
     * Evaluate a resolved control transfer against its prediction,
     * charging redirects and training the predictor.
     */
    void resolveControl(Addr pc, OpClass cls, bool taken, Addr target,
                        uint64_t resolveCycle, uint64_t decodeCycle,
                        const BranchPredictor::Prediction &pred);

    PipelineParams params_;
    DiseController *controller_;
    ExecCore core_;
    MemHierarchy mem_;
    BranchPredictor bpred_;
    TimingResult result_;

    /** @name Front-end state. */
    /// @{
    uint64_t feCycle_ = 0;
    uint32_t feSlots_ = 0;
    uint64_t curLine_ = ~uint64_t(0);
    uint64_t pendingRedirect_ = 0; ///< earliest next fetch cycle
    StallCause redirectCause_ = StallCause::None;
    uint32_t feDepth_ = 7;
    bool stallPerExpansion_ = false;
    /// @}

    /** @name Cycle-accounting state (see CycleBreakdown).
     *
     * Stall amounts observed while timing the current instruction; at
     * its commit they are charged against the commit-clock advance in
     * priority order and then cleared (unconsumed amounts overlapped
     * with older work and cost nothing).
     */
    /// @{
    struct PendingStalls
    {
        uint64_t imiss = 0;
        uint64_t dise = 0;
        uint64_t branch = 0;
        uint64_t drain = 0;
        uint64_t dmiss = 0;
        uint64_t hazard = 0;
    };
    PendingStalls pend_;
    StatGroup pipeStats_{"pipeline"};
    StatGroup runStats_{"run"};
    /// @}

    /** @name Back-end state. */
    /// @{
    std::array<uint64_t, kNumLogicalRegs> regReady_{};
    std::vector<uint64_t> commitRing_; ///< ROB occupancy
    std::vector<uint64_t> issueRing_;  ///< RS occupancy
    uint64_t instIndex_ = 0;
    uint64_t dispatchCycleCur_ = 0;
    uint32_t dispatchSlots_ = 0;
    uint64_t commitCycleCur_ = 0;
    uint32_t commitSlots_ = 0;
    uint64_t lastCommit_ = 0;
    /// @}

    /** @name Per-expansion (sequence-level) prediction state. */
    /// @{
    OpClass seqPredCls_ = OpClass::Nop;
    BranchPredictor::Prediction seqPred_;
    Addr seqTriggerPC_ = 0;
    bool seqTrigTaken_ = false;
    Addr seqTrigTarget_ = 0;
    bool seqRedirected_ = false;
    Addr seqRedirTarget_ = 0;
    uint64_t seqResolve_ = 0;
    /// @}
};

} // namespace dise

#endif // DISE_PIPELINE_PIPELINE_HPP
