/**
 * @file
 * Cycle-level timing model of a MIPS R10000-like superscalar processor
 * with the DISE engine at decode — the substrate of the paper's
 * evaluation (Section 4): 4-wide, 12-stage, 128-entry reorder buffer,
 * 80 reservation stations, aggressive branch and load speculation, 32 KB
 * L1 caches and a unified 1 MB L2.
 *
 * The model executes the correct-path dynamic instruction trace produced
 * by the architectural core (ExecCore) and computes per-instruction
 * fetch, dispatch, issue, complete and commit timestamps in one pass:
 *
 *  - Front end: line-granular instruction fetch through the I-cache,
 *    width instructions per cycle, fetch groups broken by taken branches
 *    and line crossings; gshare+BTB+RAS prediction; mispredicted
 *    branches stall correct-path delivery until they resolve in the
 *    backend plus the front-end refill depth.
 *  - DISE at decode: replacement instructions consume front-end slots;
 *    engine placement is Free (no overhead), Stall (one-cycle stall per
 *    expansion) or Pipe (one extra front-end stage, deeper mispredict
 *    refill); PT/RT misses flush the front end and stall it for the
 *    controller's fill latency. Per the paper, DISE-internal branches
 *    and non-trigger application branches inside replacement sequences
 *    are never predicted: when taken they cost a full mispredict.
 *  - Back end: dataflow-limited issue via register ready-times (renaming
 *    removes false dependences), dispatch/commit bandwidth of the
 *    machine width, ROB and RS occupancy via ring buffers of commit and
 *    issue timestamps, loads access the D-cache at issue, stores at
 *    commit (store buffer hides their latency).
 *
 * Deliberate simplifications (documented in DESIGN.md): wrong-path fetch
 * consumes the mispredict shadow but does not pollute the I-cache;
 * issue-port contention is subsumed by dispatch/commit width.
 */

#ifndef DISE_PIPELINE_PIPELINE_HPP
#define DISE_PIPELINE_PIPELINE_HPP

#include <memory>

#include "src/branch/predictor.hpp"
#include "src/mem/cache.hpp"
#include "src/sim/core.hpp"

namespace dise {

/** Machine configuration (defaults = the paper's baseline). */
struct PipelineParams
{
    uint32_t width = 4;
    uint32_t robEntries = 128;
    uint32_t rsEntries = 80;
    /**
     * Fetch-to-dispatch depth in cycles; with the 5 back-end stages this
     * models the paper's 12-stage pipeline. The Pipe DISE placement adds
     * one stage.
     */
    uint32_t frontendDepth = 7;
    /** Cheap decode-stage redirect for direct branches that miss the BTB. */
    uint32_t decodeRedirectPenalty = 2;
    uint32_t intAluLatency = 1;
    uint32_t intMultLatency = 3;
    uint32_t syscallLatency = 30;
    MemHierarchyParams mem;
    PredictorParams bpred;
};

/** Timing results of one run. */
struct TimingResult
{
    uint64_t cycles = 0;
    /**
     * Architectural results, including the run outcome: Exit, Trap
     * (with the trap record), or Hang when either watchdog budget —
     * instructions or cycles — expired before the program exited.
     */
    RunResult arch;
    uint64_t mispredicts = 0;
    uint64_t decodeRedirects = 0;
    uint64_t diseMispredicts = 0; ///< taken unpredicted (DISE/seq) branches
    uint64_t expansionStalls = 0;
    uint64_t missStallCycles = 0; ///< PT/RT fill stalls
    uint64_t icacheMisses = 0;
    uint64_t dcacheMisses = 0;
    uint64_t l2Misses = 0;

    double
    ipc() const
    {
        return cycles ? double(arch.dynInsts) / double(cycles) : 0.0;
    }
};

/** The timing simulator. */
class PipelineSim
{
  public:
    /**
     * @param prog Program image.
     * @param params Machine configuration.
     * @param controller Optional DISE controller (engine placement and
     *                   PT/RT geometry come from its DiseConfig).
     */
    PipelineSim(const Program &prog, const PipelineParams &params,
                DiseController *controller = nullptr);

    /**
     * Run to program exit, a trap, or watchdog expiry.
     *
     * @param maxInsts Dynamic-instruction budget; expiry yields a Hang
     *                 outcome in TimingResult::arch (mirrors
     *                 ExecCore::run).
     * @param maxCycles Cycle budget (0 = unlimited): the timing-level
     *                  watchdog — stops the run once the commit clock
     *                  passes the budget, also a Hang outcome.
     */
    TimingResult run(uint64_t maxInsts = ~uint64_t(0),
                     uint64_t maxCycles = 0);

    ExecCore &core() { return core_; }
    MemHierarchy &mem() { return mem_; }
    BranchPredictor &predictor() { return bpred_; }

  private:
    /** Front-end delivery: returns the decode cycle of @p dyn. */
    uint64_t frontend(const DynInst &dyn);

    /** Start a new fetch group at @p cycle fetching @p pc. */
    void newFetchGroup(uint64_t cycle, Addr pc, bool accessICache);

    uint32_t instLatency(const DynInst &dyn) const;

    /**
     * Evaluate a resolved control transfer against its prediction,
     * charging redirects and training the predictor.
     */
    void resolveControl(Addr pc, OpClass cls, bool taken, Addr target,
                        uint64_t resolveCycle, uint64_t decodeCycle,
                        const BranchPredictor::Prediction &pred);

    PipelineParams params_;
    DiseController *controller_;
    ExecCore core_;
    MemHierarchy mem_;
    BranchPredictor bpred_;
    TimingResult result_;

    /** @name Front-end state. */
    /// @{
    uint64_t feCycle_ = 0;
    uint32_t feSlots_ = 0;
    uint64_t curLine_ = ~uint64_t(0);
    uint64_t pendingRedirect_ = 0; ///< earliest next fetch cycle
    uint32_t feDepth_ = 7;
    bool stallPerExpansion_ = false;
    /// @}

    /** @name Back-end state. */
    /// @{
    std::array<uint64_t, kNumLogicalRegs> regReady_{};
    std::vector<uint64_t> commitRing_; ///< ROB occupancy
    std::vector<uint64_t> issueRing_;  ///< RS occupancy
    uint64_t instIndex_ = 0;
    uint64_t dispatchCycleCur_ = 0;
    uint32_t dispatchSlots_ = 0;
    uint64_t commitCycleCur_ = 0;
    uint32_t commitSlots_ = 0;
    uint64_t lastCommit_ = 0;
    /// @}

    /** @name Per-expansion (sequence-level) prediction state. */
    /// @{
    OpClass seqPredCls_ = OpClass::Nop;
    BranchPredictor::Prediction seqPred_;
    Addr seqTriggerPC_ = 0;
    bool seqTrigTaken_ = false;
    Addr seqTrigTarget_ = 0;
    bool seqRedirected_ = false;
    Addr seqRedirTarget_ = 0;
    uint64_t seqResolve_ = 0;
    /// @}
};

} // namespace dise

#endif // DISE_PIPELINE_PIPELINE_HPP
