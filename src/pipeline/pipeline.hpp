/**
 * @file
 * Cycle-level timing model of a MIPS R10000-like superscalar processor
 * with the DISE engine at decode — the substrate of the paper's
 * evaluation (Section 4): 4-wide, 12-stage, 128-entry reorder buffer,
 * 80 reservation stations, aggressive branch and load speculation, 32 KB
 * L1 caches and a unified 1 MB L2.
 *
 * The model executes the correct-path dynamic instruction trace produced
 * by the architectural core (ExecCore) and computes per-instruction
 * fetch, dispatch, issue, complete and commit timestamps in one pass:
 *
 *  - Front end: line-granular instruction fetch through the I-cache,
 *    width instructions per cycle, fetch groups broken by taken branches
 *    and line crossings; gshare+BTB+RAS prediction; mispredicted
 *    branches stall correct-path delivery until they resolve in the
 *    backend plus the front-end refill depth.
 *  - DISE at decode: replacement instructions consume front-end slots;
 *    engine placement is Free (no overhead), Stall (one-cycle stall per
 *    expansion) or Pipe (one extra front-end stage, deeper mispredict
 *    refill); PT/RT misses flush the front end and stall it for the
 *    controller's fill latency. Per the paper, DISE-internal branches
 *    and non-trigger application branches inside replacement sequences
 *    are never predicted: when taken they cost a full mispredict.
 *  - Back end: dataflow-limited issue via register ready-times (renaming
 *    removes false dependences), dispatch/commit bandwidth of the
 *    machine width, ROB and RS occupancy via ring buffers of commit and
 *    issue timestamps, loads access the D-cache at issue, stores at
 *    commit (store buffer hides their latency).
 *
 * Trace delivery (DESIGN.md Section 14): by default the model pulls the
 * dynamic stream in batches through ExecCore::fillTrace (the trace
 * feed), which keeps the architectural interpreter in its fast
 * dispatch loop and times each batch with inlined cache/predictor
 * accessors. setTraceFeed(false) falls back to per-instruction
 * ExecCore::step — the bit-identical reference path. On top of the
 * feed, setSampling enables SMARTS-style sampled timing: periodic
 * detailed windows with functional warming (caches + branch predictor
 * only, zero cycles) in between, reporting measured CPI over the
 * sampled windows and an extrapolated whole-run cycle estimate.
 *
 * Deliberate simplifications (documented in DESIGN.md): wrong-path fetch
 * consumes the mispredict shadow but does not pollute the I-cache;
 * issue-port contention is subsumed by dispatch/commit width.
 */

#ifndef DISE_PIPELINE_PIPELINE_HPP
#define DISE_PIPELINE_PIPELINE_HPP

#include <memory>

#include "src/branch/predictor.hpp"
#include "src/mem/cache.hpp"
#include "src/sim/core.hpp"
#include "src/sim/snapshot.hpp"

namespace dise {

/** Machine configuration (defaults = the paper's baseline). */
struct PipelineParams
{
    uint32_t width = 4;
    uint32_t robEntries = 128;
    uint32_t rsEntries = 80;
    /**
     * Fetch-to-dispatch depth in cycles; with the 5 back-end stages this
     * models the paper's 12-stage pipeline. The Pipe DISE placement adds
     * one stage.
     */
    uint32_t frontendDepth = 7;
    /** Cheap decode-stage redirect for direct branches that miss the BTB. */
    uint32_t decodeRedirectPenalty = 2;
    uint32_t intAluLatency = 1;
    uint32_t intMultLatency = 3;
    uint32_t syscallLatency = 30;
    MemHierarchyParams mem;
    PredictorParams bpred;
};

/**
 * Per-stage cycle accounting: every simulated cycle lands in exactly
 * one bucket, so the buckets always sum to TimingResult::cycles (the
 * simulator asserts this at the end of every run).
 *
 * Attribution happens on the in-order commit clock: each instruction's
 * commit-clock advance is charged to the stall causes observed along
 * its fetch→dispatch→issue→complete chain, clamped in the fixed
 * priority order DISE → I-miss → branch → drain → D-miss → hazard
 * (overlapped stalls are charged to the first cause only), and the
 * unattributed remainder — useful issue/commit bandwidth and pipeline
 * fill — goes to @c issue.
 */
struct CycleBreakdown
{
    uint64_t issue = 0;       ///< base bandwidth, latency, pipeline fill
    uint64_t imissStall = 0;  ///< I-cache miss latency gating fetch
    uint64_t dmissStall = 0;  ///< D-cache miss latency gating commit
    uint64_t branchFlush = 0; ///< mispredict/decode-redirect recovery
    uint64_t diseStall = 0;   ///< expansion stalls, PT/RT fills,
                              ///< unpredicted DISE-branch redirects
    uint64_t hazard = 0;      ///< RAW dependences, ROB/RS occupancy
    uint64_t drain = 0;       ///< syscall serialization
    uint64_t
    total() const
    {
        return issue + imissStall + dmissStall + branchFlush +
               diseStall + hazard + drain;
    }
};

/**
 * SMARTS-style sampling configuration and measurements. When enabled,
 * the dynamic stream alternates between detailed windows (@c detail
 * instructions timed by the full pipeline model) and warming gaps
 * (@c period - @c detail instructions that only touch the caches and
 * branch predictor, advancing the cycle clock by nothing). Windows
 * start and end on application-instruction boundaries, so a DISE
 * replacement sequence is never split across a phase switch; the run
 * always opens with a detailed window, making a period that covers the
 * whole run equivalent to full detailed timing.
 */
struct SamplingInfo
{
    bool enabled = false;
    uint64_t period = 0;         ///< sampling unit, in instructions
    uint64_t detail = 0;         ///< detailed instructions per unit
    uint64_t sampledInsts = 0;   ///< instructions timed in detail
    uint64_t warmedInsts = 0;    ///< instructions functionally warmed
    uint64_t measuredCycles = 0; ///< commit-clock cycles in the windows

    /** CPI measured over the detailed windows only. */
    double
    measuredCpi() const
    {
        return sampledInsts ? double(measuredCycles) / double(sampledInsts)
                            : 0.0;
    }
};

/** Timing results of one run. */
struct TimingResult
{
    uint64_t cycles = 0;
    /** Where every one of those cycles went (sums to cycles). */
    CycleBreakdown buckets;
    /**
     * Architectural results, including the run outcome: Exit, Trap
     * (with the trap record), or Hang when either watchdog budget —
     * instructions or cycles — expired before the program exited.
     */
    RunResult arch;
    uint64_t mispredicts = 0;
    uint64_t decodeRedirects = 0;
    uint64_t diseMispredicts = 0; ///< taken unpredicted (DISE/seq) branches
    uint64_t expansionStalls = 0;
    uint64_t missStallCycles = 0; ///< PT/RT fill stalls
    uint64_t icacheMisses = 0;
    uint64_t dcacheMisses = 0;
    uint64_t l2Misses = 0;
    /** Sampled-timing configuration and measurements (default: off). */
    SamplingInfo sampling;

    double
    ipc() const
    {
        return cycles ? double(arch.dynInsts) / double(cycles) : 0.0;
    }

    /**
     * Whole-run cycle estimate: the sampled-CPI extrapolation over all
     * retired instructions when sampling, the exact count otherwise.
     */
    uint64_t
    estimatedCycles() const
    {
        if (!sampling.enabled || sampling.sampledInsts == 0)
            return cycles;
        return uint64_t(sampling.measuredCpi() * double(arch.dynInsts) +
                        0.5);
    }
};

/**
 * Complete timing-simulator checkpoint: the architectural SimSnapshot
 * plus every piece of timing state — cache lines/LRU/stats (held in a
 * standalone same-geometry hierarchy), branch-predictor tables, the
 * accumulated TimingResult, and the pipeline's clock/occupancy
 * scalars. PipelineSim::run is resumable (all loop state lives in
 * members), so restoring a checkpoint and running on is bit-identical
 * — cycles, buckets, counters — to a run that never stopped. This
 * holds on the trace-feed path at any batch boundary and under
 * sampling at any point in the phase schedule (the sampling phase
 * position is part of the scalar state); the trace-feed and sampling
 * *configuration* is not checkpointed — configure the restored
 * simulator the same way before restoring.
 */
struct TimingSnapshot
{
    SimSnapshot core;
    TimingResult result;
    std::unique_ptr<MemHierarchy> mem;
    std::unique_ptr<BranchPredictor> bpred;
    /** Opaque pipeline scalar state (front end, accounting, back end,
     *  sequence-level prediction, sampling phase); filled by
     *  PipelineSim. */
    std::vector<uint64_t> scalars;
};

/** The timing simulator. */
class PipelineSim
{
  public:
    /**
     * @param prog Program image.
     * @param params Machine configuration.
     * @param controller Optional DISE controller (engine placement and
     *                   PT/RT geometry come from its DiseConfig).
     */
    PipelineSim(const Program &prog, const PipelineParams &params,
                DiseController *controller = nullptr);

    /**
     * Run to program exit, a trap, or watchdog expiry.
     *
     * @param maxInsts Dynamic-instruction budget; expiry yields a Hang
     *                 outcome in TimingResult::arch (mirrors
     *                 ExecCore::run).
     * @param maxCycles Cycle budget (0 = unlimited): the timing-level
     *                  watchdog — stops the run once the commit clock
     *                  passes the budget, also a Hang outcome.
     */
    TimingResult run(uint64_t maxInsts = ~uint64_t(0),
                     uint64_t maxCycles = 0);

    /**
     * Select the trace-delivery path (default: the batched trace feed).
     * The step-driven path is the reference: both produce bit-identical
     * cycles, buckets, and component statistics; the feed is simply
     * faster. Sampled timing requires the feed.
     */
    void setTraceFeed(bool enabled) { traceFeed_ = enabled; }
    bool traceFeedEnabled() const { return traceFeed_; }

    /**
     * Configure SMARTS-style sampled timing (see SamplingInfo).
     * @param period Sampling unit in instructions; 0 disables sampling.
     * @param detail Detailed instructions per unit; must be in
     *               [1, period] when period is nonzero. detail == period
     *               degenerates to full detailed timing.
     * Call before run(); re-arming mid-stream restarts the phase
     * schedule at a detailed window.
     */
    void setSampling(uint64_t period, uint64_t detail);

    ExecCore &core() { return core_; }
    MemHierarchy &mem() { return mem_; }
    BranchPredictor &predictor() { return bpred_; }

    /** @name Checkpoint/restore (see TimingSnapshot).
     *
     * Legal at any point between run() calls at an application
     * boundary — in practice: after a run(maxInsts) that stopped on
     * its instruction budget, or before the first run. A restored
     * simulator continues exactly where the checkpoint was taken.
     */
    /// @{
    void saveSnapshot(TimingSnapshot &out) const;
    void restoreSnapshot(const TimingSnapshot &snap);
    /// @}

    /**
     * Register every component's StatGroup (caches, predictor, engine
     * when present, the pipeline's own cycle accounting, and the
     * architectural run counters) into @p reg under hierarchical names,
     * plus the standard derived ratios (miss rates, IPC/CPI). When
     * sampled timing ran, a "sampling" group with the window
     * configuration, measured cycles and the CPI extrapolation is
     * included (never otherwise, so feed and step-driven runs serialize
     * identically). Call after run(); the registry reads the groups
     * lazily, so it must be serialized while this simulator is alive.
     */
    void registerStats(StatsRegistry &reg);

  private:
    /** What raised the pending front-end redirect (for accounting). */
    enum class StallCause : uint8_t { None, Branch, Dise, Drain };

    /** How a run loop stopped (shared epilogue input). */
    struct RunStop
    {
        uint64_t steps = 0;
        bool cycleBudgetExpired = false;
    };

    /**
     * @name The timing model proper, shared by both delivery paths.
     *
     * Every function is templated on kFast, which selects only the leaf
     * accessors: kFast = false uses the component's public stat-counting
     * entry points (Cache::access, BranchPredictor::predict/update,
     * DecodedInst::srcRegList) — the frozen reference; kFast = true uses
     * the inline hot variants plus cached StatGroup cells, leaving every
     * timing decision byte-for-byte the same. Identity between the two
     * paths is by construction, not by parallel maintenance.
     */
    /// @{
    /** Time one dynamic instruction (the whole per-instruction pass:
     *  frontend → dispatch → issue → complete → commit → accounting →
     *  control resolution). */
    template <bool kFast> void timeInst(const DynInst &dyn);

    /** Front-end delivery: returns the decode cycle of @p dyn. */
    template <bool kFast> uint64_t frontendT(const DynInst &dyn);

    /** Start a new fetch group at @p cycle fetching @p pc. */
    template <bool kFast>
    void newFetchGroupT(uint64_t cycle, Addr pc, bool accessICache);

    /**
     * Evaluate a resolved control transfer against its prediction,
     * charging redirects and training the predictor.
     */
    template <bool kFast>
    void resolveControlT(Addr pc, OpClass cls, bool taken, Addr target,
                         uint64_t resolveCycle, uint64_t decodeCycle,
                         const BranchPredictor::Prediction &pred);

    /** Leaf accessors (see the group comment). */
    template <bool kFast> uint32_t fetchAccessT(Addr pc);
    template <bool kFast> uint32_t dataAccessT(Addr addr, bool write);
    template <bool kFast>
    BranchPredictor::Prediction predictT(Addr pc, OpClass cls,
                                         Addr fallThrough);
    template <bool kFast>
    void updateT(Addr pc, OpClass cls, bool taken, Addr target);
    /// @}

    /** The reference loop: ExecCore::step per instruction. */
    RunStop runStepDriven(uint64_t maxInsts, uint64_t maxCycles);

    /** The batched loop: ExecCore::fillTrace, timing or warming each
     *  record; owns the sampling phase schedule. */
    RunStop runFeed(uint64_t maxInsts, uint64_t maxCycles);

    /**
     * Functionally warm one instruction (sampling gaps): replicate
     * exactly the I-cache, D-cache and branch-predictor traffic the
     * detailed model would generate — including redirect-induced
     * refetches and sequence-level prediction — while advancing the
     * cycle clock by nothing.
     */
    void warmInst(const DynInst &dyn);

    /**
     * Re-resolve the cached StatGroup cell pointers the kFast leaves
     * bump. Must run after anything that replaces the components' stat
     * maps (construction, snapshot restore).
     */
    void rebindHotCells();

    /** Fetch-line number of @p pc (line-crossing detection). */
    uint64_t
    fetchLine(Addr pc) const
    {
        return feLinePow2_ ? (pc >> feLineShift_)
                           : pc / mem_.params().lineBytes;
    }

    void raiseRedirect(uint64_t cycle, StallCause cause);
    uint32_t instLatency(const DynInst &dyn) const;

    PipelineParams params_;
    DiseController *controller_;
    ExecCore core_;
    MemHierarchy mem_;
    BranchPredictor bpred_;
    TimingResult result_;

    /** @name Front-end state. */
    /// @{
    uint64_t feCycle_ = 0;
    uint32_t feSlots_ = 0;
    uint64_t curLine_ = ~uint64_t(0);
    uint64_t pendingRedirect_ = 0; ///< earliest next fetch cycle
    StallCause redirectCause_ = StallCause::None;
    uint32_t feDepth_ = 7;
    bool stallPerExpansion_ = false;
    uint32_t feLineShift_ = 0;
    bool feLinePow2_ = false;
    /// @}

    /** @name Cycle-accounting state (see CycleBreakdown).
     *
     * Stall amounts observed while timing the current instruction; at
     * its commit they are charged against the commit-clock advance in
     * priority order and then cleared (unconsumed amounts overlapped
     * with older work and cost nothing).
     */
    /// @{
    struct PendingStalls
    {
        uint64_t imiss = 0;
        uint64_t dise = 0;
        uint64_t branch = 0;
        uint64_t drain = 0;
        uint64_t dmiss = 0;
        uint64_t hazard = 0;
    };
    PendingStalls pend_;
    StatGroup pipeStats_{"pipeline"};
    StatGroup runStats_{"run"};
    StatGroup samplingStats_{"sampling"};
    /// @}

    /** @name Back-end state. */
    /// @{
    std::array<uint64_t, kNumLogicalRegs> regReady_{};
    std::vector<uint64_t> commitRing_; ///< ROB occupancy
    std::vector<uint64_t> issueRing_;  ///< RS occupancy
    uint64_t instIndex_ = 0;
    uint64_t dispatchCycleCur_ = 0;
    uint32_t dispatchSlots_ = 0;
    uint64_t commitCycleCur_ = 0;
    uint32_t commitSlots_ = 0;
    uint64_t lastCommit_ = 0;
    /// @}

    /** @name Per-expansion (sequence-level) prediction state.
     *  Shared by detailed timing and functional warming (a sequence is
     *  never split across a phase switch, so exactly one mode owns it
     *  at a time). */
    /// @{
    OpClass seqPredCls_ = OpClass::Nop;
    BranchPredictor::Prediction seqPred_;
    Addr seqTriggerPC_ = 0;
    bool seqTrigTaken_ = false;
    Addr seqTrigTarget_ = 0;
    bool seqRedirected_ = false;
    Addr seqRedirTarget_ = 0;
    uint64_t seqResolve_ = 0;
    /// @}

    /** @name Trace-feed and sampling state. */
    /// @{
    bool traceFeed_ = true;     ///< delivery path selector (config)
    uint64_t samplePeriod_ = 0; ///< 0 = sampling off (config)
    uint64_t sampleDetail_ = 0; ///< detailed insts per period (config)
    bool phaseDetail_ = true;   ///< current phase: detailed vs warming
    uint64_t phaseLeft_ = 0;    ///< instructions left in current phase
    /** Commit clock at the last deadline-cancel poll: the step-driven
     *  loop also polls when the clock jumps far between the fixed
     *  instruction-stride polls (miss-heavy regions advance many cycles
     *  per instruction, which would otherwise stretch the wall-clock
     *  poll interval). */
    uint64_t lastCancelPollCommit_ = 0;
    /**
     * Static per-instruction commit-clock advance bound: on the feed
     * path a batch of n records is only timed when the cycle budget has
     * n * bound headroom, so the budget check can stay per-batch and
     * still stop on exactly the same instruction as the per-step
     * reference (the tail runs record-at-a-time). Asserted after every
     * bounded batch.
     */
    uint64_t perInstCycleBound_ = 0;
    std::vector<DynInst> ring_; ///< feed batch buffer (lazy)
    /** Incremental commit/issue-ring cursors for the kFast hazard walk;
     *  derived (instIndex_ mod ring size) at runFeed entry, never
     *  checkpointed. The reference path keeps the plain modulo. */
    size_t robIdx_ = 0;
    size_t rsIdx_ = 0;
    /** Cached component stat cells (rebindHotCells). */
    uint64_t *icAccCell_ = nullptr;
    uint64_t *dcAccCell_ = nullptr;
    uint64_t *dcWrCell_ = nullptr;
    uint64_t *bpPredCell_ = nullptr;
    uint64_t *bpUpdCell_ = nullptr;
    /// @}
};

} // namespace dise

#endif // DISE_PIPELINE_PIPELINE_HPP
