#include "src/pipeline/pipeline.hpp"

#include <algorithm>

#include "src/common/bits.hpp"
#include "src/common/logging.hpp"

namespace dise {

namespace {

/** Records per ExecCore::fillTrace batch on the trace-feed path.
 *  Sized so the ring (kFeedBatch * sizeof(DynInst)) stays L1-resident:
 *  the producer writes and the consumer reads every record exactly
 *  once, so a larger ring only adds cache traffic. */
constexpr size_t kFeedBatch = 64;

/** Commit-clock advance between deadline-cancel polls (step path). */
constexpr uint64_t kCancelPollCycles = 0x10000;

} // namespace

PipelineSim::PipelineSim(const Program &prog, const PipelineParams &params,
                         DiseController *controller)
    : params_(params), controller_(controller), core_(prog, controller),
      mem_(params.mem), bpred_(params.bpred)
{
    feDepth_ = params_.frontendDepth;
    uint64_t missPenMax = 0;
    if (controller_) {
        const DiseConfig &cfg = controller_->engine().config();
        if (cfg.placement == DisePlacement::Pipe)
            feDepth_ += 1;
        stallPerExpansion_ = cfg.placement == DisePlacement::Stall;
        missPenMax = std::max<uint64_t>(cfg.missPenalty,
                                        cfg.composedMissPenalty);
    }
    commitRing_.assign(params_.robEntries, 0);
    issueRing_.assign(params_.rsEntries, 0);
    regReady_.fill(0);

    const uint32_t lb = params_.mem.lineBytes;
    feLinePow2_ = lb != 0 && isPow2(lb);
    feLineShift_ = feLinePow2_ ? log2i(lb) : 0;

    // Worst-case commit-clock advance for one instruction: a PT/RT fill
    // stall, plus an I-side and a D-side full miss chain (each at most
    // L1 + fill-from-L2 + fill-from-memory, doubled for the writeback
    // recursion), plus the deepest redirect refill and the longest
    // execution latency, all doubled with fixed slop so the bound stays
    // safe against bandwidth/occupancy rounding. Only batch sizing near
    // a cycle budget uses it; it is asserted, never trusted silently.
    const MemHierarchyParams &m = params_.mem;
    const uint64_t missChain =
        uint64_t(m.l1Latency) + 2 * (uint64_t(m.l2Latency) + m.memLatency);
    perInstCycleBound_ =
        2 * (missPenMax + 2 * missChain + feDepth_ +
             params_.syscallLatency + params_.intMultLatency +
             params_.decodeRedirectPenalty + params_.width + 16);

    rebindHotCells();
}

void
PipelineSim::rebindHotCells()
{
    icAccCell_ = mem_.icache().statsMutable().cell("accesses");
    dcAccCell_ = mem_.dcache().statsMutable().cell("accesses");
    dcWrCell_ = mem_.dcache().statsMutable().cell("writes");
    bpPredCell_ = bpred_.stats().cell("predictions");
    bpUpdCell_ = bpred_.stats().cell("updates");
}

void
PipelineSim::setSampling(uint64_t period, uint64_t detail)
{
    if (period == 0) {
        samplePeriod_ = 0;
        sampleDetail_ = 0;
        phaseDetail_ = true;
        phaseLeft_ = 0;
        result_.sampling = SamplingInfo{};
        return;
    }
    DISE_ASSERT(detail > 0 && detail <= period,
                "sampling detail must be in [1, period]");
    samplePeriod_ = period;
    sampleDetail_ = detail;
    phaseDetail_ = true;
    phaseLeft_ = detail;
    result_.sampling.enabled = true;
    result_.sampling.period = period;
    result_.sampling.detail = detail;
}

// ---------------------------------------------------------------------
// Leaf accessors: the ONLY divergence between the step-driven reference
// (kFast = false: public stat-counting component entry points) and the
// trace-feed path (kFast = true: inline hot variants + cached cells).
// ---------------------------------------------------------------------

template <bool kFast>
uint32_t
PipelineSim::fetchAccessT(Addr pc)
{
    if constexpr (kFast) {
        ++*icAccCell_;
        return mem_.icache().accessHot(pc, false);
    } else {
        return mem_.fetchAccess(pc);
    }
}

template <bool kFast>
uint32_t
PipelineSim::dataAccessT(Addr addr, bool write)
{
    if constexpr (kFast) {
        ++*dcAccCell_;
        if (write)
            ++*dcWrCell_;
        return mem_.dcache().accessHot(addr, write);
    } else {
        return mem_.dataAccess(addr, write);
    }
}

template <bool kFast>
BranchPredictor::Prediction
PipelineSim::predictT(Addr pc, OpClass cls, Addr fallThrough)
{
    if constexpr (kFast) {
        ++*bpPredCell_;
        return bpred_.predictHot(pc, cls, fallThrough);
    } else {
        return bpred_.predict(pc, cls, fallThrough);
    }
}

template <bool kFast>
void
PipelineSim::updateT(Addr pc, OpClass cls, bool taken, Addr target)
{
    if constexpr (kFast) {
        ++*bpUpdCell_;
        bpred_.updateHot(pc, cls, taken, target);
    } else {
        bpred_.update(pc, cls, taken, target);
    }
}

// ---------------------------------------------------------------------
// The timing model proper (shared between both delivery paths).
// ---------------------------------------------------------------------

template <bool kFast>
void
PipelineSim::newFetchGroupT(uint64_t cycle, Addr pc, bool accessICache)
{
    feCycle_ = std::max(feCycle_, cycle);
    feSlots_ = 0;
    const uint64_t line = fetchLine(pc);
    if (accessICache || line != curLine_) {
        const uint32_t lat = fetchAccessT<kFast>(pc);
        if (lat > params_.mem.l1Latency) {
            feCycle_ += lat - params_.mem.l1Latency;
            pend_.imiss += lat - params_.mem.l1Latency;
        }
        curLine_ = line;
    }
}

void
PipelineSim::raiseRedirect(uint64_t cycle, StallCause cause)
{
    if (cycle > pendingRedirect_) {
        pendingRedirect_ = cycle;
        redirectCause_ = cause;
    }
}

template <bool kFast>
uint64_t
PipelineSim::frontendT(const DynInst &dyn)
{
    const bool appBoundary = !dyn.expanded || dyn.firstOfSeq;

    if (appBoundary) {
        // Honour any pending redirect (mispredict resolution, flush).
        if (pendingRedirect_ > 0) {
            if (pendingRedirect_ > feCycle_) {
                const uint64_t wait = pendingRedirect_ - feCycle_;
                switch (redirectCause_) {
                  case StallCause::Branch:
                    pend_.branch += wait;
                    break;
                  case StallCause::Dise:
                    pend_.dise += wait;
                    break;
                  case StallCause::Drain:
                    pend_.drain += wait;
                    break;
                  case StallCause::None:
                    break;
                }
            }
            newFetchGroupT<kFast>(std::max(pendingRedirect_, feCycle_),
                                  dyn.pc, true);
            pendingRedirect_ = 0;
            redirectCause_ = StallCause::None;
        }
        // PT/RT miss: flush the front end and stall for the fill.
        if (dyn.missPenalty > 0) {
            result_.missStallCycles += dyn.missPenalty;
            pend_.dise += dyn.missPenalty;
            newFetchGroupT<kFast>(feCycle_ + dyn.missPenalty, dyn.pc, true);
        }
        // Expansion stall placement: one bubble per expansion.
        if (dyn.firstOfSeq && stallPerExpansion_) {
            ++result_.expansionStalls;
            pend_.dise += 1;
            feCycle_ += 1;
        }
        const uint64_t line = fetchLine(dyn.pc);
        if (line != curLine_) {
            // Line crossing: new fetch group with an I-cache access.
            newFetchGroupT<kFast>(feSlots_ > 0 ? feCycle_ + 1 : feCycle_,
                                  dyn.pc, true);
        } else if (feSlots_ >= params_.width) {
            newFetchGroupT<kFast>(feCycle_ + 1, dyn.pc, false);
        }
    } else {
        // Replacement instruction: consumes a decode slot, no fetch.
        if (feSlots_ >= params_.width) {
            feCycle_ += 1;
            feSlots_ = 0;
        }
    }

    ++feSlots_;
    return feCycle_;
}

uint32_t
PipelineSim::instLatency(const DynInst &dyn) const
{
    switch (dyn.inst.cls) {
      case OpClass::IntMult:
        return params_.intMultLatency;
      case OpClass::Syscall:
        return params_.syscallLatency;
      default:
        return params_.intAluLatency;
    }
}

template <bool kFast>
void
PipelineSim::resolveControlT(Addr pc, OpClass cls, bool taken, Addr target,
                             uint64_t resolveCycle, uint64_t decodeCycle,
                             const BranchPredictor::Prediction &pred)
{
    const bool wrongDir = pred.taken != taken;
    const bool wrongTarget =
        taken && (!pred.targetKnown || pred.target != target);
    if (wrongDir || wrongTarget) {
        if ((cls == OpClass::UncondBranch || cls == OpClass::Call) &&
            !wrongDir) {
            // Direct target computable at decode: cheap redirect.
            ++result_.decodeRedirects;
            raiseRedirect(decodeCycle + params_.decodeRedirectPenalty,
                          StallCause::Branch);
        } else {
            ++result_.mispredicts;
            raiseRedirect(resolveCycle + 1, StallCause::Branch);
        }
    } else if (taken) {
        // Correctly predicted taken: fetch continues at the target in
        // the next cycle.
        feCycle_ += 1;
        feSlots_ = 0;
        curLine_ = ~uint64_t(0);
    }
    if (cls != OpClass::Nop) {
        updateT<kFast>(pc, cls, taken, target);
        if (cls == OpClass::Call || cls == OpClass::CallIndirect)
            bpred_.pushReturn(pc + 4);
    }
}

template <bool kFast>
void
PipelineSim::timeInst(const DynInst &dyn)
{
    // ---- Front end: decode timestamp. ----
    const uint64_t decodeCycle = frontendT<kFast>(dyn);

    // ---- Dispatch. ----
    uint64_t dispatch = decodeCycle + feDepth_;
    // Ring slots for this instruction. The feed path keeps incremental
    // wraparound cursors (a runtime-divisor modulo costs measurable time
    // per instruction, and these fire four times per inst); the
    // reference derives the identical slot the original way.
    const size_t robIdx =
        kFast ? robIdx_ : size_t(instIndex_ % params_.robEntries);
    const size_t rsIdx =
        kFast ? rsIdx_ : size_t(instIndex_ % params_.rsEntries);
    // ROB entry must be free.
    const uint64_t robFree = commitRing_[robIdx];
    if (robFree > dispatch) {
        pend_.hazard += robFree - dispatch;
        dispatch = robFree;
    }
    // RS entry must be free (freed at issue).
    const uint64_t rsFree = issueRing_[rsIdx] + 1;
    if (rsFree > dispatch) {
        pend_.hazard += rsFree - dispatch;
        dispatch = rsFree;
    }
    // In-order dispatch, width per cycle.
    if (dispatch < dispatchCycleCur_)
        dispatch = dispatchCycleCur_;
    if (dispatch == dispatchCycleCur_) {
        if (dispatchSlots_ >= params_.width) {
            ++dispatch;
            dispatchCycleCur_ = dispatch;
            dispatchSlots_ = 0;
        }
    } else {
        dispatchCycleCur_ = dispatch;
        dispatchSlots_ = 0;
    }
    ++dispatchSlots_;

    // ---- Issue: dataflow-limited. ----
    uint64_t ready = dispatch + 1;
    if constexpr (kFast) {
        const SrcRegList srcs = dyn.inst.srcRegListFast();
        for (const RegIndex src : srcs)
            ready = std::max(ready, regReady_[src]);
    } else {
        for (const RegIndex src : dyn.inst.srcRegList())
            ready = std::max(ready, regReady_[src]);
    }
    if (ready > dispatch + 1)
        pend_.hazard += ready - (dispatch + 1);
    const uint64_t issue = ready;
    issueRing_[rsIdx] = issue;

    // ---- Complete. ----
    uint64_t complete = issue + instLatency(dyn);
    if (dyn.isMem && !dyn.isStore) {
        // Loads: AGU + D-cache access.
        const uint32_t lat = dataAccessT<kFast>(dyn.memAddr, false);
        if (lat > params_.mem.l1Latency)
            pend_.dmiss += lat - params_.mem.l1Latency;
        complete = issue + 1 + lat;
    }
    const RegIndex dest =
        kFast ? dyn.inst.destRegFast() : dyn.inst.destReg();
    if (dest != kZeroReg)
        regReady_[dest] = complete;

    // ---- Commit: in order, width per cycle. ----
    const uint64_t prevCommitClock = lastCommit_;
    uint64_t commit = std::max(complete + 1, lastCommit_);
    if (commit == commitCycleCur_) {
        if (commitSlots_ >= params_.width) {
            ++commit;
            commitCycleCur_ = commit;
            commitSlots_ = 0;
        }
    } else {
        commitCycleCur_ = commit;
        commitSlots_ = 0;
    }
    ++commitSlots_;
    lastCommit_ = commit;
    commitRing_[robIdx] = commit;

    // ---- Cycle accounting (see CycleBreakdown): charge this
    // instruction's commit-clock advance to its observed stall
    // causes in priority order; the remainder is base issue work.
    // Amounts left unconsumed overlapped older work — drop them.
    {
        uint64_t remaining = commit - prevCommitClock;
        // Most instructions observe no stall at all: every charge below
        // would be a no-op, so short-circuit straight to the issue
        // bucket (bit-identical — charging zeros changes nothing).
        const uint64_t anyStall = pend_.dise | pend_.imiss |
                                  pend_.branch | pend_.drain |
                                  pend_.dmiss | pend_.hazard;
        if (anyStall == 0) {
            result_.buckets.issue += remaining;
        } else {
            const auto charge = [&remaining](uint64_t &bucket,
                                             uint64_t amount) {
                const uint64_t take = std::min(remaining, amount);
                bucket += take;
                remaining -= take;
            };
            charge(result_.buckets.diseStall, pend_.dise);
            charge(result_.buckets.imissStall, pend_.imiss);
            charge(result_.buckets.branchFlush, pend_.branch);
            charge(result_.buckets.drain, pend_.drain);
            charge(result_.buckets.dmissStall, pend_.dmiss);
            charge(result_.buckets.hazard, pend_.hazard);
            result_.buckets.issue += remaining;
            pend_ = PendingStalls{};
        }
    }

    if (dyn.isStore) {
        // Store buffer: D-cache updated at commit, off the critical
        // path.
        dataAccessT<kFast>(dyn.memAddr, true);
    }
    if (dyn.isSyscall) {
        // Syscalls serialize the pipeline.
        raiseRedirect(commit + 1, StallCause::Drain);
    }

    // ---- Control flow and prediction. ----
    //
    // The front end predicts once per fetched (application-level)
    // PC. For an expansion, that single prediction covers the whole
    // replacement sequence: internal branches are never predicted
    // separately (paper Section 2.2) — a sequence whose outcome
    // differs from the trigger-PC prediction costs a mispredict
    // resolved when its deciding branch executes.
    if (!dyn.expanded) {
        if (dyn.isAppControl) {
            const auto pred =
                predictT<kFast>(dyn.pc, dyn.inst.cls, dyn.pc + 4);
            resolveControlT<kFast>(dyn.pc, dyn.inst.cls, dyn.taken,
                                   dyn.actualTarget, complete, decodeCycle,
                                   pred);
        }
    } else {
        if (dyn.firstOfSeq) {
            seqPredCls_ = dyn.seqPredClass;
            seqTriggerPC_ = dyn.pc;
            seqTrigTaken_ = false;
            seqTrigTarget_ = 0;
            seqRedirected_ = false;
            seqRedirTarget_ = 0;
            seqResolve_ = complete;
            if (seqPredCls_ != OpClass::Nop) {
                seqPred_ =
                    predictT<kFast>(dyn.pc, seqPredCls_, dyn.pc + 4);
            } else {
                seqPred_ = BranchPredictor::Prediction{};
                seqPred_.target = dyn.pc + 4;
                seqPred_.targetKnown = true;
            }
        }
        if (dyn.inst.isDiseBranch() && dyn.taken) {
            // Taken DISE branch: fetch restarts at the same PC, new
            // DISEPC — interpreted as a misprediction.
            ++result_.diseMispredicts;
            raiseRedirect(complete + 1, StallCause::Dise);
        }
        if (dyn.isAppControl) {
            seqResolve_ = std::max(seqResolve_, complete);
            if (dyn.taken) {
                if (dyn.triggerSlot) {
                    // Deferred: applied at sequence end unless a
                    // later non-trigger branch redirects first.
                    seqTrigTaken_ = true;
                    seqTrigTarget_ = dyn.actualTarget;
                } else {
                    seqRedirected_ = true;
                    seqRedirTarget_ = dyn.actualTarget;
                }
            }
        }
        if (dyn.lastOfSeq) {
            const bool taken = seqRedirected_ || seqTrigTaken_;
            const Addr next = seqRedirected_
                                  ? seqRedirTarget_
                                  : (seqTrigTaken_ ? seqTrigTarget_
                                                   : dyn.pc + 4);
            resolveControlT<kFast>(seqTriggerPC_, seqPredCls_, taken, next,
                                   std::max(seqResolve_, complete),
                                   decodeCycle, seqPred_);
        }
    }

    ++instIndex_;
    if constexpr (kFast) {
        if (++robIdx_ == params_.robEntries)
            robIdx_ = 0;
        if (++rsIdx_ == params_.rsEntries)
            rsIdx_ = 0;
    }
}

// ---------------------------------------------------------------------
// Functional warming (sampling gaps).
// ---------------------------------------------------------------------

void
PipelineSim::warmInst(const DynInst &dyn)
{
    // I-side: the detailed front end touches the I-cache once per
    // fetched line plus once per redirect target; a redirect (branch
    // flush, PT/RT fill, syscall drain) re-accesses even a same-line
    // target. Model that by invalidating the current-line latch on
    // every redirect cause and accessing on line change.
    const bool appBoundary = !dyn.expanded || dyn.firstOfSeq;
    if (appBoundary) {
        if (dyn.missPenalty > 0)
            curLine_ = ~uint64_t(0); // PT/RT fill flushes the front end
        const uint64_t line = fetchLine(dyn.pc);
        if (line != curLine_) {
            ++*icAccCell_;
            mem_.icache().accessHot(dyn.pc, false);
            curLine_ = line;
        }
    }

    // D-side: loads and stores in program order, exactly as the
    // detailed model orders its calls (loads at issue, stores at
    // commit, both within the same per-instruction pass).
    if (dyn.isMem) {
        ++*dcAccCell_;
        if (dyn.isStore)
            ++*dcWrCell_;
        mem_.dcache().accessHot(dyn.memAddr, dyn.isStore);
    }

    // Branch predictor: replicate the detailed model's predict/update/
    // RAS traffic, including sequence-level prediction for expansions.
    // A refetch happens iff the branch was taken (actual redirect or
    // correctly predicted taken) or predicted taken (wrong-direction
    // flush) — in all three cases the detailed front end starts a new
    // fetch group with an unconditional I-cache access.
    if (!dyn.expanded) {
        if (dyn.isAppControl) {
            ++*bpPredCell_;
            const auto pred =
                bpred_.predictHot(dyn.pc, dyn.inst.cls, dyn.pc + 4);
            ++*bpUpdCell_;
            bpred_.updateHot(dyn.pc, dyn.inst.cls, dyn.taken,
                             dyn.actualTarget);
            if (dyn.inst.cls == OpClass::Call ||
                dyn.inst.cls == OpClass::CallIndirect)
                bpred_.pushReturn(dyn.pc + 4);
            if (dyn.taken || pred.taken)
                curLine_ = ~uint64_t(0);
        }
    } else {
        if (dyn.firstOfSeq) {
            seqPredCls_ = dyn.seqPredClass;
            seqTriggerPC_ = dyn.pc;
            seqTrigTaken_ = false;
            seqTrigTarget_ = 0;
            seqRedirected_ = false;
            seqRedirTarget_ = 0;
            if (seqPredCls_ != OpClass::Nop) {
                ++*bpPredCell_;
                seqPred_ = bpred_.predictHot(dyn.pc, seqPredCls_,
                                             dyn.pc + 4);
            } else {
                seqPred_ = BranchPredictor::Prediction{};
                seqPred_.target = dyn.pc + 4;
                seqPred_.targetKnown = true;
            }
        }
        if (dyn.inst.isDiseBranch() && dyn.taken)
            curLine_ = ~uint64_t(0); // unpredicted redirect, refetch
        if (dyn.isAppControl && dyn.taken) {
            if (dyn.triggerSlot) {
                seqTrigTaken_ = true;
                seqTrigTarget_ = dyn.actualTarget;
            } else {
                seqRedirected_ = true;
                seqRedirTarget_ = dyn.actualTarget;
            }
        }
        if (dyn.lastOfSeq) {
            const bool taken = seqRedirected_ || seqTrigTaken_;
            const Addr next = seqRedirected_
                                  ? seqRedirTarget_
                                  : (seqTrigTaken_ ? seqTrigTarget_
                                                   : dyn.pc + 4);
            if (seqPredCls_ != OpClass::Nop) {
                ++*bpUpdCell_;
                bpred_.updateHot(seqTriggerPC_, seqPredCls_, taken, next);
                if (seqPredCls_ == OpClass::Call ||
                    seqPredCls_ == OpClass::CallIndirect)
                    bpred_.pushReturn(seqTriggerPC_ + 4);
            }
            if (taken || seqPred_.taken)
                curLine_ = ~uint64_t(0);
        }
    }
    if (dyn.isSyscall)
        curLine_ = ~uint64_t(0); // drain forces a refetch
}

// ---------------------------------------------------------------------
// Delivery loops.
// ---------------------------------------------------------------------

PipelineSim::RunStop
PipelineSim::runStepDriven(uint64_t maxInsts, uint64_t maxCycles)
{
    DynInst dyn;
    RunStop stop;
    while (stop.steps < maxInsts && core_.step(dyn)) {
        ++stop.steps;
        timeInst<false>(dyn);
        if (maxCycles != 0 && lastCommit_ > maxCycles) {
            stop.cycleBudgetExpired = true;
            break;
        }
        // External wall-clock deadline (the serving daemon): polled at
        // the same instruction cadence as the functional slow path, and
        // additionally whenever the commit clock has advanced far since
        // the last poll — miss-heavy regions cover many cycles (and
        // much wall time) per instruction, which would otherwise
        // stretch the poll interval. A trip is the cycle-watchdog
        // outcome.
        if ((stop.steps & 0x3ff) == 0 ||
            lastCommit_ - lastCancelPollCommit_ >= kCancelPollCycles) {
            lastCancelPollCommit_ = lastCommit_;
            if (core_.cancelRequested()) {
                stop.cycleBudgetExpired = true;
                break;
            }
        }
    }
    return stop;
}

PipelineSim::RunStop
PipelineSim::runFeed(uint64_t maxInsts, uint64_t maxCycles)
{
    if (ring_.empty())
        ring_.resize(kFeedBatch);
    const bool sampling = samplePeriod_ != 0;
    // Derived ring cursors for the kFast structural-hazard walk (see
    // timeInst): recomputed here rather than checkpointed, so snapshot
    // layout stays independent of the feed implementation.
    robIdx_ = size_t(instIndex_ % params_.robEntries);
    rsIdx_ = size_t(instIndex_ % params_.rsEntries);
    RunStop stop;
    while (stop.steps < maxInsts) {
        uint64_t want =
            std::min<uint64_t>(kFeedBatch, maxInsts - stop.steps);
        bool bounded = false;
        if (maxCycles != 0 && phaseDetail_) {
            // Size the batch so a full batch cannot overshoot the
            // budget; once the remaining headroom is under one
            // per-instruction bound, run record-at-a-time so the budget
            // check below stops on exactly the same instruction as the
            // per-step reference.
            const uint64_t headroom = maxCycles - lastCommit_;
            const uint64_t allowed = headroom / perInstCycleBound_;
            if (allowed == 0) {
                want = 1;
            } else {
                want = std::min(want, allowed);
                bounded = true;
            }
        }
        const size_t n = core_.fillTrace(ring_.data(), size_t(want));
        if (n == 0) {
            // Program exit/trap, or a cancel before any progress.
            if (core_.cancelRequested())
                stop.cycleBudgetExpired = true;
            break;
        }
        if (!sampling) {
            // Dedicated full-detail loop: no per-record mode dispatch in
            // the common (unsampled) configuration.
            for (size_t i = 0; i < n; ++i)
                timeInst<true>(ring_[i]);
        } else {
            for (size_t i = 0; i < n; ++i) {
                const DynInst &dyn = ring_[i];
                // Phase switches wait for an application boundary so a
                // replacement sequence is never split across modes.
                if (phaseLeft_ == 0 &&
                    (!dyn.expanded || dyn.firstOfSeq)) {
                    if (phaseDetail_) {
                        const uint64_t warmLen =
                            samplePeriod_ - sampleDetail_;
                        if (warmLen > 0) {
                            phaseDetail_ = false;
                            phaseLeft_ = warmLen;
                        } else {
                            phaseLeft_ = sampleDetail_; // detail==period
                        }
                    } else {
                        phaseDetail_ = true;
                        phaseLeft_ = sampleDetail_;
                    }
                }
                if (phaseLeft_ > 0)
                    --phaseLeft_;
                if (phaseDetail_) {
                    timeInst<true>(dyn);
                    ++result_.sampling.sampledInsts;
                } else {
                    warmInst(dyn);
                    ++result_.sampling.warmedInsts;
                }
            }
        }
        stop.steps += n;
        if (maxCycles != 0) {
            if (bounded) {
                // The batch was sized from perInstCycleBound_; a trip
                // here means the bound is wrong — fail loudly rather
                // than stop on a different instruction than the
                // reference would.
                DISE_ASSERT(lastCommit_ <= maxCycles,
                            "per-instruction cycle bound violated by a "
                            "trace-feed batch");
            } else if (lastCommit_ > maxCycles) {
                stop.cycleBudgetExpired = true;
                break;
            }
        }
        // Deadline poll once per batch (finer than the reference's
        // 1024-instruction stride).
        lastCancelPollCommit_ = lastCommit_;
        if (core_.cancelRequested()) {
            stop.cycleBudgetExpired = true;
            break;
        }
    }
    return stop;
}

TimingResult
PipelineSim::run(uint64_t maxInsts, uint64_t maxCycles)
{
    DISE_ASSERT(samplePeriod_ == 0 || traceFeed_,
                "sampled timing requires the trace feed");
    const RunStop stop = traceFeed_ ? runFeed(maxInsts, maxCycles)
                                    : runStepDriven(maxInsts, maxCycles);

    result_.cycles = lastCommit_;
    result_.arch = core_.result();
    // Watchdog expiry (instruction cap or cycle budget) with the core
    // still live is a Hang outcome, mirroring ExecCore::run.
    if (result_.arch.outcome == RunOutcome::Running &&
        (stop.cycleBudgetExpired || stop.steps >= maxInsts)) {
        result_.arch.outcome = RunOutcome::Hang;
    }
    result_.icacheMisses = mem_.icache().misses();
    result_.dcacheMisses = mem_.dcache().misses();
    result_.l2Misses = mem_.l2().misses();
    if (result_.sampling.enabled) {
        // Warming never advances the commit clock, so the cycle count
        // is exactly the cycles measured inside the detailed windows.
        result_.sampling.measuredCycles = lastCommit_;
    }
    // The accounting identity: every commit-clock advance was charged
    // to exactly one bucket, so the buckets partition the cycle count.
    DISE_ASSERT(result_.buckets.total() == result_.cycles,
                strFormat("cycle buckets sum to %llu, not total %llu",
                          (unsigned long long)result_.buckets.total(),
                          (unsigned long long)result_.cycles));
    return result_;
}

void
PipelineSim::saveSnapshot(TimingSnapshot &out) const
{
    core_.saveSnapshot(out.core);
    out.result = result_;
    out.mem = std::make_unique<MemHierarchy>(params_.mem);
    out.mem->adoptState(mem_);
    out.bpred = std::make_unique<BranchPredictor>(bpred_);
    out.scalars = {feCycle_,
                   feSlots_,
                   curLine_,
                   pendingRedirect_,
                   uint64_t(redirectCause_),
                   pend_.imiss,
                   pend_.dise,
                   pend_.branch,
                   pend_.drain,
                   pend_.dmiss,
                   pend_.hazard,
                   instIndex_,
                   dispatchCycleCur_,
                   dispatchSlots_,
                   commitCycleCur_,
                   commitSlots_,
                   lastCommit_,
                   uint64_t(seqPredCls_),
                   seqPred_.taken,
                   seqPred_.target,
                   seqPred_.targetKnown,
                   seqTriggerPC_,
                   seqTrigTaken_,
                   seqTrigTarget_,
                   seqRedirected_,
                   seqRedirTarget_,
                   seqResolve_,
                   uint64_t(phaseDetail_),
                   phaseLeft_,
                   lastCancelPollCommit_};
    out.scalars.insert(out.scalars.end(), regReady_.begin(),
                       regReady_.end());
    out.scalars.insert(out.scalars.end(), commitRing_.begin(),
                       commitRing_.end());
    out.scalars.insert(out.scalars.end(), issueRing_.begin(),
                       issueRing_.end());
}

void
PipelineSim::restoreSnapshot(const TimingSnapshot &snap)
{
    core_.restoreSnapshot(snap.core);
    result_ = snap.result;
    mem_.adoptState(*snap.mem);
    bpred_ = *snap.bpred;
    const uint64_t *p = snap.scalars.data();
    DISE_ASSERT(snap.scalars.size() == 30 + regReady_.size() +
                                           commitRing_.size() +
                                           issueRing_.size(),
                "timing snapshot shape mismatch (different machine "
                "configuration?)");
    feCycle_ = *p++;
    feSlots_ = uint32_t(*p++);
    curLine_ = *p++;
    pendingRedirect_ = *p++;
    redirectCause_ = StallCause(*p++);
    pend_.imiss = *p++;
    pend_.dise = *p++;
    pend_.branch = *p++;
    pend_.drain = *p++;
    pend_.dmiss = *p++;
    pend_.hazard = *p++;
    instIndex_ = *p++;
    dispatchCycleCur_ = *p++;
    dispatchSlots_ = uint32_t(*p++);
    commitCycleCur_ = *p++;
    commitSlots_ = uint32_t(*p++);
    lastCommit_ = *p++;
    seqPredCls_ = OpClass(*p++);
    seqPred_.taken = *p++ != 0;
    seqPred_.target = *p++;
    seqPred_.targetKnown = *p++ != 0;
    seqTriggerPC_ = *p++;
    seqTrigTaken_ = *p++ != 0;
    seqTrigTarget_ = *p++;
    seqRedirected_ = *p++ != 0;
    seqRedirTarget_ = *p++;
    seqResolve_ = *p++;
    phaseDetail_ = *p++ != 0;
    phaseLeft_ = *p++;
    lastCancelPollCommit_ = *p++;
    for (uint64_t &r : regReady_)
        r = *p++;
    for (uint64_t &r : commitRing_)
        r = *p++;
    for (uint64_t &r : issueRing_)
        r = *p++;
    // adoptState/copy-assignment above replaced the components' stat
    // maps; the cached cells point into the old ones.
    rebindHotCells();
}

void
PipelineSim::registerStats(StatsRegistry &reg)
{
    // Materialize the pipeline's own counters from the timing result.
    pipeStats_.set("cycles", result_.cycles);
    pipeStats_.set("bucket.issue", result_.buckets.issue);
    pipeStats_.set("bucket.imiss_stall", result_.buckets.imissStall);
    pipeStats_.set("bucket.dmiss_stall", result_.buckets.dmissStall);
    pipeStats_.set("bucket.branch_flush", result_.buckets.branchFlush);
    pipeStats_.set("bucket.dise_stall", result_.buckets.diseStall);
    pipeStats_.set("bucket.hazard", result_.buckets.hazard);
    pipeStats_.set("bucket.drain", result_.buckets.drain);
    pipeStats_.set("mispredicts", result_.mispredicts);
    pipeStats_.set("decode_redirects", result_.decodeRedirects);
    pipeStats_.set("dise_mispredicts", result_.diseMispredicts);
    pipeStats_.set("expansion_stalls", result_.expansionStalls);
    pipeStats_.set("miss_stall_cycles", result_.missStallCycles);

    // Architectural run counters (trap/outcome scalars are strings and
    // are added by the caller, e.g. diserun, via reg.set()).
    const RunResult &arch = result_.arch;
    runStats_.set("dyn_insts", arch.dynInsts);
    runStats_.set("app_insts", arch.appInsts);
    runStats_.set("dise_insts", arch.diseInsts);
    runStats_.set("expansions", arch.expansions);
    runStats_.set("loads", arch.loads);
    runStats_.set("stores", arch.stores);
    runStats_.set("acf_detections", arch.acfDetections);

    reg.add("pipeline", &pipeStats_);
    reg.add("run", &runStats_);
    reg.add("mem.l1i", &mem_.icache().stats());
    reg.add("mem.l1d", &mem_.dcache().stats());
    reg.add("mem.l2", &mem_.l2().stats());
    reg.add("bpred", &bpred_.stats());
    if (controller_)
        reg.add("dise", &controller_->engine().stats());
    if (core_.fusionEnabled())
        reg.add("acf.fusion", &core_.fusionStatGroup());

    // Only present for sampled runs: full-detail feed and step-driven
    // runs must serialize identically.
    if (result_.sampling.enabled) {
        const SamplingInfo &s = result_.sampling;
        samplingStats_.set("period", s.period);
        samplingStats_.set("detail", s.detail);
        samplingStats_.set("sampled_insts", s.sampledInsts);
        samplingStats_.set("warmed_insts", s.warmedInsts);
        samplingStats_.set("measured_cycles", s.measuredCycles);
        samplingStats_.set("estimated_cycles", result_.estimatedCycles());
        reg.add("sampling", &samplingStats_);
        reg.addRatio("sampling.measured_cpi", "sampling.measured_cycles",
                     "sampling.sampled_insts");
    }

    reg.addRatio("mem.l1i.miss_rate", "mem.l1i.misses",
                 "mem.l1i.accesses");
    reg.addRatio("mem.l1d.miss_rate", "mem.l1d.misses",
                 "mem.l1d.accesses");
    reg.addRatio("mem.l2.miss_rate", "mem.l2.misses", "mem.l2.accesses");
    reg.addRatio("bpred.mispredict_rate", "pipeline.mispredicts",
                 "bpred.predictions");
    reg.addRatio("pipeline.ipc", "run.dyn_insts", "pipeline.cycles");
    reg.addRatio("pipeline.cpi", "pipeline.cycles", "run.dyn_insts");
    if (controller_) {
        reg.addRatio("dise.expansion_rate", "dise.expansions",
                     "dise.inspected");
    }
}

} // namespace dise
