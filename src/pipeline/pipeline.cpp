#include "src/pipeline/pipeline.hpp"

#include <algorithm>

#include "src/common/logging.hpp"

namespace dise {

PipelineSim::PipelineSim(const Program &prog, const PipelineParams &params,
                         DiseController *controller)
    : params_(params), controller_(controller), core_(prog, controller),
      mem_(params.mem), bpred_(params.bpred)
{
    feDepth_ = params_.frontendDepth;
    if (controller_) {
        const DiseConfig &cfg = controller_->engine().config();
        if (cfg.placement == DisePlacement::Pipe)
            feDepth_ += 1;
        stallPerExpansion_ = cfg.placement == DisePlacement::Stall;
    }
    commitRing_.assign(params_.robEntries, 0);
    issueRing_.assign(params_.rsEntries, 0);
    regReady_.fill(0);
}

void
PipelineSim::newFetchGroup(uint64_t cycle, Addr pc, bool accessICache)
{
    feCycle_ = std::max(feCycle_, cycle);
    feSlots_ = 0;
    const uint64_t line = pc / mem_.params().lineBytes;
    if (accessICache || line != curLine_) {
        const uint32_t lat = mem_.fetchAccess(pc);
        if (lat > params_.mem.l1Latency) {
            feCycle_ += lat - params_.mem.l1Latency;
            pend_.imiss += lat - params_.mem.l1Latency;
        }
        curLine_ = line;
    }
}

void
PipelineSim::raiseRedirect(uint64_t cycle, StallCause cause)
{
    if (cycle > pendingRedirect_) {
        pendingRedirect_ = cycle;
        redirectCause_ = cause;
    }
}

uint64_t
PipelineSim::frontend(const DynInst &dyn)
{
    const bool appBoundary = !dyn.expanded || dyn.firstOfSeq;

    if (appBoundary) {
        // Honour any pending redirect (mispredict resolution, flush).
        if (pendingRedirect_ > 0) {
            if (pendingRedirect_ > feCycle_) {
                const uint64_t wait = pendingRedirect_ - feCycle_;
                switch (redirectCause_) {
                  case StallCause::Branch:
                    pend_.branch += wait;
                    break;
                  case StallCause::Dise:
                    pend_.dise += wait;
                    break;
                  case StallCause::Drain:
                    pend_.drain += wait;
                    break;
                  case StallCause::None:
                    break;
                }
            }
            newFetchGroup(std::max(pendingRedirect_, feCycle_), dyn.pc,
                          true);
            pendingRedirect_ = 0;
            redirectCause_ = StallCause::None;
        }
        // PT/RT miss: flush the front end and stall for the fill.
        if (dyn.missPenalty > 0) {
            result_.missStallCycles += dyn.missPenalty;
            pend_.dise += dyn.missPenalty;
            newFetchGroup(feCycle_ + dyn.missPenalty, dyn.pc, true);
        }
        // Expansion stall placement: one bubble per expansion.
        if (dyn.firstOfSeq && stallPerExpansion_) {
            ++result_.expansionStalls;
            pend_.dise += 1;
            feCycle_ += 1;
        }
        const uint64_t line = dyn.pc / mem_.params().lineBytes;
        if (line != curLine_) {
            // Line crossing: new fetch group with an I-cache access.
            newFetchGroup(feSlots_ > 0 ? feCycle_ + 1 : feCycle_, dyn.pc,
                          true);
        } else if (feSlots_ >= params_.width) {
            newFetchGroup(feCycle_ + 1, dyn.pc, false);
        }
    } else {
        // Replacement instruction: consumes a decode slot, no fetch.
        if (feSlots_ >= params_.width) {
            feCycle_ += 1;
            feSlots_ = 0;
        }
    }

    ++feSlots_;
    return feCycle_;
}

uint32_t
PipelineSim::instLatency(const DynInst &dyn) const
{
    switch (dyn.inst.cls) {
      case OpClass::IntMult:
        return params_.intMultLatency;
      case OpClass::Syscall:
        return params_.syscallLatency;
      default:
        return params_.intAluLatency;
    }
}

void
PipelineSim::resolveControl(Addr pc, OpClass cls, bool taken, Addr target,
                            uint64_t resolveCycle, uint64_t decodeCycle,
                            const BranchPredictor::Prediction &pred)
{
    const bool wrongDir = pred.taken != taken;
    const bool wrongTarget =
        taken && (!pred.targetKnown || pred.target != target);
    if (wrongDir || wrongTarget) {
        if ((cls == OpClass::UncondBranch || cls == OpClass::Call) &&
            !wrongDir) {
            // Direct target computable at decode: cheap redirect.
            ++result_.decodeRedirects;
            raiseRedirect(decodeCycle + params_.decodeRedirectPenalty,
                          StallCause::Branch);
        } else {
            ++result_.mispredicts;
            raiseRedirect(resolveCycle + 1, StallCause::Branch);
        }
    } else if (taken) {
        // Correctly predicted taken: fetch continues at the target in
        // the next cycle.
        feCycle_ += 1;
        feSlots_ = 0;
        curLine_ = ~uint64_t(0);
    }
    if (cls != OpClass::Nop) {
        bpred_.update(pc, cls, taken, target);
        if (cls == OpClass::Call || cls == OpClass::CallIndirect)
            bpred_.pushReturn(pc + 4);
    }
}

TimingResult
PipelineSim::run(uint64_t maxInsts, uint64_t maxCycles)
{
    DynInst dyn;
    uint64_t steps = 0;
    bool cycleBudgetExpired = false;
    while (steps < maxInsts && core_.step(dyn)) {
        ++steps;

        // ---- Front end: decode timestamp. ----
        const uint64_t decodeCycle = frontend(dyn);

        // ---- Dispatch. ----
        uint64_t dispatch = decodeCycle + feDepth_;
        // ROB entry must be free.
        const uint64_t robFree =
            commitRing_[instIndex_ % params_.robEntries];
        if (robFree > dispatch) {
            pend_.hazard += robFree - dispatch;
            dispatch = robFree;
        }
        // RS entry must be free (freed at issue).
        const uint64_t rsFree =
            issueRing_[instIndex_ % params_.rsEntries] + 1;
        if (rsFree > dispatch) {
            pend_.hazard += rsFree - dispatch;
            dispatch = rsFree;
        }
        // In-order dispatch, width per cycle.
        if (dispatch < dispatchCycleCur_)
            dispatch = dispatchCycleCur_;
        if (dispatch == dispatchCycleCur_) {
            if (dispatchSlots_ >= params_.width) {
                ++dispatch;
                dispatchCycleCur_ = dispatch;
                dispatchSlots_ = 0;
            }
        } else {
            dispatchCycleCur_ = dispatch;
            dispatchSlots_ = 0;
        }
        ++dispatchSlots_;

        // ---- Issue: dataflow-limited. ----
        uint64_t ready = dispatch + 1;
        for (const RegIndex src : dyn.inst.srcRegList())
            ready = std::max(ready, regReady_[src]);
        if (ready > dispatch + 1)
            pend_.hazard += ready - (dispatch + 1);
        const uint64_t issue = ready;
        issueRing_[instIndex_ % params_.rsEntries] = issue;

        // ---- Complete. ----
        uint64_t complete = issue + instLatency(dyn);
        if (dyn.isMem && !dyn.isStore) {
            // Loads: AGU + D-cache access.
            const uint32_t lat = mem_.dataAccess(dyn.memAddr, false);
            if (lat > params_.mem.l1Latency)
                pend_.dmiss += lat - params_.mem.l1Latency;
            complete = issue + 1 + lat;
        }
        const RegIndex dest = dyn.inst.destReg();
        if (dest != kZeroReg)
            regReady_[dest] = complete;

        // ---- Commit: in order, width per cycle. ----
        const uint64_t prevCommitClock = lastCommit_;
        uint64_t commit = std::max(complete + 1, lastCommit_);
        if (commit == commitCycleCur_) {
            if (commitSlots_ >= params_.width) {
                ++commit;
                commitCycleCur_ = commit;
                commitSlots_ = 0;
            }
        } else {
            commitCycleCur_ = commit;
            commitSlots_ = 0;
        }
        ++commitSlots_;
        lastCommit_ = commit;
        commitRing_[instIndex_ % params_.robEntries] = commit;

        // ---- Cycle accounting (see CycleBreakdown): charge this
        // instruction's commit-clock advance to its observed stall
        // causes in priority order; the remainder is base issue work.
        // Amounts left unconsumed overlapped older work — drop them.
        {
            uint64_t remaining = commit - prevCommitClock;
            const auto charge = [&remaining](uint64_t &bucket,
                                             uint64_t amount) {
                const uint64_t take = std::min(remaining, amount);
                bucket += take;
                remaining -= take;
            };
            charge(result_.buckets.diseStall, pend_.dise);
            charge(result_.buckets.imissStall, pend_.imiss);
            charge(result_.buckets.branchFlush, pend_.branch);
            charge(result_.buckets.drain, pend_.drain);
            charge(result_.buckets.dmissStall, pend_.dmiss);
            charge(result_.buckets.hazard, pend_.hazard);
            result_.buckets.issue += remaining;
            pend_ = PendingStalls{};
        }

        if (dyn.isStore) {
            // Store buffer: D-cache updated at commit, off the critical
            // path.
            mem_.dataAccess(dyn.memAddr, true);
        }
        if (dyn.isSyscall) {
            // Syscalls serialize the pipeline.
            raiseRedirect(commit + 1, StallCause::Drain);
        }

        // ---- Control flow and prediction. ----
        //
        // The front end predicts once per fetched (application-level)
        // PC. For an expansion, that single prediction covers the whole
        // replacement sequence: internal branches are never predicted
        // separately (paper Section 2.2) — a sequence whose outcome
        // differs from the trigger-PC prediction costs a mispredict
        // resolved when its deciding branch executes.
        if (!dyn.expanded) {
            if (dyn.isAppControl) {
                const auto pred =
                    bpred_.predict(dyn.pc, dyn.inst.cls, dyn.pc + 4);
                resolveControl(dyn.pc, dyn.inst.cls, dyn.taken,
                               dyn.actualTarget, complete, decodeCycle,
                               pred);
            }
        } else {
            if (dyn.firstOfSeq) {
                seqPredCls_ = dyn.seqPredClass;
                seqTriggerPC_ = dyn.pc;
                seqTrigTaken_ = false;
                seqTrigTarget_ = 0;
                seqRedirected_ = false;
                seqRedirTarget_ = 0;
                seqResolve_ = complete;
                if (seqPredCls_ != OpClass::Nop) {
                    seqPred_ = bpred_.predict(dyn.pc, seqPredCls_,
                                              dyn.pc + 4);
                } else {
                    seqPred_ = BranchPredictor::Prediction{};
                    seqPred_.target = dyn.pc + 4;
                    seqPred_.targetKnown = true;
                }
            }
            if (dyn.inst.isDiseBranch() && dyn.taken) {
                // Taken DISE branch: fetch restarts at the same PC, new
                // DISEPC — interpreted as a misprediction.
                ++result_.diseMispredicts;
                raiseRedirect(complete + 1, StallCause::Dise);
            }
            if (dyn.isAppControl) {
                seqResolve_ = std::max(seqResolve_, complete);
                if (dyn.taken) {
                    if (dyn.triggerSlot) {
                        // Deferred: applied at sequence end unless a
                        // later non-trigger branch redirects first.
                        seqTrigTaken_ = true;
                        seqTrigTarget_ = dyn.actualTarget;
                    } else {
                        seqRedirected_ = true;
                        seqRedirTarget_ = dyn.actualTarget;
                    }
                }
            }
            if (dyn.lastOfSeq) {
                const bool taken = seqRedirected_ || seqTrigTaken_;
                const Addr next = seqRedirected_
                                      ? seqRedirTarget_
                                      : (seqTrigTaken_ ? seqTrigTarget_
                                                       : dyn.pc + 4);
                resolveControl(seqTriggerPC_, seqPredCls_, taken, next,
                               std::max(seqResolve_, complete),
                               decodeCycle, seqPred_);
            }
        }

        ++instIndex_;
        if (maxCycles != 0 && lastCommit_ > maxCycles) {
            cycleBudgetExpired = true;
            break;
        }
        // External wall-clock deadline (the serving daemon): polled at
        // the same cadence as the functional slow path; a trip is the
        // cycle-watchdog outcome.
        if ((steps & 0x3ff) == 0 && core_.cancelRequested()) {
            cycleBudgetExpired = true;
            break;
        }
    }

    result_.cycles = lastCommit_;
    result_.arch = core_.result();
    // Watchdog expiry (instruction cap or cycle budget) with the core
    // still live is a Hang outcome, mirroring ExecCore::run.
    if (result_.arch.outcome == RunOutcome::Running &&
        (cycleBudgetExpired || steps >= maxInsts)) {
        result_.arch.outcome = RunOutcome::Hang;
    }
    result_.icacheMisses = mem_.icache().misses();
    result_.dcacheMisses = mem_.dcache().misses();
    result_.l2Misses = mem_.l2().misses();
    // The accounting identity: every commit-clock advance was charged
    // to exactly one bucket, so the buckets partition the cycle count.
    DISE_ASSERT(result_.buckets.total() == result_.cycles,
                strFormat("cycle buckets sum to %llu, not total %llu",
                          (unsigned long long)result_.buckets.total(),
                          (unsigned long long)result_.cycles));
    return result_;
}

void
PipelineSim::saveSnapshot(TimingSnapshot &out) const
{
    core_.saveSnapshot(out.core);
    out.result = result_;
    out.mem = std::make_unique<MemHierarchy>(params_.mem);
    out.mem->adoptState(mem_);
    out.bpred = std::make_unique<BranchPredictor>(bpred_);
    out.scalars = {feCycle_,
                   feSlots_,
                   curLine_,
                   pendingRedirect_,
                   uint64_t(redirectCause_),
                   pend_.imiss,
                   pend_.dise,
                   pend_.branch,
                   pend_.drain,
                   pend_.dmiss,
                   pend_.hazard,
                   instIndex_,
                   dispatchCycleCur_,
                   dispatchSlots_,
                   commitCycleCur_,
                   commitSlots_,
                   lastCommit_,
                   uint64_t(seqPredCls_),
                   seqPred_.taken,
                   seqPred_.target,
                   seqPred_.targetKnown,
                   seqTriggerPC_,
                   seqTrigTaken_,
                   seqTrigTarget_,
                   seqRedirected_,
                   seqRedirTarget_,
                   seqResolve_};
    out.scalars.insert(out.scalars.end(), regReady_.begin(),
                       regReady_.end());
    out.scalars.insert(out.scalars.end(), commitRing_.begin(),
                       commitRing_.end());
    out.scalars.insert(out.scalars.end(), issueRing_.begin(),
                       issueRing_.end());
}

void
PipelineSim::restoreSnapshot(const TimingSnapshot &snap)
{
    core_.restoreSnapshot(snap.core);
    result_ = snap.result;
    mem_.adoptState(*snap.mem);
    bpred_ = *snap.bpred;
    const uint64_t *p = snap.scalars.data();
    DISE_ASSERT(snap.scalars.size() == 27 + regReady_.size() +
                                           commitRing_.size() +
                                           issueRing_.size(),
                "timing snapshot shape mismatch (different machine "
                "configuration?)");
    feCycle_ = *p++;
    feSlots_ = uint32_t(*p++);
    curLine_ = *p++;
    pendingRedirect_ = *p++;
    redirectCause_ = StallCause(*p++);
    pend_.imiss = *p++;
    pend_.dise = *p++;
    pend_.branch = *p++;
    pend_.drain = *p++;
    pend_.dmiss = *p++;
    pend_.hazard = *p++;
    instIndex_ = *p++;
    dispatchCycleCur_ = *p++;
    dispatchSlots_ = uint32_t(*p++);
    commitCycleCur_ = *p++;
    commitSlots_ = uint32_t(*p++);
    lastCommit_ = *p++;
    seqPredCls_ = OpClass(*p++);
    seqPred_.taken = *p++ != 0;
    seqPred_.target = *p++;
    seqPred_.targetKnown = *p++ != 0;
    seqTriggerPC_ = *p++;
    seqTrigTaken_ = *p++ != 0;
    seqTrigTarget_ = *p++;
    seqRedirected_ = *p++ != 0;
    seqRedirTarget_ = *p++;
    seqResolve_ = *p++;
    for (uint64_t &r : regReady_)
        r = *p++;
    for (uint64_t &r : commitRing_)
        r = *p++;
    for (uint64_t &r : issueRing_)
        r = *p++;
}

void
PipelineSim::registerStats(StatsRegistry &reg)
{
    // Materialize the pipeline's own counters from the timing result.
    pipeStats_.set("cycles", result_.cycles);
    pipeStats_.set("bucket.issue", result_.buckets.issue);
    pipeStats_.set("bucket.imiss_stall", result_.buckets.imissStall);
    pipeStats_.set("bucket.dmiss_stall", result_.buckets.dmissStall);
    pipeStats_.set("bucket.branch_flush", result_.buckets.branchFlush);
    pipeStats_.set("bucket.dise_stall", result_.buckets.diseStall);
    pipeStats_.set("bucket.hazard", result_.buckets.hazard);
    pipeStats_.set("bucket.drain", result_.buckets.drain);
    pipeStats_.set("mispredicts", result_.mispredicts);
    pipeStats_.set("decode_redirects", result_.decodeRedirects);
    pipeStats_.set("dise_mispredicts", result_.diseMispredicts);
    pipeStats_.set("expansion_stalls", result_.expansionStalls);
    pipeStats_.set("miss_stall_cycles", result_.missStallCycles);

    // Architectural run counters (trap/outcome scalars are strings and
    // are added by the caller, e.g. diserun, via reg.set()).
    const RunResult &arch = result_.arch;
    runStats_.set("dyn_insts", arch.dynInsts);
    runStats_.set("app_insts", arch.appInsts);
    runStats_.set("dise_insts", arch.diseInsts);
    runStats_.set("expansions", arch.expansions);
    runStats_.set("loads", arch.loads);
    runStats_.set("stores", arch.stores);
    runStats_.set("acf_detections", arch.acfDetections);

    reg.add("pipeline", &pipeStats_);
    reg.add("run", &runStats_);
    reg.add("mem.l1i", &mem_.icache().stats());
    reg.add("mem.l1d", &mem_.dcache().stats());
    reg.add("mem.l2", &mem_.l2().stats());
    reg.add("bpred", &bpred_.stats());
    if (controller_)
        reg.add("dise", &controller_->engine().stats());

    reg.addRatio("mem.l1i.miss_rate", "mem.l1i.misses",
                 "mem.l1i.accesses");
    reg.addRatio("mem.l1d.miss_rate", "mem.l1d.misses",
                 "mem.l1d.accesses");
    reg.addRatio("mem.l2.miss_rate", "mem.l2.misses", "mem.l2.accesses");
    reg.addRatio("bpred.mispredict_rate", "pipeline.mispredicts",
                 "bpred.predictions");
    reg.addRatio("pipeline.ipc", "run.dyn_insts", "pipeline.cycles");
    reg.addRatio("pipeline.cpi", "pipeline.cycles", "run.dyn_insts");
    if (controller_) {
        reg.addRatio("dise.expansion_rate", "dise.expansions",
                     "dise.inspected");
    }
}

} // namespace dise
