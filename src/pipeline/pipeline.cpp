#include "src/pipeline/pipeline.hpp"

#include <algorithm>

#include "src/common/logging.hpp"

namespace dise {

PipelineSim::PipelineSim(const Program &prog, const PipelineParams &params,
                         DiseController *controller)
    : params_(params), controller_(controller), core_(prog, controller),
      mem_(params.mem), bpred_(params.bpred)
{
    feDepth_ = params_.frontendDepth;
    if (controller_) {
        const DiseConfig &cfg = controller_->engine().config();
        if (cfg.placement == DisePlacement::Pipe)
            feDepth_ += 1;
        stallPerExpansion_ = cfg.placement == DisePlacement::Stall;
    }
    commitRing_.assign(params_.robEntries, 0);
    issueRing_.assign(params_.rsEntries, 0);
    regReady_.fill(0);
}

void
PipelineSim::newFetchGroup(uint64_t cycle, Addr pc, bool accessICache)
{
    feCycle_ = std::max(feCycle_, cycle);
    feSlots_ = 0;
    const uint64_t line = pc / mem_.params().lineBytes;
    if (accessICache || line != curLine_) {
        const uint32_t lat = mem_.fetchAccess(pc);
        if (lat > params_.mem.l1Latency)
            feCycle_ += lat - params_.mem.l1Latency;
        curLine_ = line;
    }
}

uint64_t
PipelineSim::frontend(const DynInst &dyn)
{
    const bool appBoundary = !dyn.expanded || dyn.firstOfSeq;

    if (appBoundary) {
        // Honour any pending redirect (mispredict resolution, flush).
        if (pendingRedirect_ > 0) {
            newFetchGroup(std::max(pendingRedirect_, feCycle_), dyn.pc,
                          true);
            pendingRedirect_ = 0;
        }
        // PT/RT miss: flush the front end and stall for the fill.
        if (dyn.missPenalty > 0) {
            result_.missStallCycles += dyn.missPenalty;
            newFetchGroup(feCycle_ + dyn.missPenalty, dyn.pc, true);
        }
        // Expansion stall placement: one bubble per expansion.
        if (dyn.firstOfSeq && stallPerExpansion_) {
            ++result_.expansionStalls;
            feCycle_ += 1;
        }
        const uint64_t line = dyn.pc / mem_.params().lineBytes;
        if (line != curLine_) {
            // Line crossing: new fetch group with an I-cache access.
            newFetchGroup(feSlots_ > 0 ? feCycle_ + 1 : feCycle_, dyn.pc,
                          true);
        } else if (feSlots_ >= params_.width) {
            newFetchGroup(feCycle_ + 1, dyn.pc, false);
        }
    } else {
        // Replacement instruction: consumes a decode slot, no fetch.
        if (feSlots_ >= params_.width) {
            feCycle_ += 1;
            feSlots_ = 0;
        }
    }

    ++feSlots_;
    return feCycle_;
}

uint32_t
PipelineSim::instLatency(const DynInst &dyn) const
{
    switch (dyn.inst.cls) {
      case OpClass::IntMult:
        return params_.intMultLatency;
      case OpClass::Syscall:
        return params_.syscallLatency;
      default:
        return params_.intAluLatency;
    }
}

void
PipelineSim::resolveControl(Addr pc, OpClass cls, bool taken, Addr target,
                            uint64_t resolveCycle, uint64_t decodeCycle,
                            const BranchPredictor::Prediction &pred)
{
    const bool wrongDir = pred.taken != taken;
    const bool wrongTarget =
        taken && (!pred.targetKnown || pred.target != target);
    if (wrongDir || wrongTarget) {
        if ((cls == OpClass::UncondBranch || cls == OpClass::Call) &&
            !wrongDir) {
            // Direct target computable at decode: cheap redirect.
            ++result_.decodeRedirects;
            pendingRedirect_ = std::max(
                pendingRedirect_,
                decodeCycle + params_.decodeRedirectPenalty);
        } else {
            ++result_.mispredicts;
            pendingRedirect_ =
                std::max(pendingRedirect_, resolveCycle + 1);
        }
    } else if (taken) {
        // Correctly predicted taken: fetch continues at the target in
        // the next cycle.
        feCycle_ += 1;
        feSlots_ = 0;
        curLine_ = ~uint64_t(0);
    }
    if (cls != OpClass::Nop) {
        bpred_.update(pc, cls, taken, target);
        if (cls == OpClass::Call || cls == OpClass::CallIndirect)
            bpred_.pushReturn(pc + 4);
    }
}

TimingResult
PipelineSim::run(uint64_t maxInsts, uint64_t maxCycles)
{
    DynInst dyn;
    uint64_t steps = 0;
    bool cycleBudgetExpired = false;
    while (steps < maxInsts && core_.step(dyn)) {
        ++steps;

        // ---- Front end: decode timestamp. ----
        const uint64_t decodeCycle = frontend(dyn);

        // ---- Dispatch. ----
        uint64_t dispatch = decodeCycle + feDepth_;
        // ROB entry must be free.
        const uint64_t robFree =
            commitRing_[instIndex_ % params_.robEntries];
        dispatch = std::max(dispatch, robFree);
        // RS entry must be free (freed at issue).
        const uint64_t rsFree =
            issueRing_[instIndex_ % params_.rsEntries] + 1;
        dispatch = std::max(dispatch, rsFree);
        // In-order dispatch, width per cycle.
        if (dispatch < dispatchCycleCur_)
            dispatch = dispatchCycleCur_;
        if (dispatch == dispatchCycleCur_) {
            if (dispatchSlots_ >= params_.width) {
                ++dispatch;
                dispatchCycleCur_ = dispatch;
                dispatchSlots_ = 0;
            }
        } else {
            dispatchCycleCur_ = dispatch;
            dispatchSlots_ = 0;
        }
        ++dispatchSlots_;

        // ---- Issue: dataflow-limited. ----
        uint64_t ready = dispatch + 1;
        for (const RegIndex src : dyn.inst.srcRegList())
            ready = std::max(ready, regReady_[src]);
        const uint64_t issue = ready;
        issueRing_[instIndex_ % params_.rsEntries] = issue;

        // ---- Complete. ----
        uint64_t complete = issue + instLatency(dyn);
        if (dyn.isMem && !dyn.isStore) {
            // Loads: AGU + D-cache access.
            complete = issue + 1 + mem_.dataAccess(dyn.memAddr, false);
        }
        const RegIndex dest = dyn.inst.destReg();
        if (dest != kZeroReg)
            regReady_[dest] = complete;

        // ---- Commit: in order, width per cycle. ----
        uint64_t commit = std::max(complete + 1, lastCommit_);
        if (commit == commitCycleCur_) {
            if (commitSlots_ >= params_.width) {
                ++commit;
                commitCycleCur_ = commit;
                commitSlots_ = 0;
            }
        } else {
            commitCycleCur_ = commit;
            commitSlots_ = 0;
        }
        ++commitSlots_;
        lastCommit_ = commit;
        commitRing_[instIndex_ % params_.robEntries] = commit;

        if (dyn.isStore) {
            // Store buffer: D-cache updated at commit, off the critical
            // path.
            mem_.dataAccess(dyn.memAddr, true);
        }
        if (dyn.isSyscall) {
            // Syscalls serialize the pipeline.
            pendingRedirect_ = std::max(pendingRedirect_, commit + 1);
        }

        // ---- Control flow and prediction. ----
        //
        // The front end predicts once per fetched (application-level)
        // PC. For an expansion, that single prediction covers the whole
        // replacement sequence: internal branches are never predicted
        // separately (paper Section 2.2) — a sequence whose outcome
        // differs from the trigger-PC prediction costs a mispredict
        // resolved when its deciding branch executes.
        if (!dyn.expanded) {
            if (dyn.isAppControl) {
                const auto pred =
                    bpred_.predict(dyn.pc, dyn.inst.cls, dyn.pc + 4);
                resolveControl(dyn.pc, dyn.inst.cls, dyn.taken,
                               dyn.actualTarget, complete, decodeCycle,
                               pred);
            }
        } else {
            if (dyn.firstOfSeq) {
                seqPredCls_ = dyn.seqPredClass;
                seqTriggerPC_ = dyn.pc;
                seqTrigTaken_ = false;
                seqTrigTarget_ = 0;
                seqRedirected_ = false;
                seqRedirTarget_ = 0;
                seqResolve_ = complete;
                if (seqPredCls_ != OpClass::Nop) {
                    seqPred_ = bpred_.predict(dyn.pc, seqPredCls_,
                                              dyn.pc + 4);
                } else {
                    seqPred_ = BranchPredictor::Prediction{};
                    seqPred_.target = dyn.pc + 4;
                    seqPred_.targetKnown = true;
                }
            }
            if (dyn.inst.isDiseBranch() && dyn.taken) {
                // Taken DISE branch: fetch restarts at the same PC, new
                // DISEPC — interpreted as a misprediction.
                ++result_.diseMispredicts;
                pendingRedirect_ =
                    std::max(pendingRedirect_, complete + 1);
            }
            if (dyn.isAppControl) {
                seqResolve_ = std::max(seqResolve_, complete);
                if (dyn.taken) {
                    if (dyn.triggerSlot) {
                        // Deferred: applied at sequence end unless a
                        // later non-trigger branch redirects first.
                        seqTrigTaken_ = true;
                        seqTrigTarget_ = dyn.actualTarget;
                    } else {
                        seqRedirected_ = true;
                        seqRedirTarget_ = dyn.actualTarget;
                    }
                }
            }
            if (dyn.lastOfSeq) {
                const bool taken = seqRedirected_ || seqTrigTaken_;
                const Addr next = seqRedirected_
                                      ? seqRedirTarget_
                                      : (seqTrigTaken_ ? seqTrigTarget_
                                                       : dyn.pc + 4);
                resolveControl(seqTriggerPC_, seqPredCls_, taken, next,
                               std::max(seqResolve_, complete),
                               decodeCycle, seqPred_);
            }
        }

        ++instIndex_;
        if (maxCycles != 0 && lastCommit_ > maxCycles) {
            cycleBudgetExpired = true;
            break;
        }
    }

    result_.cycles = lastCommit_;
    result_.arch = core_.result();
    // Watchdog expiry (instruction cap or cycle budget) with the core
    // still live is a Hang outcome, mirroring ExecCore::run.
    if (result_.arch.outcome == RunOutcome::Running &&
        (cycleBudgetExpired || steps >= maxInsts)) {
        result_.arch.outcome = RunOutcome::Hang;
    }
    result_.icacheMisses = mem_.icache().misses();
    result_.dcacheMisses = mem_.dcache().misses();
    result_.l2Misses = mem_.l2().misses();
    return result_;
}

} // namespace dise
