#include "src/acf/tracing.hpp"

#include "src/dise/parser.hpp"

namespace dise {

ProductionSet
makeTracingProductions()
{
    const std::string dsl =
        "P1: class == store -> RTRC\n"
        "RTRC: lda $dr4, T.IMM(T.RS)\n"
        "      stq $dr4, 0($dr5)\n"
        "      lda $dr5, 8($dr5)\n"
        "      T.INSN\n";
    return parseProductions(dsl);
}

void
initTracingRegisters(ExecCore &core, Addr buffer)
{
    core.setDiseReg(5, buffer);
}

} // namespace dise
