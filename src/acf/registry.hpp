/**
 * @file
 * The ACF registry: one ordered spec list describes a run's whole
 * customization environment.
 *
 * A RunRequest names its ACFs as an ordered list of AcfSpec entries
 * ({"kind": "mfi", "variant": "dise4"}, {"kind": "watchpoint",
 * "compose": "merged"}, {"kind": "fusion"}, ...) and the registry
 * resolves the list into everything prepareJob needs: the installed
 * production set (with composition order explicit — see AcfCompose),
 * the program transforms (binary rewriting, compression) applied in
 * list order, the dedicated-register initialization flags, and the
 * decode-stage fusion switch. The legacy RunRequest booleans
 * (mfi/watchpoint/rewrite_mfi/compress/profile) survive as aliases
 * that desugar to a canonical list (RunRequest::normalizedAcfs), so
 * diserun, the bench harness, and the serve daemon all route through
 * this one resolver.
 *
 * Composition semantics per entry:
 *
 *  - "append" (default): the entry's production set is installed
 *    alongside everything before it (plain ProductionSet::merge).
 *  - "merged": non-nested composition with the nearest preceding
 *    production-set entry — identical patterns share one trigger and
 *    concatenate their sequences (composeMerged, paper Section 3.3).
 *  - "nested": this entry is applied to (wraps) the output of the
 *    nearest preceding production-set entry — [compress,
 *    mfi/nested] yields MFI(decompress(app)) (composeNested).
 *
 * Entries that do not build a production set (fusion contracts the
 * decoded stream after expansion; rewrite_mfi is a static binary
 * transform) reject "merged"/"nested" with a FatalError naming the
 * offending pattern — there is no silent drop.
 */

#ifndef DISE_ACF_REGISTRY_HPP
#define DISE_ACF_REGISTRY_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/assembler/program.hpp"
#include "src/common/json.hpp"
#include "src/dise/production.hpp"

namespace dise {

/** How one ACF-spec entry combines with the entries before it. */
enum class AcfCompose : uint8_t {
    Append, ///< install alongside (plain merge)
    Merged, ///< composeMerged with the preceding production-set entry
    Nested, ///< composeNested around the preceding production-set entry
};

/** Stable lower-case compose name ("append", "merged", "nested"). */
const char *acfComposeName(AcfCompose compose);

/** Parse a compose name; fatal() on anything else. */
AcfCompose parseAcfCompose(const std::string &name);

/** One entry of a RunRequest "acfs" list. */
struct AcfSpec
{
    /** Registered kind ("mfi", "watchpoint", "profiler", "fusion",
     *  "productions", "rewrite_mfi", "compress"). */
    std::string kind;
    /** Kind-specific variant; only "mfi" takes one (dise3/dise4/
     *  sandbox), empty selects the kind's default. */
    std::string variant;
    AcfCompose compose = AcfCompose::Append;

    bool operator==(const AcfSpec &o) const
    {
        return kind == o.kind && variant == o.variant &&
               compose == o.compose;
    }
    bool operator!=(const AcfSpec &o) const { return !(*this == o); }

    /** Debug/error rendering: kind[:variant][/compose]. */
    std::string str() const;

    Json toJson() const;

    /** Parse one "acfs" entry; fatal() on unknown keys or bad types. */
    static AcfSpec fromJson(const Json &doc);
};

/** What an ACF-spec list resolves to. */
struct AcfBuild
{
    /** Productions to install; null = no DISE controller at all. */
    std::shared_ptr<const ProductionSet> productions;
    /** Decode-stage macro-op fusion (src/acf/fusion). */
    bool fusion = false;
    /** Initialize the MFI dedicated registers. */
    bool mfiRegisters = false;
    /** Arm the watchpoint at watchAddr (requires mfiRegisters). */
    bool watchRegisters = false;
    Addr watchAddr = 0;
    /** Initialize the profiler registers / read the path profile. */
    bool profilerRegisters = false;
    /** Path-profile buffer base; 0 = no profiler installed. */
    Addr profileBuffer = 0;
};

/**
 * The kind-name -> builder registry. One process-wide instance; the
 * set of kinds is fixed at construction (there is no dynamic
 * registration — the point is one authoritative list, not a plugin
 * system).
 */
class AcfRegistry
{
  public:
    static const AcfRegistry &instance();

    bool known(const std::string &kind) const;

    /** Comma-separated sorted kind list (for error messages). */
    std::string kindList() const;

    /**
     * Check list shape without a program: kinds exist, no duplicates,
     * variants are legal, compose targets exist ("merged"/"nested"
     * need a preceding production-set entry, and only production-set
     * kinds may be composed), "watchpoint" follows "mfi", and
     * "productions" entries match @p haveProductionsText. fatal() on
     * the first violation.
     */
    void validate(const std::vector<AcfSpec> &acfs,
                  bool haveProductionsText) const;

    /**
     * Resolve @p acfs in list order: build and compose production
     * sets, apply program transforms to @p prog in place, and collect
     * the register-initialization flags. Calls validate() first.
     */
    AcfBuild build(const std::vector<AcfSpec> &acfs,
                   const std::string &productionsText,
                   Program &prog) const;

  private:
    struct KindInfo
    {
        /** Builds a ProductionSet (composable). */
        bool productionSet = false;
        /** Accepts a non-empty variant string. */
        bool takesVariant = false;
    };

    AcfRegistry();

    std::map<std::string, KindInfo> kinds_;
};

} // namespace dise

#endif // DISE_ACF_REGISTRY_HPP
