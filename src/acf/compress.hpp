/**
 * @file
 * Dynamic code (de)compression — the paper's aware ACF example
 * (Section 3.2, Figures 4 and 7).
 *
 * A greedy compressor builds a dictionary of frequently occurring
 * instruction sequences (candidates of any size that do not straddle
 * basic blocks), iteratively choosing the sequence with the greatest
 * immediate compression — static occurrences weighed against the cost of
 * coding the dictionary entry. Chosen occurrences in the text are
 * replaced by DISE codewords: one reserved opcode, an 11-bit replacement
 * sequence tag, and 15 bits of parameters (three 5-bit register /
 * sign-extended-immediate parameters, or one 15-bit PC-relative branch
 * offset parameter).
 *
 * Parameterization lets sequences that differ only in register names or
 * small immediates share a dictionary entry, and makes PC-relative
 * branches compressible at all: compression itself changes relative PCs,
 * so two branches that shared an entry before compression may not after;
 * carrying the offset as a per-codeword parameter sidesteps the
 * stable-dictionary problem entirely.
 *
 * The same machinery, configured via CompressorOptions, models the
 * dedicated decoder-based decompressor baseline (2-byte codewords,
 * single-instruction compression, unparameterized 4-byte dictionary
 * entries) and every intermediate design point of Figure 7's ablation.
 */

#ifndef DISE_ACF_COMPRESS_HPP
#define DISE_ACF_COMPRESS_HPP

#include <memory>

#include "src/assembler/program.hpp"
#include "src/dise/production.hpp"

namespace dise {

/** Compressor configuration. */
struct CompressorOptions
{
    /** Longest candidate sequence, in instructions. */
    uint32_t maxSeqLen = 6;
    /** Parameter slots per dictionary entry (0 = unparameterized). */
    uint32_t maxParams = 3;
    /**
     * Compress sequences ending in PC-relative branches by carrying the
     * offset as the 15-bit parameter (such entries use no other params).
     */
    bool compressBranches = true;
    /** Allow single-instruction entries (profitable only with 2-byte
     *  codewords; dedicated-decompressor feature). */
    bool allowSingleInst = false;
    /** Codeword size used for static-size accounting (the runnable image
     *  always uses 4-byte-aligned codewords; see DESIGN.md). */
    uint32_t codewordBytes = 4;
    /** Dictionary cost per replacement instruction, bytes (4 without
     *  instantiation directives, 8 with). */
    uint32_t dictEntryBytes = 8;
    uint32_t maxDictEntries = 2048;
    /** Reserved opcode used for the codewords. */
    Opcode reservedOp = Opcode::RES0;
};

/** Output of the compressor. */
struct CompressionResult
{
    /** The runnable compressed image. */
    Program compressed;
    /** Decompression dictionary as aware DISE productions. */
    std::shared_ptr<ProductionSet> dictionary;

    uint64_t originalTextBytes = 0;
    /** Compressed text size under the accounting codeword size. */
    uint64_t compressedTextBytes = 0;
    uint64_t dictionaryBytes = 0;
    uint32_t dictEntries = 0;
    uint64_t codewords = 0;           ///< static codeword instances
    uint64_t instsCompressedOut = 0;  ///< static instructions removed

    /** Text compression ratio (no dictionary). */
    double
    ratio() const
    {
        return originalTextBytes
                   ? double(compressedTextBytes) /
                         double(originalTextBytes)
                   : 1.0;
    }
    /** Ratio including the dictionary in the image. */
    double
    ratioWithDict() const
    {
        return originalTextBytes
                   ? double(compressedTextBytes + dictionaryBytes) /
                         double(originalTextBytes)
                   : 1.0;
    }
};

/**
 * Compress a program.
 *
 * The compressed image executes correctly on a DISE machine with the
 * returned dictionary installed; an integration test verifies that it
 * retires exactly the original instruction stream.
 */
CompressionResult compressProgram(const Program &prog,
                                  const CompressorOptions &opts = {});

/** Options modeling the dedicated decompressor of [20]. */
CompressorOptions dedicatedDecompressorOptions();

} // namespace dise

#endif // DISE_ACF_COMPRESS_HPP
