/**
 * @file
 * Path profiling — the "bit tracing" transparent ACF of paper Section
 * 3.1 (and its companion paper [8]).
 *
 * Productions for every conditional-branch opcode compute the branch's
 * direction *arithmetically* (e.g. beq's direction is cmpeq rs, 0)
 * before the branch itself executes, and shift it into a path history
 * register ($dr7). At acyclic-path endpoints (function returns) the
 * endpoint PC — captured with the T.PC directive — and the accumulated
 * history are appended to an in-memory profile buffer (cursor in $dr5)
 * and the history resets. A post-execution pass (readPathProfile)
 * reconstructs the records.
 *
 * Dedicated registers: $dr7 path history (persistent), $dr5 buffer
 * cursor (persistent), $dr6 and $dr4 scratch.
 */

#ifndef DISE_ACF_PROFILER_HPP
#define DISE_ACF_PROFILER_HPP

#include <vector>

#include "src/dise/production.hpp"
#include "src/sim/core.hpp"

namespace dise {

/** One path record: (endpoint PC, branch-outcome bit history). */
struct PathRecord
{
    Addr endpointPC = 0;
    uint64_t history = 0;

    bool
    operator==(const PathRecord &o) const
    {
        return endpointPC == o.endpointPC && history == o.history;
    }
};

/** Build the path-profiler production set. */
ProductionSet makePathProfilerProductions();

/** Point the profile cursor ($dr5) at @p buffer, clear the history. */
void initProfilerRegisters(ExecCore &core, Addr buffer);

/**
 * Decode the records a profiled run produced.
 * @param core The finished core (buffer contents + final cursor).
 * @param buffer The buffer passed to initProfilerRegisters.
 */
std::vector<PathRecord> readPathProfile(const ExecCore &core,
                                        Addr buffer);

} // namespace dise

#endif // DISE_ACF_PROFILER_HPP
