/**
 * @file
 * Macro-op fusion ACF: DISE run "in reverse".
 *
 * Where every other ACF expands one trigger instruction into a
 * replacement sequence, fusion contracts two adjacent dependent
 * application instructions into one fused internal op (per "The Renewed
 * Case for the RISC: Avoiding ISA Bloat with Macro-Op Fusion"). Fused
 * ops have no encoding — the decoder synthesizes them at fetch — so
 * fusion is not a ProductionSet and cannot be composed with one via
 * composeNested/composeMerged; the AcfRegistry rejects such requests
 * with a structured error.
 *
 * This module is the pure pattern matcher: given two decoded
 * application instructions it decides whether they form a fusible pair
 * and, if so, synthesizes the fused DecodedInst. Execution semantics
 * live in ExecCore (both interpreter tiers), and the single-slot timing
 * model falls out of PipelineSim's one-record-one-slot accounting.
 *
 * Families (one fused opcode each):
 *   cmp_branch  FCMPBR  cmpXX ra,rb|#l,rc ; bYY rc,disp
 *   addr_const  FLDAC   ldah r,h(base)    ; lda r,l(r)
 *   shift_add   FSHADD  sll ra,#k,rc      ; addq rc,rb|#l,rc
 *   addr_load   FLDAL   lda r,d(base)     ; ldX r,d2(r)
 *   addr_store  FLDAS   lda r,d(base)     ; stX rx,d2(r)
 *   load_op     FLDOP   ldq r,d(base)     ; OP r,rx|#l,r
 *
 * Eligibility is purely architectural: a pair fuses only when the
 * second instruction's sole consumption of the first is expressible in
 * one op and the intermediate value is fully overwritten (or the pair
 * is dead in the same way natively). Fusion decisions are a pure
 * function of the two instruction words, so the fast (trace-cache) and
 * slow (step) paths reach identical decisions by construction.
 */

#ifndef DISE_ACF_FUSION_HPP
#define DISE_ACF_FUSION_HPP

#include <cstdint>

#include "src/isa/inst.hpp"

namespace dise {

/** Fused-pair families, in fused-opcode order (FCMPBR..FLDOP). */
constexpr int kNumFusedFamilies = 6;

/** Stable stats key for family @p index (0..kNumFusedFamilies-1). */
const char *fusedFamilyName(int index);

/** Family index for a fused opcode (FCMPBR -> 0 .. FLDOP -> 5). */
inline int
fusedFamilyIndex(Opcode op)
{
    return static_cast<int>(op) - static_cast<int>(Opcode::FCMPBR);
}

/**
 * @name FCMPBR tag packing
 * [7:0] compare literal, [10:8] compare index (op - CMPEQ),
 * [13:11] branch index (op - BEQ).
 */
/// @{
struct CmpBrFields
{
    Opcode cmpOp;
    Opcode brOp;
    uint8_t lit;
};

inline uint16_t
packCmpBr(Opcode cmpOp, Opcode brOp, uint8_t lit)
{
    const unsigned cmpIdx = static_cast<unsigned>(cmpOp) -
                            static_cast<unsigned>(Opcode::CMPEQ);
    const unsigned brIdx = static_cast<unsigned>(brOp) -
                           static_cast<unsigned>(Opcode::BEQ);
    return static_cast<uint16_t>(lit | (cmpIdx << 8) | (brIdx << 11));
}

inline CmpBrFields
unpackCmpBr(uint16_t tag)
{
    CmpBrFields f;
    f.lit = static_cast<uint8_t>(tag & 0xff);
    f.cmpOp = static_cast<Opcode>(static_cast<unsigned>(Opcode::CMPEQ) +
                                  ((tag >> 8) & 0x7));
    f.brOp = static_cast<Opcode>(static_cast<unsigned>(Opcode::BEQ) +
                                 ((tag >> 11) & 0x7));
    return f;
}
/// @}

/**
 * @name FLDOP tag packing
 * [5:0] ALU opcode, [13:6] ALU literal, [14] operands swapped (the
 * loaded value is the ALU's rb), [15] literal form.
 */
/// @{
struct LoadOpFields
{
    Opcode aluOp;
    uint8_t lit;
    bool swapped;
    bool useLit;
};

inline uint16_t
packLoadOp(Opcode aluOp, uint8_t lit, bool swapped, bool useLit)
{
    return static_cast<uint16_t>(
        (static_cast<unsigned>(aluOp) & 0x3f) | (unsigned(lit) << 6) |
        (unsigned(swapped) << 14) | (unsigned(useLit) << 15));
}

inline LoadOpFields
unpackLoadOp(uint16_t tag)
{
    LoadOpFields f;
    f.aluOp = static_cast<Opcode>(tag & 0x3f);
    f.lit = static_cast<uint8_t>((tag >> 6) & 0xff);
    f.swapped = (tag >> 14) & 1;
    f.useLit = (tag >> 15) & 1;
    return f;
}
/// @}

/**
 * Try to fuse the adjacent dependent pair (@p first at pc, @p second at
 * pc+4). On success fills @p out with the synthesized fused instruction
 * (raw == 0; for FCMPBR, imm is the branch displacement rebased so that
 * out->branchTarget(pairPC) is the native target) and returns true.
 *
 * The caller is responsible for the non-architectural gates: both words
 * inside the text segment, and neither opcode covered by an installed
 * DISE production set (expansion takes priority over contraction).
 */
bool fusePair(const DecodedInst &first, const DecodedInst &second,
              DecodedInst *out);

} // namespace dise

#endif // DISE_ACF_FUSION_HPP
