/**
 * @file
 * Code assertions — the debugging ACF of paper Section 3.1.
 *
 * Debuggers implement data watchpoints and value assertions by
 * single-stepping, which serializes the pipeline and is extremely slow;
 * with DISE the assertion is inlined into every store's expansion and
 * executes at full speed, can be added and removed instantly, and costs
 * nothing when inactive.
 *
 * The watchpoint production guards one memory cell with an upper-bound
 * value assertion:
 *
 *   P: class == store -> RW
 *   RW: lda $dr4, T.IMM(T.RS)    ; effective address
 *       cmpeq $dr4, $dr6, $dr4   ; the watched cell? ($dr6 = address)
 *       dbeq $dr4, +2            ; no: skip straight to the store
 *       cmpule T.RT, $dr7, $dr4  ; assert value <= bound ($dr7)
 *       beq $dr4, @error
 *       T.INSN
 *
 * The DISE-internal branch (dbeq) keeps the common case — stores to
 * anything else — at two extra ALU operations, no application-visible
 * control flow, and no branch-predictor footprint.
 *
 * Dedicated registers: $dr4 scratch, $dr6 watched address, $dr7 bound.
 */

#ifndef DISE_ACF_ASSERTIONS_HPP
#define DISE_ACF_ASSERTIONS_HPP

#include "src/assembler/program.hpp"
#include "src/dise/production.hpp"
#include "src/sim/core.hpp"

namespace dise {

/** Watchpoint configuration. */
struct WatchpointOptions
{
    /** Absolute address of the violation handler (defaults to the
     *  program's "error" symbol). */
    Addr errorHandler = 0;
};

/** Build the watchpoint production set. */
ProductionSet makeWatchpointProductions(const Program &prog,
                                        const WatchpointOptions &opts = {});

/**
 * Arm the watchpoint: stores to @p watchedAddr must write values
 * <= @p maxValue or control transfers to the violation handler.
 */
void initWatchpointRegisters(ExecCore &core, Addr watchedAddr,
                             uint64_t maxValue);

} // namespace dise

#endif // DISE_ACF_ASSERTIONS_HPP
