#include "src/acf/fusion.hpp"

namespace dise {

namespace {

bool
isCompareOp(Opcode op)
{
    return op >= Opcode::CMPEQ && op <= Opcode::CMPULE;
}

bool
isCondBranchOp(Opcode op)
{
    return op >= Opcode::BEQ && op <= Opcode::BLBS;
}

bool
isLoadOpAlu(Opcode op)
{
    switch (op) {
      case Opcode::ADDQ:
      case Opcode::SUBQ:
      case Opcode::AND:
      case Opcode::BIC:
      case Opcode::OR:
      case Opcode::ORNOT:
      case Opcode::XOR:
      case Opcode::SLL:
      case Opcode::SRL:
      case Opcode::SRA:
        return true;
      default:
        return isCompareOp(op);
    }
}

/** cmpXX ra,rb|#lit,rc ; bYY rc,disp — branch tests the fresh result. */
bool
fuseCmpBranch(const DecodedInst &first, const DecodedInst &second,
              DecodedInst *out)
{
    if (!isCondBranchOp(second.op))
        return false;
    // A compare into the zero register is dead: the native branch reads
    // a constant 0, not the compare result, so the pair is not a
    // dependence and must not fuse.
    if (first.rc == kZeroReg || second.ra != first.rc)
        return false;
    out->op = Opcode::FCMPBR;
    out->cls = OpClass::CondBranch;
    out->ra = first.ra;
    out->rb = first.rb;
    out->rc = first.rc;
    out->useLit = first.useLit;
    // branchTarget(pairPC) must equal the native target of the branch
    // sitting one word later: rebase the displacement by +1.
    out->imm = second.imm + 1;
    out->tag = packCmpBr(first.op, second.op,
                         first.useLit ? static_cast<uint8_t>(first.imm)
                                      : 0);
    return true;
}

/** ldah r,h(base) ; lda r,l(r) — 32-bit constant/address formation. */
bool
fuseAddrConst(const DecodedInst &first, const DecodedInst &second,
              DecodedInst *out)
{
    if (second.op != Opcode::LDA)
        return false;
    const RegIndex r = first.ra;
    if (r == kZeroReg || second.ra != r || second.rb != r)
        return false;
    out->op = Opcode::FLDAC;
    out->cls = OpClass::IntAlu;
    out->rc = r;
    out->ra = first.rb; // original base (often the zero register)
    out->useLit = true;
    out->imm = (first.imm << 16) + second.imm;
    return true;
}

/** sll ra,#k,rc ; addq rc,rb|#l,rc — scaled-index formation. */
bool
fuseShiftAdd(const DecodedInst &first, const DecodedInst &second,
             DecodedInst *out)
{
    if (second.op != Opcode::ADDQ)
        return false;
    if (!first.useLit || first.imm < 0 || first.imm > 63)
        return false;
    const RegIndex t = first.rc;
    if (t == kZeroReg || second.rc != t)
        return false;
    out->op = Opcode::FSHADD;
    out->cls = OpClass::IntAlu;
    out->ra = first.ra;
    out->rc = t;
    out->tag = static_cast<uint16_t>(first.imm);
    if (second.useLit) {
        if (second.ra != t)
            return false;
        out->useLit = true;
        out->imm = second.imm;
        return true;
    }
    if (second.ra == t && second.rb != t) {
        out->rb = second.rb;
    } else if (second.rb == t && second.ra != t) {
        out->rb = second.ra;
    } else {
        return false; // addq t,t,t doubles the shifted value: 2 reads
    }
    out->useLit = false;
    return true;
}

/** lda r,d(base) ; ldX r,d2(r) — address-formed load, r overwritten. */
bool
fuseAddrLoad(const DecodedInst &first, const DecodedInst &second,
             DecodedInst *out)
{
    const RegIndex r = first.ra;
    if (r == kZeroReg || second.rb != r || second.ra != r)
        return false;
    out->op = Opcode::FLDAL;
    out->cls = OpClass::Load;
    out->ra = r;
    out->rb = first.rb;
    out->imm = first.imm + second.imm;
    out->tag = static_cast<uint16_t>(second.op);
    return true;
}

/** lda r,d(base) ; stX rx,0(r) — address-formed store; r survives. */
bool
fuseAddrStore(const DecodedInst &first, const DecodedInst &second,
              DecodedInst *out)
{
    const RegIndex r = first.ra;
    // rx == r would store the freshly formed address; the fused op
    // reads its data register before computing the address, so skip.
    // The store displacement must be zero: r survives the pair holding
    // base+d, and one immediate field cannot carry both displacements.
    if (r == kZeroReg || second.rb != r || second.ra == r ||
        second.imm != 0) {
        return false;
    }
    out->op = Opcode::FLDAS;
    out->cls = OpClass::Store;
    out->ra = second.ra; // data register
    out->rb = first.rb;  // original base
    out->rc = r;         // formed address, architecturally written
    out->imm = first.imm;
    out->tag = static_cast<uint16_t>(second.op);
    return true;
}

/** ldq r,d(base) ; OP r,rx|#l,r — load feeding one ALU op, r final. */
bool
fuseLoadOp(const DecodedInst &first, const DecodedInst &second,
           DecodedInst *out)
{
    if (second.cls != OpClass::IntAlu || !isLoadOpAlu(second.op))
        return false;
    const RegIndex r = first.ra;
    if (r == kZeroReg || second.rc != r)
        return false;
    bool swapped = false;
    if (second.useLit) {
        if (second.ra != r)
            return false;
        out->rc = kZeroReg;
    } else if (second.ra == r && second.rb != r) {
        out->rc = second.rb;
    } else if (second.rb == r && second.ra != r) {
        out->rc = second.ra;
        swapped = true;
    } else {
        return false; // OP r,r,r reads the loaded value twice
    }
    out->op = Opcode::FLDOP;
    out->cls = OpClass::Load;
    out->ra = r;
    out->rb = first.rb;
    out->useLit = second.useLit;
    out->imm = first.imm;
    out->tag = packLoadOp(second.op,
                          second.useLit
                              ? static_cast<uint8_t>(second.imm)
                              : 0,
                          swapped, second.useLit);
    return true;
}

} // namespace

const char *
fusedFamilyName(int index)
{
    switch (index) {
      case 0: return "cmp_branch";
      case 1: return "addr_const";
      case 2: return "shift_add";
      case 3: return "addr_load";
      case 4: return "addr_store";
      case 5: return "load_op";
      default: return "unknown";
    }
}

bool
fusePair(const DecodedInst &first, const DecodedInst &second,
         DecodedInst *out)
{
    *out = DecodedInst{};
    switch (first.op) {
      case Opcode::CMPEQ:
      case Opcode::CMPLT:
      case Opcode::CMPLE:
      case Opcode::CMPULT:
      case Opcode::CMPULE:
        return fuseCmpBranch(first, second, out);
      case Opcode::LDAH:
        return fuseAddrConst(first, second, out);
      case Opcode::LDA:
        if (second.cls == OpClass::Load)
            return fuseAddrLoad(first, second, out);
        if (second.cls == OpClass::Store)
            return fuseAddrStore(first, second, out);
        return false;
      case Opcode::SLL:
        return fuseShiftAdd(first, second, out);
      case Opcode::LDQ:
        return fuseLoadOp(first, second, out);
      default:
        return false;
    }
}

} // namespace dise
