/**
 * @file
 * Store-address tracing — the transparent ACF the paper composes with
 * memory fault isolation in Figure 5. Every store's effective address is
 * appended to an in-memory trace buffer whose cursor lives in the
 * dedicated register $dr5 (the buffer itself is ordinary data memory,
 * set up by the tool that activates the ACF).
 */

#ifndef DISE_ACF_TRACING_HPP
#define DISE_ACF_TRACING_HPP

#include "src/dise/production.hpp"
#include "src/sim/core.hpp"

namespace dise {

/**
 * Build the store-address-tracing production set:
 *
 *   P: class == store -> RT
 *   RT: lda $dr4, T.IMM(T.RS)   ; effective address
 *       stq $dr4, 0($dr5)       ; append to the trace buffer
 *       lda $dr5, 8($dr5)       ; bump the cursor
 *       T.INSN
 */
ProductionSet makeTracingProductions();

/** Point the trace cursor ($dr5) at @p buffer. */
void initTracingRegisters(ExecCore &core, Addr buffer);

} // namespace dise

#endif // DISE_ACF_TRACING_HPP
