#include "src/acf/compose.hpp"

#include <algorithm>
#include <set>

#include "src/common/logging.hpp"

namespace dise {

namespace {

/** Dedicated registers a sequence names literally. */
std::set<RegIndex>
usedDedicatedRegs(const ReplacementSeq &seq)
{
    std::set<RegIndex> used;
    auto consider = [&](RegDirective dir, RegIndex r) {
        if (dir == RegDirective::Literal && isDiseReg(r))
            used.insert(r);
    };
    for (const auto &rinst : seq.insts) {
        if (rinst.isTriggerInsn)
            continue;
        consider(rinst.raDir, rinst.templ.ra);
        consider(rinst.rbDir, rinst.templ.rb);
        consider(rinst.rcDir, rinst.templ.rc);
    }
    return used;
}

/**
 * Dedicated registers whose first access in @p seq is a write: scratch
 * registers that may be renamed. Read-first registers are global inputs
 * (initialized outside the sequence) and must keep their names.
 */
std::set<RegIndex>
scratchDedicatedRegs(const ReplacementSeq &seq)
{
    std::set<RegIndex> seenRead, scratch;
    for (const auto &rinst : seq.insts) {
        if (rinst.isTriggerInsn)
            continue;
        const DecodedInst &t = rinst.templ;
        auto markRead = [&](RegDirective dir, RegIndex r) {
            if (dir == RegDirective::Literal && isDiseReg(r) &&
                !scratch.count(r)) {
                seenRead.insert(r);
            }
        };
        const OpInfo &info = opInfo(t.op);
        switch (info.format) {
          case InstFormat::Memory:
            markRead(rinst.rbDir, t.rb);
            if (t.cls == OpClass::Store)
                markRead(rinst.raDir, t.ra);
            break;
          case InstFormat::Branch:
            markRead(rinst.raDir, t.ra);
            break;
          case InstFormat::Jump:
            markRead(rinst.rbDir, t.rb);
            break;
          case InstFormat::Operate:
            markRead(rinst.raDir, t.ra);
            if (!t.useLit)
                markRead(rinst.rbDir, t.rb);
            break;
          default:
            break;
        }
        // Destination: write.
        const RegIndex dest = t.destReg();
        if (isDiseReg(dest) && !seenRead.count(dest))
            scratch.insert(dest);
    }
    return scratch;
}

/** Rename dedicated register @p from to @p to throughout a sequence. */
void
renameDedicated(ReplacementSeq &seq, RegIndex from, RegIndex to)
{
    for (auto &rinst : seq.insts) {
        if (rinst.isTriggerInsn)
            continue;
        auto fix = [&](RegDirective dir, RegIndex &r) {
            if (dir == RegDirective::Literal && r == from)
                r = to;
        };
        fix(rinst.raDir, rinst.templ.ra);
        fix(rinst.rbDir, rinst.templ.rb);
        fix(rinst.rcDir, rinst.templ.rc);
    }
}

/**
 * Statically match a pattern against a replacement instruction template.
 * Constraints on fields controlled by directives cannot be evaluated;
 * they make the match fail (conservatively), with a warning.
 */
bool
staticMatch(const PatternSpec &pattern, const ReplacementInst &rinst)
{
    const DecodedInst &t = rinst.templ;
    if (pattern.opcode && t.op != *pattern.opcode)
        return false;
    if (pattern.opclass && t.cls != *pattern.opclass)
        return false;
    const bool fieldsParameterized =
        rinst.raDir != RegDirective::Literal ||
        rinst.rbDir != RegDirective::Literal ||
        rinst.rcDir != RegDirective::Literal ||
        rinst.immDir != ImmDirective::Literal;
    if ((pattern.rs || pattern.rt || pattern.rd || pattern.immValue ||
         pattern.immSign) &&
        fieldsParameterized) {
        warn("composeNested: pattern '" + pattern.toString() +
             "' constrains parameterized fields; treated as non-match");
        return false;
    }
    if (pattern.rs && t.triggerRS() != *pattern.rs)
        return false;
    if (pattern.rt && t.triggerRT() != *pattern.rt)
        return false;
    if (pattern.rd && t.triggerRD() != *pattern.rd)
        return false;
    if (pattern.immValue && t.imm != *pattern.immValue)
        return false;
    if (pattern.immSign) {
        const bool negative = t.imm < 0;
        if ((*pattern.immSign == SignConstraint::Negative) != negative)
            return false;
    }
    return true;
}

/**
 * Would @p outerPat match every trigger @p innerPat accepts? Used for
 * T.INSN slots, whose instantiated instruction is only known to satisfy
 * the inner pattern.
 */
bool
impliedMatch(const PatternSpec &outerPat, const PatternSpec &innerPat)
{
    if (outerPat.opcode &&
        (!innerPat.opcode || *innerPat.opcode != *outerPat.opcode)) {
        return false;
    }
    if (outerPat.opclass) {
        if (innerPat.opclass) {
            if (*innerPat.opclass != *outerPat.opclass)
                return false;
        } else if (innerPat.opcode) {
            if (opInfo(*innerPat.opcode).cls != *outerPat.opclass)
                return false;
        } else {
            return false;
        }
    }
    auto impliedReg = [](const std::optional<RegIndex> &outer,
                         const std::optional<RegIndex> &inner) {
        return !outer || (inner && *inner == *outer);
    };
    if (!impliedReg(outerPat.rs, innerPat.rs) ||
        !impliedReg(outerPat.rt, innerPat.rt) ||
        !impliedReg(outerPat.rd, innerPat.rd)) {
        return false;
    }
    if (outerPat.immValue &&
        (!innerPat.immValue || *innerPat.immValue != *outerPat.immValue)) {
        return false;
    }
    if (outerPat.immSign &&
        (!innerPat.immSign || *innerPat.immSign != *outerPat.immSign)) {
        return false;
    }
    return true;
}

/**
 * Substitute the outer sequence's trigger-role directives with the inner
 * replacement instruction's field specifications ("replacement sequence
 * inlining"). @p r is the inner instruction that triggered the outer
 * production.
 */
ReplacementInst
rewireDirectives(const ReplacementInst &outerInst,
                 const ReplacementInst &r)
{
    if (outerInst.isTriggerInsn)
        return r; // the inlined outer T.INSN is the inner instruction

    if (r.isTriggerInsn) {
        // Inner slot is itself T.INSN: the outer directives already refer
        // to the same (application) trigger; pass them through.
        return outerInst;
    }

    ReplacementInst out = outerInst;
    const DecodedInst &t = r.templ;
    const OpInfo &info = opInfo(t.op);

    // T.OP: the outer slot re-emits the (inner) trigger's opcode, which
    // is statically known from the inner template.
    if (out.opDir == OpDirective::Trigger) {
        out.opDir = OpDirective::Literal;
        out.templ.op = t.op;
        out.templ.cls = t.cls;
        out.templ.useLit = t.useLit;
    }

    // Resolve a trigger role of the inner instruction to its (directive,
    // literal) field specification.
    auto roleSpec = [&](RegDirective role)
        -> std::pair<RegDirective, RegIndex> {
        switch (role) {
          case RegDirective::TriggerRS:
            switch (info.format) {
              case InstFormat::Memory: return {r.rbDir, t.rb};
              case InstFormat::Branch: return {r.raDir, t.ra};
              case InstFormat::Jump: return {r.rbDir, t.rb};
              case InstFormat::Operate: return {r.raDir, t.ra};
              default: return {RegDirective::Literal, kZeroReg};
            }
          case RegDirective::TriggerRT:
            if (info.format == InstFormat::Memory &&
                t.cls == OpClass::Store) {
                return {r.raDir, t.ra};
            }
            if (info.format == InstFormat::Operate && !t.useLit)
                return {r.rbDir, t.rb};
            return {RegDirective::Literal, kZeroReg};
          case RegDirective::TriggerRD:
            switch (info.format) {
              case InstFormat::Memory:
                return t.cls == OpClass::Store
                           ? std::pair<RegDirective, RegIndex>{
                                 RegDirective::Literal, kZeroReg}
                           : std::pair<RegDirective, RegIndex>{r.raDir,
                                                               t.ra};
              case InstFormat::Operate: return {r.rcDir, t.rc};
              case InstFormat::Jump: return {r.raDir, t.ra};
              default: return {RegDirective::Literal, kZeroReg};
            }
          default:
            return {RegDirective::Literal, kZeroReg};
        }
    };

    auto fixReg = [&](RegDirective &dir, RegIndex &literal,
                      RegDirective rawDir, RegIndex rawLit) {
        if (dir == RegDirective::TriggerRS ||
            dir == RegDirective::TriggerRT ||
            dir == RegDirective::TriggerRD) {
            std::tie(dir, literal) = roleSpec(dir);
        } else if (dir == RegDirective::TriggerRaw) {
            // Same-position field of the inner instruction.
            dir = rawDir;
            literal = rawLit;
        }
        // Codeword parameters (T.P*) cannot appear in a transparent
        // outer production; literals pass through.
    };
    fixReg(out.raDir, out.templ.ra, r.raDir, t.ra);
    fixReg(out.rbDir, out.templ.rb, r.rbDir, t.rb);
    fixReg(out.rcDir, out.templ.rc, r.rcDir, t.rc);

    if (out.immDir == ImmDirective::TriggerImm) {
        out.immDir = r.immDir;
        out.templ.imm = t.imm;
    }
    // TriggerPC and AbsTarget refer to the application trigger's PC,
    // which is unchanged by inlining.
    return out;
}

/** Apply the outer set to one inner sequence; true when anything inlined. */
bool
inlineOuter(const ProductionSet &outer, const PatternSpec &innerPattern,
            const ReplacementSeq &innerSeq, ReplacementSeq &outSeq)
{
    bool changed = false;
    outSeq.name = innerSeq.name + "+composed";
    outSeq.insts.clear();

    // Rename outer scratch dedicated registers away from inner's.
    const std::set<RegIndex> innerUsed = usedDedicatedRegs(innerSeq);

    for (const auto &r : innerSeq.insts) {
        const Production *matched = nullptr;
        unsigned bestScore = 0;
        for (const auto &prod : outer.productions()) {
            const bool hit =
                r.isTriggerInsn
                    ? impliedMatch(prod.pattern, innerPattern)
                    : staticMatch(prod.pattern, r);
            if (hit && (!matched ||
                        prod.pattern.specificity() > bestScore)) {
                matched = &prod;
                bestScore = prod.pattern.specificity();
            }
        }
        if (!matched) {
            outSeq.insts.push_back(r);
            continue;
        }
        DISE_ASSERT(!matched->explicitTag,
                    "outer production with explicit tagging cannot be "
                    "composed statically");
        const ReplacementSeq *outerSeq = outer.sequence(matched->seqId);
        DISE_ASSERT(outerSeq != nullptr, "unbound outer sequence");

        ReplacementSeq renamed = *outerSeq;
        const std::set<RegIndex> scratch = scratchDedicatedRegs(renamed);
        for (const RegIndex reg : scratch) {
            if (!innerUsed.count(reg))
                continue;
            // Find a dedicated register unused by both.
            RegIndex fresh = 0;
            const std::set<RegIndex> outerUsed =
                usedDedicatedRegs(renamed);
            for (unsigned i = 0; i < kNumDiseRegs; ++i) {
                const RegIndex cand =
                    static_cast<RegIndex>(kDiseRegBase + i);
                if (!innerUsed.count(cand) && !outerUsed.count(cand)) {
                    fresh = cand;
                    break;
                }
            }
            if (fresh == 0) {
                fatal("composeNested: no free dedicated register for "
                      "scratch renaming");
            }
            renameDedicated(renamed, reg, fresh);
        }

        for (const auto &outerInst : renamed.insts)
            outSeq.insts.push_back(rewireDirectives(outerInst, r));
        changed = true;
    }
    return changed;
}

} // namespace

bool
samePattern(const PatternSpec &a, const PatternSpec &b)
{
    return a.opcode == b.opcode && a.opclass == b.opclass &&
           a.rs == b.rs && a.rt == b.rt && a.rd == b.rd &&
           a.immValue == b.immValue && a.immSign == b.immSign;
}

ProductionSet
composeNested(const ProductionSet &outer, const ProductionSet &inner,
              const ComposeOptions &opts)
{
    ProductionSet result;

    // Rewrite every inner production's sequence(s) under its pattern.
    // These are added FIRST: when an inner pattern coincides with an
    // outer one (Figure 5: both tracing and MFI match stores), the
    // most-specific-match tie must select the composed inner sequence —
    // the stream has to equal outer(inner(application)).
    for (const auto &prod : inner.productions()) {
        if (!prod.explicitTag) {
            const ReplacementSeq *seq = inner.sequence(prod.seqId);
            DISE_ASSERT(seq != nullptr, "unbound inner sequence");
            ReplacementSeq composed;
            inlineOuter(outer, prod.pattern, *seq, composed);
            composed.composeOnFill =
                opts.viaMissHandler || seq->composeOnFill;
            const SeqId id = result.addSequence(std::move(composed));
            result.addPattern(prod.pattern, id);
        } else {
            // Tagged block: compose every sequence in the tag window and
            // re-register under a fresh base, preserving tag arithmetic.
            SeqId newBase = 0;
            bool baseSet = false;
            for (const auto &kv : inner.sequences()) {
                if (kv.first < prod.seqId ||
                    kv.first > prod.seqId + kMaxCodewordTag) {
                    continue;
                }
                const uint32_t tag = kv.first - prod.seqId;
                ReplacementSeq composed;
                inlineOuter(outer, prod.pattern, kv.second, composed);
                composed.composeOnFill =
                    opts.viaMissHandler || kv.second.composeOnFill;
                if (!baseSet) {
                    // Reserve a contiguous block by probing for a free
                    // base past all existing ids.
                    newBase = result.sequences().empty()
                                  ? 1
                                  : result.sequences().rbegin()->first + 1;
                    baseSet = true;
                }
                result.addSequenceWithId(newBase + tag,
                                         std::move(composed));
            }
            if (baseSet)
                result.addTagPattern(prod.pattern, newBase);
        }
    }

    result.merge(outer);
    return result;
}

ProductionSet
composeMerged(const ProductionSet &first, const ProductionSet &second)
{
    ProductionSet result;
    std::vector<bool> secondMerged(second.productions().size(), false);

    for (const auto &prodA : first.productions()) {
        DISE_ASSERT(!prodA.explicitTag,
                    "merged composition of tagged productions is not "
                    "supported");
        const ReplacementSeq *seqA = first.sequence(prodA.seqId);
        DISE_ASSERT(seqA != nullptr, "unbound sequence");

        const Production *overlap = nullptr;
        for (size_t i = 0; i < second.productions().size(); ++i) {
            if (samePattern(prodA.pattern,
                            second.productions()[i].pattern)) {
                overlap = &second.productions()[i];
                secondMerged[i] = true;
                break;
            }
        }
        if (!overlap) {
            ReplacementSeq copy = *seqA;
            result.addPattern(prodA.pattern,
                              result.addSequence(std::move(copy)));
            continue;
        }
        const ReplacementSeq *seqB = second.sequence(overlap->seqId);
        DISE_ASSERT(seqB != nullptr, "unbound sequence");
        // Merge: A without its trigger instance, then B (whose single
        // T.INSN provides the shared trigger). Both must end in T.INSN.
        if (seqA->insts.empty() || !seqA->insts.back().isTriggerInsn ||
            seqB->insts.empty() || !seqB->insts.back().isTriggerInsn) {
            fatal("composeMerged: sequences for pattern '" +
                  prodA.pattern.toString() +
                  "' do not both end in T.INSN; non-nested composition "
                  "is impossible");
        }
        ReplacementSeq merged;
        merged.name = seqA->name + "+" + seqB->name;
        merged.insts.assign(seqA->insts.begin(),
                            seqA->insts.end() - 1);
        merged.insts.insert(merged.insts.end(), seqB->insts.begin(),
                            seqB->insts.end());
        result.addPattern(prodA.pattern,
                          result.addSequence(std::move(merged)));
    }
    for (size_t i = 0; i < second.productions().size(); ++i) {
        if (secondMerged[i])
            continue;
        const auto &prodB = second.productions()[i];
        DISE_ASSERT(!prodB.explicitTag,
                    "merged composition of tagged productions is not "
                    "supported");
        const ReplacementSeq *seqB = second.sequence(prodB.seqId);
        ReplacementSeq copy = *seqB;
        result.addPattern(prodB.pattern,
                          result.addSequence(std::move(copy)));
    }
    return result;
}

} // namespace dise
