/**
 * @file
 * Static binary rewriting — the software baseline the paper compares
 * DISE against (Section 4.1). A generic rewriting engine expands each
 * text instruction into a sequence, relays out the text, retargets every
 * direct branch, and remaps the symbol table; an MFI instrumentation
 * pass built on it inserts the segment-matching check (copy + shift +
 * compare + branch) before every load, store, and indirect jump, using
 * scavenged architectural registers instead of DISE dedicated ones.
 *
 * Constraints (matching how SFI rewriters operate): code must not hold
 * text addresses in data (no jump tables); the workload generator
 * guarantees this, and reserves the scavenged registers.
 */

#ifndef DISE_ACF_REWRITER_HPP
#define DISE_ACF_REWRITER_HPP

#include <functional>
#include <optional>
#include <vector>

#include "src/assembler/program.hpp"

namespace dise {

/** One output instruction of a rewrite rule. */
struct RewriteInst
{
    DecodedInst inst;
    /**
     * For direct branches: the absolute target in the ORIGINAL program's
     * address space; the rewriter re-encodes the displacement after
     * layout. Unset for everything else.
     */
    std::optional<Addr> absTarget;
};

/**
 * Rewrite rule: maps one original instruction (at its original PC) to
 * the sequence replacing it. Return {original} to keep it unchanged;
 * direct branches must carry their original-space absolute target.
 */
using RewriteRule =
    std::function<std::vector<RewriteInst>(const DecodedInst &, Addr)>;

/**
 * Apply a rewrite rule to a whole program.
 *
 * @param prog Input image.
 * @param rule Per-instruction rule.
 * @param prologue Instructions prepended at the entry point (e.g. to
 *                 initialize scavenged registers).
 * @return The rewritten program (text relaid, branches retargeted,
 *         symbols and entry remapped; data unchanged).
 */
Program rewriteProgram(const Program &prog, const RewriteRule &rule,
                       const std::vector<RewriteInst> &prologue = {});

/** MFI instrumentation options. */
struct RewriterMfiOptions
{
    /** Error handler (defaults to the "error" symbol). */
    Addr errorHandler = 0;
    bool checkJumps = true;
    /**
     * Scavenged registers (the paper: "as many as five dedicated
     * registers that must be reserved by the compiler or scavenged").
     * Defaults: s0/s1 scratch, s2 data segment id, s3 code segment id.
     */
    RegIndex scratch0 = 9, scratch1 = 10, segData = 11, segText = 12;
};

/**
 * The binary-rewriting MFI baseline: 4 instructions inserted before
 * every unsafe instruction (the extra copy protects against jumps into
 * the middle of the check), plus a prologue loading the segment ids.
 * The result runs on a stock (DISE-free) processor.
 */
Program applyMfiRewriting(const Program &prog,
                          const RewriterMfiOptions &opts = {});

} // namespace dise

#endif // DISE_ACF_REWRITER_HPP
