#include "src/acf/mfi.hpp"

#include "src/common/logging.hpp"
#include "src/dise/parser.hpp"

namespace dise {

const char *
mfiVariantName(MfiVariant variant)
{
    switch (variant) {
      case MfiVariant::Dise3:
        return "dise3";
      case MfiVariant::Dise4:
        return "dise4";
      case MfiVariant::Sandbox:
        return "sandbox";
    }
    return "?";
}

MfiVariant
parseMfiVariant(const std::string &name)
{
    if (name == "dise3")
        return MfiVariant::Dise3;
    if (name == "dise4")
        return MfiVariant::Dise4;
    if (name == "sandbox")
        return MfiVariant::Sandbox;
    fatal("unknown MFI variant \"" + name + "\"");
}

namespace {

/** Sandboxing sequence: mask the base register, re-base it into the
 *  legal segment, then re-emit the access through the masked copy. */
ReplacementSeq
sandboxSeq(const std::string &name, RegIndex segBaseReg, bool jump)
{
    const RegIndex scratch = kDiseRegBase + 1; // $dr1
    const RegIndex mask = kDiseRegBase + 6;    // $dr6

    ReplacementSeq seq;
    seq.name = name;

    // and T.RS, $dr6, $dr1
    ReplacementInst andInst;
    andInst.templ.op = Opcode::AND;
    andInst.templ.cls = OpClass::IntAlu;
    andInst.raDir = RegDirective::TriggerRS;
    andInst.templ.rb = mask;
    andInst.templ.rc = scratch;
    seq.insts.push_back(andInst);

    // or $dr1, <segment base>, $dr1
    ReplacementInst orInst;
    orInst.templ.op = Opcode::OR;
    orInst.templ.cls = OpClass::IntAlu;
    orInst.templ.ra = scratch;
    orInst.templ.rb = segBaseReg;
    orInst.templ.rc = scratch;
    seq.insts.push_back(orInst);

    // T.OP T.RAW, T.IMM($dr1)  — the original access, re-based. For
    // jumps the immediate field is unused.
    ReplacementInst rebased;
    rebased.opDir = OpDirective::Trigger;
    rebased.raDir = RegDirective::TriggerRaw;
    rebased.templ.rb = scratch;
    rebased.immDir =
        jump ? ImmDirective::Literal : ImmDirective::TriggerImm;
    // Give the template a representative format so role queries work
    // before instantiation; the opcode directive overrides it.
    rebased.templ.op = jump ? Opcode::JMP : Opcode::LDQ;
    rebased.templ.cls = jump ? OpClass::Jump : OpClass::Load;
    seq.insts.push_back(rebased);
    return seq;
}

ProductionSet
makeSandboxProductions(bool checkJumps)
{
    ProductionSet set;
    const SeqId mem = set.addSequence(
        sandboxSeq("RMEM", kDiseRegBase + 7, /*jump=*/false));
    PatternSpec stores;
    stores.opclass = OpClass::Store;
    set.addPattern(stores, mem);
    PatternSpec loads;
    loads.opclass = OpClass::Load;
    set.addPattern(loads, mem);
    if (checkJumps) {
        const SeqId jmp = set.addSequence(
            sandboxSeq("RJMP", kDiseRegBase + 0, /*jump=*/true));
        for (const OpClass cls : {OpClass::Jump, OpClass::CallIndirect,
                                  OpClass::Return}) {
            PatternSpec pattern;
            pattern.opclass = cls;
            set.addPattern(pattern, jmp);
        }
    }
    return set;
}

} // namespace

ProductionSet
makeMfiProductions(const Program &prog, const MfiOptions &opts)
{
    if (opts.variant == MfiVariant::Sandbox)
        return makeSandboxProductions(opts.checkJumps);

    const Addr error =
        opts.errorHandler ? opts.errorHandler : prog.symbol("error");
    std::map<std::string, Addr> symbols = {{"error", error}};

    std::string dsl;
    // Data-access checks: the address base register's segment must equal
    // the module's data segment id in $dr2.
    dsl += "P1: class == store -> RMEM\n";
    dsl += "P2: class == load -> RMEM\n";
    if (opts.variant == MfiVariant::Dise4) {
        dsl += "RMEM: or T.RS, zero, $dr1\n"
               "      srl $dr1, #26, $dr1\n"
               "      cmpeq $dr1, $dr2, $dr1\n"
               "      beq $dr1, @error\n"
               "      T.INSN\n";
    } else {
        dsl += "RMEM: srl T.RS, #26, $dr1\n"
               "      cmpeq $dr1, $dr2, $dr1\n"
               "      beq $dr1, @error\n"
               "      T.INSN\n";
    }
    if (opts.checkJumps) {
        // Indirect control transfers: target segment must equal the
        // module's code segment id in $dr3.
        dsl += "P3: class == jump -> RJMP\n";
        dsl += "P4: class == callindirect -> RJMP\n";
        dsl += "P5: class == return -> RJMP\n";
        if (opts.variant == MfiVariant::Dise4) {
            dsl += "RJMP: or T.RS, zero, $dr1\n"
                   "      srl $dr1, #26, $dr1\n"
                   "      cmpeq $dr1, $dr3, $dr1\n"
                   "      beq $dr1, @error\n"
                   "      T.INSN\n";
        } else {
            dsl += "RJMP: srl T.RS, #26, $dr1\n"
                   "      cmpeq $dr1, $dr3, $dr1\n"
                   "      beq $dr1, @error\n"
                   "      T.INSN\n";
        }
    }
    return parseProductions(dsl, symbols);
}

void
initMfiRegisters(ExecCore &core, const Program &prog)
{
    // Segment matching globals.
    core.setDiseReg(2, prog.dataSegment());
    core.setDiseReg(3, prog.textBase >> kSegmentShift);
    // Sandboxing globals: offset mask and segment bases.
    core.setDiseReg(6, (uint64_t(1) << kSegmentShift) - 1);
    core.setDiseReg(7, prog.dataSegment() << kSegmentShift);
    core.setDiseReg(0, (prog.textBase >> kSegmentShift) << kSegmentShift);
}

} // namespace dise
