/**
 * @file
 * ACF composition (paper Section 3.3, Figures 5 and 8).
 *
 * Composition is performed in software on production sets, never by the
 * hardware (which refuses recursive expansion).
 *
 * Nested composition Y(X(app)) — "X nested within Y" — yields Y's
 * productions plus X's productions with Y's productions *executed on
 * their replacement sequences*: every replacement instruction of X that
 * Y's patterns match is inlined with Y's sequence, directives rewired so
 * Y's trigger-role references resolve to X's field specifications, and
 * Y's scratch dedicated registers renamed when they collide with X's.
 * This is how transparent-within-aware composition (fault isolation of a
 * decompressed program) is built; such sequences are flagged
 * composeOnFill because the client performs the inlining in the RT miss
 * handler (150-cycle fills instead of 30).
 *
 * Non-nested (merged) composition concatenates the replacement sequences
 * of productions with identical patterns, keeping a single trigger
 * instance — tracing a store AND fault-isolating it without
 * fault-isolating the tracing stores. As the paper notes, this is only
 * possible when the sequences have the right shape (each ending in
 * T.INSN); impossible merges are rejected.
 */

#ifndef DISE_ACF_COMPOSE_HPP
#define DISE_ACF_COMPOSE_HPP

#include "src/dise/production.hpp"

namespace dise {

/** Options for nested composition. */
struct ComposeOptions
{
    /**
     * True when the composition is performed lazily by the RT miss
     * handler (transparent-within-aware): composed sequences then carry
     * the 150-cycle composed-fill cost.
     */
    bool viaMissHandler = false;
};

/**
 * Nested composition: apply @p outer to the replacement sequences of
 * @p inner and return outer's productions plus the rewritten inner ones
 * (the stream equals outer(inner(application))).
 *
 * Pattern constraints that depend on parameterized (directive) fields of
 * inner's sequences cannot be evaluated statically; such patterns are
 * treated as non-matching and a warning is issued.
 */
ProductionSet composeNested(const ProductionSet &outer,
                            const ProductionSet &inner,
                            const ComposeOptions &opts = {});

/**
 * Non-nested merge: productions with identical pattern specifications
 * have their sequences concatenated (first's instructions, then the
 * second's, one shared trigger instance). Throws FatalError when a
 * required merge is impossible.
 */
ProductionSet composeMerged(const ProductionSet &first,
                            const ProductionSet &second);

/** Structural equality of pattern specifications. */
bool samePattern(const PatternSpec &a, const PatternSpec &b);

} // namespace dise

#endif // DISE_ACF_COMPOSE_HPP
