#include "src/acf/profiler.hpp"

#include "src/common/logging.hpp"
#include "src/dise/parser.hpp"

namespace dise {

ProductionSet
makePathProfilerProductions()
{
    // Direction computations per conditional-branch opcode. Each leaves
    // the would-be-taken bit in $dr6.
    struct BranchDir
    {
        const char *mnemonic;
        const char *compute;
    };
    const BranchDir kDirs[] = {
        {"beq", "cmpeq T.RS, #0, $dr6\n"},
        {"bne", "cmpeq T.RS, #0, $dr6\n    xor $dr6, #1, $dr6\n"},
        {"blt", "cmplt T.RS, #0, $dr6\n"},
        {"bge", "cmplt T.RS, #0, $dr6\n    xor $dr6, #1, $dr6\n"},
        {"ble", "cmple T.RS, #0, $dr6\n"},
        {"bgt", "cmple T.RS, #0, $dr6\n    xor $dr6, #1, $dr6\n"},
        {"blbs", "and T.RS, #1, $dr6\n"},
        {"blbc", "and T.RS, #1, $dr6\n    xor $dr6, #1, $dr6\n"},
    };

    std::string dsl;
    int n = 0;
    for (const auto &dir : kDirs) {
        const std::string seqName =
            "RB" + std::string(dir.mnemonic);
        dsl += strFormat("P%d: op == %s -> %s\n", ++n, dir.mnemonic,
                         seqName.c_str());
        dsl += seqName + ": " + dir.compute;
        dsl += "    sll $dr7, #1, $dr7\n"
               "    or $dr7, $dr6, $dr7\n"
               "    T.INSN\n";
    }

    // Path endpoint: returns dump (PC, history) and reset the history.
    dsl += strFormat("P%d: class == return -> RRET\n", ++n);
    dsl += "RRET: lda $dr4, T.PC(zero)\n"
           "      stq $dr4, 0($dr5)\n"
           "      stq $dr7, 8($dr5)\n"
           "      lda $dr5, 16($dr5)\n"
           "      and $dr7, #0, $dr7\n"
           "      T.INSN\n";
    return parseProductions(dsl);
}

void
initProfilerRegisters(ExecCore &core, Addr buffer)
{
    core.setDiseReg(5, buffer);
    core.setDiseReg(7, 0);
}

std::vector<PathRecord>
readPathProfile(const ExecCore &core, Addr buffer)
{
    const Addr cursor = core.diseRegs()[5];
    DISE_ASSERT(cursor >= buffer && (cursor - buffer) % 16 == 0,
                "corrupt path-profile cursor");
    std::vector<PathRecord> records;
    for (Addr at = buffer; at < cursor; at += 16) {
        PathRecord record;
        record.endpointPC = core.memory().readQuad(at);
        record.history = core.memory().readQuad(at + 8);
        records.push_back(record);
    }
    return records;
}

} // namespace dise
