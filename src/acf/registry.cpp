#include "src/acf/registry.hpp"

#include "src/acf/assertions.hpp"
#include "src/acf/compose.hpp"
#include "src/acf/compress.hpp"
#include "src/acf/mfi.hpp"
#include "src/acf/profiler.hpp"
#include "src/acf/rewriter.hpp"
#include "src/common/logging.hpp"
#include "src/dise/parser.hpp"

namespace dise {

const char *
acfComposeName(AcfCompose compose)
{
    switch (compose) {
      case AcfCompose::Append:
        return "append";
      case AcfCompose::Merged:
        return "merged";
      case AcfCompose::Nested:
        return "nested";
    }
    return "?";
}

AcfCompose
parseAcfCompose(const std::string &name)
{
    if (name == "append")
        return AcfCompose::Append;
    if (name == "merged")
        return AcfCompose::Merged;
    if (name == "nested")
        return AcfCompose::Nested;
    fatal("unknown ACF compose mode \"" + name +
          "\" (append, merged, nested)");
}

std::string
AcfSpec::str() const
{
    std::string s = kind;
    if (!variant.empty())
        s += ":" + variant;
    if (compose != AcfCompose::Append)
        s += std::string("/") + acfComposeName(compose);
    return s;
}

Json
AcfSpec::toJson() const
{
    Json doc = Json::object();
    doc["kind"] = Json(kind);
    if (!variant.empty())
        doc["variant"] = Json(variant);
    if (compose != AcfCompose::Append)
        doc["compose"] = Json(std::string(acfComposeName(compose)));
    return doc;
}

AcfSpec
AcfSpec::fromJson(const Json &doc)
{
    if (!doc.isObject())
        fatal("RunRequest: \"acfs\" entries must be JSON objects");
    AcfSpec spec;
    bool haveKind = false;
    for (const auto &kv : doc.members()) {
        const std::string &key = kv.first;
        const Json &value = kv.second;
        if (!value.isString())
            fatal("RunRequest: acfs entry key \"" + key +
                  "\" must be a string");
        if (key == "kind") {
            spec.kind = value.asString();
            haveKind = true;
        } else if (key == "variant") {
            spec.variant = value.asString();
        } else if (key == "compose") {
            spec.compose = parseAcfCompose(value.asString());
        } else {
            fatal("RunRequest: acfs entry has unknown key \"" + key +
                  "\" (kind, variant, compose)");
        }
    }
    if (!haveKind || spec.kind.empty())
        fatal("RunRequest: acfs entry missing \"kind\"");
    return spec;
}

const AcfRegistry &
AcfRegistry::instance()
{
    static const AcfRegistry registry;
    return registry;
}

AcfRegistry::AcfRegistry()
{
    kinds_["productions"] = {/*productionSet=*/true,
                             /*takesVariant=*/false};
    kinds_["mfi"] = {true, true};
    kinds_["watchpoint"] = {true, false};
    kinds_["profiler"] = {true, false};
    kinds_["compress"] = {true, false};
    kinds_["rewrite_mfi"] = {false, false};
    kinds_["fusion"] = {false, false};
}

bool
AcfRegistry::known(const std::string &kind) const
{
    return kinds_.count(kind) != 0;
}

std::string
AcfRegistry::kindList() const
{
    std::string out;
    for (const auto &kv : kinds_) {
        if (!out.empty())
            out += ", ";
        out += kv.first;
    }
    return out;
}

void
AcfRegistry::validate(const std::vector<AcfSpec> &acfs,
                      bool haveProductionsText) const
{
    // The nearest preceding production-set entry — the target any
    // "merged"/"nested" entry composes with.
    std::string composeTarget;
    bool sawMfi = false;
    bool sawProductionsEntry = false;
    std::vector<std::string> seen;
    for (size_t i = 0; i < acfs.size(); ++i) {
        const AcfSpec &spec = acfs[i];
        const std::string where =
            "RunRequest: acfs[" + std::to_string(i) + "]: ";
        auto it = kinds_.find(spec.kind);
        if (it == kinds_.end()) {
            fatal(where + "unknown ACF kind \"" + spec.kind + "\" (" +
                  kindList() + ")");
        }
        const KindInfo &info = it->second;
        for (const std::string &prev : seen) {
            if (prev == spec.kind)
                fatal(where + "duplicate ACF kind \"" + spec.kind +
                      "\"");
        }
        seen.push_back(spec.kind);
        if (!spec.variant.empty()) {
            if (!info.takesVariant)
                fatal(where + "\"" + spec.kind +
                      "\" does not take a variant");
            if (spec.kind == "mfi")
                parseMfiVariant(spec.variant); // fatal() when unknown
        }
        if (spec.compose != AcfCompose::Append) {
            // Composition operates on production sets (paper Section
            // 3.3); an entry that does not build one cannot be a
            // composition operand — reject, never silently drop.
            if (!info.productionSet) {
                fatal(where + "cannot compose \"" + spec.str() +
                      "\": \"" + spec.kind +
                      "\" does not build a production set" +
                      (spec.kind == "fusion"
                           ? " (fusion contracts the decoded stream "
                             "after all expansion; it composes with "
                             "every ACF implicitly and only accepts "
                             "\"append\")"
                           : " (only \"append\" is valid)"));
            }
            if (composeTarget.empty()) {
                fatal(where + "cannot compose \"" + spec.str() +
                      "\": no preceding production-set ACF to " +
                      acfComposeName(spec.compose) + " with");
            }
        }
        if (spec.kind == "watchpoint" && !sawMfi)
            fatal(where + "\"watchpoint\" requires a preceding "
                          "\"mfi\" entry");
        if (spec.kind == "productions" && !haveProductionsText)
            fatal(where + "\"productions\" entry requires the "
                          "\"productions\" DSL text");
        if (info.productionSet)
            composeTarget = spec.kind;
        sawMfi = sawMfi || spec.kind == "mfi";
        sawProductionsEntry =
            sawProductionsEntry || spec.kind == "productions";
    }
    if (haveProductionsText && !sawProductionsEntry)
        fatal("RunRequest: \"productions\" text requires a "
              "{\"kind\": \"productions\"} acfs entry");
}

AcfBuild
AcfRegistry::build(const std::vector<AcfSpec> &acfs,
                   const std::string &productionsText,
                   Program &prog) const
{
    validate(acfs, !productionsText.empty());

    AcfBuild out;
    ProductionSet acc;
    bool any = false;
    // Delayed fold: the previous production-set contribution stays
    // pending (not yet merged into acc) so a later "merged"/"nested"
    // entry can still compose with it; "append" flushes it.
    std::unique_ptr<ProductionSet> pending;

    auto contribute = [&](const AcfSpec &spec, ProductionSet set) {
        any = true;
        switch (spec.compose) {
          case AcfCompose::Append:
            if (pending)
                acc.merge(*pending);
            pending =
                std::make_unique<ProductionSet>(std::move(set));
            return;
          case AcfCompose::Merged:
            *pending = composeMerged(*pending, set);
            return;
          case AcfCompose::Nested:
            // This entry wraps the stream the pending entry produces:
            // [compress, mfi/nested] = MFI(decompress(app)).
            *pending = composeNested(set, *pending);
            return;
        }
    };

    for (const AcfSpec &spec : acfs) {
        if (spec.kind == "productions") {
            contribute(spec,
                       parseProductions(productionsText, prog.symbols));
        } else if (spec.kind == "mfi") {
            MfiOptions opts;
            if (!spec.variant.empty())
                opts.variant = parseMfiVariant(spec.variant);
            contribute(spec, makeMfiProductions(prog, opts));
            out.mfiRegisters = true;
        } else if (spec.kind == "watchpoint") {
            // Guard cell the program never writes, above the stack
            // region; any nonzero store landing there trips the
            // watchpoint assertion.
            out.watchAddr = prog.dataBase +
                            (Addr(1) << (kSegmentShift - 1)) +
                            (Addr(1) << 20);
            contribute(spec, makeWatchpointProductions(prog));
            out.watchRegisters = true;
        } else if (spec.kind == "profiler") {
            contribute(spec, makePathProfilerProductions());
            out.profilerRegisters = true;
        } else if (spec.kind == "rewrite_mfi") {
            prog = applyMfiRewriting(prog);
        } else if (spec.kind == "compress") {
            CompressionResult comp = compressProgram(prog);
            prog = std::move(comp.compressed);
            contribute(spec, *comp.dictionary);
        } else if (spec.kind == "fusion") {
            out.fusion = true;
        } else {
            fatal("AcfRegistry: unhandled kind \"" + spec.kind + "\"");
        }
    }
    if (pending)
        acc.merge(*pending);
    if (any) {
        out.productions =
            std::make_shared<const ProductionSet>(std::move(acc));
    }
    // The transforms preserve the data segment, so placing the
    // profile buffer past the final program's data matches placing it
    // past the original's.
    if (out.profilerRegisters) {
        out.profileBuffer = prog.dataBase +
                            ((prog.data.size() + 0xffff) &
                             ~size_t(0xfff)) +
                            (1 << 20);
    }
    return out;
}

} // namespace dise
