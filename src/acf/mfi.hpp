/**
 * @file
 * Memory fault isolation (MFI) — the paper's transparent ACF example
 * (Section 3.1, Figures 1 and 6).
 *
 * Software fault isolation in both of the paper's flavours:
 *
 *  - Segment matching: every load, store, and indirect jump is preceded
 *    by a check that its address lies in the module's assigned segment;
 *    violations branch to an error handler. Two DISE formulations:
 *    DISE4 mirrors the binary-rewriting sequence exactly (copy + shift +
 *    compare + branch before the original instruction), while DISE3
 *    exploits DISE's control-flow model — jumps into the middle of a
 *    replacement sequence are impossible, so the protective copy is
 *    unnecessary and one instruction is saved per check.
 *
 *  - Sandboxing: instead of checking, the high-order address bits are
 *    forced to the module's segment id (two instructions per access, no
 *    error handler; wild accesses wrap harmlessly into the module's own
 *    segment). The re-based original access is re-emitted with the T.OP
 *    / T.RAW opcode and raw-field directives.
 *
 * Dedicated registers: $dr1 is scratch; $dr2 holds the legal data
 * segment id and $dr3 the legal code segment id (segment matching);
 * $dr6 holds the in-segment offset mask, $dr7 the data segment base and
 * $dr0 the code segment base (sandboxing).
 */

#ifndef DISE_ACF_MFI_HPP
#define DISE_ACF_MFI_HPP

#include "src/assembler/program.hpp"
#include "src/dise/production.hpp"
#include "src/sim/core.hpp"

namespace dise {

/** MFI replacement-sequence formulation. */
enum class MfiVariant : uint8_t {
    Dise3,   ///< segment matching, 3 added instructions (Figure 1)
    Dise4,   ///< segment matching, 4 added (binary rewriting's code)
    Sandbox, ///< address sandboxing, 2 added, no fault detection
};

/** Stable lower-case variant name ("dise3", "dise4", "sandbox"). */
const char *mfiVariantName(MfiVariant variant);

/** Parse a variant name; fatal() on anything else. */
MfiVariant parseMfiVariant(const std::string &name);

/** MFI configuration. */
struct MfiOptions
{
    MfiVariant variant = MfiVariant::Dise3;
    /** Also check indirect jump/call/return targets. */
    bool checkJumps = true;
    /** Absolute address of the error handler. */
    Addr errorHandler = 0;
};

/**
 * Build the MFI production set for a program.
 * The error handler defaults to the program's "error" symbol.
 */
ProductionSet makeMfiProductions(const Program &prog,
                                 const MfiOptions &opts);

/**
 * Initialize the MFI dedicated registers on a core:
 * $dr2 = data segment id, $dr3 = text segment id.
 */
void initMfiRegisters(ExecCore &core, const Program &prog);

} // namespace dise

#endif // DISE_ACF_MFI_HPP
