#include "src/acf/compress.hpp"

#include <algorithm>
#include <array>
#include <queue>
#include <unordered_map>

#include "src/common/bits.hpp"
#include "src/common/logging.hpp"

namespace dise {

namespace {

/** Parameter slot kinds. */
enum class SlotKind : uint8_t { None = 0, Reg, Imm };

/** Per-field canonicalization result: slot index or -1 for literal. */
struct FieldSlots
{
    int8_t ra = -1;
    int8_t rb = -1;
    int8_t rc = -1;
    int8_t imm = -1;
};

/** Canonical form of one candidate occurrence. */
struct Canon
{
    bool ok = false;
    bool hasBranch = false;
    uint32_t numParams = 0;
    std::array<SlotKind, 3> kinds{SlotKind::None, SlotKind::None,
                                  SlotKind::None};
    std::array<uint8_t, 3> values{0, 0, 0}; ///< this occurrence's params
    std::vector<FieldSlots> slots;          ///< per instruction
    std::string key;
};

/** Append a value to a key string. */
void
keyPut(std::string &key, uint64_t v, unsigned bytes = 8)
{
    for (unsigned i = 0; i < bytes; ++i)
        key.push_back(static_cast<char>(v >> (8 * i)));
}

/**
 * Canonicalize the candidate [start, start+len). Deterministic: the same
 * instruction bytes always produce the same key, slot layout and, for a
 * given occurrence, the same parameter values.
 *
 * @param immParams When false, only registers are abstracted into
 *        parameter slots. The enumerator tries both variants: abstracting
 *        small immediates unifies Figure 4-style +8/-8 displacements, but
 *        wastes slots when the immediates are shared constants (0 bases)
 *        and the register names are what varies.
 */
Canon
canonicalize(const std::vector<DecodedInst> &insts, uint32_t start,
             uint32_t len, const CompressorOptions &opts, bool immParams)
{
    Canon canon;
    canon.slots.resize(len);

    // Eligibility and branch detection.
    for (uint32_t k = 0; k < len; ++k) {
        const DecodedInst &inst = insts[start + k];
        switch (inst.cls) {
          case OpClass::Invalid:
          case OpClass::Codeword:
          case OpClass::DiseBranch:
            return canon;
          case OpClass::CondBranch:
          case OpClass::UncondBranch:
          case OpClass::Call:
            if (k + 1 != len || !opts.compressBranches)
                return canon;
            canon.hasBranch = true;
            break;
          case OpClass::Jump:
          case OpClass::CallIndirect:
          case OpClass::Return:
            if (k + 1 != len)
                return canon;
            break;
          default:
            break;
        }
    }

    // Parameter assignment (registers and small immediates), unless the
    // candidate carries a branch (its offset claims all parameter bits).
    struct Value
    {
        SlotKind kind;
        uint8_t value;
        bool operator==(const Value &o) const
        {
            return kind == o.kind && value == o.value;
        }
    };
    std::vector<Value> assigned;
    const bool allowParams = !canon.hasBranch && opts.maxParams > 0;
    auto trySlot = [&](SlotKind kind, int64_t value) -> int8_t {
        if (!allowParams)
            return -1;
        if (kind == SlotKind::Reg) {
            if (value == kZeroReg)
                return -1; // keep the zero register literal
        } else {
            if (!immParams)
                return -1;
            if (value < -16 || value > 15)
                return -1; // must fit a sign-extended 5-bit parameter
        }
        const Value v{kind, static_cast<uint8_t>(value & 0x1f)};
        for (size_t i = 0; i < assigned.size(); ++i)
            if (assigned[i] == v)
                return static_cast<int8_t>(i);
        if (assigned.size() >= opts.maxParams)
            return -1; // out of slots: stays literal
        assigned.push_back(v);
        return static_cast<int8_t>(assigned.size() - 1);
    };

    std::string &key = canon.key;
    keyPut(key, len, 1);
    keyPut(key, canon.hasBranch ? 1 : 0, 1);
    for (uint32_t k = 0; k < len; ++k) {
        const DecodedInst &inst = insts[start + k];
        const OpInfo &info = opInfo(inst.op);
        FieldSlots &fs = canon.slots[k];
        keyPut(key, static_cast<uint64_t>(inst.op), 1);
        keyPut(key, inst.useLit ? 1 : 0, 1);

        // Fixed-width field encodings keep the key unambiguous.
        auto regField = [&](RegIndex r, int8_t &slot) {
            slot = trySlot(SlotKind::Reg, r);
            if (slot >= 0)
                keyPut(key, 0x8000u + static_cast<unsigned>(slot), 2);
            else
                keyPut(key, r, 2);
        };
        auto immField = [&](int64_t imm, int8_t &slot, bool eligible) {
            slot = eligible ? trySlot(SlotKind::Imm, imm) : int8_t(-1);
            if (slot >= 0) {
                keyPut(key, 0x8000u + static_cast<unsigned>(slot), 2);
                keyPut(key, 0, 8);
            } else {
                keyPut(key, 0, 2);
                keyPut(key, static_cast<uint64_t>(imm), 8);
            }
        };

        switch (info.format) {
          case InstFormat::Nop:
          case InstFormat::Syscall:
            break;
          case InstFormat::Memory:
            regField(inst.ra, fs.ra);
            regField(inst.rb, fs.rb);
            immField(inst.imm, fs.imm, true);
            break;
          case InstFormat::Branch:
            regField(inst.ra, fs.ra);
            // The displacement is the ParamImm parameter, excluded from
            // the key so instances with different offsets unify.
            break;
          case InstFormat::Jump:
            regField(inst.ra, fs.ra);
            regField(inst.rb, fs.rb);
            break;
          case InstFormat::Operate:
            regField(inst.ra, fs.ra);
            if (inst.useLit) {
                immField(inst.imm, fs.imm,
                         inst.imm >= 0 && inst.imm <= 15);
            } else {
                regField(inst.rb, fs.rb);
            }
            regField(inst.rc, fs.rc);
            break;
          case InstFormat::Codeword:
            return canon; // unreachable (filtered above)
        }
    }

    canon.numParams = static_cast<uint32_t>(assigned.size());
    for (size_t i = 0; i < assigned.size(); ++i)
        canon.values[i] = assigned[i].value;
    canon.ok = true;
    return canon;
}

/** A dictionary candidate: one canonical key with all its occurrences. */
struct Candidate
{
    uint32_t len = 0;
    bool hasBranch = false;
    bool immParams = false;
    uint32_t numParams = 0;
    std::vector<uint32_t> starts;
    std::vector<std::array<uint8_t, 3>> paramVals;

    int64_t
    benefit(uint64_t validOccurrences,
            const CompressorOptions &opts) const
    {
        const int64_t perOcc =
            int64_t(len) * 4 - int64_t(opts.codewordBytes);
        const int64_t dictCost = int64_t(len) * opts.dictEntryBytes;
        return int64_t(validOccurrences) * perOcc - dictCost;
    }
};

} // namespace

CompressorOptions
dedicatedDecompressorOptions()
{
    CompressorOptions opts;
    opts.maxParams = 0;
    opts.compressBranches = false;
    opts.allowSingleInst = true;
    opts.codewordBytes = 2;
    opts.dictEntryBytes = 4;
    return opts;
}

CompressionResult
compressProgram(const Program &prog, const CompressorOptions &opts)
{
    DISE_ASSERT(opts.maxParams <= 3, "at most 3 parameter slots");
    DISE_ASSERT(opts.maxDictEntries <= kMaxCodewordTag + 1,
                "dictionary exceeds the 11-bit tag space");

    const size_t n = prog.text.size();
    std::vector<DecodedInst> insts;
    insts.reserve(n);
    for (const Word w : prog.text)
        insts.push_back(decode(w));
    const BasicBlocks bb = analyzeBasicBlocks(prog);

    // ---- Candidate enumeration. ----
    std::vector<Candidate> cands;
    std::unordered_map<std::string, uint32_t> keyIndex;
    const uint32_t minLen = opts.allowSingleInst && opts.codewordBytes < 4
                                ? 1
                                : 2;
    for (const auto &[first, last] : bb.blocks) {
        for (uint32_t i = first; i < last; ++i) {
            const uint32_t maxLen =
                std::min(opts.maxSeqLen, last - i);
            for (uint32_t len = minLen; len <= maxLen; ++len) {
                std::string firstKey;
                for (const bool immParams : {true, false}) {
                    const Canon canon =
                        canonicalize(insts, i, len, opts, immParams);
                    if (!canon.ok)
                        continue;
                    if (immParams) {
                        firstKey = canon.key;
                    } else if (canon.key == firstKey) {
                        continue; // variants coincide; count once
                    }
                    auto [it, fresh] = keyIndex.try_emplace(
                        canon.key, static_cast<uint32_t>(cands.size()));
                    if (fresh) {
                        Candidate cand;
                        cand.len = len;
                        cand.hasBranch = canon.hasBranch;
                        cand.immParams = immParams;
                        cand.numParams = canon.numParams;
                        cands.push_back(std::move(cand));
                    }
                    Candidate &cand = cands[it->second];
                    cand.starts.push_back(i);
                    cand.paramVals.push_back(canon.values);
                }
            }
        }
    }

    // ---- Greedy selection with lazy re-evaluation. ----
    std::vector<bool> covered(n, false);
    auto validOccurrences = [&](const Candidate &cand) {
        // Non-overlapping, left-to-right; starts are already sorted.
        std::vector<uint32_t> accepted;
        uint32_t nextFree = 0;
        for (size_t oi = 0; oi < cand.starts.size(); ++oi) {
            const uint32_t s = cand.starts[oi];
            if (s < nextFree)
                continue;
            bool clean = true;
            for (uint32_t k = 0; k < cand.len && clean; ++k)
                clean = !covered[s + k];
            if (!clean)
                continue;
            accepted.push_back(static_cast<uint32_t>(oi));
            nextFree = s + cand.len;
        }
        return accepted;
    };

    using QEntry = std::pair<int64_t, uint32_t>; // (benefit, candidate)
    std::priority_queue<QEntry> queue;
    for (uint32_t ci = 0; ci < cands.size(); ++ci) {
        const int64_t b = cands[ci].benefit(cands[ci].starts.size(), opts);
        if (b > 0)
            queue.emplace(b, ci);
    }

    struct Chosen
    {
        uint32_t candIdx;
        uint16_t tag;
        std::vector<uint32_t> occIdx; ///< indices into cand.starts
    };
    std::vector<Chosen> chosen;
    /** Per accepted start word: owning chosen index and parameters. */
    std::vector<int32_t> startOwner(n, -1);
    std::vector<std::array<uint8_t, 3>> startParams(
        n, std::array<uint8_t, 3>{0, 0, 0});

    while (!queue.empty() && chosen.size() < opts.maxDictEntries) {
        const auto [claimed, ci] = queue.top();
        queue.pop();
        Candidate &cand = cands[ci];
        const auto accepted = validOccurrences(cand);
        const int64_t actual = cand.benefit(accepted.size(), opts);
        if (actual <= 0)
            continue;
        if (actual < claimed) {
            queue.emplace(actual, ci); // stale estimate; retry later
            continue;
        }
        Chosen ch;
        ch.candIdx = ci;
        ch.tag = static_cast<uint16_t>(chosen.size());
        ch.occIdx = accepted;
        for (const uint32_t oi : accepted) {
            const uint32_t s = cand.starts[oi];
            startOwner[s] = static_cast<int32_t>(chosen.size());
            startParams[s] = cand.paramVals[oi];
            for (uint32_t k = 0; k < cand.len; ++k)
                covered[s + k] = true;
        }
        chosen.push_back(std::move(ch));
    }

    // ---- Layout. ----
    std::vector<uint32_t> newIndex(n + 1, 0);
    const std::vector<int32_t> &occAtStart = startOwner;
    {
        uint32_t cursor = 0;
        uint32_t i = 0;
        while (i < n) {
            if (occAtStart[i] >= 0) {
                const Candidate &cand =
                    cands[chosen[occAtStart[i]].candIdx];
                for (uint32_t k = 0; k < cand.len; ++k)
                    newIndex[i + k] = cursor;
                ++cursor;
                i += cand.len;
            } else {
                newIndex[i] = cursor;
                ++cursor;
                ++i;
            }
        }
        newIndex[n] = cursor;
    }
    auto mapAddr = [&](Addr oldAddr) -> Addr {
        if (!prog.inText(oldAddr))
            return oldAddr;
        return prog.textBase + Addr(newIndex[(oldAddr - prog.textBase) /
                                             4]) *
                                   4;
    };

    // ---- Emission. ----
    CompressionResult result;
    result.originalTextBytes = prog.textBytes();
    Program &out = result.compressed;
    out.textBase = prog.textBase;
    out.dataBase = prog.dataBase;
    out.data = prog.data;
    out.stackTop = prog.stackTop;
    out.entry = mapAddr(prog.entry);
    for (const auto &kv : prog.symbols)
        out.symbols[kv.first] = mapAddr(kv.second);

    uint64_t residualInsts = 0;
    uint32_t i = 0;
    while (i < n) {
        const Addr newPC = prog.textBase + out.text.size() * 4;
        if (occAtStart[i] >= 0) {
            const Chosen &ch = chosen[occAtStart[i]];
            const Candidate &cand = cands[ch.candIdx];
            Word cw;
            if (cand.hasBranch) {
                const DecodedInst &branch = insts[i + cand.len - 1];
                // The branch's own (old) PC, not the candidate start.
                const Addr oldPC =
                    prog.textBase + Addr(i + cand.len - 1) * 4;
                const Addr target = branch.branchTarget(oldPC);
                // The expanded branch executes at the codeword's PC.
                const int64_t disp =
                    (static_cast<int64_t>(mapAddr(target)) -
                     static_cast<int64_t>(newPC) - 4) /
                    4;
                DISE_ASSERT(fitsSigned(disp, 15),
                            "branch offset parameter overflow");
                cw = makeCodewordImm(opts.reservedOp, ch.tag, disp);
            } else {
                // Parameter values of THIS occurrence.
                const auto &vals = startParams[i];
                cw = makeCodeword(opts.reservedOp, ch.tag, vals[0],
                                  vals[1], vals[2]);
            }
            out.text.push_back(cw);
            ++result.codewords;
            result.instsCompressedOut += cand.len - 1;
            i += cand.len;
        } else {
            DecodedInst inst = insts[i];
            if (inst.cls == OpClass::CondBranch ||
                inst.cls == OpClass::UncondBranch ||
                inst.cls == OpClass::Call) {
                const Addr oldPC = prog.textBase + Addr(i) * 4;
                const Addr target = inst.branchTarget(oldPC);
                inst.imm = (static_cast<int64_t>(mapAddr(target)) -
                            static_cast<int64_t>(newPC) - 4) /
                           4;
            }
            out.text.push_back(encode(inst));
            ++residualInsts;
            ++i;
        }
    }

    result.compressedTextBytes =
        residualInsts * 4 + result.codewords * opts.codewordBytes;
    result.dictEntries = static_cast<uint32_t>(chosen.size());

    // ---- Dictionary productions. ----
    auto dict = std::make_shared<ProductionSet>();
    for (const Chosen &ch : chosen) {
        const Candidate &cand = cands[ch.candIdx];
        const uint32_t firstStart = cand.starts[ch.occIdx.front()];
        const Canon canon = canonicalize(insts, firstStart, cand.len,
                                         opts, cand.immParams);
        DISE_ASSERT(canon.ok, "chosen candidate no longer canonicalizes");

        ReplacementSeq seq;
        seq.name = strFormat("D%u", unsigned(ch.tag));
        for (uint32_t k = 0; k < cand.len; ++k) {
            ReplacementInst rinst;
            rinst.templ = insts[firstStart + k];
            rinst.templ.raw = 0;
            const FieldSlots &fs = canon.slots[k];
            auto regDir = [](int8_t slot) {
                switch (slot) {
                  case 0: return RegDirective::Param1;
                  case 1: return RegDirective::Param2;
                  case 2: return RegDirective::Param3;
                  default: return RegDirective::Literal;
                }
            };
            auto immDir = [](int8_t slot) {
                switch (slot) {
                  case 0: return ImmDirective::Param1;
                  case 1: return ImmDirective::Param2;
                  case 2: return ImmDirective::Param3;
                  default: return ImmDirective::Literal;
                }
            };
            rinst.raDir = regDir(fs.ra);
            rinst.rbDir = regDir(fs.rb);
            rinst.rcDir = regDir(fs.rc);
            rinst.immDir = immDir(fs.imm);
            if (cand.hasBranch && k + 1 == cand.len)
                rinst.immDir = ImmDirective::ParamImm;
            seq.insts.push_back(rinst);
        }
        result.dictionaryBytes +=
            uint64_t(cand.len) * opts.dictEntryBytes;
        dict->addSequenceWithId(ch.tag, std::move(seq));
    }
    if (!chosen.empty()) {
        PatternSpec pattern;
        pattern.opcode = opts.reservedOp;
        dict->addTagPattern(pattern, 0);
    }
    result.dictionary = std::move(dict);

    // ---- Verification: every codeword must expand back to its original
    // instructions (branch displacements checked in the new layout). ----
    for (uint32_t s = 0; s < n; ++s) {
        if (occAtStart[s] < 0)
            continue;
        const Chosen &ch = chosen[occAtStart[s]];
        const Candidate &cand = cands[ch.candIdx];
        const Addr newPC =
            prog.textBase + Addr(newIndex[s]) * 4;
        const DecodedInst trigger =
            decode(out.text[newIndex[s]]);
        const ReplacementSeq *seq =
            result.dictionary->sequence(ch.tag);
        DISE_ASSERT(seq != nullptr, "missing dictionary sequence");
        const auto expanded = instantiateSeq(*seq, trigger, newPC);
        for (uint32_t k = 0; k < cand.len; ++k) {
            DecodedInst expect = insts[s + k];
            if (cand.hasBranch && k + 1 == cand.len) {
                const Addr oldPC = prog.textBase + Addr(s + k) * 4;
                const Addr target = expect.branchTarget(oldPC);
                expect.imm = (static_cast<int64_t>(mapAddr(target)) -
                              static_cast<int64_t>(newPC) - 4) /
                             4;
            }
            expect.raw = 0;
            DecodedInst got = expanded[k];
            got.raw = 0;
            got.tag = 0;
            expect.tag = 0;
            DISE_ASSERT(got == expect,
                        strFormat("decompression mismatch at word %u "
                                  "slot %u", s, k));
        }
    }

    return result;
}

} // namespace dise
