#include "src/acf/rewriter.hpp"

#include "src/common/logging.hpp"

namespace dise {

Program
rewriteProgram(const Program &prog, const RewriteRule &rule,
               const std::vector<RewriteInst> &prologue)
{
    const size_t n = prog.text.size();

    // Pass 1: expand each instruction; record group sizes.
    std::vector<std::vector<RewriteInst>> groups(n);
    const size_t entryIdx = (prog.entry - prog.textBase) / 4;
    for (size_t i = 0; i < n; ++i) {
        const Addr pc = prog.textBase + i * 4;
        const DecodedInst inst = decode(prog.text[i]);
        groups[i] = rule(inst, pc);
        DISE_ASSERT(!groups[i].empty(), "rewrite rule emitted nothing");
    }
    if (!prologue.empty()) {
        DISE_ASSERT(entryIdx < n, "entry outside text");
        std::vector<RewriteInst> combined = prologue;
        combined.insert(combined.end(), groups[entryIdx].begin(),
                        groups[entryIdx].end());
        groups[entryIdx] = std::move(combined);
    }

    // Pass 2: layout. newIndex[i] = word index of group i's start.
    std::vector<uint32_t> newIndex(n + 1);
    uint32_t cursor = 0;
    for (size_t i = 0; i < n; ++i) {
        newIndex[i] = cursor;
        cursor += static_cast<uint32_t>(groups[i].size());
    }
    newIndex[n] = cursor;

    auto mapAddr = [&](Addr oldAddr) -> Addr {
        if (!prog.inText(oldAddr))
            return oldAddr; // data/stack addresses are unchanged
        const size_t idx = (oldAddr - prog.textBase) / 4;
        return prog.textBase + Addr(newIndex[idx]) * 4;
    };

    // Pass 3: encode, fixing branch displacements against the new layout.
    Program out;
    out.textBase = prog.textBase;
    out.dataBase = prog.dataBase;
    out.data = prog.data;
    out.stackTop = prog.stackTop;
    out.entry = mapAddr(prog.entry);
    for (const auto &kv : prog.symbols)
        out.symbols[kv.first] = mapAddr(kv.second);
    out.text.reserve(cursor);
    for (size_t i = 0; i < n; ++i) {
        for (const auto &rw : groups[i]) {
            DecodedInst inst = rw.inst;
            if (rw.absTarget) {
                const Addr newPC = prog.textBase + out.text.size() * 4;
                const Addr newTarget = mapAddr(*rw.absTarget);
                inst.imm = (static_cast<int64_t>(newTarget) -
                            static_cast<int64_t>(newPC) - 4) /
                           4;
            }
            out.text.push_back(encode(inst));
        }
    }
    return out;
}

Program
applyMfiRewriting(const Program &prog, const RewriterMfiOptions &opts)
{
    const Addr error =
        opts.errorHandler ? opts.errorHandler : prog.symbol("error");
    const uint64_t dataSeg = prog.dataSegment();
    const uint64_t textSeg = prog.textBase >> kSegmentShift;

    auto op = [](Word w) {
        RewriteInst rw;
        rw.inst = decode(w);
        return rw;
    };
    auto checkSeq = [&](RegIndex addrReg, RegIndex segReg) {
        std::vector<RewriteInst> seq;
        // or addrReg, zero, s0  (protective copy)
        seq.push_back(op(makeOperate(Opcode::OR, addrReg, kZeroReg,
                                     opts.scratch0)));
        // srl s0, #26, s1
        seq.push_back(op(makeOperateImm(Opcode::SRL, opts.scratch0,
                                        kSegmentShift, opts.scratch1)));
        // cmpeq s1, segReg, s1
        seq.push_back(op(makeOperate(Opcode::CMPEQ, opts.scratch1, segReg,
                                     opts.scratch1)));
        // beq s1, error
        RewriteInst branch;
        branch.inst = decode(makeBranch(Opcode::BEQ, opts.scratch1, 0));
        branch.absTarget = error;
        seq.push_back(branch);
        return seq;
    };

    RewriteRule rule = [&](const DecodedInst &inst,
                           Addr pc) -> std::vector<RewriteInst> {
        std::vector<RewriteInst> out;
        const bool isMem = inst.isLoad() || inst.isStore();
        const bool isIndirect = isIndirectClass(inst.cls);
        if (isMem) {
            out = checkSeq(inst.rb, opts.segData);
        } else if (isIndirect && opts.checkJumps) {
            out = checkSeq(inst.rb, opts.segText);
        }
        RewriteInst orig;
        orig.inst = inst;
        if (inst.cls == OpClass::CondBranch ||
            inst.cls == OpClass::UncondBranch ||
            inst.cls == OpClass::Call) {
            orig.absTarget = inst.branchTarget(pc);
        }
        out.push_back(orig);
        return out;
    };

    // Prologue: load the segment ids into the scavenged registers.
    std::vector<RewriteInst> prologue;
    {
        RewriteInst a, b;
        a.inst = decode(makeMemory(Opcode::LDA, opts.segData, kZeroReg,
                                   static_cast<int64_t>(dataSeg)));
        b.inst = decode(makeMemory(Opcode::LDA, opts.segText, kZeroReg,
                                   static_cast<int64_t>(textSeg)));
        prologue = {a, b};
    }
    return rewriteProgram(prog, rule, prologue);
}

} // namespace dise
