#include "src/acf/assertions.hpp"

#include "src/dise/parser.hpp"

namespace dise {

ProductionSet
makeWatchpointProductions(const Program &prog,
                          const WatchpointOptions &opts)
{
    const Addr error =
        opts.errorHandler ? opts.errorHandler : prog.symbol("error");
    const std::map<std::string, Addr> symbols = {{"error", error}};
    const std::string dsl =
        "P1: class == store -> RW\n"
        "RW: lda $dr4, T.IMM(T.RS)\n"
        "    cmpeq $dr4, $dr6, $dr4\n"
        "    dbeq $dr4, +2\n"
        "    cmpule T.RT, $dr7, $dr4\n"
        "    beq $dr4, @error\n"
        "    T.INSN\n";
    return parseProductions(dsl, symbols);
}

void
initWatchpointRegisters(ExecCore &core, Addr watchedAddr,
                        uint64_t maxValue)
{
    core.setDiseReg(6, watchedAddr);
    core.setDiseReg(7, maxValue);
}

} // namespace dise
