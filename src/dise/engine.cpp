#include "src/dise/engine.hpp"

#include <algorithm>

#include "src/common/bits.hpp"
#include "src/common/logging.hpp"

namespace dise {

DiseEngine::DiseEngine(const DiseConfig &config)
    : config_(config), stats_("dise")
{
    if (config_.rtEntries > 0) {
        DISE_ASSERT(config_.rtAssoc > 0, "rt assoc must be nonzero");
        DISE_ASSERT(config_.rtEntries % config_.rtAssoc == 0,
                    "rt entries must divide by assoc");
        rtSets_ = config_.rtEntries / config_.rtAssoc;
        DISE_ASSERT(isPow2(rtSets_), "rt sets must be pow2");
        rt_.assign(config_.rtEntries, RtEntry());
    }
}

void
DiseEngine::setProductions(std::shared_ptr<const ProductionSet> set)
{
    set_ = std::move(set);
    flushTables();
    patternsByOpcode_.assign(static_cast<size_t>(Opcode::NUM_OPCODES), {});
    seqPcDependent_.clear();
    seqById_.clear();
    rtShift_ = 3;
    if (!set_)
        return;
    const auto &prods = set_->productions();
    for (uint32_t i = 0; i < prods.size(); ++i) {
        for (const Opcode op : prods[i].pattern.coveredOpcodes())
            patternsByOpcode_[static_cast<size_t>(op)].push_back(i);
    }
    // Size the RT's per-sequence slot stride to the longest replacement
    // sequence so no sequence's slots alias a neighboring id's range,
    // and classify each sequence's PC dependence for the expansion
    // cache. The floor of 8 slots matches the paper's machine.
    uint32_t maxLen = 1;
    for (const auto &kv : set_->sequences()) {
        maxLen = std::max(maxLen, kv.second.length());
        if (kv.first >= seqPcDependent_.size()) {
            seqPcDependent_.resize(kv.first + 1, 0);
            seqById_.resize(kv.first + 1, nullptr);
        }
        seqPcDependent_[kv.first] = seqDependsOnPC(kv.second) ? 1 : 0;
        seqById_[kv.first] = &kv.second;
    }
    while ((1u << rtShift_) < maxLen)
        ++rtShift_;
}

void
DiseEngine::flushTables()
{
    // Covers setProductions too (it always flushes): any install or
    // flush invalidates translated traces built against the old tables.
    ++generation_;
    opcodeResident_.assign(static_cast<size_t>(Opcode::NUM_OPCODES), false);
    ptStamp_.assign(set_ ? set_->productions().size() : 0, 0);
    ptResidentCount_ = 0;
    for (auto &entry : rt_)
        entry = RtEntry();
    expCache_.clear();
    ptCorrupt_.clear();
    corruptResident_ = false;
}

bool
DiseEngine::corruptPatternEntry(uint64_t pick)
{
    if (ptResidentCount_ == 0)
        return false;
    // Pick among resident patterns in ascending index order (ptStamp_
    // is index-ordered already) so the choice is deterministic.
    std::vector<uint32_t> resident;
    resident.reserve(ptResidentCount_);
    for (uint32_t i = 0; i < ptStamp_.size(); ++i)
        if (ptStamp_[i] != 0)
            resident.push_back(i);
    ptCorrupt_.insert(resident[pick % resident.size()]);
    stats_.add("pt_faults_injected");
    ++generation_; // stale traces must observe the corrupted entry
    corruptResident_ = true;
    return true;
}

bool
DiseEngine::corruptReplacementEntry(uint64_t pick, unsigned bit)
{
    std::vector<size_t> valid;
    for (size_t i = 0; i < rt_.size(); ++i)
        if (rt_[i].valid)
            valid.push_back(i);
    if (valid.empty())
        return false;
    RtEntry &entry = rt_[valid[pick % valid.size()]];
    entry.corrupt = true;
    entry.corruptBit = bit;
    stats_.add("rt_faults_injected");
    ++generation_; // stale traces must observe the corrupted entry
    corruptResident_ = true;
    return true;
}

bool
DiseEngine::hasCorruptEntries() const
{
    if (!ptCorrupt_.empty())
        return true;
    for (const auto &entry : rt_)
        if (entry.valid && entry.corrupt)
            return true;
    return false;
}

bool
DiseEngine::checkPatternTable(Opcode op)
{
    const auto &covering = patternsByOpcode_[static_cast<size_t>(op)];
    if (covering.empty())
        return false; // active counter is zero; a non-match, not a miss
    // Injected faults: a corrupted resident pattern covering this opcode
    // either trips parity (detect, invalidate, re-fault below) or — with
    // parity off — garbles the match so the trigger silently passes
    // through unexpanded.
    if (!ptCorrupt_.empty()) {
        for (const uint32_t idx : covering) {
            if (!ptCorrupt_.count(idx) || ptStamp_[idx] == 0)
                continue;
            if (config_.parityChecks) {
                stats_.add("pt_parity_detected");
                ptCorrupt_.erase(idx);
                ptStamp_[idx] = 0;
                --ptResidentCount_;
                for (const Opcode cov :
                     set_->productions()[idx].pattern.coveredOpcodes()) {
                    opcodeResident_[static_cast<size_t>(cov)] = false;
                }
            } else {
                suppressExpand_ = true;
                return false; // counters still agree: no fill happens
            }
        }
    }
    if (opcodeResident_[static_cast<size_t>(op)]) {
        for (const uint32_t idx : covering)
            ptStamp_[idx] = ++useCounter_; // resident: refresh LRU only
        return false;
    }

    // Active and resident pattern counters differ: PT miss. Fill every
    // pattern covering this opcode, evicting LRU patterns if needed.
    stats_.add("pt_misses");
    for (const uint32_t idx : covering) {
        if (ptStamp_[idx] == 0)
            ++ptResidentCount_;
        ptStamp_[idx] = ++useCounter_;
    }
    while (ptResidentCount_ > config_.ptEntries) {
        uint32_t evicted = 0;
        uint64_t minStamp = ~uint64_t(0);
        for (uint32_t i = 0; i < ptStamp_.size(); ++i) {
            if (ptStamp_[i] != 0 && ptStamp_[i] < minStamp) {
                minStamp = ptStamp_[i];
                evicted = i;
            }
        }
        // Evicting a pattern clears residency for every opcode it covers.
        ptStamp_[evicted] = 0;
        --ptResidentCount_;
        for (const Opcode cov :
             set_->productions()[evicted].pattern.coveredOpcodes()) {
            opcodeResident_[static_cast<size_t>(cov)] = false;
        }
    }
    opcodeResident_[static_cast<size_t>(op)] = true;
    // Re-derive residency: an opcode is resident iff all covering
    // patterns are in the PT (evictions above may have split groups).
    for (size_t o = 0; o < patternsByOpcode_.size(); ++o) {
        if (!opcodeResident_[o])
            continue;
        for (const uint32_t idx : patternsByOpcode_[o]) {
            if (ptStamp_[idx] == 0) {
                opcodeResident_[o] = false;
                break;
            }
        }
    }
    return true;
}

unsigned
DiseEngine::rtIndex(SeqId id, uint32_t disepc) const
{
    // Consecutive sequence slots fall in consecutive sets; distinct
    // sequences are spread by id. Mirrors low-order-bit indexing of a
    // hardware RT where the line address is (id << log2(maxlen)) | slot;
    // rtShift_ is derived from the active set's longest sequence.
    return static_cast<unsigned>(((uint64_t(id) << rtShift_) + disepc) &
                                 (rtSets_ - 1));
}

bool
DiseEngine::checkReplacementTable(SeqId id, const ReplacementSeq &seq)
{
    if (config_.rtEntries == 0)
        return false; // perfect RT

    bool miss = false;
    for (uint32_t slot = 0; slot < seq.length(); ++slot) {
        const unsigned set = rtIndex(id, slot);
        RtEntry *way = &rt_[size_t(set) * config_.rtAssoc];
        RtEntry *hit = nullptr;
        for (uint32_t w = 0; w < config_.rtAssoc; ++w) {
            if (way[w].valid && way[w].seqId == id &&
                way[w].disepc == slot) {
                hit = &way[w];
                break;
            }
        }
        if (hit && hit->corrupt) {
            if (config_.parityChecks) {
                // Parity trips on use: invalidate and fall through to
                // the fill path so the controller re-faults the slot
                // (the caller charges the miss penalty).
                stats_.add("rt_parity_detected");
                hit->valid = false;
                hit->corrupt = false;
                hit = nullptr;
            } else {
                // No parity: the garbled entry hits and its instruction
                // is delivered bit-flipped (applied in expand()).
                corruptSlotsHit_.emplace_back(slot, hit->corruptBit);
            }
        }
        if (hit) {
            hit->lastUse = ++useCounter_;
        } else {
            miss = true;
            // Fill this slot, evicting LRU within the set.
            RtEntry *victim = &way[0];
            for (uint32_t w = 0; w < config_.rtAssoc; ++w) {
                if (!way[w].valid) {
                    victim = &way[w];
                    break;
                }
                if (way[w].lastUse < victim->lastUse)
                    victim = &way[w];
            }
            victim->valid = true;
            victim->seqId = id;
            victim->disepc = slot;
            victim->lastUse = ++useCounter_;
            victim->corrupt = false;
        }
    }
    return miss;
}

void
DiseEngine::syncStats() const
{
    const auto put = [&](const char *key, uint64_t value) {
        if (value)
            stats_.set(key, value);
    };
    put("inspected", inspected_);
    put("expansions", expansions_);
    put("replacement_insts", replacementInsts_);
    put("expand_cache_fills", cacheFills_);
    put("expand_cache_hits", cacheHits_);
    put("pt_silent_drops", ptSilentDrops_);
    put("rt_garbage_expansions", rtGarbageExpansions_);
}

/**
 * Model a single-bit upset in a stored replacement instruction: flip the
 * bit in the encoding and re-decode. Instructions synthesized by the IL
 * have no encoding (raw == 0); for those the flip is applied to the
 * immediate field as a documented approximation.
 */
static void
flipInstBit(DecodedInst &inst, unsigned bit)
{
    if (inst.raw != 0) {
        inst = decode(inst.raw ^ (Word(1) << (bit % 32)));
    } else {
        inst.imm ^= int64_t(1) << (bit % 16);
    }
}

ExpandResult
DiseEngine::expand(const DecodedInst &fetched, Addr pc)
{
    ExpandResult result;
    ++inspected_;
    if (!set_ || set_->empty())
        return result;

    suppressExpand_ = false;
    corruptSlotsHit_.clear();
    result.ptMiss = checkPatternTable(fetched.op);
    if (result.ptMiss)
        result.missPenalty += config_.missPenalty;

    const auto seqId = set_->match(fetched);
    if (!seqId)
        return result;
    if (suppressExpand_) {
        // Parity-off PT corruption: the garbled pattern matches nothing,
        // so a trigger that should have expanded silently passes through.
        ++ptSilentDrops_;
        return result;
    }

    const ReplacementSeq *seq =
        *seqId < seqById_.size() ? seqById_[*seqId] : nullptr;
    if (!seq) {
        // A tagged trigger naming an unbound dictionary entry is a user
        // error (corrupt codeword); surface it loudly.
        fatal(strFormat("DISE: trigger at 0x%llx selects unbound "
                        "replacement sequence %u",
                        (unsigned long long)pc, *seqId));
    }

    result.rtMiss = checkReplacementTable(*seqId, *seq);
    if (result.rtMiss) {
        stats_.add("rt_misses");
        result.missPenalty += seq->composeOnFill
                                  ? config_.composedMissPenalty
                                  : config_.missPenalty;
        if (seq->composeOnFill)
            stats_.add("rt_misses_composed");
    }

    result.expanded = true;
    result.seqId = *seqId;
    result.seq = seq;

    // Instantiation fast path: repeated dynamic instances of the same
    // static trigger produce identical replacement sequences (keyed by
    // PC as well when the sequence reads it), so memoize and hand out a
    // span into the cache. Triggers without an encoding (raw == 0, only
    // synthesized instructions) are not keyable and use the scratch
    // buffer, as does everything once the cache is full or disabled.
    if (config_.expansionCache && fetched.raw != 0) {
        const bool pcDep = seqPcDependent_[*seqId] != 0;
        const SeqKey key{*seqId, fetched.raw, pcDep ? pc : 0};
        auto it = expCache_.find(key);
        if (it == expCache_.end() &&
            expCache_.size() < config_.expansionCacheMaxEntries) {
            it = expCache_.emplace(key, std::vector<DecodedInst>()).first;
            instantiateSeqInto(*seq, fetched, pc, it->second);
            ++cacheFills_;
        } else if (it != expCache_.end()) {
            ++cacheHits_;
        }
        if (it != expCache_.end()) {
            result.insts = it->second.data();
            result.numInsts = static_cast<uint32_t>(it->second.size());
            result.memoized = true;
        }
    }
    if (!result.insts) {
        scratch_.clear();
        instantiateSeqInto(*seq, fetched, pc, scratch_);
        result.insts = scratch_.data();
        result.numInsts = static_cast<uint32_t>(scratch_.size());
    }

    if (!corruptSlotsHit_.empty()) {
        // Parity-off RT corruption: deliver the garbled instruction(s)
        // from a scratch copy so the memoized cache entry stays clean.
        if (result.insts != scratch_.data())
            scratch_.assign(result.begin(), result.end());
        for (const auto &[slot, bit] : corruptSlotsHit_) {
            if (slot < scratch_.size())
                flipInstBit(scratch_[slot], bit);
        }
        result.insts = scratch_.data();
        result.numInsts = static_cast<uint32_t>(scratch_.size());
        result.memoized = false;
        ++rtGarbageExpansions_;
    }

    ++expansions_;
    replacementInsts_ += result.numInsts;
    return result;
}

bool
DiseEngine::expandFast(const ExpandMemo &memo, ExpandResult &out)
{
    // A memo at the live generation proves the active set, the pattern
    // list, and the memoized instantiation span are all unchanged; the
    // dynamic preconditions (PT residency, clean RT hits) are verified
    // below before any state is touched, so a bail-out leaves the
    // tables exactly as expand() expects to find them.
    if (memo.gen != generation_ || memo.kind == ExpandMemo::Unknown ||
        corruptResident_)
        return false;
    if (!opcodeResident_[static_cast<size_t>(memo.op)])
        return false;
    const auto &covering = patternsByOpcode_[static_cast<size_t>(memo.op)];

    if (memo.kind == ExpandMemo::NoMatch) {
        // Covered opcode, resident patterns, no match: expand() would
        // refresh the PT stamps and return a pass-through result.
        ++inspected_;
        for (const uint32_t idx : covering)
            ptStamp_[idx] = ++useCounter_;
        out = ExpandResult();
        return true;
    }

    // Expanded: every RT slot must still be a clean resident hit. Probe
    // first with no state changes, then commit the PT stamp refreshes
    // and RT lastUse updates in expand()'s exact order so the shared
    // LRU clock evolves bit-identically.
    constexpr uint32_t kMaxFastSeqLen = 64;
    const uint32_t len = memo.seq->length();
    RtEntry *hits[kMaxFastSeqLen];
    if (config_.rtEntries != 0) {
        if (len > kMaxFastSeqLen)
            return false;
        for (uint32_t slot = 0; slot < len; ++slot) {
            const unsigned set = rtIndex(memo.seqId, slot);
            RtEntry *way = &rt_[size_t(set) * config_.rtAssoc];
            RtEntry *hit = nullptr;
            for (uint32_t w = 0; w < config_.rtAssoc; ++w) {
                if (way[w].valid && way[w].seqId == memo.seqId &&
                    way[w].disepc == slot) {
                    hit = &way[w];
                    break;
                }
            }
            if (!hit || hit->corrupt)
                return false; // miss (or fault): the full path fills it
            hits[slot] = hit;
        }
    }

    ++inspected_;
    for (const uint32_t idx : covering)
        ptStamp_[idx] = ++useCounter_;
    if (config_.rtEntries != 0) {
        for (uint32_t slot = 0; slot < len; ++slot)
            hits[slot]->lastUse = ++useCounter_;
    }
    ++cacheHits_; // the memoized span is still in expCache_
    ++expansions_;
    replacementInsts_ += memo.numInsts;

    out = ExpandResult();
    out.expanded = true;
    out.seqId = memo.seqId;
    out.seq = memo.seq;
    out.insts = memo.insts;
    out.numInsts = memo.numInsts;
    out.memoized = true;
    return true;
}

void
DiseEngine::fillMemo(ExpandMemo &memo, const DecodedInst &fetched,
                     const ExpandResult &result) const
{
    memo = ExpandMemo();
    // Never record outcomes observed through injected corruption: a
    // parity-suppressed match or garbled delivery is not replayable.
    if (corruptResident_ || !set_ || set_->empty())
        return;
    if (!result.expanded) {
        memo.gen = generation_;
        memo.kind = ExpandMemo::NoMatch;
        memo.op = fetched.op;
        return;
    }
    if (!result.memoized)
        return; // scratch-backed span: contents may differ next call
    memo.gen = generation_;
    memo.kind = ExpandMemo::Expanded;
    memo.op = fetched.op;
    memo.seqId = result.seqId;
    memo.seq = result.seq;
    memo.insts = result.insts;
    memo.numInsts = result.numInsts;
}

const ReplacementSeq *
DiseEngine::sequence(SeqId id) const
{
    return set_ ? set_->sequence(id) : nullptr;
}

} // namespace dise
