#include "src/dise/engine.hpp"

#include <algorithm>

#include "src/common/bits.hpp"
#include "src/common/logging.hpp"

namespace dise {

DiseEngine::DiseEngine(const DiseConfig &config)
    : config_(config), stats_("dise")
{
    if (config_.rtEntries > 0) {
        DISE_ASSERT(config_.rtAssoc > 0, "rt assoc must be nonzero");
        DISE_ASSERT(config_.rtEntries % config_.rtAssoc == 0,
                    "rt entries must divide by assoc");
        rtSets_ = config_.rtEntries / config_.rtAssoc;
        DISE_ASSERT(isPow2(rtSets_), "rt sets must be pow2");
        rt_.assign(config_.rtEntries, RtEntry());
    }
}

void
DiseEngine::setProductions(std::shared_ptr<const ProductionSet> set)
{
    set_ = std::move(set);
    flushTables();
    patternsByOpcode_.assign(static_cast<size_t>(Opcode::NUM_OPCODES), {});
    if (!set_)
        return;
    const auto &prods = set_->productions();
    for (uint32_t i = 0; i < prods.size(); ++i) {
        for (const Opcode op : prods[i].pattern.coveredOpcodes())
            patternsByOpcode_[static_cast<size_t>(op)].push_back(i);
    }
}

void
DiseEngine::flushTables()
{
    opcodeResident_.assign(static_cast<size_t>(Opcode::NUM_OPCODES), false);
    ptResident_.clear();
    for (auto &entry : rt_)
        entry = RtEntry();
}

bool
DiseEngine::checkPatternTable(Opcode op)
{
    const auto &covering = patternsByOpcode_[static_cast<size_t>(op)];
    if (covering.empty())
        return false; // active counter is zero; a non-match, not a miss
    if (opcodeResident_[static_cast<size_t>(op)]) {
        for (const uint32_t idx : covering)
            ptResident_[idx] = ++useCounter_;
        return false;
    }

    // Active and resident pattern counters differ: PT miss. Fill every
    // pattern covering this opcode, evicting LRU patterns if needed.
    stats_.add("pt_misses");
    for (const uint32_t idx : covering)
        ptResident_[idx] = ++useCounter_;
    while (ptResident_.size() > config_.ptEntries) {
        auto victim = ptResident_.begin();
        for (auto it = ptResident_.begin(); it != ptResident_.end(); ++it)
            if (it->second < victim->second)
                victim = it;
        // Evicting a pattern clears residency for every opcode it covers.
        const uint32_t evicted = victim->first;
        ptResident_.erase(victim);
        for (const Opcode cov :
             set_->productions()[evicted].pattern.coveredOpcodes()) {
            opcodeResident_[static_cast<size_t>(cov)] = false;
        }
    }
    opcodeResident_[static_cast<size_t>(op)] = true;
    // Re-derive residency: an opcode is resident iff all covering
    // patterns are in the PT (evictions above may have split groups).
    for (size_t o = 0; o < patternsByOpcode_.size(); ++o) {
        if (!opcodeResident_[o])
            continue;
        for (const uint32_t idx : patternsByOpcode_[o]) {
            if (!ptResident_.count(idx)) {
                opcodeResident_[o] = false;
                break;
            }
        }
    }
    return true;
}

unsigned
DiseEngine::rtIndex(SeqId id, uint32_t disepc) const
{
    // Consecutive sequence slots fall in consecutive sets; distinct
    // sequences are spread by id. Mirrors low-order-bit indexing of a
    // hardware RT where the line address is (id << log2(maxlen)) | slot.
    return static_cast<unsigned>(((uint64_t(id) << 3) + disepc) &
                                 (rtSets_ - 1));
}

bool
DiseEngine::checkReplacementTable(SeqId id, const ReplacementSeq &seq)
{
    if (config_.rtEntries == 0)
        return false; // perfect RT

    bool miss = false;
    for (uint32_t slot = 0; slot < seq.length(); ++slot) {
        const unsigned set = rtIndex(id, slot);
        RtEntry *way = &rt_[size_t(set) * config_.rtAssoc];
        RtEntry *hit = nullptr;
        for (uint32_t w = 0; w < config_.rtAssoc; ++w) {
            if (way[w].valid && way[w].seqId == id &&
                way[w].disepc == slot) {
                hit = &way[w];
                break;
            }
        }
        if (hit) {
            hit->lastUse = ++useCounter_;
        } else {
            miss = true;
            // Fill this slot, evicting LRU within the set.
            RtEntry *victim = &way[0];
            for (uint32_t w = 0; w < config_.rtAssoc; ++w) {
                if (!way[w].valid) {
                    victim = &way[w];
                    break;
                }
                if (way[w].lastUse < victim->lastUse)
                    victim = &way[w];
            }
            victim->valid = true;
            victim->seqId = id;
            victim->disepc = slot;
            victim->lastUse = ++useCounter_;
        }
    }
    return miss;
}

ExpandResult
DiseEngine::expand(const DecodedInst &fetched, Addr pc)
{
    ExpandResult result;
    stats_.add("inspected");
    if (!set_ || set_->empty())
        return result;

    result.ptMiss = checkPatternTable(fetched.op);
    if (result.ptMiss)
        result.missPenalty += config_.missPenalty;

    const auto seqId = set_->match(fetched);
    if (!seqId)
        return result;

    const ReplacementSeq *seq = set_->sequence(*seqId);
    if (!seq) {
        // A tagged trigger naming an unbound dictionary entry is a user
        // error (corrupt codeword); surface it loudly.
        fatal(strFormat("DISE: trigger at 0x%llx selects unbound "
                        "replacement sequence %u",
                        (unsigned long long)pc, *seqId));
    }

    result.rtMiss = checkReplacementTable(*seqId, *seq);
    if (result.rtMiss) {
        stats_.add("rt_misses");
        result.missPenalty += seq->composeOnFill
                                  ? config_.composedMissPenalty
                                  : config_.missPenalty;
        if (seq->composeOnFill)
            stats_.add("rt_misses_composed");
    }

    result.expanded = true;
    result.seqId = *seqId;
    result.seq = seq;
    result.insts = instantiateSeq(*seq, fetched, pc);
    stats_.add("expansions");
    stats_.add("replacement_insts", result.insts.size());
    return result;
}

const ReplacementSeq *
DiseEngine::sequence(SeqId id) const
{
    return set_ ? set_->sequence(id) : nullptr;
}

} // namespace dise
