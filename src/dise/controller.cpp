#include "src/dise/controller.hpp"

namespace dise {

DiseController::DiseController(const DiseConfig &config) : engine_(config)
{
}

void
DiseController::install(std::shared_ptr<const ProductionSet> set)
{
    active_ = std::move(set);
    engine_.setProductions(active_);
}

void
DiseController::deactivate()
{
    active_.reset();
    engine_.setProductions(nullptr);
}

DiseOsKernel::DiseOsKernel(DiseController &controller)
    : controller_(controller)
{
}

void
DiseOsKernel::installKernelAcf(const std::string &name, ProductionSet set)
{
    kernelAcfs_[name] = std::move(set);
    rebuildActive();
}

void
DiseOsKernel::removeKernelAcf(const std::string &name)
{
    kernelAcfs_.erase(name);
    rebuildActive();
}

void
DiseOsKernel::submitUserAcf(Pid pid, ProductionSet set)
{
    userAcfs_[pid] = std::move(set);
    if (pid == current_)
        rebuildActive();
}

void
DiseOsKernel::switchTo(Pid pid, DiseRegFile &hwRegs)
{
    if (pid == current_)
        return;
    savedRegs_[current_] = hwRegs;
    const auto it = savedRegs_.find(pid);
    hwRegs = (it != savedRegs_.end()) ? it->second : DiseRegFile{};
    current_ = pid;
    rebuildActive();
}

void
DiseOsKernel::rebuildActive()
{
    auto combined = std::make_shared<ProductionSet>();
    for (const auto &kv : kernelAcfs_)
        combined->merge(kv.second);
    const auto it = userAcfs_.find(current_);
    if (it != userAcfs_.end())
        combined->merge(it->second);
    controller_.install(std::move(combined));
}

} // namespace dise
