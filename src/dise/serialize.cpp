#include "src/dise/serialize.hpp"

#include <sstream>

#include "src/common/logging.hpp"

namespace dise {

namespace {

/** DSL spelling checks: reject constructs the parser cannot read back. */
void
checkSerializable(const ReplacementSeq &seq)
{
    for (const auto &rinst : seq.insts) {
        if (rinst.isTriggerInsn)
            continue;
        if (rinst.opDir == OpDirective::Trigger ||
            rinst.raDir == RegDirective::TriggerRaw ||
            rinst.rbDir == RegDirective::TriggerRaw ||
            rinst.rcDir == RegDirective::TriggerRaw) {
            fatal("serializeProductions: T.OP/T.RAW directives have no "
                  "DSL spelling (sequence '" +
                  seq.name + "')");
        }
        const OpInfo &info = opInfo(rinst.templ.op);
        if (info.format == InstFormat::Branch &&
            info.cls != OpClass::DiseBranch &&
            rinst.immDir == ImmDirective::Literal) {
            fatal("serializeProductions: application branch with a raw "
                  "displacement cannot round-trip (sequence '" +
                  seq.name + "')");
        }
    }
}

} // namespace

std::string
serializeSequence(const ReplacementSeq &seq)
{
    std::ostringstream os;
    bool first = true;
    for (const auto &rinst : seq.insts) {
        os << (first ? "" : "    ") << rinst.toString() << "\n";
        first = false;
    }
    return os.str();
}

std::string
serializeProductions(const ProductionSet &set)
{
    std::ostringstream os;

    // Sequence headers: "S<id>@<id>:" names are unique and, for tagged
    // blocks, pin the id so explicit-tag arithmetic survives the round
    // trip.
    for (const auto &kv : set.sequences()) {
        checkSerializable(kv.second);
        os << "S" << kv.first << "@" << kv.first << ": "
           << serializeSequence(kv.second);
        if (kv.second.composeOnFill)
            os << "; composeOnFill (informational)\n";
    }

    int n = 0;
    for (const auto &prod : set.productions()) {
        os << "P" << ++n << ": " << prod.pattern.toString() << " -> ";
        if (prod.explicitTag)
            os << "tag+" << prod.seqId;
        else
            os << "S" << prod.seqId << "@" << prod.seqId;
        os << "\n";
    }
    return os.str();
}

} // namespace dise
