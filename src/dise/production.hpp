/**
 * @file
 * DISE productions: pattern specifications, parameterized replacement
 * sequences, and the instantiation directives that combine replacement
 * literals with trigger fields (paper Section 2.1).
 *
 * A production is (pattern -> replacement sequence). Patterns match any
 * combination of opcode, opcode class, logical register names (by trigger
 * role), and immediate value or sign. When several patterns match a
 * fetched instruction, the most specific one — the one constraining the
 * most instruction bits — wins, enabling overlapping and negative
 * specifications ("all loads that don't use the stack pointer").
 *
 * Replacement sequences are parameterized: every register field carries a
 * directive (literal — which covers dedicated registers, since those are
 * simply register numbers >= 32 —, T.RS, T.RT, T.RD, or a codeword
 * parameter T.P1..T.P3), every immediate field carries a directive
 * (literal, T.IMM, T.PC, codeword parameters, or an absolute branch
 * target that the IL converts to a PC-relative displacement), and a whole
 * instruction may be the trigger itself (T.INSN).
 */

#ifndef DISE_DISE_PRODUCTION_HPP
#define DISE_DISE_PRODUCTION_HPP

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/isa/inst.hpp"

namespace dise {

/** Constraint on an immediate's sign ("attribute thereof"). */
enum class SignConstraint : uint8_t { Negative, NonNegative };

/**
 * A pattern specification. All present constraints must hold for the
 * pattern to match a fetched instruction.
 */
struct PatternSpec
{
    std::optional<Opcode> opcode;
    std::optional<OpClass> opclass;
    /** Constraints on the trigger's role registers. */
    std::optional<RegIndex> rs, rt, rd;
    std::optional<int64_t> immValue;
    std::optional<SignConstraint> immSign;

    /** True when the pattern matches @p inst. */
    bool matches(const DecodedInst &inst) const;

    /**
     * Number of instruction bits this pattern constrains; the PT uses it
     * for most-specific-match arbitration. Exact opcode counts 6, opcode
     * class 2 (it constrains fewer bits than a full opcode), each register
     * 5, immediate value 16, immediate sign 1.
     */
    unsigned specificity() const;

    /** Opcodes this pattern can possibly match (for PT fill grouping). */
    std::vector<Opcode> coveredOpcodes() const;

    /** Render as DSL text ("class == load && rs == sp"). */
    std::string toString() const;
};

/** Register-field instantiation directives. */
enum class RegDirective : uint8_t {
    Literal,   ///< use the template's register number (incl. $dr*)
    TriggerRS, ///< trigger's primary source register
    TriggerRT, ///< trigger's secondary source register
    TriggerRD, ///< trigger's destination register
    /** The trigger's corresponding raw field (ra->ra, rb->rb, rc->rc);
     *  used with the opcode directive to re-emit a modified trigger,
     *  e.g. sandboxing's "original access through a masked base". */
    TriggerRaw,
    Param1,    ///< codeword parameter fields (aware ACFs)
    Param2,
    Param3,
};

/** Opcode-field directive ("opcode fields have analogous directives"). */
enum class OpDirective : uint8_t {
    Literal, ///< the template's opcode
    Trigger, ///< the trigger's opcode (and operate-literal form)
};

/** Immediate-field instantiation directives. */
enum class ImmDirective : uint8_t {
    Literal,    ///< template immediate
    TriggerImm, ///< trigger's immediate field
    TriggerPC,  ///< trigger's PC (profiling ACFs)
    Param1,     ///< codeword parameter, zero-extended 5 bits
    Param2,
    Param3,
    ParamImm,   ///< codeword 15-bit signed parameter immediate
    /**
     * Template imm is an absolute text address; the IL rewrites it into
     * the PC-relative word displacement for the trigger's PC. Used for
     * application branches inside replacement sequences (e.g. the jump to
     * the fault-isolation error handler in Figure 1).
     */
    AbsTarget,
};

/** One instruction of a replacement sequence specification. */
struct ReplacementInst
{
    /** When true the whole instruction is the trigger (T.INSN). */
    bool isTriggerInsn = false;
    /** Template instruction; register numbers >= 32 are dedicated. */
    DecodedInst templ;
    OpDirective opDir = OpDirective::Literal;
    RegDirective raDir = RegDirective::Literal;
    RegDirective rbDir = RegDirective::Literal;
    RegDirective rcDir = RegDirective::Literal;
    ImmDirective immDir = ImmDirective::Literal;

    /** Render as DSL text. */
    std::string toString() const;
};

/** A named replacement sequence specification. */
struct ReplacementSeq
{
    std::string name;
    std::vector<ReplacementInst> insts;
    /**
     * True when an RT miss on this sequence requires the miss handler to
     * compose productions before filling (transparent-within-aware
     * composition, paper Section 3.3); such misses cost the controller's
     * composed-miss latency (150 cycles) instead of the simple one (30).
     */
    bool composeOnFill = false;

    uint32_t length() const { return static_cast<uint32_t>(insts.size()); }
};

/** Virtual replacement-sequence identifier. */
using SeqId = uint32_t;

/** A complete production: pattern plus sequence binding. */
struct Production
{
    PatternSpec pattern;
    /**
     * When false, @c seqId names the sequence directly (transparent
     * ACFs). When true — explicit tagging, aware ACFs — the trigger's
     * 11-bit tag field is added to @c seqId to select the sequence.
     */
    bool explicitTag = false;
    SeqId seqId = 0;
};

/**
 * A set of productions: what an ACF (or a composition of ACFs) activates
 * through the DISE controller. This is the *virtual* production space the
 * PT and RT cache.
 */
class ProductionSet
{
  public:
    /** Register a sequence under a fresh id. */
    SeqId addSequence(ReplacementSeq seq);

    /** Register a sequence under a caller-chosen id (aware dictionaries). */
    void addSequenceWithId(SeqId id, ReplacementSeq seq);

    /** Add a transparent production. */
    void addPattern(const PatternSpec &pattern, SeqId seqId);

    /** Add an aware production: sequence id = @p seqBase + trigger tag. */
    void addTagPattern(const PatternSpec &pattern, SeqId seqBase);

    /**
     * Match an instruction against all patterns.
     * @return The selected sequence id, or empty when nothing matches.
     *         Most-specific pattern wins; ties break toward the earliest
     *         added pattern.
     */
    std::optional<SeqId> match(const DecodedInst &inst) const;

    /** Sequence lookup; nullptr when the id is unbound. */
    const ReplacementSeq *sequence(SeqId id) const;

    const std::vector<Production> &productions() const
    {
        return productions_;
    }
    const std::map<SeqId, ReplacementSeq> &sequences() const
    {
        return sequences_;
    }

    /** Total instruction slots across all sequences (RT footprint). */
    uint64_t totalReplacementInsts() const;

    /** Merge another set's productions and sequences (ids are remapped). */
    void merge(const ProductionSet &other);

    bool empty() const { return productions_.empty(); }

  private:
    std::vector<Production> productions_;
    std::map<SeqId, ReplacementSeq> sequences_;
    SeqId nextId_ = 1;
};

/**
 * The instantiation logic (IL): combinational circuit that combines a
 * replacement template with trigger fields.
 *
 * @param rinst Replacement instruction specification.
 * @param trigger The matched (fetched) instruction.
 * @param triggerPC The trigger's PC (for T.PC and AbsTarget directives).
 * @return The instruction to splice into the execution stream.
 */
DecodedInst instantiate(const ReplacementInst &rinst,
                        const DecodedInst &trigger, Addr triggerPC);

/** Instantiate a full sequence. */
std::vector<DecodedInst> instantiateSeq(const ReplacementSeq &seq,
                                        const DecodedInst &trigger,
                                        Addr triggerPC);

/**
 * Instantiate a full sequence into a caller-owned buffer (appended).
 * The engine's expansion fast path reuses one buffer across fetches so
 * the steady state performs no allocation.
 */
void instantiateSeqInto(const ReplacementSeq &seq,
                        const DecodedInst &trigger, Addr triggerPC,
                        std::vector<DecodedInst> &out);

/**
 * True when instantiating @p seq reads the trigger's PC (a T.PC or
 * absolute-target directive), i.e. when two dynamic instances of the
 * same trigger word at different PCs instantiate differently. The
 * engine's expansion cache keys PC-dependent sequences by PC and
 * PC-independent ones by the trigger word alone.
 */
bool seqDependsOnPC(const ReplacementSeq &seq);

/** @name Replacement-spec construction helpers (used by ACF builders). */
/// @{
/** A fully literal replacement instruction. */
ReplacementInst rLiteral(const DecodedInst &inst);
/** The T.INSN directive. */
ReplacementInst rTriggerInsn();
/// @}

} // namespace dise

#endif // DISE_DISE_PRODUCTION_HPP
