/**
 * @file
 * Production-set serialization: render a ProductionSet back into the
 * external DSL the parser accepts. This is the "external representation"
 * half of the controller interface (Section 2.3) — the portable form in
 * which ACFs are shipped, inspected by the OS kernel, and stored in an
 * application's data space. parse(serialize(set)) reproduces the set.
 *
 * Limitations (checked, with fatal() on violation): sequences built
 * programmatically with the T.OP/T.RAW re-emission directives have no
 * DSL spelling yet, and absolute branch targets serialize as "@0x..."
 * (symbolic names are not recoverable).
 */

#ifndef DISE_DISE_SERIALIZE_HPP
#define DISE_DISE_SERIALIZE_HPP

#include <string>

#include "src/dise/production.hpp"

namespace dise {

/** Render a whole production set as DSL text. */
std::string serializeProductions(const ProductionSet &set);

/** Render one replacement sequence (name + instructions). */
std::string serializeSequence(const ReplacementSeq &seq);

} // namespace dise

#endif // DISE_DISE_SERIALIZE_HPP
