#include "src/dise/production.hpp"

#include <algorithm>
#include <sstream>

#include "src/common/bits.hpp"
#include "src/common/logging.hpp"
#include "src/isa/disasm.hpp"

namespace dise {

bool
PatternSpec::matches(const DecodedInst &inst) const
{
    if (inst.cls == OpClass::Invalid)
        return false;
    if (opcode && inst.op != *opcode)
        return false;
    if (opclass && inst.cls != *opclass)
        return false;
    if (rs && inst.triggerRS() != *rs)
        return false;
    if (rt && inst.triggerRT() != *rt)
        return false;
    if (rd && inst.triggerRD() != *rd)
        return false;
    if (immValue && inst.imm != *immValue)
        return false;
    if (immSign) {
        const bool negative = inst.imm < 0;
        if ((*immSign == SignConstraint::Negative) != negative)
            return false;
    }
    return true;
}

unsigned
PatternSpec::specificity() const
{
    unsigned score = 0;
    if (opcode)
        score += 6;
    if (opclass)
        score += 2;
    if (rs)
        score += 5;
    if (rt)
        score += 5;
    if (rd)
        score += 5;
    if (immValue)
        score += 16;
    if (immSign)
        score += 1;
    return score;
}

std::vector<Opcode>
PatternSpec::coveredOpcodes() const
{
    std::vector<Opcode> ops;
    if (opcode) {
        ops.push_back(*opcode);
        return ops;
    }
    for (unsigned i = 0; i < static_cast<unsigned>(Opcode::NUM_OPCODES);
         ++i) {
        const Opcode op = static_cast<Opcode>(i);
        const OpInfo &info = opInfo(op);
        if (!info.valid)
            continue;
        if (opclass && info.cls != *opclass)
            continue;
        ops.push_back(op);
    }
    return ops;
}

std::string
PatternSpec::toString() const
{
    std::vector<std::string> parts;
    if (opcode)
        parts.push_back(std::string("op == ") + opName(*opcode));
    if (opclass)
        parts.push_back(std::string("class == ") + opClassName(*opclass));
    if (rs)
        parts.push_back("rs == " + regName(*rs));
    if (rt)
        parts.push_back("rt == " + regName(*rt));
    if (rd)
        parts.push_back("rd == " + regName(*rd));
    if (immValue)
        parts.push_back("imm == " + std::to_string(*immValue));
    if (immSign) {
        parts.push_back(*immSign == SignConstraint::Negative
                            ? "imm < 0"
                            : "imm >= 0");
    }
    if (parts.empty())
        return "any";
    std::string out = parts[0];
    for (size_t i = 1; i < parts.size(); ++i)
        out += " && " + parts[i];
    return out;
}

namespace {

const char *
regDirName(RegDirective dir)
{
    switch (dir) {
      case RegDirective::Literal: return nullptr;
      case RegDirective::TriggerRS: return "T.RS";
      case RegDirective::TriggerRT: return "T.RT";
      case RegDirective::TriggerRD: return "T.RD";
      case RegDirective::TriggerRaw: return "T.RAW";
      case RegDirective::Param1: return "T.P1";
      case RegDirective::Param2: return "T.P2";
      case RegDirective::Param3: return "T.P3";
    }
    return nullptr;
}

} // namespace

std::string
ReplacementInst::toString() const
{
    if (isTriggerInsn)
        return "T.INSN";
    std::ostringstream os;
    if (opDir == OpDirective::Trigger)
        os << "T.OP";
    else
        os << opName(templ.op);
    auto reg = [&](RegDirective dir, RegIndex r) -> std::string {
        if (const char *n = regDirName(dir))
            return n;
        return regName(r);
    };
    auto imm = [&]() -> std::string {
        switch (immDir) {
          case ImmDirective::Literal: return std::to_string(templ.imm);
          case ImmDirective::TriggerImm: return "T.IMM";
          case ImmDirective::TriggerPC: return "T.PC";
          case ImmDirective::Param1: return "T.P1";
          case ImmDirective::Param2: return "T.P2";
          case ImmDirective::Param3: return "T.P3";
          case ImmDirective::ParamImm: return "T.PIMM";
          case ImmDirective::AbsTarget:
            return strFormat("@0x%llx", (unsigned long long)templ.imm);
        }
        return "?";
    };
    const OpInfo &info = opInfo(templ.op);
    switch (info.format) {
      case InstFormat::Nop:
      case InstFormat::Syscall:
        break;
      case InstFormat::Memory:
        os << ' ' << reg(raDir, templ.ra) << ", " << imm() << '('
           << reg(rbDir, templ.rb) << ')';
        break;
      case InstFormat::Branch:
        os << ' ' << reg(raDir, templ.ra) << ", " << imm();
        break;
      case InstFormat::Jump:
        os << ' ' << reg(raDir, templ.ra) << ", ("
           << reg(rbDir, templ.rb) << ')';
        break;
      case InstFormat::Operate:
        os << ' ' << reg(raDir, templ.ra) << ", ";
        if (templ.useLit)
            os << '#' << imm();
        else
            os << reg(rbDir, templ.rb);
        os << ", " << reg(rcDir, templ.rc);
        break;
      case InstFormat::Codeword:
        os << " <codeword>";
        break;
    }
    return os.str();
}

SeqId
ProductionSet::addSequence(ReplacementSeq seq)
{
    const SeqId id = nextId_++;
    sequences_.emplace(id, std::move(seq));
    return id;
}

void
ProductionSet::addSequenceWithId(SeqId id, ReplacementSeq seq)
{
    DISE_ASSERT(!sequences_.count(id), "sequence id already bound");
    sequences_.emplace(id, std::move(seq));
    nextId_ = std::max(nextId_, id + 1);
}

void
ProductionSet::addPattern(const PatternSpec &pattern, SeqId seqId)
{
    productions_.push_back({pattern, false, seqId});
}

void
ProductionSet::addTagPattern(const PatternSpec &pattern, SeqId seqBase)
{
    productions_.push_back({pattern, true, seqBase});
}

std::optional<SeqId>
ProductionSet::match(const DecodedInst &inst) const
{
    const Production *best = nullptr;
    unsigned bestScore = 0;
    for (const auto &prod : productions_) {
        if (!prod.pattern.matches(inst))
            continue;
        const unsigned score = prod.pattern.specificity();
        if (!best || score > bestScore) {
            best = &prod;
            bestScore = score;
        }
    }
    if (!best)
        return std::nullopt;
    return best->explicitTag ? best->seqId + inst.tag : best->seqId;
}

const ReplacementSeq *
ProductionSet::sequence(SeqId id) const
{
    const auto it = sequences_.find(id);
    return it == sequences_.end() ? nullptr : &it->second;
}

uint64_t
ProductionSet::totalReplacementInsts() const
{
    uint64_t total = 0;
    for (const auto &kv : sequences_)
        total += kv.second.insts.size();
    return total;
}

void
ProductionSet::merge(const ProductionSet &other)
{
    // Shift the other set's whole id space by a constant so both plain
    // bindings and explicit-tag arithmetic (seqBase + tag) survive intact.
    const SeqId offset = nextId_;
    SeqId maxId = 0;
    for (const auto &kv : other.sequences_) {
        sequences_.emplace(offset + kv.first, kv.second);
        maxId = std::max(maxId, kv.first);
    }
    for (const auto &prod : other.productions_) {
        Production copy = prod;
        copy.seqId += offset;
        productions_.push_back(copy);
    }
    nextId_ = offset + maxId + 1 + kMaxCodewordTag;
}

DecodedInst
instantiate(const ReplacementInst &rinst, const DecodedInst &trigger,
            Addr triggerPC)
{
    if (rinst.isTriggerInsn)
        return trigger;

    DecodedInst inst = rinst.templ;
    if (rinst.opDir == OpDirective::Trigger) {
        inst.op = trigger.op;
        inst.cls = trigger.cls;
        inst.useLit = trigger.useLit;
    }
    auto pickReg = [&](RegDirective dir, RegIndex literal,
                       RegIndex raw) -> RegIndex {
        switch (dir) {
          case RegDirective::Literal: return literal;
          case RegDirective::TriggerRS: return trigger.triggerRS();
          case RegDirective::TriggerRT: return trigger.triggerRT();
          case RegDirective::TriggerRD: return trigger.triggerRD();
          case RegDirective::TriggerRaw: return raw;
          case RegDirective::Param1: return trigger.ra;
          case RegDirective::Param2: return trigger.rb;
          case RegDirective::Param3: return trigger.rc;
        }
        return literal;
    };
    inst.ra = pickReg(rinst.raDir, inst.ra, trigger.ra);
    inst.rb = pickReg(rinst.rbDir, inst.rb, trigger.rb);
    inst.rc = pickReg(rinst.rcDir, inst.rc, trigger.rc);

    switch (rinst.immDir) {
      case ImmDirective::Literal:
        break;
      case ImmDirective::TriggerImm:
        inst.imm = trigger.imm;
        break;
      case ImmDirective::TriggerPC:
        inst.imm = static_cast<int64_t>(triggerPC);
        break;
      case ImmDirective::Param1:
        // Immediate parameters are sign-extended 5-bit values (register
        // parameters use the raw field); see Figure 4's "-8" parameter.
        inst.imm = signExtend(trigger.ra, 5);
        break;
      case ImmDirective::Param2:
        inst.imm = signExtend(trigger.rb, 5);
        break;
      case ImmDirective::Param3:
        inst.imm = signExtend(trigger.rc, 5);
        break;
      case ImmDirective::ParamImm:
        inst.imm = trigger.imm; // codeword 15-bit signed parameter
        break;
      case ImmDirective::AbsTarget: {
        // Application branch inside a replacement sequence: convert the
        // absolute target to a displacement from the trigger's PC.
        const int64_t target = rinst.templ.imm;
        inst.imm = (target - static_cast<int64_t>(triggerPC) - 4) / 4;
        break;
      }
    }
    inst.raw = 0; // synthesized
    return inst;
}

std::vector<DecodedInst>
instantiateSeq(const ReplacementSeq &seq, const DecodedInst &trigger,
               Addr triggerPC)
{
    std::vector<DecodedInst> out;
    out.reserve(seq.insts.size());
    instantiateSeqInto(seq, trigger, triggerPC, out);
    return out;
}

void
instantiateSeqInto(const ReplacementSeq &seq, const DecodedInst &trigger,
                   Addr triggerPC, std::vector<DecodedInst> &out)
{
    for (const auto &rinst : seq.insts)
        out.push_back(instantiate(rinst, trigger, triggerPC));
}

bool
seqDependsOnPC(const ReplacementSeq &seq)
{
    for (const auto &rinst : seq.insts) {
        if (rinst.isTriggerInsn)
            continue;
        if (rinst.immDir == ImmDirective::TriggerPC ||
            rinst.immDir == ImmDirective::AbsTarget) {
            return true;
        }
    }
    return false;
}

ReplacementInst
rLiteral(const DecodedInst &inst)
{
    ReplacementInst rinst;
    rinst.templ = inst;
    return rinst;
}

ReplacementInst
rTriggerInsn()
{
    ReplacementInst rinst;
    rinst.isTriggerInsn = true;
    return rinst;
}

} // namespace dise
