/**
 * @file
 * Parser for the external (user-visible) production representation — the
 * directive-annotated native-ISA syntax the DISE controller translates
 * into internal PT/RT formats. The syntax mirrors the paper's figures:
 *
 *   ; memory fault isolation (Figure 1)
 *   P1: class == store -> R1
 *   P2: class == load -> R1
 *   R1: srl T.RS, #26, $dr1
 *       cmpeq $dr1, $dr2, $dr1
 *       beq $dr1, @error
 *       T.INSN
 *
 * Pattern lines: "Pn: cond [&& cond]... -> SEQNAME". Conditions:
 *   op == <mnemonic>        exact opcode
 *   class == <classname>    opcode class (load, store, condbranch, ...)
 *   rs|rt|rd == <reg>       trigger role register
 *   imm == <n>              immediate value
 *   imm < 0 | imm >= 0      immediate sign
 * Targets: "-> NAME" binds a named sequence; "-> tag" / "-> tag+N" uses
 * explicit tagging (sequence id = N + the trigger's 11-bit tag field).
 * A sequence header of the form "NAME@ID:" registers the sequence under
 * the explicit id ID (how serialized tagged dictionaries pin their tag
 * arithmetic; see serialize.hpp).
 *
 * Sequence lines follow a "NAME:" header, one replacement instruction
 * per line, in assembler syntax extended with:
 *   $dr0..$dr7              dedicated registers
 *   T.RS / T.RT / T.RD      trigger role registers (register positions)
 *   T.P1 / T.P2 / T.P3      codeword parameters (register or immediate)
 *   T.IMM / T.PC / T.PIMM   trigger immediate / PC / 15-bit parameter
 *   T.INSN                  the trigger itself (whole instruction)
 *   @symbol, @0xADDR        absolute branch target (the IL converts it to
 *                           a trigger-PC-relative displacement)
 *   dbeq/dbne/dblt/dbge/dbr reg, +N|-N
 *                           DISE-internal branches; displacement is in
 *                           replacement-sequence slots
 */

#ifndef DISE_DISE_PARSER_HPP
#define DISE_DISE_PARSER_HPP

#include <map>
#include <string>

#include "src/dise/production.hpp"

namespace dise {

/**
 * Parse a production-set definition.
 *
 * @param source The DSL text.
 * @param symbols Symbol table used to resolve "@name" targets (typically
 *                the application's).
 * @return The production set, ready to install via the controller.
 * @throws FatalError with a line-numbered message on syntax errors.
 */
ProductionSet parseProductions(
    const std::string &source,
    const std::map<std::string, Addr> &symbols = {});

/**
 * Parse a single replacement instruction line (used by tests and by ACF
 * builders that assemble sequences programmatically).
 */
ReplacementInst parseReplacementInst(
    const std::string &line,
    const std::map<std::string, Addr> &symbols = {});

} // namespace dise

#endif // DISE_DISE_PARSER_HPP
