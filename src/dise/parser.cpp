#include "src/dise/parser.hpp"

#include <cctype>
#include <optional>
#include <sstream>
#include <vector>

#include "src/common/logging.hpp"

namespace dise {

namespace {

[[noreturn]] void
parseError(int line, const std::string &msg)
{
    fatal(strFormat("productions line %d: %s", line, msg.c_str()));
    abort(); // unreachable
}

std::string
trim(const std::string &s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
stripComment(const std::string &line)
{
    for (size_t i = 0; i < line.size(); ++i) {
        if (line[i] == ';')
            return line.substr(0, i);
        if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/')
            return line.substr(0, i);
    }
    return line;
}

std::optional<int64_t>
parseNumber(std::string t)
{
    t = trim(t);
    if (!t.empty() && t[0] == '#')
        t = t.substr(1);
    if (t.empty())
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(t.c_str(), &end, 0);
    if (end != t.c_str() + t.size() || errno != 0)
        return std::nullopt;
    return static_cast<int64_t>(v);
}

std::vector<std::string>
splitOperands(const std::string &text)
{
    std::vector<std::string> ops;
    int depth = 0;
    std::string cur;
    for (const char c : text) {
        if (c == '(')
            ++depth;
        if (c == ')')
            --depth;
        if (c == ',' && depth == 0) {
            ops.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!trim(cur).empty())
        ops.push_back(trim(cur));
    return ops;
}

/** Parse a register position: T.* directive or a literal register. */
std::pair<RegDirective, RegIndex>
parseRegField(int line, const std::string &text)
{
    const std::string t = trim(text);
    if (t == "T.RS")
        return {RegDirective::TriggerRS, 0};
    if (t == "T.RT")
        return {RegDirective::TriggerRT, 0};
    if (t == "T.RD")
        return {RegDirective::TriggerRD, 0};
    if (t == "T.P1")
        return {RegDirective::Param1, 0};
    if (t == "T.P2")
        return {RegDirective::Param2, 0};
    if (t == "T.P3")
        return {RegDirective::Param3, 0};
    const auto r = regFromName(t);
    if (!r)
        parseError(line, "bad register field: " + text);
    return {RegDirective::Literal, *r};
}

/** Parse an immediate position. Returns (directive, literal value). */
std::pair<ImmDirective, int64_t>
parseImmField(int line, const std::string &text,
              const std::map<std::string, Addr> &symbols)
{
    std::string t = trim(text);
    if (!t.empty() && t[0] == '#')
        t = trim(t.substr(1)); // optional literal marker
    if (t == "T.IMM")
        return {ImmDirective::TriggerImm, 0};
    if (t == "T.PC")
        return {ImmDirective::TriggerPC, 0};
    if (t == "T.PIMM")
        return {ImmDirective::ParamImm, 0};
    if (t == "T.P1")
        return {ImmDirective::Param1, 0};
    if (t == "T.P2")
        return {ImmDirective::Param2, 0};
    if (t == "T.P3")
        return {ImmDirective::Param3, 0};
    if (!t.empty() && t[0] == '@') {
        const std::string target = t.substr(1);
        if (const auto n = parseNumber(target))
            return {ImmDirective::AbsTarget, *n};
        const auto it = symbols.find(target);
        if (it == symbols.end())
            parseError(line, "unknown target symbol: " + target);
        return {ImmDirective::AbsTarget,
                static_cast<int64_t>(it->second)};
    }
    if (const auto n = parseNumber(t))
        return {ImmDirective::Literal, *n};
    parseError(line, "bad immediate field: " + text);
}

ReplacementInst
parseInstLine(int line, const std::string &text,
              const std::map<std::string, Addr> &symbols)
{
    const std::string t = trim(text);
    if (t == "T.INSN")
        return rTriggerInsn();

    ReplacementInst rinst;
    const size_t sp = t.find_first_of(" \t");
    const std::string mnem = (sp == std::string::npos) ? t
                                                       : t.substr(0, sp);
    const std::string rest =
        (sp == std::string::npos) ? "" : trim(t.substr(sp + 1));
    const auto opc = opFromName(mnem);
    if (!opc)
        parseError(line, "unknown mnemonic: " + mnem);
    const OpInfo &info = opInfo(*opc);
    rinst.templ.op = *opc;
    rinst.templ.cls = info.cls;
    const auto operands = splitOperands(rest);

    auto expectOperands = [&](size_t n) {
        if (operands.size() != n) {
            parseError(line, strFormat("%s expects %zu operands, got %zu",
                                       mnem.c_str(), n, operands.size()));
        }
    };

    switch (info.format) {
      case InstFormat::Nop:
      case InstFormat::Syscall:
        expectOperands(0);
        break;
      case InstFormat::Memory: {
        expectOperands(2);
        std::tie(rinst.raDir, rinst.templ.ra) =
            parseRegField(line, operands[0]);
        // disp(rb) with either part carrying a directive.
        const std::string &memOp = operands[1];
        const size_t open = memOp.find('(');
        const size_t close = memOp.rfind(')');
        if (open == std::string::npos || close == std::string::npos)
            parseError(line, "bad memory operand: " + memOp);
        const std::string dispText = trim(memOp.substr(0, open));
        if (!dispText.empty()) {
            std::tie(rinst.immDir, rinst.templ.imm) =
                parseImmField(line, dispText, symbols);
        }
        std::tie(rinst.rbDir, rinst.templ.rb) = parseRegField(
            line, memOp.substr(open + 1, close - open - 1));
        break;
      }
      case InstFormat::Branch: {
        expectOperands(2);
        std::tie(rinst.raDir, rinst.templ.ra) =
            parseRegField(line, operands[0]);
        if (info.cls == OpClass::DiseBranch) {
            // Slot-relative displacement, always a literal.
            const auto n = parseNumber(operands[1]);
            if (!n)
                parseError(line, "bad DISE branch displacement");
            rinst.templ.imm = *n;
        } else {
            std::tie(rinst.immDir, rinst.templ.imm) =
                parseImmField(line, operands[1], symbols);
            if (rinst.immDir == ImmDirective::Literal ||
                rinst.immDir == ImmDirective::TriggerPC) {
                // A raw-number target makes no sense for an application
                // branch whose PC is the trigger's; require @abs, T.IMM
                // (re-expanding a branch trigger) or parameters.
                if (rinst.immDir == ImmDirective::Literal)
                    parseError(line,
                               "application branch targets in sequences "
                               "must be @absolute, T.IMM or T.P*");
            }
        }
        break;
      }
      case InstFormat::Jump: {
        expectOperands(2);
        std::tie(rinst.raDir, rinst.templ.ra) =
            parseRegField(line, operands[0]);
        std::string rbText = trim(operands[1]);
        if (rbText.size() >= 2 && rbText.front() == '(' &&
            rbText.back() == ')') {
            rbText = rbText.substr(1, rbText.size() - 2);
        }
        std::tie(rinst.rbDir, rinst.templ.rb) =
            parseRegField(line, rbText);
        break;
      }
      case InstFormat::Operate: {
        expectOperands(3);
        std::tie(rinst.raDir, rinst.templ.ra) =
            parseRegField(line, operands[0]);
        std::tie(rinst.rcDir, rinst.templ.rc) =
            parseRegField(line, operands[2]);
        // Second source: register-like or immediate-like.
        const std::string &src2 = trim(operands[1]);
        const bool isRegLike =
            src2 == "T.RS" || src2 == "T.RT" || src2 == "T.RD" ||
            (regFromName(src2).has_value());
        const bool isRegParam =
            (src2 == "T.P1" || src2 == "T.P2" || src2 == "T.P3") &&
            false; // parameters in src2 default to immediates
        if (isRegLike || isRegParam) {
            std::tie(rinst.rbDir, rinst.templ.rb) =
                parseRegField(line, src2);
        } else {
            rinst.templ.useLit = true;
            std::tie(rinst.immDir, rinst.templ.imm) =
                parseImmField(line, src2, symbols);
        }
        break;
      }
      case InstFormat::Codeword:
        parseError(line, "codewords cannot appear in replacement "
                         "sequences (no recursive expansion)");
    }
    return rinst;
}

std::optional<OpClass>
classFromName(const std::string &name)
{
    for (unsigned i = 0; i <= static_cast<unsigned>(OpClass::Invalid);
         ++i) {
        const OpClass cls = static_cast<OpClass>(i);
        if (name == opClassName(cls))
            return cls;
    }
    return std::nullopt;
}

PatternSpec
parsePattern(int line, const std::string &text)
{
    PatternSpec spec;
    std::string rest = text;
    while (!rest.empty()) {
        const size_t amp = rest.find("&&");
        const std::string cond =
            trim(amp == std::string::npos ? rest : rest.substr(0, amp));
        rest = amp == std::string::npos ? "" : trim(rest.substr(amp + 2));
        if (cond.empty())
            continue;
        if (cond == "any")
            continue;
        // imm sign forms.
        if (cond == "imm < 0") {
            spec.immSign = SignConstraint::Negative;
            continue;
        }
        if (cond == "imm >= 0") {
            spec.immSign = SignConstraint::NonNegative;
            continue;
        }
        const size_t eq = cond.find("==");
        if (eq == std::string::npos)
            parseError(line, "bad pattern condition: " + cond);
        const std::string lhs = trim(cond.substr(0, eq));
        const std::string rhs = trim(cond.substr(eq + 2));
        if (lhs == "op" || lhs == "opcode" || lhs == "T.OP") {
            const auto op = opFromName(rhs);
            if (!op)
                parseError(line, "unknown opcode: " + rhs);
            spec.opcode = *op;
        } else if (lhs == "class" || lhs == "opclass" ||
                   lhs == "T.OPCLASS") {
            const auto cls = classFromName(rhs);
            if (!cls)
                parseError(line, "unknown opcode class: " + rhs);
            spec.opclass = *cls;
        } else if (lhs == "rs" || lhs == "T.RS") {
            const auto r = regFromName(rhs);
            if (!r)
                parseError(line, "unknown register: " + rhs);
            spec.rs = *r;
        } else if (lhs == "rt" || lhs == "T.RT") {
            const auto r = regFromName(rhs);
            if (!r)
                parseError(line, "unknown register: " + rhs);
            spec.rt = *r;
        } else if (lhs == "rd" || lhs == "T.RD") {
            const auto r = regFromName(rhs);
            if (!r)
                parseError(line, "unknown register: " + rhs);
            spec.rd = *r;
        } else if (lhs == "imm" || lhs == "T.IMM") {
            const auto n = parseNumber(rhs);
            if (!n)
                parseError(line, "bad immediate: " + rhs);
            spec.immValue = *n;
        } else {
            parseError(line, "unknown pattern field: " + lhs);
        }
    }
    return spec;
}

} // namespace

ReplacementInst
parseReplacementInst(const std::string &line,
                     const std::map<std::string, Addr> &symbols)
{
    return parseInstLine(0, line, symbols);
}

ProductionSet
parseProductions(const std::string &source,
                 const std::map<std::string, Addr> &symbols)
{
    struct PendingPattern
    {
        int line;
        PatternSpec spec;
        std::string target; ///< sequence name, "tag", or "tag+N"
    };

    std::vector<PendingPattern> patterns;
    std::map<std::string, ReplacementSeq> seqs;
    std::vector<std::string> seqOrder;
    std::string currentSeq;

    std::istringstream is(source);
    std::string raw;
    int number = 0;
    while (std::getline(is, raw)) {
        ++number;
        std::string line = trim(stripComment(raw));
        if (line.empty())
            continue;
        // A definition header is "NAME:" where NAME has no spaces and the
        // colon precedes any instruction text.
        const size_t colon = line.find(':');
        std::string header;
        if (colon != std::string::npos) {
            const std::string head = trim(line.substr(0, colon));
            if (!head.empty() && head.find(' ') == std::string::npos &&
                head.find('.') == std::string::npos) {
                header = head;
                line = trim(line.substr(colon + 1));
            }
        }
        const bool isPattern = line.find("->") != std::string::npos;
        if (isPattern) {
            const size_t arrow = line.find("->");
            PendingPattern pending;
            pending.line = number;
            pending.spec = parsePattern(number, trim(line.substr(0, arrow)));
            pending.target = trim(line.substr(arrow + 2));
            if (pending.target.empty())
                parseError(number, "missing pattern target");
            patterns.push_back(std::move(pending));
            currentSeq.clear();
            continue;
        }
        if (!header.empty()) {
            if (seqs.count(header))
                parseError(number, "duplicate sequence " + header);
            seqs[header] = ReplacementSeq{};
            seqs[header].name = header;
            seqOrder.push_back(header);
            currentSeq = header;
            if (line.empty())
                continue;
        }
        if (currentSeq.empty())
            parseError(number, "instruction outside a sequence: " + line);
        seqs[currentSeq].insts.push_back(
            parseInstLine(number, line, symbols));
    }

    ProductionSet set;
    std::map<std::string, SeqId> seqIds;
    // "NAME@ID" headers pin the sequence id (used by serialization and
    // by aware dictionaries); register those first so plain sequences'
    // fresh ids cannot collide with them.
    auto explicitId = [](const std::string &name) -> std::optional<SeqId> {
        const size_t at = name.find('@');
        if (at == std::string::npos)
            return std::nullopt;
        const auto id = parseNumber(name.substr(at + 1));
        if (!id || *id < 0)
            fatal("bad explicit sequence id in '" + name + "'");
        return static_cast<SeqId>(*id);
    };
    for (const auto &name : seqOrder) {
        if (seqs[name].insts.empty())
            fatal("empty replacement sequence " + name);
        if (const auto id = explicitId(name)) {
            set.addSequenceWithId(*id, seqs[name]);
            seqIds[name] = *id;
        }
    }
    for (const auto &name : seqOrder) {
        if (!explicitId(name))
            seqIds[name] = set.addSequence(seqs[name]);
    }
    for (const auto &pending : patterns) {
        if (pending.target.rfind("tag", 0) == 0) {
            SeqId base = 0;
            const std::string rest = trim(pending.target.substr(3));
            if (!rest.empty()) {
                const auto n = parseNumber(rest);
                if (!n || *n < 0)
                    parseError(pending.line,
                               "bad tag base: " + pending.target);
                base = static_cast<SeqId>(*n);
            }
            set.addTagPattern(pending.spec, base);
        } else {
            const auto it = seqIds.find(pending.target);
            if (it == seqIds.end())
                parseError(pending.line,
                           "unknown sequence " + pending.target);
            set.addPattern(pending.spec, it->second);
        }
    }
    return set;
}

} // namespace dise
