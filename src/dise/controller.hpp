/**
 * @file
 * The DISE controller and the OS-kernel virtualization layer above it
 * (paper Section 2.3).
 *
 * The controller mediates all PT/RT manipulation: it translates
 * productions from their external representation into the internal PT/RT
 * formats, virtualizes the table sizes (misses fault entries in,
 * procedurally, at a fixed cycle cost), and is the single point through
 * which production sets are activated.
 *
 * The DiseOsKernel models the second layer of access control: it
 * virtualizes the resident production set across processes. Productions
 * submitted through the kernel API ("inspected and approved", typically
 * transparent system utilities) apply to every process; productions a
 * process installs directly from its own data space apply only to that
 * process and are deactivated when it is switched out. The kernel also
 * preserves per-process DISE state (dedicated registers) across context
 * switches.
 */

#ifndef DISE_DISE_CONTROLLER_HPP
#define DISE_DISE_CONTROLLER_HPP

#include <array>
#include <map>
#include <memory>
#include <string>

#include "src/dise/engine.hpp"

namespace dise {

/** The dedicated DISE register file ($dr0..$dr7). */
struct DiseRegFile
{
    std::array<uint64_t, kNumDiseRegs> regs{};

    uint64_t &operator[](unsigned i) { return regs.at(i); }
    uint64_t operator[](unsigned i) const { return regs.at(i); }
};

/** Hardware controller: the only interface for programming the PT/RT. */
class DiseController
{
  public:
    explicit DiseController(const DiseConfig &config = {});

    DiseEngine &engine() { return engine_; }
    const DiseEngine &engine() const { return engine_; }

    /**
     * Translate and activate a production set. The previous set is
     * deactivated and the PT/RT start cold (entries fault in on use).
     */
    void install(std::shared_ptr<const ProductionSet> set);

    /** Deactivate all productions. */
    void deactivate();

    /**
     * Replace the engine wholesale with a previously captured copy
     * (see DiseEngine::sharedProductions for why plain copies are
     * complete snapshots). PT/RT residency, LRU stamps, the expansion
     * cache, statistics and the table generation all revert to the
     * captured values; the controller's active-set handle follows the
     * restored engine.
     */
    void
    restoreEngine(const DiseEngine &snapshot)
    {
        engine_ = snapshot;
        active_ = engine_.sharedProductions();
    }

    /** The active set (may be null). */
    std::shared_ptr<const ProductionSet> active() const { return active_; }

  private:
    DiseEngine engine_;
    std::shared_ptr<const ProductionSet> active_;
};

/** OS-kernel production and register virtualization. */
class DiseOsKernel
{
  public:
    using Pid = uint32_t;

    explicit DiseOsKernel(DiseController &controller);

    /**
     * Install a kernel-approved (system utility) ACF; it applies to all
     * processes and survives context switches.
     */
    void installKernelAcf(const std::string &name, ProductionSet set);

    /** Remove a kernel ACF by name. */
    void removeKernelAcf(const std::string &name);

    /**
     * A process submits productions residing in its own data space; they
     * are active only while that process runs.
     */
    void submitUserAcf(Pid pid, ProductionSet set);

    /**
     * Context switch: snapshot the outgoing process's dedicated
     * registers, restore the incoming one's, and rebuild the active
     * production set (kernel ACFs + the incoming process's user ACFs).
     *
     * @param pid The incoming process.
     * @param hwRegs The hardware dedicated register file to swap.
     */
    void switchTo(Pid pid, DiseRegFile &hwRegs);

    Pid currentPid() const { return current_; }

  private:
    void rebuildActive();

    DiseController &controller_;
    std::map<std::string, ProductionSet> kernelAcfs_;
    std::map<Pid, ProductionSet> userAcfs_;
    std::map<Pid, DiseRegFile> savedRegs_;
    Pid current_ = 0;
};

} // namespace dise

#endif // DISE_DISE_CONTROLLER_HPP
