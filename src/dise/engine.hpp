/**
 * @file
 * The DISE engine: the decode-stage hardware that inspects every fetched
 * instruction and macro-expands triggers (paper Section 2.2).
 *
 * Three structures are modeled:
 *
 *  - The pattern table (PT) matches fetched instructions against the
 *    active patterns, most-specific first. Virtualization treats the PT
 *    as a cache over the active production set: a small pattern-counter
 *    table tracks, per opcode, the number of active vs PT-resident
 *    patterns; a fetched instance of an opcode whose counters differ is a
 *    PT miss, which (procedurally, via the controller) fills all patterns
 *    covering that opcode.
 *
 *  - The replacement table (RT) caches replacement sequences, one entry
 *    per replacement instruction, tagged by (sequence id, DISEPC offset).
 *    It may be direct-mapped, set-associative, or perfect. An RT miss is
 *    detected when an id/DISEPC pair produced by the PT is absent; the
 *    controller fills the whole sequence.
 *
 *  - The instantiation logic (IL) — instantiate() in production.hpp —
 *    combines replacement literals with trigger fields.
 *
 * PT and RT misses interrupt the processor: the pipeline is flushed and
 * the fill proceeds procedurally (30 cycles; 150 when the miss handler
 * must also compose productions, as in transparent-within-aware ACF
 * composition). The engine reports those events; the timing model charges
 * them.
 */

#ifndef DISE_DISE_ENGINE_HPP
#define DISE_DISE_ENGINE_HPP

#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/stats.hpp"
#include "src/dise/production.hpp"

namespace dise {

/** Decode-pipeline placement options for the engine (paper Section 4.1). */
enum class DisePlacement : uint8_t {
    /** Idealized: expansion costs nothing (upper bound). */
    Free,
    /** PT/RT in parallel with the decoder: 1-cycle stall per expansion. */
    Stall,
    /** PT/RT in series: one extra pipeline stage, always. */
    Pipe,
};

/** Engine configuration (defaults match the paper's simulated machine). */
struct DiseConfig
{
    uint32_t ptEntries = 32;
    /** RT capacity in replacement-instruction entries; 0 = perfect. */
    uint32_t rtEntries = 2048;
    /** RT associativity; 1 = direct-mapped. */
    uint32_t rtAssoc = 2;
    /** Cycles to fill on a simple PT/RT miss. */
    uint32_t missPenalty = 30;
    /** Cycles when the miss handler must compose productions. */
    uint32_t composedMissPenalty = 150;
    DisePlacement placement = DisePlacement::Pipe;
    /**
     * Simulator (not architecture) knob: memoize instantiated
     * replacement sequences per (sequence, trigger word, PC class) so
     * repeated dynamic instances of the same static trigger skip the
     * instantiation logic. Purely a fast path — architectural stats and
     * results are identical with it off.
     */
    bool expansionCache = true;
    /** Cached-instantiation entry cap; caching stops when reached. */
    uint32_t expansionCacheMaxEntries = 1u << 16;
    /**
     * Per-entry parity on the PT and RT. With parity on, a corrupted
     * entry (injected via corruptPatternEntry / corruptReplacementEntry)
     * is detected on its next use, invalidated, and re-faulted through
     * the controller, charging the usual miss penalty. With parity off,
     * a corrupted PT entry silently fails to match (triggers of the
     * covered opcodes pass through unexpanded) and a corrupted RT entry
     * yields a garbled replacement instruction. Fault-free behavior is
     * bit-identical with parity on or off.
     */
    bool parityChecks = false;
};

/**
 * Per-static-trigger expansion memo, owned by the caller (one per
 * translated Engine slot, see TransOp::memo). Records the outcome of a
 * clean expand() of one static instruction — either "covered opcode but
 * no pattern matched" or "expanded to this memoized span" — so repeated
 * dynamic instances can skip the pattern match and the expansion-cache
 * hash lookup entirely (DiseEngine::expandFast). Invalid whenever the
 * recorded generation lags the engine's: installs, flushes, and fault
 * injections all advance it.
 */
struct ExpandMemo
{
    uint64_t gen = ~uint64_t(0);
    enum : uint8_t { Unknown = 0, NoMatch = 1, Expanded = 2 };
    uint8_t kind = Unknown;
    Opcode op = Opcode::NOP;
    SeqId seqId = 0;
    const ReplacementSeq *seq = nullptr;
    /** Memoized instantiation span (points into the engine's expansion
     *  cache, stable until the next generation bump). */
    const DecodedInst *insts = nullptr;
    uint32_t numInsts = 0;
};

/**
 * Result of presenting one fetched instruction to the engine.
 *
 * The replacement instructions are exposed as a non-owning span:
 * @c insts points either into the engine's expansion cache or into its
 * reusable scratch buffer, so no allocation happens per fetch. The span
 * is valid until the engine's next expand(), flushTables() or
 * setProductions() call — the same lifetime contract as @c seq, which
 * points into the active production set. Callers that outlive that
 * window (none in the simulator loop: a new expansion can only start
 * after the previous sequence fully retired) must copy.
 */
struct ExpandResult
{
    /** True when the instruction matched a pattern and was replaced. */
    bool expanded = false;
    SeqId seqId = 0;
    const ReplacementSeq *seq = nullptr;
    /** The instantiated replacement sequence (offset 0 onward). */
    const DecodedInst *insts = nullptr;
    uint32_t numInsts = 0;
    bool ptMiss = false;
    bool rtMiss = false;
    /** Stall cycles the miss events cost (flush handled by the caller). */
    uint32_t missPenalty = 0;
    /**
     * @c insts points into the engine's memoized expansion cache: the
     * span is stable (same pointer, same contents) for every future
     * expansion of this key at the current table generation. False for
     * scratch-backed or fault-garbled deliveries, whose contents may
     * differ call to call.
     */
    bool memoized = false;

    /** @name Span access to the instantiated sequence. */
    /// @{
    size_t size() const { return numInsts; }
    bool empty() const { return numInsts == 0; }
    const DecodedInst &operator[](size_t i) const { return insts[i]; }
    const DecodedInst *begin() const { return insts; }
    const DecodedInst *end() const { return insts + numInsts; }
    /// @}
};

/** The engine proper. Production sets are installed by the controller. */
class DiseEngine
{
  public:
    explicit DiseEngine(const DiseConfig &config = {});

    /** Install (activate) a production set; cold PT/RT. */
    void setProductions(std::shared_ptr<const ProductionSet> set);

    /** The active set (may be null). */
    const ProductionSet *productions() const { return set_.get(); }

    /**
     * The active set's owning handle (snapshot/restore plumbing). The
     * engine is value-copyable — tables, caches, stats and the LRU/
     * generation counters all copy; internal sequence pointers
     * (seqById_) reference the shared set, which the copy co-owns — so
     * a plain `DiseEngine` copy is a complete engine snapshot, and
     * restoring is plain assignment. DiseController::restoreEngine
     * uses this accessor to keep its own active-set handle in sync.
     */
    std::shared_ptr<const ProductionSet> sharedProductions() const
    {
        return set_;
    }

    /**
     * Inspect one fetched instruction.
     *
     * @param fetched Decoded fetch-stream instruction.
     * @param pc Its PC.
     * @return Expansion outcome, including any PT/RT miss events. When
     *         the instruction is not a trigger, expanded is false and the
     *         instruction passes through unchanged.
     */
    ExpandResult expand(const DecodedInst &fetched, Addr pc);

    /**
     * Memoized inspection fast path. When @p memo records a clean prior
     * outcome for the same static instruction at the current table
     * generation AND the tables are in the state the memo assumes (PT
     * residency intact, every RT slot of the sequence still a clean
     * hit), performs the inspection with bit-identical counter and LRU
     * evolution to expand() — PT stamp refreshes, RT lastUse updates,
     * inspected/expansions/cache-hit counters — and fills @p out,
     * returning true. Returns false (with no state touched) whenever
     * any check fails or any injected corruption may be resident; the
     * caller then runs the full expand() and may re-fill the memo.
     */
    bool expandFast(const ExpandMemo &memo, ExpandResult &out);

    /**
     * Record the outcome of a full expand() of @p fetched into @p memo
     * for future expandFast() calls. Only clean outcomes are recorded:
     * nothing is recorded while injected corruption is resident, and
     * expansions are recorded only when the result span is memoized
     * (stable for the rest of the generation).
     */
    void fillMemo(ExpandMemo &memo, const DecodedInst &fetched,
                  const ExpandResult &result) const;

    /**
     * Sequence lookup without the RT model (used to resume mid-sequence
     * after an interrupt, where the RT was already filled).
     */
    const ReplacementSeq *sequence(SeqId id) const;

    /** Drop all PT/RT residency (context switch / explicit flush). */
    void flushTables();

    /** @name Translation-cache support (see ExecCore's trace cache). */
    /// @{
    /**
     * Monotone table-generation counter: bumped whenever the engine's
     * visible expansion behavior may change — production-set installs
     * (setProductions), flushTables, and successful fault injections
     * (corruptPatternEntry / corruptReplacementEntry). Translated traces
     * key on it so any PT/RT content change invalidates them.
     */
    uint64_t generation() const { return generation_; }

    /**
     * True when the active set has patterns covering @p op, i.e. when an
     * expand() of an instruction with this opcode could touch PT/RT
     * state or match. For uncovered opcodes expand() is exactly
     * "++inspected" — the trace fast path skips the call and accounts
     * the inspections in bulk via noteInspected().
     */
    bool
    opcodeCovered(Opcode op) const
    {
        return set_ && !set_->empty() &&
               !patternsByOpcode_[static_cast<size_t>(op)].empty();
    }

    /**
     * Account @p n fetched instructions that bypassed expand() because
     * their opcodes are not covered (see opcodeCovered). Keeps the
     * "inspected" stat bit-identical to the per-fetch slow path.
     */
    void noteInspected(uint64_t n) { inspected_ += n; }
    /// @}

    /** @name Fault-injection hooks (see DiseConfig::parityChecks). */
    /// @{
    /**
     * Corrupt one PT-resident pattern entry, chosen deterministically by
     * @p pick among the resident patterns in ascending pattern-index
     * order. Returns false (no-op) when the PT is empty.
     */
    bool corruptPatternEntry(uint64_t pick);

    /**
     * Corrupt one valid RT entry, chosen deterministically by @p pick in
     * ascending slot order; @p bit selects the bit flipped in the
     * replacement instruction the entry holds. Returns false (no-op)
     * when the RT is empty or perfect (rtEntries == 0).
     */
    bool corruptReplacementEntry(uint64_t pick, unsigned bit);

    /** True while any injected corruption is still resident. */
    bool hasCorruptEntries() const;
    /// @}

    const DiseConfig &config() const { return config_; }
    const StatGroup &stats() const
    {
        syncStats();
        return stats_;
    }
    StatGroup &stats()
    {
        syncStats();
        return stats_;
    }

  private:
    /**
     * Flush the hot-path counters below into the StatGroup. Per-fetch
     * events are counted in plain members — a string-keyed map update
     * per expansion would dominate the fast path — and materialized as
     * named counters only when someone reads stats().
     */
    void syncStats() const;

    /** Check/maintain PT residency; returns true on a PT miss. */
    bool checkPatternTable(Opcode op);

    /** Check/maintain RT residency; returns true on an RT miss. */
    bool checkReplacementTable(SeqId id, const ReplacementSeq &seq);

    DiseConfig config_;
    std::shared_ptr<const ProductionSet> set_;

    /** @name PT model. */
    /// @{
    /** Pattern indices covering each opcode (derived from the set). */
    std::vector<std::vector<uint32_t>> patternsByOpcode_;
    /** True when all patterns for the opcode are PT-resident. */
    std::vector<bool> opcodeResident_;
    /**
     * Per-pattern PT LRU stamp, indexed by pattern index; 0 means not
     * resident (useCounter_ pre-increments, so live stamps are >= 1).
     * Dense so the hit path touches no hash table.
     */
    std::vector<uint64_t> ptStamp_;
    /** Number of nonzero ptStamp_ entries. */
    uint32_t ptResidentCount_ = 0;
    /// @}

    /** @name RT model. */
    /// @{
    struct RtEntry
    {
        bool valid = false;
        SeqId seqId = 0;
        uint32_t disepc = 0;
        uint64_t lastUse = 0;
        /** Injected single-bit fault (cleared on invalidate/refill). */
        bool corrupt = false;
        unsigned corruptBit = 0;
    };
    std::vector<RtEntry> rt_;
    uint32_t rtSets_ = 0;
    /**
     * log2 of the per-sequence slot stride in the RT index: derived
     * from the active set's longest replacement sequence (rounded up to
     * a power of two, floor 8 slots) so distinct sequences never alias
     * each other's slot ranges.
     */
    unsigned rtShift_ = 3;
    unsigned rtIndex(SeqId id, uint32_t disepc) const;
    /// @}

    /** @name Expansion fast path (simulator-level memoization). */
    /// @{
    struct SeqKey
    {
        SeqId id;
        Word raw;
        /** Trigger PC for PC-dependent sequences; 0 otherwise. */
        Addr pc;
        bool operator==(const SeqKey &) const = default;
    };
    struct SeqKeyHash
    {
        size_t
        operator()(const SeqKey &k) const
        {
            // splitmix64-style mix of the three fields.
            uint64_t x = (uint64_t(k.id) << 32) ^ k.raw;
            x ^= k.pc + 0x9e3779b97f4a7c15ull + (x << 6) + (x >> 2);
            x ^= x >> 30;
            x *= 0xbf58476d1ce4e5b9ull;
            x ^= x >> 27;
            return static_cast<size_t>(x);
        }
    };
    /**
     * Memoized instantiations. Values are never erased individually
     * (only cleared wholesale by flushTables/setProductions), so spans
     * handed out in ExpandResult stay valid across inserts.
     */
    std::unordered_map<SeqKey, std::vector<DecodedInst>, SeqKeyHash>
        expCache_;
    /**
     * Per-sequence PC-dependence class (see seqDependsOnPC), dense over
     * [0, max seqId] — ids are small (explicit dictionary tags are 11
     * bits). 0 = independent, 1 = dependent.
     */
    std::vector<uint8_t> seqPcDependent_;
    /**
     * Dense seqId -> replacement-sequence lookup (pointers into the
     * active set, valid while set_ is held); avoids the set's std::map
     * walk on every expansion. nullptr marks unbound ids.
     */
    std::vector<const ReplacementSeq *> seqById_;
    /** Reused instantiation buffer for uncacheable expansions. */
    std::vector<DecodedInst> scratch_;
    /// @}

    /** @name Hot-path event counters (see syncStats). */
    /// @{
    uint64_t inspected_ = 0;
    uint64_t expansions_ = 0;
    uint64_t replacementInsts_ = 0;
    uint64_t cacheFills_ = 0;
    uint64_t cacheHits_ = 0;
    uint64_t ptSilentDrops_ = 0;
    uint64_t rtGarbageExpansions_ = 0;
    /// @}

    /** @name Injected-fault state (see corruptPatternEntry). */
    /// @{
    /** Corrupted resident pattern indices (empty in fault-free runs). */
    std::set<uint32_t> ptCorrupt_;
    /** Parity-off PT drop: suppress this fetch's expansion. */
    bool suppressExpand_ = false;
    /** Parity-off RT garble: (slot, bit) pairs hit this fetch. */
    std::vector<std::pair<uint32_t, unsigned>> corruptSlotsHit_;
    /**
     * Sticky "corruption may be resident" latch: set by either corrupt
     * hook, cleared only by flushTables. Deliberately conservative —
     * parity detection repairs individual entries without clearing it —
     * so expandFast can gate on one flag instead of re-scanning tables;
     * while set, every inspection takes the full expand() path.
     */
    bool corruptResident_ = false;
    /// @}

    uint64_t useCounter_ = 0;
    uint64_t generation_ = 0;
    mutable StatGroup stats_;
};

} // namespace dise

#endif // DISE_DISE_ENGINE_HPP
