/**
 * @file
 * Sparse byte-addressable memory image with little-endian multi-byte
 * accessors. Backing store is a page map, so the 64-bit address space
 * costs only what is touched.
 *
 * Two simulator fast paths sit in front of the page map (architectural
 * behavior is identical with or without them):
 *
 *  - A small direct-mapped page-pointer translation cache maps page
 *    numbers straight to page storage so hot accesses skip the
 *    unordered_map probe. Page storage is stable (pages are never
 *    erased or resized once allocated), so cached pointers stay valid;
 *    copies/moves of a Memory reset the cache rather than inherit
 *    pointers into another image's pages.
 *
 *  - Multi-byte read/write that do not cross a page boundary are a
 *    single in-page memcpy; only page-crossing accesses decompose into
 *    per-byte page lookups.
 */

#ifndef DISE_MEM_MEMORY_HPP
#define DISE_MEM_MEMORY_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/assembler/program.hpp"
#include "src/isa/inst.hpp"

namespace dise {

/** Flat simulated memory. Unwritten bytes read as zero. */
class Memory
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr uint64_t kPageSize = uint64_t(1) << kPageShift;

    Memory() = default;
    /** Copies adopt the source's pages but never its cached pointers. */
    Memory(const Memory &other) : pages_(other.pages_) {}
    Memory(Memory &&other) noexcept : pages_(std::move(other.pages_))
    {
        other.resetTranslationCache();
    }
    Memory &
    operator=(const Memory &other)
    {
        if (this != &other) {
            pages_ = other.pages_;
            resetTranslationCache();
        }
        return *this;
    }
    Memory &
    operator=(Memory &&other) noexcept
    {
        if (this != &other) {
            pages_ = std::move(other.pages_);
            resetTranslationCache();
            other.resetTranslationCache();
        }
        return *this;
    }

    uint8_t
    readByte(Addr addr) const
    {
        const uint8_t *page = pageData(addr);
        return page ? page[addr & (kPageSize - 1)] : 0;
    }
    void
    writeByte(Addr addr, uint8_t value)
    {
        pageDataForWrite(addr)[addr & (kPageSize - 1)] = value;
    }

    /** Little-endian read of 1, 2, 4 or 8 bytes. */
    uint64_t read(Addr addr, unsigned size) const;
    /** Little-endian write of 1, 2, 4 or 8 bytes. */
    void write(Addr addr, uint64_t value, unsigned size);

    uint32_t readWord(Addr addr) const
    {
        return static_cast<uint32_t>(read(addr, 4));
    }
    uint64_t readQuad(Addr addr) const { return read(addr, 8); }

    /** Copy a program's text and data into memory. */
    void loadProgram(const Program &prog);

    /** Bulk write. */
    void writeBlock(Addr addr, const uint8_t *src, size_t len);

    /** FNV-1a checksum over [addr, addr+len); used by integration tests. */
    uint64_t checksum(Addr addr, uint64_t len) const;

    /**
     * Flip one bit: fault-injection hook. @p bit selects within the byte
     * at @p addr + bit/8 (i.e. bit indexes a little-endian bit offset
     * from @p addr).
     */
    void
    flipBit(Addr addr, unsigned bit)
    {
        const Addr byteAddr = addr + bit / 8;
        writeByte(byteAddr, readByte(byteAddr) ^ uint8_t(1u << (bit % 8)));
    }

    /** Number of distinct pages touched. */
    size_t pagesTouched() const { return pages_.size(); }

  private:
    using Page = std::vector<uint8_t>;

    /** Direct-mapped page-number -> page-storage translation cache. */
    struct TransEntry
    {
        uint64_t pageNum = ~uint64_t(0);
        uint8_t *data = nullptr;
    };
    static constexpr size_t kTransEntries = 64;

    void
    resetTranslationCache()
    {
        trans_.fill(TransEntry());
    }

    /** Page storage holding @p addr, or nullptr when untouched. */
    const uint8_t *
    pageData(Addr addr) const
    {
        const uint64_t pn = addr >> kPageShift;
        TransEntry &entry = trans_[pn & (kTransEntries - 1)];
        if (entry.pageNum == pn)
            return entry.data;
        const auto it = pages_.find(pn);
        if (it == pages_.end())
            return nullptr; // absent pages are not cached: they may appear
        entry.pageNum = pn;
        entry.data = const_cast<uint8_t *>(it->second.data());
        return entry.data;
    }

    /** Page storage holding @p addr, allocated on first touch. */
    uint8_t *
    pageDataForWrite(Addr addr)
    {
        const uint64_t pn = addr >> kPageShift;
        TransEntry &entry = trans_[pn & (kTransEntries - 1)];
        if (entry.pageNum == pn)
            return entry.data;
        Page &page = pages_[pn];
        if (page.empty())
            page.assign(kPageSize, 0);
        entry.pageNum = pn;
        entry.data = page.data();
        return entry.data;
    }

    std::unordered_map<uint64_t, Page> pages_;
    mutable std::array<TransEntry, kTransEntries> trans_{};
};

} // namespace dise

#endif // DISE_MEM_MEMORY_HPP
