/**
 * @file
 * Sparse byte-addressable memory image with little-endian multi-byte
 * accessors. Backing store is a page map, so the 64-bit address space
 * costs only what is touched.
 *
 * Pages are copy-on-write: a copied Memory shares page storage with its
 * source via shared_ptr and clones a page only when one side writes it.
 * Forking an image is O(pages touched) pointer copies; the divergent
 * state after a fork costs only the pages actually written (O(delta)).
 * A frozen source (e.g. a snapshot) is never mutated by copies taken
 * from it, so many threads may fork the same image concurrently.
 *
 * Two simulator fast paths sit in front of the page map (architectural
 * behavior is identical with or without them):
 *
 *  - A small direct-mapped page-pointer translation cache maps page
 *    numbers straight to page storage so hot accesses skip the
 *    unordered_map probe. Each entry is separately read-valid
 *    (pageNum) and write-valid (writableNum): a shared page may be
 *    read through the cache but the first write must take the slow
 *    path so it can clone. Copies/moves of a Memory reset the
 *    destination cache rather than inherit pointers into another
 *    image's pages, and copying *from* an image demotes the source's
 *    write-valid entries (its pages just became shared).
 *
 *  - Multi-byte read/write that do not cross a page boundary are a
 *    single in-page memcpy; only page-crossing accesses decompose into
 *    per-byte page lookups.
 */

#ifndef DISE_MEM_MEMORY_HPP
#define DISE_MEM_MEMORY_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/assembler/program.hpp"
#include "src/isa/inst.hpp"

namespace dise {

/** Flat simulated memory. Unwritten bytes read as zero. */
class Memory
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr uint64_t kPageSize = uint64_t(1) << kPageShift;

    Memory() = default;
    /**
     * Copies share the source's pages copy-on-write and never inherit
     * its cached pointers. The source's write-valid cache entries are
     * demoted (its pages are now shared); entries already demoted are
     * left untouched, so copying from a frozen snapshot performs no
     * stores on the shared object and is safe from many threads.
     */
    Memory(const Memory &other) : pages_(other.pages_)
    {
        other.demoteWritable();
    }
    Memory(Memory &&other) noexcept : pages_(std::move(other.pages_))
    {
        other.resetTranslationCache();
    }
    Memory &
    operator=(const Memory &other)
    {
        if (this != &other) {
            pages_ = other.pages_;
            resetTranslationCache();
            other.demoteWritable();
        }
        return *this;
    }
    Memory &
    operator=(Memory &&other) noexcept
    {
        if (this != &other) {
            pages_ = std::move(other.pages_);
            resetTranslationCache();
            other.resetTranslationCache();
        }
        return *this;
    }

    uint8_t
    readByte(Addr addr) const
    {
        const uint8_t *page = pageData(addr);
        return page ? page[addr & (kPageSize - 1)] : 0;
    }
    void
    writeByte(Addr addr, uint8_t value)
    {
        pageDataForWrite(addr)[addr & (kPageSize - 1)] = value;
    }

    /** Little-endian read of 1, 2, 4 or 8 bytes. */
    uint64_t read(Addr addr, unsigned size) const;
    /** Little-endian write of 1, 2, 4 or 8 bytes. */
    void write(Addr addr, uint64_t value, unsigned size);

    uint32_t readWord(Addr addr) const
    {
        return static_cast<uint32_t>(read(addr, 4));
    }
    uint64_t readQuad(Addr addr) const { return read(addr, 8); }

    /** Copy a program's text and data into memory. */
    void loadProgram(const Program &prog);

    /** Bulk write. */
    void writeBlock(Addr addr, const uint8_t *src, size_t len);

    /** FNV-1a checksum over [addr, addr+len); used by integration tests. */
    uint64_t checksum(Addr addr, uint64_t len) const;

    /**
     * Flip one bit: fault-injection hook. @p bit selects within the byte
     * at @p addr + bit/8 (i.e. bit indexes a little-endian bit offset
     * from @p addr).
     */
    void
    flipBit(Addr addr, unsigned bit)
    {
        const Addr byteAddr = addr + bit / 8;
        writeByte(byteAddr, readByte(byteAddr) ^ uint8_t(1u << (bit % 8)));
    }

    /** Number of distinct pages touched. */
    size_t pagesTouched() const { return pages_.size(); }

    /** Number of pages whose storage is shared with another image. */
    size_t
    pagesShared() const
    {
        size_t n = 0;
        for (const auto &kv : pages_)
            if (kv.second && kv.second.use_count() > 1)
                ++n;
        return n;
    }

  private:
    using Page = std::vector<uint8_t>;

    /**
     * Direct-mapped page-number -> page-storage translation cache.
     * pageNum validates the entry for reads; writableNum additionally
     * validates it for writes (only uniquely-owned pages may be
     * written in place).
     */
    struct TransEntry
    {
        uint64_t pageNum = ~uint64_t(0);
        uint64_t writableNum = ~uint64_t(0);
        uint8_t *data = nullptr;
    };
    static constexpr size_t kTransEntries = 64;

    void
    resetTranslationCache()
    {
        trans_.fill(TransEntry());
    }

    /**
     * Drop write permission from every cache entry; reads stay cached.
     * Called on the *source* of a copy. The store is conditional so a
     * frozen image (cache already demoted or reset) is never written.
     */
    void
    demoteWritable() const
    {
        for (TransEntry &e : trans_) {
            if (e.writableNum != ~uint64_t(0))
                e.writableNum = ~uint64_t(0);
        }
    }

    /** Page storage holding @p addr, or nullptr when untouched. */
    const uint8_t *
    pageData(Addr addr) const
    {
        const uint64_t pn = addr >> kPageShift;
        TransEntry &entry = trans_[pn & (kTransEntries - 1)];
        if (entry.pageNum == pn)
            return entry.data;
        const auto it = pages_.find(pn);
        if (it == pages_.end() || !it->second)
            return nullptr; // absent pages are not cached: they may appear
        entry.pageNum = pn;
        // A uniquely-owned page may also be written through the cache;
        // a shared one must write-fault so it can be cloned first.
        entry.writableNum = it->second.use_count() == 1 ? pn : ~uint64_t(0);
        entry.data = it->second->data();
        return entry.data;
    }

    /** Page storage holding @p addr, allocated or cloned on first write. */
    uint8_t *
    pageDataForWrite(Addr addr)
    {
        const uint64_t pn = addr >> kPageShift;
        TransEntry &entry = trans_[pn & (kTransEntries - 1)];
        if (entry.writableNum == pn)
            return entry.data;
        return pageDataForWriteSlow(pn, entry);
    }

    /** Write miss: allocate an untouched page or clone a shared one. */
    uint8_t *pageDataForWriteSlow(uint64_t pn, TransEntry &entry);

    std::unordered_map<uint64_t, std::shared_ptr<Page>> pages_;
    mutable std::array<TransEntry, kTransEntries> trans_{};
};

} // namespace dise

#endif // DISE_MEM_MEMORY_HPP
