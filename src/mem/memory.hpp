/**
 * @file
 * Sparse byte-addressable memory image with little-endian multi-byte
 * accessors. Backing store is a page map, so the 64-bit address space
 * costs only what is touched.
 */

#ifndef DISE_MEM_MEMORY_HPP
#define DISE_MEM_MEMORY_HPP

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/assembler/program.hpp"
#include "src/isa/inst.hpp"

namespace dise {

/** Flat simulated memory. Unwritten bytes read as zero. */
class Memory
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr uint64_t kPageSize = uint64_t(1) << kPageShift;

    uint8_t readByte(Addr addr) const;
    void writeByte(Addr addr, uint8_t value);

    /** Little-endian read of 1, 2, 4 or 8 bytes. */
    uint64_t read(Addr addr, unsigned size) const;
    /** Little-endian write of 1, 2, 4 or 8 bytes. */
    void write(Addr addr, uint64_t value, unsigned size);

    uint32_t readWord(Addr addr) const
    {
        return static_cast<uint32_t>(read(addr, 4));
    }
    uint64_t readQuad(Addr addr) const { return read(addr, 8); }

    /** Copy a program's text and data into memory. */
    void loadProgram(const Program &prog);

    /** Bulk write. */
    void writeBlock(Addr addr, const uint8_t *src, size_t len);

    /** FNV-1a checksum over [addr, addr+len); used by integration tests. */
    uint64_t checksum(Addr addr, uint64_t len) const;

    /**
     * Flip one bit: fault-injection hook. @p bit selects within the byte
     * at @p addr + bit/8 (i.e. bit indexes a little-endian bit offset
     * from @p addr).
     */
    void
    flipBit(Addr addr, unsigned bit)
    {
        const Addr byteAddr = addr + bit / 8;
        writeByte(byteAddr, readByte(byteAddr) ^ uint8_t(1u << (bit % 8)));
    }

    /** Number of distinct pages touched. */
    size_t pagesTouched() const { return pages_.size(); }

  private:
    using Page = std::vector<uint8_t>;

    Page *findPage(Addr addr);
    const Page *findPage(Addr addr) const;
    Page &touchPage(Addr addr);

    std::unordered_map<uint64_t, Page> pages_;
};

} // namespace dise

#endif // DISE_MEM_MEMORY_HPP
