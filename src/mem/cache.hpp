/**
 * @file
 * Set-associative LRU caches and the two-level hierarchy used by the
 * timing model (32 KB split L1s over a unified 1 MB L2 by default,
 * matching the paper's simulated machine).
 */

#ifndef DISE_MEM_CACHE_HPP
#define DISE_MEM_CACHE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/stats.hpp"
#include "src/isa/inst.hpp"

namespace dise {

/** Configuration for one cache level. */
struct CacheParams
{
    std::string name = "cache";
    /** Capacity in bytes; 0 means a perfect (always-hit) cache. */
    uint32_t sizeBytes = 32 * 1024;
    uint32_t assoc = 2;
    uint32_t lineBytes = 64;
    /** Latency of a hit in this level, in cycles. */
    uint32_t hitLatency = 1;
};

/**
 * One cache level. Write-back, write-allocate, true-LRU replacement.
 * Misses recurse into the next level (or pay the memory latency).
 */
class Cache
{
  public:
    /**
     * @param params Geometry and latency.
     * @param next Next level, or nullptr if backed directly by memory.
     * @param memLatency Latency of a memory access (used when next is
     *                   nullptr).
     */
    Cache(const CacheParams &params, Cache *next, uint32_t memLatency);

    /**
     * Access one address.
     * @param addr Byte address (the whole access is assumed to fit in
     *             one line).
     * @param write True for stores.
     * @return Total latency in cycles, including lower levels on a miss.
     */
    uint32_t access(Addr addr, bool write);

    /**
     * The caller-accounted hot variant of access(): identical line,
     * LRU, miss, and writeback behaviour (access() is implemented on
     * top of it), except that the per-access "accesses"/"writes"
     * counter bumps are the caller's responsibility — hot consumers
     * (the trace-feed timing path, sampled-mode warming) bump cached
     * StatGroup::cell() pointers instead, keeping the common
     * MRU-hit case free of map lookups. Final counter values are
     * identical either way; miss-side stats stay internal.
     */
    uint32_t
    accessHot(Addr addr, bool write)
    {
        if (perfect_)
            return params_.hitLatency;
        const uint64_t la = uint64_t(addr) >> lineShift_;
        const uint64_t set = la & (numSets_ - 1);
        const uint64_t tag = la >> tagShift_;
        Line *way = &lines_[set * params_.assoc];
        Line &mruLine = way[mru_[set]];
        if (mruLine.valid && mruLine.tag == tag) {
            mruLine.lastUse = ++useCounter_;
            if (write)
                mruLine.dirty = true;
            return params_.hitLatency;
        }
        return accessFillPath(addr, write, set, tag);
    }

    /** Mutable stats access for cell() caching by hot consumers. */
    StatGroup &statsMutable() { return stats_; }

    /** True if @p addr is resident (no state change, no stats). */
    bool probe(Addr addr) const;

    /**
     * Drop all lines. Dirty victims are NOT written back to the next
     * level; each one discarded is counted in the "writebacks_dropped"
     * stat so lost store traffic stays visible in the timing stats.
     */
    void invalidateAll();

    bool isPerfect() const { return perfect_; }
    uint32_t lineBytes() const { return params_.lineBytes; }

    uint64_t accesses() const { return stats_.get("accesses"); }
    uint64_t misses() const { return stats_.get("misses"); }
    double
    missRate() const
    {
        return safeRatio(double(misses()), double(accesses()));
    }

    const StatGroup &stats() const { return stats_; }

    /**
     * Adopt another cache's line/LRU/statistics state (checkpoint
     * restore). Geometry must match; the next-level link is untouched,
     * so adopting never re-wires a hierarchy.
     */
    void adoptState(const Cache &other);

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        uint64_t tag = 0;
        uint64_t lastUse = 0;
    };

    uint64_t lineAddr(Addr addr) const { return addr / params_.lineBytes; }

    /** Non-MRU hits and the whole miss path of accessHot(). */
    uint32_t accessFillPath(Addr addr, bool write, uint64_t set,
                            uint64_t tag);

    CacheParams params_;
    Cache *next_;
    uint32_t memLatency_;
    bool perfect_;
    uint32_t numSets_ = 1;
    uint32_t lineShift_ = 0; ///< log2(lineBytes); valid when !perfect_
    uint32_t tagShift_ = 0;  ///< log2(numSets_); valid when !perfect_
    std::vector<Line> lines_; ///< numSets_ x assoc, row-major
    /**
     * Most-recently-used way per set: access() probes it before the
     * associative scan, so the common hit-the-MRU-line case exits
     * early. Purely a fast path — hit/miss/writeback accounting and LRU
     * state are identical with or without it.
     */
    std::vector<uint32_t> mru_;
    uint64_t useCounter_ = 0;
    StatGroup stats_;
};

/** Configuration of the full hierarchy. */
struct MemHierarchyParams
{
    uint32_t l1iSize = 32 * 1024; ///< 0 = perfect I-cache
    uint32_t l1iAssoc = 2;
    uint32_t l1dSize = 32 * 1024;
    uint32_t l1dAssoc = 2;
    uint32_t l2Size = 1 << 20;
    uint32_t l2Assoc = 8;
    uint32_t lineBytes = 64;
    uint32_t l1Latency = 1;
    uint32_t l2Latency = 10;
    uint32_t memLatency = 100;
};

/** Split L1 I/D over a unified L2. */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const MemHierarchyParams &params);

    /** Instruction fetch of the line containing @p addr. */
    uint32_t fetchAccess(Addr addr) { return icache_->access(addr, false); }
    /** Data access. */
    uint32_t
    dataAccess(Addr addr, bool write)
    {
        return dcache_->access(addr, write);
    }

    Cache &icache() { return *icache_; }
    Cache &dcache() { return *dcache_; }
    Cache &l2() { return *l2_; }

    const MemHierarchyParams &params() const { return params_; }

    /** Adopt another (same-geometry) hierarchy's cache state. */
    void
    adoptState(const MemHierarchy &other)
    {
        l2_->adoptState(*other.l2_);
        icache_->adoptState(*other.icache_);
        dcache_->adoptState(*other.dcache_);
    }

  private:
    MemHierarchyParams params_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Cache> icache_;
    std::unique_ptr<Cache> dcache_;
};

} // namespace dise

#endif // DISE_MEM_CACHE_HPP
