#include "src/mem/memory.hpp"

#include <algorithm>
#include <cstring>

#include "src/common/logging.hpp"

namespace dise {

/**
 * The in-page fast path assembles/disassembles values with one memcpy,
 * which matches the architected little-endian layout only on a
 * little-endian host; big-endian hosts use the byte loop everywhere.
 */
#if defined(__BYTE_ORDER__) &&                                              \
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
static constexpr bool kHostLittleEndian = true;
#else
static constexpr bool kHostLittleEndian = false;
#endif

uint8_t *
Memory::pageDataForWriteSlow(uint64_t pn, TransEntry &entry)
{
    std::shared_ptr<Page> &slot = pages_[pn];
    if (!slot) {
        slot = std::make_shared<Page>(kPageSize, uint8_t(0));
    } else if (slot.use_count() > 1) {
        // Write fault on a shared page: clone it. Other owners keep the
        // old storage alive, so their cached read pointers stay valid.
        slot = std::make_shared<Page>(*slot);
    }
    entry.pageNum = pn;
    entry.writableNum = pn;
    entry.data = slot->data();
    return entry.data;
}

uint64_t
Memory::read(Addr addr, unsigned size) const
{
    DISE_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                "bad access size");
    const uint64_t off = addr & (kPageSize - 1);
    if (kHostLittleEndian && off + size <= kPageSize) {
        const uint8_t *page = pageData(addr);
        if (!page)
            return 0; // whole access inside an untouched page
        uint64_t value = 0;
        std::memcpy(&value, page + off, size);
        return value;
    }
    // Page-crossing (or big-endian-host) fallback: per-byte lookups.
    uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i)
        value |= static_cast<uint64_t>(readByte(addr + i)) << (8 * i);
    return value;
}

void
Memory::write(Addr addr, uint64_t value, unsigned size)
{
    DISE_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                "bad access size");
    const uint64_t off = addr & (kPageSize - 1);
    if (kHostLittleEndian && off + size <= kPageSize) {
        std::memcpy(pageDataForWrite(addr) + off, &value, size);
        return;
    }
    for (unsigned i = 0; i < size; ++i)
        writeByte(addr + i, static_cast<uint8_t>(value >> (8 * i)));
}

void
Memory::loadProgram(const Program &prog)
{
    for (size_t i = 0; i < prog.text.size(); ++i)
        write(prog.textBase + i * 4, prog.text[i], 4);
    if (!prog.data.empty())
        writeBlock(prog.dataBase, prog.data.data(), prog.data.size());
}

void
Memory::writeBlock(Addr addr, const uint8_t *src, size_t len)
{
    while (len > 0) {
        const uint64_t off = addr & (kPageSize - 1);
        const size_t chunk =
            static_cast<size_t>(std::min<uint64_t>(len, kPageSize - off));
        std::memcpy(pageDataForWrite(addr) + off, src, chunk);
        addr += chunk;
        src += chunk;
        len -= chunk;
    }
}

uint64_t
Memory::checksum(Addr addr, uint64_t len) const
{
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (uint64_t i = 0; i < len; ++i) {
        hash ^= readByte(addr + i);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace dise
