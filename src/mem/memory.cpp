#include "src/mem/memory.hpp"

#include "src/common/logging.hpp"

namespace dise {

Memory::Page *
Memory::findPage(Addr addr)
{
    const auto it = pages_.find(addr >> kPageShift);
    return it == pages_.end() ? nullptr : &it->second;
}

const Memory::Page *
Memory::findPage(Addr addr) const
{
    const auto it = pages_.find(addr >> kPageShift);
    return it == pages_.end() ? nullptr : &it->second;
}

Memory::Page &
Memory::touchPage(Addr addr)
{
    Page &page = pages_[addr >> kPageShift];
    if (page.empty())
        page.assign(kPageSize, 0);
    return page;
}

uint8_t
Memory::readByte(Addr addr) const
{
    const Page *page = findPage(addr);
    return page ? (*page)[addr & (kPageSize - 1)] : 0;
}

void
Memory::writeByte(Addr addr, uint8_t value)
{
    touchPage(addr)[addr & (kPageSize - 1)] = value;
}

uint64_t
Memory::read(Addr addr, unsigned size) const
{
    DISE_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                "bad access size");
    uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i)
        value |= static_cast<uint64_t>(readByte(addr + i)) << (8 * i);
    return value;
}

void
Memory::write(Addr addr, uint64_t value, unsigned size)
{
    DISE_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                "bad access size");
    for (unsigned i = 0; i < size; ++i)
        writeByte(addr + i, static_cast<uint8_t>(value >> (8 * i)));
}

void
Memory::loadProgram(const Program &prog)
{
    for (size_t i = 0; i < prog.text.size(); ++i)
        write(prog.textBase + i * 4, prog.text[i], 4);
    if (!prog.data.empty())
        writeBlock(prog.dataBase, prog.data.data(), prog.data.size());
}

void
Memory::writeBlock(Addr addr, const uint8_t *src, size_t len)
{
    for (size_t i = 0; i < len; ++i)
        writeByte(addr + i, src[i]);
}

uint64_t
Memory::checksum(Addr addr, uint64_t len) const
{
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (uint64_t i = 0; i < len; ++i) {
        hash ^= readByte(addr + i);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace dise
