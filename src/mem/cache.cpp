#include "src/mem/cache.hpp"

#include "src/common/bits.hpp"
#include "src/common/logging.hpp"

namespace dise {

Cache::Cache(const CacheParams &params, Cache *next, uint32_t memLatency)
    : params_(params), next_(next), memLatency_(memLatency),
      perfect_(params.sizeBytes == 0), stats_(params.name)
{
    if (perfect_)
        return;
    DISE_ASSERT(isPow2(params_.lineBytes), "line size must be pow2");
    DISE_ASSERT(params_.assoc > 0, "assoc must be nonzero");
    DISE_ASSERT(params_.sizeBytes %
                        (params_.lineBytes * params_.assoc) == 0,
                "size must be a multiple of line*assoc");
    numSets_ = params_.sizeBytes / (params_.lineBytes * params_.assoc);
    DISE_ASSERT(isPow2(numSets_), "set count must be pow2");
    lineShift_ = log2i(params_.lineBytes);
    tagShift_ = log2i(numSets_);
    lines_.assign(size_t(numSets_) * params_.assoc, Line());
    mru_.assign(numSets_, 0);
}

uint32_t
Cache::access(Addr addr, bool write)
{
    stats_.add("accesses");
    if (write)
        stats_.add("writes");
    // accessHot() is the whole algorithm (MRU probe inline, the rest
    // in accessFillPath); access() only adds the per-access counters
    // the hot callers account for themselves.
    return accessHot(addr, write);
}

uint32_t
Cache::accessFillPath(Addr addr, bool write, uint64_t set, uint64_t tag)
{
    Line *way = &lines_[set * params_.assoc];
    Line *hit = nullptr;
    Line *victim = &way[0];
    for (uint32_t w = 0; w < params_.assoc; ++w) {
        if (way[w].valid && way[w].tag == tag) {
            hit = &way[w];
            break;
        }
        if (!way[w].valid || way[w].lastUse < victim->lastUse)
            victim = &way[w];
    }

    if (hit) {
        hit->lastUse = ++useCounter_;
        if (write)
            hit->dirty = true;
        mru_[set] = static_cast<uint32_t>(hit - way);
        return params_.hitLatency;
    }

    stats_.add("misses");
    uint32_t latency = params_.hitLatency;
    // Write back the victim.
    if (victim->valid && victim->dirty) {
        stats_.add("writebacks");
        if (next_) {
            const uint64_t victimLine =
                (victim->tag << log2i(numSets_)) | set;
            next_->access(victimLine * params_.lineBytes, true);
        }
    }
    // Fill from below.
    if (next_)
        latency += next_->access(addr, false);
    else
        latency += memLatency_;
    victim->valid = true;
    victim->dirty = write;
    victim->tag = tag;
    victim->lastUse = ++useCounter_;
    mru_[set] = static_cast<uint32_t>(victim - way);
    return latency;
}

bool
Cache::probe(Addr addr) const
{
    if (perfect_)
        return true;
    const uint64_t la = lineAddr(addr);
    const uint64_t set = la & (numSets_ - 1);
    const uint64_t tag = la >> log2i(numSets_);
    const Line *way = &lines_[set * params_.assoc];
    for (uint32_t w = 0; w < params_.assoc; ++w)
        if (way[w].valid && way[w].tag == tag)
            return true;
    return false;
}

void
Cache::invalidateAll()
{
    // Dropping a dirty line loses store traffic the timing stats would
    // otherwise see at the next level; count each occurrence so runs
    // that invalidate mid-stream can't silently shed writebacks.
    for (auto &line : lines_) {
        if (line.valid && line.dirty)
            stats_.add("writebacks_dropped");
        line = Line();
    }
}

void
Cache::adoptState(const Cache &other)
{
    DISE_ASSERT(numSets_ == other.numSets_ &&
                    params_.assoc == other.params_.assoc &&
                    params_.lineBytes == other.params_.lineBytes &&
                    perfect_ == other.perfect_,
                "adoptState between caches of different geometry");
    lines_ = other.lines_;
    mru_ = other.mru_;
    useCounter_ = other.useCounter_;
    stats_ = other.stats_;
}

MemHierarchy::MemHierarchy(const MemHierarchyParams &params)
    : params_(params)
{
    CacheParams l2p;
    l2p.name = "l2";
    l2p.sizeBytes = params.l2Size;
    l2p.assoc = params.l2Assoc;
    l2p.lineBytes = params.lineBytes;
    l2p.hitLatency = params.l2Latency;
    l2_ = std::make_unique<Cache>(l2p, nullptr, params.memLatency);

    CacheParams l1i;
    l1i.name = "l1i";
    l1i.sizeBytes = params.l1iSize;
    l1i.assoc = params.l1iAssoc;
    l1i.lineBytes = params.lineBytes;
    l1i.hitLatency = params.l1Latency;
    icache_ = std::make_unique<Cache>(l1i, l2_.get(), params.memLatency);

    CacheParams l1d;
    l1d.name = "l1d";
    l1d.sizeBytes = params.l1dSize;
    l1d.assoc = params.l1dAssoc;
    l1d.lineBytes = params.lineBytes;
    l1d.hitLatency = params.l1Latency;
    dcache_ = std::make_unique<Cache>(l1d, l2_.get(), params.memLatency);
}

} // namespace dise
