/**
 * @file
 * Opcode and opcode-class definitions for the DISE target ISA.
 *
 * The ISA is a regularized Alpha-flavoured 64-bit RISC: 32-bit fixed-width
 * instructions, 6-bit opcodes, 32 architectural integer registers, and a
 * bank of 8 DISE dedicated registers reachable only from replacement
 * sequences. The regular encoding lets the DISE pattern table match on
 * masked raw instruction bits, as Section 2.2 of the paper assumes.
 *
 * Four reserved opcodes (RES0..RES3) are set aside for aware-ACF codewords,
 * and a family of DISE-internal branches (DBEQ/DBNE/DBR/DBLT/DBGE) move the
 * DISEPC instead of the PC; these never occur in application text.
 */

#ifndef DISE_ISA_OPCODES_HPP
#define DISE_ISA_OPCODES_HPP

#include <cstdint>
#include <optional>
#include <string>

namespace dise {

/** A raw 32-bit instruction word. */
using Word = uint32_t;

/** Instruction opcodes; the enumerator value is the 6-bit encoding. */
enum class Opcode : uint8_t {
    NOP   = 0x00,
    // Address arithmetic (operate-style adds encoded in memory format).
    LDA   = 0x01, ///< ra <- rb + disp
    LDAH  = 0x02, ///< ra <- rb + (disp << 16)
    // Loads / stores.
    LDBU  = 0x03, ///< load byte, zero-extend
    LDL   = 0x04, ///< load 32-bit, sign-extend
    LDQ   = 0x05, ///< load 64-bit
    STB   = 0x06,
    STL   = 0x07,
    STQ   = 0x08,
    // Direct branches (branch format; target = pc + 4 + disp*4).
    BR    = 0x09, ///< unconditional, ra <- pc + 4
    BSR   = 0x0a, ///< call, ra <- pc + 4
    BEQ   = 0x0b,
    BNE   = 0x0c,
    BLT   = 0x0d,
    BLE   = 0x0e,
    BGT   = 0x0f,
    BGE   = 0x10,
    BLBC  = 0x11, ///< branch if low bit clear
    BLBS  = 0x12, ///< branch if low bit set
    // Indirect jumps (jump format).
    JMP   = 0x13, ///< ra <- pc + 4, pc <- rb
    JSR   = 0x14, ///< call through register
    RET   = 0x15, ///< return through register
    SYSCALL = 0x16, ///< OS request; function code in r0
    // Integer operate (operate format; rb or 8-bit literal).
    ADDQ  = 0x18,
    SUBQ  = 0x19,
    MULQ  = 0x1a,
    AND   = 0x1b,
    BIC   = 0x1c, ///< ra & ~rb
    OR    = 0x1d,
    ORNOT = 0x1e,
    XOR   = 0x1f,
    SLL   = 0x20,
    SRL   = 0x21,
    SRA   = 0x22,
    CMPEQ = 0x23,
    CMPLT = 0x24,
    CMPLE = 0x25,
    CMPULT = 0x26,
    CMPULE = 0x27,
    CMOVEQ = 0x28, ///< rc <- rb if ra == 0
    CMOVNE = 0x29, ///< rc <- rb if ra != 0
    // Fused internal ops (macro-op fusion ACF, src/acf/fusion). These
    // never appear in application text or assembler input: the decoder
    // synthesizes them from adjacent dependent pairs at fetch, so the
    // table marks them invalid (no encoding surface) while still giving
    // them a mnemonic and class for disassembly and timing.
    FCMPBR = 0x2a, ///< cmpXX ra,rb|#lit,rc ; bYY rc,disp
    FLDAC  = 0x2b, ///< ldah r,h(base) ; lda r,l(r)   (constant formation)
    FSHADD = 0x2c, ///< sll ra,#k,rc ; addq rc,rb,rc  (scaled index)
    FLDAL  = 0x2d, ///< lda r,d(base) ; ldX r,d2(r)   (address-formed load)
    FLDAS  = 0x2e, ///< lda r,d(base) ; stX rx,d2(r)  (address-formed store)
    FLDOP  = 0x2f, ///< ldq r,d(base) ; OP r,rx,r     (load-op)
    // Reserved opcodes: DISE codewords for aware ACFs.
    RES0  = 0x30,
    RES1  = 0x31,
    RES2  = 0x32,
    RES3  = 0x33,
    // DISE-internal branches: branch format, but the displacement moves the
    // DISEPC within the current replacement sequence, not the PC.
    DBEQ  = 0x38,
    DBNE  = 0x39,
    DBR   = 0x3a,
    DBLT  = 0x3b,
    DBGE  = 0x3c,

    NUM_OPCODES = 0x40,
};

/** Broad behavioural classes; DISE patterns can match on these. */
enum class OpClass : uint8_t {
    Nop,
    IntAlu,       ///< add/sub/logic/shift/compare/cmov/lda/ldah
    IntMult,
    Load,
    Store,
    CondBranch,   ///< conditional PC-relative branch
    UncondBranch, ///< BR
    Call,         ///< BSR
    Jump,         ///< JMP (indirect)
    CallIndirect, ///< JSR
    Return,       ///< RET
    Syscall,
    Codeword,     ///< reserved opcodes used as aware-ACF triggers
    DiseBranch,   ///< DISEPC-relative branch, replacement sequences only
    Invalid,
};

/** Encoding formats. */
enum class InstFormat : uint8_t {
    Nop,      ///< all fields ignored
    Memory,   ///< op ra, disp(rb)
    Branch,   ///< op ra, disp  (21-bit word displacement)
    Jump,     ///< op ra, (rb)
    Operate,  ///< op ra, rb|#lit, rc
    Codeword, ///< op tag, p1, p2, p3 / 15-bit immediate parameter
    Syscall,
};

/** Static properties of an opcode. */
struct OpInfo
{
    Opcode op;
    const char *mnemonic;
    InstFormat format;
    OpClass cls;
    bool valid; ///< false for holes in the opcode space
};

/** Look up static info; unassigned encodings return an invalid entry. */
const OpInfo &opInfo(Opcode op);

/** Mnemonic for an opcode ("<inv>" for invalid ones). */
const char *opName(Opcode op);

/** Parse a mnemonic; empty when unknown. */
std::optional<Opcode> opFromName(const std::string &name);

/**
 * True for the fused internal opcodes synthesized by the macro-op
 * fusion ACF. Fused ops have no encoding (opInfo(op).valid is false):
 * they exist only in synthesized DecodedInsts, so a decoded raw word
 * carrying one of these opcode bits still classifies as Invalid.
 */
inline bool
isFusedOp(Opcode op)
{
    return op >= Opcode::FCMPBR && op <= Opcode::FLDOP;
}

/** True if @p cls reads memory. */
inline bool
isLoadClass(OpClass cls)
{
    return cls == OpClass::Load;
}

/** True if @p cls writes memory. */
inline bool
isStoreClass(OpClass cls)
{
    return cls == OpClass::Store;
}

/** True for any instruction that can redirect the application PC. */
inline bool
isControlClass(OpClass cls)
{
    switch (cls) {
      case OpClass::CondBranch:
      case OpClass::UncondBranch:
      case OpClass::Call:
      case OpClass::Jump:
      case OpClass::CallIndirect:
      case OpClass::Return:
        return true;
      default:
        return false;
    }
}

/** True for indirect control transfers (target from a register). */
inline bool
isIndirectClass(OpClass cls)
{
    return cls == OpClass::Jump || cls == OpClass::CallIndirect ||
           cls == OpClass::Return;
}

/** Human-readable class name. */
const char *opClassName(OpClass cls);

} // namespace dise

#endif // DISE_ISA_OPCODES_HPP
