/**
 * @file
 * Disassembler producing text in the same syntax the assembler accepts,
 * so instruction streams can be round-tripped in tests.
 */

#ifndef DISE_ISA_DISASM_HPP
#define DISE_ISA_DISASM_HPP

#include <string>

#include "src/isa/inst.hpp"

namespace dise {

/**
 * Disassemble one instruction.
 *
 * @param inst The decoded instruction.
 * @param pc When nonzero, direct-branch targets are printed as absolute
 *           hex addresses; otherwise as ".+N" relative offsets.
 */
std::string disassemble(const DecodedInst &inst, Addr pc = 0);

/** Disassemble a raw word. */
std::string disassemble(Word word, Addr pc = 0);

} // namespace dise

#endif // DISE_ISA_DISASM_HPP
