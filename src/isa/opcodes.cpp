#include "src/isa/opcodes.hpp"

#include <array>
#include <unordered_map>

namespace dise {

namespace {

constexpr size_t kNumOps = static_cast<size_t>(Opcode::NUM_OPCODES);

/** Build the static opcode table once. */
std::array<OpInfo, kNumOps>
buildTable()
{
    std::array<OpInfo, kNumOps> table{};
    for (size_t i = 0; i < kNumOps; ++i) {
        table[i] = {static_cast<Opcode>(i), "<inv>", InstFormat::Nop,
                    OpClass::Invalid, false};
    }
    auto def = [&](Opcode op, const char *name, InstFormat fmt,
                   OpClass cls) {
        table[static_cast<size_t>(op)] = {op, name, fmt, cls, true};
    };
    def(Opcode::NOP, "nop", InstFormat::Nop, OpClass::Nop);
    def(Opcode::LDA, "lda", InstFormat::Memory, OpClass::IntAlu);
    def(Opcode::LDAH, "ldah", InstFormat::Memory, OpClass::IntAlu);
    def(Opcode::LDBU, "ldbu", InstFormat::Memory, OpClass::Load);
    def(Opcode::LDL, "ldl", InstFormat::Memory, OpClass::Load);
    def(Opcode::LDQ, "ldq", InstFormat::Memory, OpClass::Load);
    def(Opcode::STB, "stb", InstFormat::Memory, OpClass::Store);
    def(Opcode::STL, "stl", InstFormat::Memory, OpClass::Store);
    def(Opcode::STQ, "stq", InstFormat::Memory, OpClass::Store);
    def(Opcode::BR, "br", InstFormat::Branch, OpClass::UncondBranch);
    def(Opcode::BSR, "bsr", InstFormat::Branch, OpClass::Call);
    def(Opcode::BEQ, "beq", InstFormat::Branch, OpClass::CondBranch);
    def(Opcode::BNE, "bne", InstFormat::Branch, OpClass::CondBranch);
    def(Opcode::BLT, "blt", InstFormat::Branch, OpClass::CondBranch);
    def(Opcode::BLE, "ble", InstFormat::Branch, OpClass::CondBranch);
    def(Opcode::BGT, "bgt", InstFormat::Branch, OpClass::CondBranch);
    def(Opcode::BGE, "bge", InstFormat::Branch, OpClass::CondBranch);
    def(Opcode::BLBC, "blbc", InstFormat::Branch, OpClass::CondBranch);
    def(Opcode::BLBS, "blbs", InstFormat::Branch, OpClass::CondBranch);
    def(Opcode::JMP, "jmp", InstFormat::Jump, OpClass::Jump);
    def(Opcode::JSR, "jsr", InstFormat::Jump, OpClass::CallIndirect);
    def(Opcode::RET, "ret", InstFormat::Jump, OpClass::Return);
    def(Opcode::SYSCALL, "syscall", InstFormat::Syscall, OpClass::Syscall);
    def(Opcode::ADDQ, "addq", InstFormat::Operate, OpClass::IntAlu);
    def(Opcode::SUBQ, "subq", InstFormat::Operate, OpClass::IntAlu);
    def(Opcode::MULQ, "mulq", InstFormat::Operate, OpClass::IntMult);
    def(Opcode::AND, "and", InstFormat::Operate, OpClass::IntAlu);
    def(Opcode::BIC, "bic", InstFormat::Operate, OpClass::IntAlu);
    def(Opcode::OR, "or", InstFormat::Operate, OpClass::IntAlu);
    def(Opcode::ORNOT, "ornot", InstFormat::Operate, OpClass::IntAlu);
    def(Opcode::XOR, "xor", InstFormat::Operate, OpClass::IntAlu);
    def(Opcode::SLL, "sll", InstFormat::Operate, OpClass::IntAlu);
    def(Opcode::SRL, "srl", InstFormat::Operate, OpClass::IntAlu);
    def(Opcode::SRA, "sra", InstFormat::Operate, OpClass::IntAlu);
    def(Opcode::CMPEQ, "cmpeq", InstFormat::Operate, OpClass::IntAlu);
    def(Opcode::CMPLT, "cmplt", InstFormat::Operate, OpClass::IntAlu);
    def(Opcode::CMPLE, "cmple", InstFormat::Operate, OpClass::IntAlu);
    def(Opcode::CMPULT, "cmpult", InstFormat::Operate, OpClass::IntAlu);
    def(Opcode::CMPULE, "cmpule", InstFormat::Operate, OpClass::IntAlu);
    def(Opcode::CMOVEQ, "cmoveq", InstFormat::Operate, OpClass::IntAlu);
    def(Opcode::CMOVNE, "cmovne", InstFormat::Operate, OpClass::IntAlu);
    // Fused internal ops: a mnemonic and class for disassembly/timing,
    // but valid=false — they have no encoding, the assembler cannot
    // emit them, and a raw word with these opcode bits decodes Invalid.
    auto defFused = [&](Opcode op, const char *name, InstFormat fmt,
                        OpClass cls) {
        table[static_cast<size_t>(op)] = {op, name, fmt, cls, false};
    };
    defFused(Opcode::FCMPBR, "fcmpbr", InstFormat::Operate,
             OpClass::CondBranch);
    defFused(Opcode::FLDAC, "fldac", InstFormat::Operate, OpClass::IntAlu);
    defFused(Opcode::FSHADD, "fshadd", InstFormat::Operate,
             OpClass::IntAlu);
    defFused(Opcode::FLDAL, "fldal", InstFormat::Memory, OpClass::Load);
    defFused(Opcode::FLDAS, "fldas", InstFormat::Memory, OpClass::Store);
    defFused(Opcode::FLDOP, "fldop", InstFormat::Memory, OpClass::Load);
    def(Opcode::RES0, "res0", InstFormat::Codeword, OpClass::Codeword);
    def(Opcode::RES1, "res1", InstFormat::Codeword, OpClass::Codeword);
    def(Opcode::RES2, "res2", InstFormat::Codeword, OpClass::Codeword);
    def(Opcode::RES3, "res3", InstFormat::Codeword, OpClass::Codeword);
    def(Opcode::DBEQ, "dbeq", InstFormat::Branch, OpClass::DiseBranch);
    def(Opcode::DBNE, "dbne", InstFormat::Branch, OpClass::DiseBranch);
    def(Opcode::DBR, "dbr", InstFormat::Branch, OpClass::DiseBranch);
    def(Opcode::DBLT, "dblt", InstFormat::Branch, OpClass::DiseBranch);
    def(Opcode::DBGE, "dbge", InstFormat::Branch, OpClass::DiseBranch);
    return table;
}

const std::array<OpInfo, kNumOps> &
table()
{
    static const std::array<OpInfo, kNumOps> t = buildTable();
    return t;
}

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    const size_t idx = static_cast<size_t>(op);
    static const OpInfo invalid = {Opcode::NUM_OPCODES, "<inv>",
                                   InstFormat::Nop, OpClass::Invalid, false};
    if (idx >= kNumOps)
        return invalid;
    return table()[idx];
}

const char *
opName(Opcode op)
{
    return opInfo(op).mnemonic;
}

std::optional<Opcode>
opFromName(const std::string &name)
{
    static const std::unordered_map<std::string, Opcode> byName = [] {
        std::unordered_map<std::string, Opcode> m;
        for (const auto &info : table())
            if (info.valid)
                m.emplace(info.mnemonic, info.op);
        return m;
    }();
    const auto it = byName.find(name);
    if (it == byName.end())
        return std::nullopt;
    return it->second;
}

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::Nop: return "nop";
      case OpClass::IntAlu: return "intalu";
      case OpClass::IntMult: return "intmult";
      case OpClass::Load: return "load";
      case OpClass::Store: return "store";
      case OpClass::CondBranch: return "condbranch";
      case OpClass::UncondBranch: return "uncondbranch";
      case OpClass::Call: return "call";
      case OpClass::Jump: return "jump";
      case OpClass::CallIndirect: return "callindirect";
      case OpClass::Return: return "return";
      case OpClass::Syscall: return "syscall";
      case OpClass::Codeword: return "codeword";
      case OpClass::DiseBranch: return "disebranch";
      case OpClass::Invalid: return "invalid";
    }
    return "invalid";
}

} // namespace dise
