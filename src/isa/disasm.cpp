#include "src/isa/disasm.hpp"

#include <sstream>

#include "src/common/logging.hpp"

namespace dise {

std::string
disassemble(const DecodedInst &inst, Addr pc)
{
    const OpInfo &info = opInfo(inst.op);
    if (isFusedOp(inst.op) && inst.cls != OpClass::Invalid) {
        // Synthesized fused internal ops (no encoding, raw == 0).
        std::ostringstream os;
        os << info.mnemonic << ' ';
        switch (inst.op) {
          case Opcode::FCMPBR:
            os << regName(inst.ra) << ", ";
            if (inst.useLit)
                os << '#' << (inst.tag & 0xff);
            else
                os << regName(inst.rb);
            os << ", " << regName(inst.rc) << ", ";
            if (pc != 0) {
                os << strFormat("0x%llx", (unsigned long long)
                                              inst.branchTarget(pc));
            } else {
                os << ".+" << inst.imm;
            }
            break;
          case Opcode::FLDAC:
            os << regName(inst.rc) << ", " << inst.imm << '('
               << regName(inst.ra) << ')';
            break;
          case Opcode::FSHADD:
            os << regName(inst.ra) << "<<" << (inst.tag & 0x3f) << ", ";
            if (inst.useLit)
                os << '#' << inst.imm;
            else
                os << regName(inst.rb);
            os << ", " << regName(inst.rc);
            break;
          case Opcode::FLDAL:
          case Opcode::FLDOP:
            os << regName(inst.ra) << ", " << inst.imm << '('
               << regName(inst.rb) << ')';
            if (inst.op == Opcode::FLDOP)
                os << ", " << regName(inst.rc);
            break;
          case Opcode::FLDAS:
            os << regName(inst.ra) << ", " << inst.imm << '('
               << regName(inst.rb) << ") -> " << regName(inst.rc);
            break;
          default:
            break;
        }
        return os.str();
    }
    if (!info.valid || inst.cls == OpClass::Invalid)
        return strFormat("<invalid 0x%08x>", inst.raw);

    std::ostringstream os;
    os << info.mnemonic;
    switch (info.format) {
      case InstFormat::Nop:
      case InstFormat::Syscall:
        break;
      case InstFormat::Memory:
        os << ' ' << regName(inst.ra) << ", " << inst.imm << '('
           << regName(inst.rb) << ')';
        break;
      case InstFormat::Branch:
        os << ' ' << regName(inst.ra) << ", ";
        if (inst.cls == OpClass::DiseBranch) {
            // DISEPC-relative displacement in replacement-sequence slots.
            os << "d." << (inst.imm >= 0 ? "+" : "") << inst.imm;
        } else if (pc != 0) {
            os << strFormat("0x%llx",
                            (unsigned long long)inst.branchTarget(pc));
        } else {
            os << ".+" << inst.imm;
        }
        break;
      case InstFormat::Jump:
        os << ' ' << regName(inst.ra) << ", (" << regName(inst.rb) << ')';
        break;
      case InstFormat::Operate:
        os << ' ' << regName(inst.ra) << ", ";
        if (inst.useLit)
            os << '#' << inst.imm;
        else
            os << regName(inst.rb);
        os << ", " << regName(inst.rc);
        break;
      case InstFormat::Codeword:
        os << ' ' << inst.tag << ", " << unsigned(inst.ra) << ", "
           << unsigned(inst.rb) << ", " << unsigned(inst.rc);
        break;
    }
    return os.str();
}

std::string
disassemble(Word word, Addr pc)
{
    return disassemble(decode(word), pc);
}

} // namespace dise
