#include "src/isa/inst.hpp"

#include "src/common/bits.hpp"
#include "src/common/logging.hpp"

namespace dise {

namespace {

/** CMOV reads its old destination (partial write semantics). */
bool
isCmov(Opcode op)
{
    return op == Opcode::CMOVEQ || op == Opcode::CMOVNE;
}

} // namespace

RegIndex
DecodedInst::destReg() const
{
    // Raw words whose opcode bits name a fused internal op decode to
    // cls Invalid with unparsed fields; only synthesized fused insts
    // carry a real class, so gate the format dispatch on it.
    if (cls == OpClass::Invalid)
        return kZeroReg;
    switch (opInfo(op).format) {
      case InstFormat::Memory:
        if (cls == OpClass::Store) {
            // Fused lda+store also writes the formed address register.
            return op == Opcode::FLDAS ? rc : kZeroReg;
        }
        return ra;
      case InstFormat::Branch:
        // Conditional branches read ra; BR/BSR link through ra. DISE
        // branches read ra and write nothing.
        if (cls == OpClass::UncondBranch || cls == OpClass::Call)
            return ra;
        return kZeroReg;
      case InstFormat::Jump:
        return ra;
      case InstFormat::Operate:
        return rc;
      default:
        return kZeroReg;
    }
}

bool
DecodedInst::writesReg() const
{
    return destReg() != kZeroReg;
}

std::vector<RegIndex>
DecodedInst::srcRegs() const
{
    const SrcRegList list = srcRegList();
    return std::vector<RegIndex>(list.begin(), list.end());
}

SrcRegList
DecodedInst::srcRegList() const
{
    SrcRegList srcs;
    auto push = [&](RegIndex r) { srcs.push(r); };
    if (cls == OpClass::Invalid)
        return srcs;
    switch (opInfo(op).format) {
      case InstFormat::Memory:
        push(rb);
        if (cls == OpClass::Store)
            push(ra);
        if (op == Opcode::FLDOP)
            push(rc); // fused load-op's ALU operand
        break;
      case InstFormat::Branch:
        if (cls == OpClass::CondBranch || cls == OpClass::DiseBranch)
            push(ra);
        break;
      case InstFormat::Jump:
        push(rb);
        break;
      case InstFormat::Operate:
        push(ra);
        if (!useLit)
            push(rb);
        if (isCmov(op))
            push(rc);
        break;
      case InstFormat::Syscall:
        // Syscalls read the function code and up to two arguments.
        push(kRetReg);
        push(kArg0Reg);
        push(static_cast<RegIndex>(kArg0Reg + 1));
        break;
      default:
        break;
    }
    return srcs;
}

RegIndex
DecodedInst::triggerRS() const
{
    switch (opInfo(op).format) {
      case InstFormat::Memory: return rb;
      case InstFormat::Branch: return ra;
      case InstFormat::Jump: return rb;
      case InstFormat::Operate: return ra;
      default: return kZeroReg;
    }
}

RegIndex
DecodedInst::triggerRT() const
{
    switch (opInfo(op).format) {
      case InstFormat::Memory:
        return (cls == OpClass::Store) ? ra : kZeroReg;
      case InstFormat::Operate:
        return useLit ? kZeroReg : rb;
      default:
        return kZeroReg;
    }
}

RegIndex
DecodedInst::triggerRD() const
{
    return destReg();
}

Addr
DecodedInst::branchTarget(Addr pc) const
{
    return pc + 4 + static_cast<uint64_t>(imm) * 4;
}

bool
DecodedInst::operator==(const DecodedInst &other) const
{
    return op == other.op && ra == other.ra && rb == other.rb &&
           rc == other.rc && useLit == other.useLit && imm == other.imm &&
           tag == other.tag;
}

DecodedInst
decode(Word word)
{
    DecodedInst inst;
    inst.raw = word;
    const auto opc = static_cast<Opcode>(bits(word, 26, 6));
    const OpInfo &info = opInfo(opc);
    inst.op = opc;
    inst.cls = info.cls;
    if (!info.valid) {
        inst.cls = OpClass::Invalid;
        return inst;
    }
    switch (info.format) {
      case InstFormat::Nop:
      case InstFormat::Syscall:
        break;
      case InstFormat::Memory:
        inst.ra = static_cast<RegIndex>(bits(word, 21, 5));
        inst.rb = static_cast<RegIndex>(bits(word, 16, 5));
        inst.imm = signExtend(bits(word, 0, 16), 16);
        break;
      case InstFormat::Branch:
        inst.ra = static_cast<RegIndex>(bits(word, 21, 5));
        inst.imm = signExtend(bits(word, 0, 21), 21);
        break;
      case InstFormat::Jump:
        inst.ra = static_cast<RegIndex>(bits(word, 21, 5));
        inst.rb = static_cast<RegIndex>(bits(word, 16, 5));
        break;
      case InstFormat::Operate:
        inst.ra = static_cast<RegIndex>(bits(word, 21, 5));
        inst.useLit = bits(word, 12, 1) != 0;
        if (inst.useLit)
            inst.imm = static_cast<int64_t>(bits(word, 13, 8));
        else
            inst.rb = static_cast<RegIndex>(bits(word, 16, 5));
        inst.rc = static_cast<RegIndex>(bits(word, 0, 5));
        break;
      case InstFormat::Codeword:
        inst.tag = static_cast<uint16_t>(bits(word, 15, 11));
        inst.ra = static_cast<RegIndex>(bits(word, 10, 5));
        inst.rb = static_cast<RegIndex>(bits(word, 5, 5));
        inst.rc = static_cast<RegIndex>(bits(word, 0, 5));
        inst.imm = signExtend(bits(word, 0, 15), 15);
        break;
    }
    return inst;
}

namespace {

void
checkArchReg(RegIndex r, const char *what)
{
    if (!isArchReg(r)) {
        panic(strFormat("cannot encode %s register index %u "
                        "(dedicated registers have no application "
                        "encoding)", what, unsigned(r)));
    }
}

} // namespace

Word
encode(const DecodedInst &inst)
{
    const OpInfo &info = opInfo(inst.op);
    DISE_ASSERT(info.valid, "encoding invalid opcode");
    Word word = 0;
    word = static_cast<Word>(
        insertBits(word, 26, 6, static_cast<uint64_t>(inst.op)));
    switch (info.format) {
      case InstFormat::Nop:
      case InstFormat::Syscall:
        break;
      case InstFormat::Memory:
        checkArchReg(inst.ra, "memory ra");
        checkArchReg(inst.rb, "memory rb");
        DISE_ASSERT(fitsSigned(inst.imm, 16), "memory disp out of range");
        word = static_cast<Word>(insertBits(word, 21, 5, inst.ra));
        word = static_cast<Word>(insertBits(word, 16, 5, inst.rb));
        word = static_cast<Word>(
            insertBits(word, 0, 16, static_cast<uint64_t>(inst.imm)));
        break;
      case InstFormat::Branch:
        checkArchReg(inst.ra, "branch ra");
        DISE_ASSERT(fitsSigned(inst.imm, 21), "branch disp out of range");
        word = static_cast<Word>(insertBits(word, 21, 5, inst.ra));
        word = static_cast<Word>(
            insertBits(word, 0, 21, static_cast<uint64_t>(inst.imm)));
        break;
      case InstFormat::Jump:
        checkArchReg(inst.ra, "jump ra");
        checkArchReg(inst.rb, "jump rb");
        word = static_cast<Word>(insertBits(word, 21, 5, inst.ra));
        word = static_cast<Word>(insertBits(word, 16, 5, inst.rb));
        break;
      case InstFormat::Operate:
        checkArchReg(inst.ra, "operate ra");
        checkArchReg(inst.rc, "operate rc");
        word = static_cast<Word>(insertBits(word, 21, 5, inst.ra));
        word = static_cast<Word>(insertBits(word, 0, 5, inst.rc));
        if (inst.useLit) {
            DISE_ASSERT(fitsUnsigned(static_cast<uint64_t>(inst.imm), 8),
                        "operate literal out of range");
            word = static_cast<Word>(insertBits(word, 12, 1, 1));
            word = static_cast<Word>(
                insertBits(word, 13, 8, static_cast<uint64_t>(inst.imm)));
        } else {
            checkArchReg(inst.rb, "operate rb");
            word = static_cast<Word>(insertBits(word, 16, 5, inst.rb));
        }
        break;
      case InstFormat::Codeword:
        DISE_ASSERT(inst.tag <= kMaxCodewordTag, "codeword tag overflow");
        word = static_cast<Word>(insertBits(word, 15, 11, inst.tag));
        word = static_cast<Word>(insertBits(word, 10, 5, inst.ra));
        word = static_cast<Word>(insertBits(word, 5, 5, inst.rb));
        word = static_cast<Word>(insertBits(word, 0, 5, inst.rc));
        break;
    }
    return word;
}

Word
makeNop()
{
    return 0;
}

Word
makeMemory(Opcode op, RegIndex ra, RegIndex rb, int64_t disp)
{
    DecodedInst inst;
    inst.op = op;
    inst.cls = opInfo(op).cls;
    inst.ra = ra;
    inst.rb = rb;
    inst.imm = disp;
    DISE_ASSERT(opInfo(op).format == InstFormat::Memory, "format mismatch");
    return encode(inst);
}

Word
makeBranch(Opcode op, RegIndex ra, int64_t wordDisp)
{
    DecodedInst inst;
    inst.op = op;
    inst.cls = opInfo(op).cls;
    inst.ra = ra;
    inst.imm = wordDisp;
    DISE_ASSERT(opInfo(op).format == InstFormat::Branch, "format mismatch");
    return encode(inst);
}

Word
makeJump(Opcode op, RegIndex ra, RegIndex rb)
{
    DecodedInst inst;
    inst.op = op;
    inst.cls = opInfo(op).cls;
    inst.ra = ra;
    inst.rb = rb;
    DISE_ASSERT(opInfo(op).format == InstFormat::Jump, "format mismatch");
    return encode(inst);
}

Word
makeOperate(Opcode op, RegIndex ra, RegIndex rb, RegIndex rc)
{
    DecodedInst inst;
    inst.op = op;
    inst.cls = opInfo(op).cls;
    inst.ra = ra;
    inst.rb = rb;
    inst.rc = rc;
    DISE_ASSERT(opInfo(op).format == InstFormat::Operate, "format mismatch");
    return encode(inst);
}

Word
makeOperateImm(Opcode op, RegIndex ra, uint8_t lit, RegIndex rc)
{
    DecodedInst inst;
    inst.op = op;
    inst.cls = opInfo(op).cls;
    inst.ra = ra;
    inst.useLit = true;
    inst.imm = lit;
    inst.rc = rc;
    DISE_ASSERT(opInfo(op).format == InstFormat::Operate, "format mismatch");
    return encode(inst);
}

Word
makeCodeword(Opcode op, uint16_t tag, uint8_t p1, uint8_t p2, uint8_t p3)
{
    DecodedInst inst;
    inst.op = op;
    inst.cls = opInfo(op).cls;
    inst.tag = tag;
    inst.ra = p1;
    inst.rb = p2;
    inst.rc = p3;
    DISE_ASSERT(opInfo(op).format == InstFormat::Codeword,
                "format mismatch");
    return encode(inst);
}

Word
makeCodewordImm(Opcode op, uint16_t tag, int64_t imm15)
{
    DISE_ASSERT(fitsSigned(imm15, 15), "codeword imm out of range");
    const uint64_t field = bits(static_cast<uint64_t>(imm15), 0, 15);
    return makeCodeword(op, tag, static_cast<uint8_t>(bits(field, 10, 5)),
                        static_cast<uint8_t>(bits(field, 5, 5)),
                        static_cast<uint8_t>(bits(field, 0, 5)));
}

Word
makeSyscall()
{
    DecodedInst inst;
    inst.op = Opcode::SYSCALL;
    inst.cls = OpClass::Syscall;
    return encode(inst);
}

} // namespace dise
