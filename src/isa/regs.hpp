/**
 * @file
 * Register-space definitions: 32 architectural registers plus 8 DISE
 * dedicated registers that only replacement sequences can name.
 */

#ifndef DISE_ISA_REGS_HPP
#define DISE_ISA_REGS_HPP

#include <cstdint>
#include <optional>
#include <string>

namespace dise {

/** Logical register index (architectural 0..31, dedicated 32..39). */
using RegIndex = uint8_t;

constexpr unsigned kNumArchRegs = 32;
constexpr unsigned kNumDiseRegs = 8;
constexpr unsigned kNumLogicalRegs = kNumArchRegs + kNumDiseRegs;

/** The architectural zero register (Alpha r31). */
constexpr RegIndex kZeroReg = 31;
/** Stack pointer (Alpha r30). */
constexpr RegIndex kSpReg = 30;
/** Conventional return-address register (Alpha r26). */
constexpr RegIndex kRaReg = 26;
/** First argument register (Alpha a0 = r16). */
constexpr RegIndex kArg0Reg = 16;
/** Return-value register (Alpha v0 = r0). */
constexpr RegIndex kRetReg = 0;

/** First DISE dedicated register ($dr0). */
constexpr RegIndex kDiseRegBase = kNumArchRegs;

/** True for a DISE dedicated register index. */
constexpr bool
isDiseReg(RegIndex r)
{
    return r >= kDiseRegBase && r < kNumLogicalRegs;
}

/** True for an index an application instruction could encode. */
constexpr bool
isArchReg(RegIndex r)
{
    return r < kNumArchRegs;
}

/**
 * Canonical register name: the ABI alias for architectural registers
 * (v0, t0..t11, s0..s5, fp, a0..a5, ra, at, gp, sp, zero) and $drN for
 * dedicated ones.
 */
std::string regName(RegIndex r);

/**
 * Parse a register name. Accepts rN, $N, ABI aliases, and $drN.
 * @return Empty optional for unknown names.
 */
std::optional<RegIndex> regFromName(const std::string &name);

} // namespace dise

#endif // DISE_ISA_REGS_HPP
