#include "src/isa/regs.hpp"

#include <array>
#include <cctype>
#include <unordered_map>

#include "src/common/logging.hpp"

namespace dise {

namespace {

const std::array<const char *, kNumArchRegs> kAliases = {
    "v0", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
    "t7", "s0", "s1", "s2", "s3", "s4", "s5", "fp",
    "a0", "a1", "a2", "a3", "a4", "a5", "t8", "t9",
    "t10", "t11", "ra", "t12", "at", "gp", "sp", "zero",
};

} // namespace

std::string
regName(RegIndex r)
{
    if (isArchReg(r))
        return kAliases[r];
    if (isDiseReg(r))
        return "$dr" + std::to_string(r - kDiseRegBase);
    return "<badreg>";
}

std::optional<RegIndex>
regFromName(const std::string &name)
{
    static const std::unordered_map<std::string, RegIndex> byName = [] {
        std::unordered_map<std::string, RegIndex> m;
        for (unsigned i = 0; i < kNumArchRegs; ++i) {
            m.emplace(kAliases[i], static_cast<RegIndex>(i));
            m.emplace("r" + std::to_string(i), static_cast<RegIndex>(i));
            m.emplace("$" + std::to_string(i), static_cast<RegIndex>(i));
        }
        for (unsigned i = 0; i < kNumDiseRegs; ++i) {
            m.emplace("$dr" + std::to_string(i),
                      static_cast<RegIndex>(kDiseRegBase + i));
            m.emplace("dr" + std::to_string(i),
                      static_cast<RegIndex>(kDiseRegBase + i));
        }
        return m;
    }();
    const auto it = byName.find(name);
    if (it == byName.end())
        return std::nullopt;
    return it->second;
}

} // namespace dise
