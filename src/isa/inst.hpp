/**
 * @file
 * Decoded instruction representation, field encodings, and the trigger
 * field roles (T.RS / T.RT / T.RD / T.IMM / T.P*) that DISE replacement
 * directives reference.
 *
 * Encoding formats (all 32-bit):
 *
 *   Memory:   op[31:26] ra[25:21] rb[20:16] disp[15:0]       op ra,disp(rb)
 *   Branch:   op[31:26] ra[25:21] disp[20:0]                 op ra,target
 *   Jump:     op[31:26] ra[25:21] rb[20:16] 0[15:0]          op ra,(rb)
 *   Operate:  op[31:26] ra[25:21] rb[20:16] lit[20:13]
 *             litflag[12] 0[11:5] rc[4:0]                    op ra,rb|#l,rc
 *   Codeword: op[31:26] tag[25:15] p1[14:10] p2[9:5] p3[4:0]
 *
 * Codeword parameter fields double as a single 15-bit signed immediate
 * parameter (bits [14:0]); the interpretation is chosen by the matching
 * production's directives, not by the instruction itself.
 */

#ifndef DISE_ISA_INST_HPP
#define DISE_ISA_INST_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "src/isa/opcodes.hpp"
#include "src/isa/regs.hpp"

namespace dise {

/** Virtual address type (byte addresses). */
using Addr = uint64_t;

/**
 * Fixed-capacity source-register list. No instruction reads more than
 * three registers, so the timing model's per-instruction dependence walk
 * never needs to allocate.
 */
struct SrcRegList
{
    std::array<RegIndex, 3> regs{};
    uint8_t count = 0;

    void
    push(RegIndex r)
    {
        if (r != kZeroReg)
            regs[count++] = r;
    }
    const RegIndex *begin() const { return regs.data(); }
    const RegIndex *end() const { return regs.data() + count; }
    size_t size() const { return count; }
};

/** A decoded (or DISE-synthesized) instruction. */
struct DecodedInst
{
    Opcode op = Opcode::NOP;
    OpClass cls = OpClass::Nop;
    /** Field ra; dest for loads/lda/branch-links, source for stores. */
    RegIndex ra = 0;
    /** Field rb; base register / second operate source / jump target. */
    RegIndex rb = 0;
    /** Field rc; operate destination. */
    RegIndex rc = 0;
    /** Operate literal form (8-bit unsigned literal in imm). */
    bool useLit = false;
    /**
     * Immediate: sign-extended displacement (memory), word displacement
     * (branch), unsigned literal (operate), or 15-bit signed parameter
     * immediate (codeword).
     */
    int64_t imm = 0;
    /** Codeword replacement-sequence tag (11 bits); 0 otherwise. */
    uint16_t tag = 0;
    /** Original encoding; 0 for instructions synthesized by the IL. */
    Word raw = 0;

    bool isNop() const { return cls == OpClass::Nop; }
    bool isLoad() const { return cls == OpClass::Load; }
    bool isStore() const { return cls == OpClass::Store; }
    bool isControl() const { return isControlClass(cls); }
    bool isDiseBranch() const { return cls == OpClass::DiseBranch; }
    bool isCodeword() const { return cls == OpClass::Codeword; }

    /**
     * Destination register, or kZeroReg when the instruction writes
     * nothing architecturally visible.
     */
    RegIndex destReg() const;

    /** True if destReg() is a real (non-zero-register) write. */
    bool writesReg() const;

    /** Source registers in evaluation order (excludes the zero reg). */
    std::vector<RegIndex> srcRegs() const;

    /** srcRegs() without the vector: for per-instruction hot loops. */
    SrcRegList srcRegList() const;

    /** @name Trigger field roles (paper Section 2.1). */
    /// @{
    /** T.RS: primary source — memory base, operate ra, branch ra. */
    RegIndex triggerRS() const;
    /** T.RT: secondary source — store data register, operate rb. */
    RegIndex triggerRT() const;
    /** T.RD: destination — load ra, operate rc, call link register. */
    RegIndex triggerRD() const;
    /// @}

    /** Direct-branch target for a trigger fetched at @p pc. */
    Addr branchTarget(Addr pc) const;

    /**
     * @name Inline fast variants of destReg() / srcRegList().
     *
     * Same results for every decodable instruction, dispatching on the
     * decoded (cls, op) pair instead of the out-of-line opInfo() format
     * lookup. They exist so the trace-feed timing path can walk register
     * dependences without leaving the hot loop, while the step-driven
     * reference keeps the original out-of-line cost profile; an
     * exhaustive test asserts equivalence over the whole opcode space.
     */
    /// @{
    RegIndex
    destRegFast() const
    {
        switch (cls) {
          case OpClass::Load:
            return ra;
          case OpClass::IntAlu:
            // LDA/LDAH are memory-format address arithmetic: dest ra.
            return (op == Opcode::LDA || op == Opcode::LDAH) ? ra : rc;
          case OpClass::IntMult:
            return rc;
          case OpClass::UncondBranch:
          case OpClass::Call:
            return ra; // BR/BSR link through ra
          case OpClass::Jump:
          case OpClass::CallIndirect:
          case OpClass::Return:
            return ra;
          case OpClass::CondBranch:
            // Fused compare+branch writes the compare result to rc.
            return op == Opcode::FCMPBR ? rc : kZeroReg;
          case OpClass::Store:
            // Fused lda+store also writes the formed address register.
            return op == Opcode::FLDAS ? rc : kZeroReg;
          default:
            // DiseBranch, Nop, Syscall, Codeword, Invalid: no
            // architecturally visible destination.
            return kZeroReg;
        }
    }

    SrcRegList
    srcRegListFast() const
    {
        SrcRegList srcs;
        switch (cls) {
          case OpClass::IntAlu:
            if (op == Opcode::LDA || op == Opcode::LDAH) {
                srcs.push(rb); // memory-format: base register only
                break;
            }
            [[fallthrough]];
          case OpClass::IntMult:
            srcs.push(ra);
            if (!useLit)
                srcs.push(rb);
            if (op == Opcode::CMOVEQ || op == Opcode::CMOVNE)
                srcs.push(rc); // partial write reads the old dest
            break;
          case OpClass::Load:
            srcs.push(rb);
            if (op == Opcode::FLDOP)
                srcs.push(rc); // fused load-op's ALU operand
            break;
          case OpClass::Store:
            srcs.push(rb);
            srcs.push(ra);
            break;
          case OpClass::CondBranch:
            srcs.push(ra);
            if (op == Opcode::FCMPBR && !useLit)
                srcs.push(rb); // fused compare's register operand
            break;
          case OpClass::DiseBranch:
            srcs.push(ra);
            break;
          case OpClass::Jump:
          case OpClass::CallIndirect:
          case OpClass::Return:
            srcs.push(rb);
            break;
          case OpClass::Syscall:
            srcs.push(kRetReg);
            srcs.push(kArg0Reg);
            srcs.push(static_cast<RegIndex>(kArg0Reg + 1));
            break;
          default:
            break;
        }
        return srcs;
    }
    /// @}

    bool operator==(const DecodedInst &other) const;
};

/** Decode a raw word. Invalid encodings yield cls == OpClass::Invalid. */
DecodedInst decode(Word word);

/**
 * Re-encode a decoded instruction.
 * Panics if a field does not fit (e.g. a dedicated register in an
 * application encoding, or an out-of-range displacement).
 */
Word encode(const DecodedInst &inst);

/** @name Encoding constructors. */
/// @{
Word makeNop();
Word makeMemory(Opcode op, RegIndex ra, RegIndex rb, int64_t disp);
Word makeBranch(Opcode op, RegIndex ra, int64_t wordDisp);
Word makeJump(Opcode op, RegIndex ra, RegIndex rb);
Word makeOperate(Opcode op, RegIndex ra, RegIndex rb, RegIndex rc);
Word makeOperateImm(Opcode op, RegIndex ra, uint8_t lit, RegIndex rc);
Word makeCodeword(Opcode op, uint16_t tag, uint8_t p1, uint8_t p2,
                  uint8_t p3);
Word makeCodewordImm(Opcode op, uint16_t tag, int64_t imm15);
Word makeSyscall();
/// @}

/** Maximum codeword tag value (11-bit field). */
constexpr uint16_t kMaxCodewordTag = 0x7ff;

} // namespace dise

#endif // DISE_ISA_INST_HPP
