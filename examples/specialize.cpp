/**
 * @file
 * Dynamic code specialization as an aware ACF (paper Section 3.2,
 * "other aware ACFs").
 *
 * A loop multiplies every array element by a loop-invariant operand. At
 * build time the multiply is replaced by a DISE codeword. At run time —
 * before the loop — the specializer inspects the operand's value and
 * installs the matching production:
 *
 *   operand = 2^k          -> one shift
 *   operand = 2^j + 2^k    -> two shifts and an add (this is the case
 *                             the paper highlights: a software rewriter
 *                             would have to grow one instruction into
 *                             three, retarget branches around them, and
 *                             scavenge a register for the intermediate;
 *                             with DISE it is exactly as easy as the
 *                             one-shift case)
 *   anything else          -> the original multiply
 */

#include <cstdio>

#include "src/assembler/assembler.hpp"
#include "src/dise/controller.hpp"
#include "src/isa/disasm.hpp"
#include "src/sim/core.hpp"

using namespace dise;

namespace {

/** The application: codeword 'res1 0' stands for "t2 = t1 * operand". */
Program
buildApp()
{
    return assemble(R"(
    .text
main:
    laq arr, t5
    laq operand, t6
    ldq t6, 0(t6)        ; the loop-invariant multiplier
    li 8, t0
loop:
    ldq t1, 0(t5)
    res1 0, 0, 0, 0      ; specialized multiply: t2 = t1 * t6
    stq t2, 0(t5)
    lda t5, 8(t5)
    subq t0, 1, t0
    bne t0, loop
    ; print a checksum of the array
    laq arr, t5
    li 8, t0
    li 0, t3
sum:
    ldq t1, 0(t5)
    xor t3, t1, t3
    addq t3, 1, t3
    lda t5, 8(t5)
    subq t0, 1, t0
    bne t0, sum
    mov t3, a0
    li 2, v0
    syscall
    li 0, v0
    li 0, a0
    syscall
    .data
arr:
    .quad 3, 5, 7, 11, 13, 17, 19, 23
operand:
    .quad 0
)");
}

/**
 * The runtime specializer: pick the replacement sequence for the
 * multiply codeword based on the operand's value.
 */
ProductionSet
specialize(uint64_t operand)
{
    ProductionSet set;
    ReplacementSeq seq;
    seq.name = "MUL";

    auto shiftBy = [](unsigned k, RegIndex dest) {
        // sll t1, #k, dest
        DecodedInst inst = decode(
            makeOperateImm(Opcode::SLL, 2, static_cast<uint8_t>(k), dest));
        return rLiteral(inst);
    };

    const bool pow2 = (operand & (operand - 1)) == 0 && operand != 0;
    unsigned hi = 63;
    while (hi > 0 && !(operand >> hi & 1))
        --hi;
    const uint64_t rest = operand & ~(uint64_t(1) << hi);
    const bool sumOfTwo =
        rest != 0 && (rest & (rest - 1)) == 0;

    if (pow2) {
        // t2 = t1 << log2(operand)
        seq.insts.push_back(shiftBy(hi, 3));
        std::printf("specializer: %llu is a power of two -> one "
                    "shift\n",
                    (unsigned long long)operand);
    } else if (sumOfTwo) {
        unsigned lo = 0;
        while (!(rest >> lo & 1))
            ++lo;
        // t2 = (t1 << hi); $dr1 = (t1 << lo); t2 += $dr1
        seq.insts.push_back(shiftBy(hi, 3));
        ReplacementInst second = shiftBy(lo, 0);
        second.templ.rc = kDiseRegBase + 1; // $dr1 intermediate
        seq.insts.push_back(second);
        ReplacementInst add;
        add.templ = decode(makeOperate(Opcode::ADDQ, 3, 0, 3));
        add.templ.rb = kDiseRegBase + 1;
        seq.insts.push_back(rLiteral(add.templ));
        std::printf("specializer: %llu = 2^%u + 2^%u -> two shifts "
                    "and an add (no scavenged register needed: the "
                    "intermediate lives in $dr1)\n",
                    (unsigned long long)operand, hi, lo);
    } else {
        // General case: the original multiply, t2 = t1 * t6.
        seq.insts.push_back(
            rLiteral(decode(makeOperate(Opcode::MULQ, 2, 7, 3))));
        std::printf("specializer: %llu is irregular -> plain mulq\n",
                    (unsigned long long)operand);
    }

    set.addSequenceWithId(0, seq);
    PatternSpec pattern;
    pattern.opcode = Opcode::RES1;
    set.addTagPattern(pattern, 0);
    return set;
}

uint64_t
runWith(uint64_t operand)
{
    Program prog = buildApp();
    // Plant the operand (in a real system it arrives as input data).
    for (int i = 0; i < 8; ++i) {
        prog.data[prog.data.size() - 8 + i] =
            static_cast<uint8_t>(operand >> (8 * i));
    }

    DiseController controller;
    controller.install(
        std::make_shared<ProductionSet>(specialize(operand)));
    ExecCore core(prog, &controller);
    const RunResult result = core.run();
    std::printf("  -> checksum %s, %llu dynamic instructions, "
                "%llu expansions\n\n",
                result.output.c_str(),
                (unsigned long long)result.dynInsts,
                (unsigned long long)result.expansions);
    return std::stoull(result.output);
}

} // namespace

int
main()
{
    std::printf("dynamic specialization of 't2 = t1 * operand':\n\n");
    const uint64_t a = runWith(8);   // power of two
    const uint64_t b = runWith(10);  // 8 + 2
    const uint64_t c = runWith(7);   // irregular

    // Cross-check against pure multiplies.
    auto expect = [](uint64_t operand) {
        const uint64_t vals[] = {3, 5, 7, 11, 13, 17, 19, 23};
        uint64_t chk = 0;
        for (const uint64_t v : vals)
            chk = (chk ^ (v * operand)) + 1;
        return chk;
    };
    const bool ok =
        a == expect(8) && b == expect(10) && c == expect(7);
    std::printf("all checksums match plain multiplication: %s\n",
                ok ? "yes" : "NO!");
    return ok ? 0 : 1;
}
