/**
 * @file
 * Quickstart: assemble a program, write a DISE production in the
 * external DSL, install it through the controller, and watch the engine
 * macro-expand the fetch stream.
 *
 * The production redefines every load to also count itself in dedicated
 * register $dr4 — a two-line "load profiler".
 */

#include <cstdio>

#include "src/assembler/assembler.hpp"
#include "src/dise/parser.hpp"
#include "src/isa/disasm.hpp"
#include "src/sim/core.hpp"

int
main()
{
    using namespace dise;

    // 1. An ordinary application, assembled from Alpha-flavoured text.
    const Program prog = assemble(R"(
    .text
main:
    laq table, t5        ; t5 = &table
    li 4, t0             ; four elements
    li 0, t1
loop:
    ldq t2, 0(t5)        ; load an element
    addq t1, t2, t1      ; sum it
    lda t5, 8(t5)
    subq t0, 1, t0
    bne t0, loop
    mov t1, a0           ; print the sum
    li 2, v0
    syscall
    li 0, v0             ; exit(0)
    li 0, a0
    syscall
    .data
table:
    .quad 10, 20, 30, 40
)");

    // 2. An application customization function, written as a DISE
    //    production: pattern -> parameterized replacement sequence.
    const ProductionSet acf = parseProductions(R"(
P1: class == load -> R1
R1: lda $dr4, 1($dr4)    ; count the load
    T.INSN               ; then perform it
)");

    // 3. Install it through the controller and run.
    DiseController controller;
    controller.install(std::make_shared<ProductionSet>(acf));
    ExecCore core(prog, &controller);
    const RunResult result = core.run();

    std::printf("application output:        %s\n",
                result.output.c_str());
    std::printf("loads counted in $dr4:     %llu\n",
                (unsigned long long)core.diseRegs()[4]);
    std::printf("fetch-stream instructions: %llu\n",
                (unsigned long long)result.appInsts);
    std::printf("DISE-inserted instructions:%llu\n",
                (unsigned long long)result.diseInsts);
    std::printf("expansions performed:      %llu\n",
                (unsigned long long)result.expansions);

    // 4. Peek at one expansion: what the execution engine actually saw.
    const DecodedInst trigger = decode(makeMemory(Opcode::LDQ, 3, 13, 0));
    const auto outcome =
        controller.engine().expand(trigger, prog.textBase);
    std::printf("\ntrigger:      %s\nexpands into:\n",
                disassemble(trigger).c_str());
    for (const auto &inst : outcome)
        std::printf("    %s\n", disassemble(inst).c_str());
    return 0;
}
