/**
 * @file
 * Dynamic code decompression example (paper Section 3.2): compress the
 * 'gzip' workload with the aware-ACF compressor, show the dictionary,
 * run the compressed image through DISE decompression, and measure the
 * I-cache benefit on a small-cache embedded configuration.
 */

#include <cstdio>

#include "src/acf/compress.hpp"
#include "src/isa/disasm.hpp"
#include "src/pipeline/pipeline.hpp"
#include "src/workloads/workloads.hpp"

int
main()
{
    using namespace dise;

    WorkloadSpec spec = workloadSpec("gzip");
    spec.targetDynInsts = 400000;
    const Program prog = buildWorkload(spec);
    std::printf("gzip-like workload: text %.1f KB, %zu instructions\n",
                prog.textBytes() / 1024.0, prog.text.size());

    // Compress with the full DISE feature set: 3 parameters per
    // dictionary entry and PC-relative branch compression.
    const CompressionResult comp = compressProgram(prog);
    std::printf("compressed text:   %.1f KB (ratio %.3f)\n",
                comp.compressedTextBytes / 1024.0, comp.ratio());
    std::printf("dictionary:        %u entries, %.1f KB "
                "(ratio with dict %.3f)\n",
                comp.dictEntries, comp.dictionaryBytes / 1024.0,
                comp.ratioWithDict());
    std::printf("codewords planted: %llu (compressed out %llu insts)\n",
                (unsigned long long)comp.codewords,
                (unsigned long long)comp.instsCompressedOut);

    // Show the three hottest dictionary entries.
    std::printf("\nfirst dictionary entries (parameterized "
                "replacement sequences):\n");
    unsigned shown = 0;
    for (const auto &kv : comp.dictionary->sequences()) {
        std::printf("  tag %u:\n", kv.first);
        for (const auto &rinst : kv.second.insts)
            std::printf("      %s\n", rinst.toString().c_str());
        if (++shown == 3)
            break;
    }

    // Verify execution and compare cache behaviour on an embedded-style
    // 8 KB I-cache machine.
    for (const uint32_t kb : {8u, 32u}) {
        PipelineParams params;
        params.mem.l1iSize = kb * 1024;

        PipelineSim uncompressed(prog, params);
        const TimingResult tu = uncompressed.run();

        DiseConfig config;
        config.rtEntries = 2048;
        config.rtAssoc = 2;
        DiseController controller(config);
        controller.install(comp.dictionary);
        PipelineSim compressed(comp.compressed, params, &controller);
        const TimingResult tc = compressed.run();

        std::printf("\n%2u KB I-cache: uncompressed %llu cycles "
                    "(%llu I$ misses)\n",
                    kb, (unsigned long long)tu.cycles,
                    (unsigned long long)tu.icacheMisses);
        std::printf("               compressed   %llu cycles "
                    "(%llu I$ misses, %llu RT fill stalls) -> %.3fx\n",
                    (unsigned long long)tc.cycles,
                    (unsigned long long)tc.icacheMisses,
                    (unsigned long long)tc.missStallCycles,
                    double(tc.cycles) / double(tu.cycles));
        if (tu.arch.output != tc.arch.output) {
            std::printf("OUTPUT MISMATCH!\n");
            return 1;
        }
    }
    std::printf("\noutputs identical across all runs.\n");
    return 0;
}
