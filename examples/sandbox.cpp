/**
 * @file
 * Sandboxing example (paper Section 3.1): run an "untrusted extension"
 * that wanders out of its data segment, under three regimes —
 * unprotected, DISE memory fault isolation, and the binary-rewriting
 * baseline — and compare protection and cost.
 */

#include <cstdio>

#include "src/acf/mfi.hpp"
#include "src/acf/rewriter.hpp"
#include "src/assembler/assembler.hpp"
#include "src/pipeline/pipeline.hpp"

int
main()
{
    using namespace dise;

    // An extension module: does useful work, then (bug or attack)
    // follows a pointer it read from its input into the code segment.
    const Program prog = assemble(R"(
    .text
main:
    laq input, t5
    li 32, t0
    li 0, t1
work:                      ; honest phase: checksum the input
    ldq t2, 0(t5)
    addq t1, t2, t1
    lda t5, 8(t5)
    subq t0, 1, t0
    bne t0, work
    laq evil, t6           ; pointer cell holding a TEXT address
    ldq t7, 0(t6)
    stq t1, 0(t7)          ; wild store into the code segment!
    li 0, v0
    li 0, a0
    syscall
error:                     ; MFI violation handler
    li 0, v0
    li 42, a0
    syscall
    .data
input:
    .space 256
evil:
    .quad 0
)");

    // Plant the hostile pointer at runtime-visible data (a text address
    // can't be emitted statically — our rewriter forbids it — so write
    // it into memory the way an attacker-controlled input would be).
    auto plant = [&](ExecCore &core) {
        core.memory().write(prog.symbol("evil"), prog.textBase + 64, 8);
    };

    std::printf("=== unprotected ===\n");
    {
        ExecCore core(prog);
        plant(core);
        const RunResult r = core.run();
        std::printf("exit=%d  (the wild store silently corrupted "
                    "text: word now 0x%08x)\n",
                    r.exitCode,
                    (unsigned)core.memory().readWord(prog.textBase + 64));
    }

    std::printf("\n=== DISE memory fault isolation (DISE3) ===\n");
    {
        MfiOptions opts;
        auto set = std::make_shared<ProductionSet>(
            makeMfiProductions(prog, opts));
        DiseController controller;
        controller.install(set);
        ExecCore core(prog, &controller);
        initMfiRegisters(core, prog);
        plant(core);
        const RunResult r = core.run();
        std::printf("exit=%d  (42 = trapped in the error handler)\n",
                    r.exitCode);
        std::printf("expansions=%llu inserted insts=%llu\n",
                    (unsigned long long)r.expansions,
                    (unsigned long long)r.diseInsts);
    }

    std::printf("\n=== binary-rewriting MFI (software baseline) ===\n");
    {
        const Program rw = applyMfiRewriting(prog);
        ExecCore core(rw);
        core.memory().write(rw.symbol("evil"), rw.textBase + 64, 8);
        const RunResult r = core.run();
        std::printf("exit=%d  text grew %zu -> %zu words "
                    "(static cost DISE does not pay)\n",
                    r.exitCode, prog.text.size(), rw.text.size());
    }

    std::printf("\n=== cycle cost on the 4-wide machine ===\n");
    {
        PipelineParams params;
        PipelineSim base(prog, params);
        ExecCore &bcore = base.core();
        bcore.memory().write(prog.symbol("evil"), prog.dataBase, 8);
        const TimingResult tb = base.run();

        MfiOptions opts;
        auto set = std::make_shared<ProductionSet>(
            makeMfiProductions(prog, opts));
        DiseController controller;
        controller.install(set);
        PipelineSim mfi(prog, params, &controller);
        initMfiRegisters(mfi.core(), prog);
        mfi.core().memory().write(prog.symbol("evil"), prog.dataBase, 8);
        const TimingResult tm = mfi.run();
        std::printf("benign run: %llu cycles native, %llu with DISE "
                    "MFI (%.2fx)\n",
                    (unsigned long long)tb.cycles,
                    (unsigned long long)tm.cycles,
                    double(tm.cycles) / double(tb.cycles));
    }
    return 0;
}
