/**
 * @file
 * Composition example (paper Section 3.3, Figure 5): store-address
 * tracing composed with memory fault isolation, both ways.
 *
 *  - Nested (trace nested within MFI): even the ACF's own trace-buffer
 *    stores are checked.
 *  - Non-nested merge: application stores are traced AND checked, but
 *    the tracing stores run unchecked.
 */

#include <cstdio>

#include "src/acf/compose.hpp"
#include "src/acf/mfi.hpp"
#include "src/acf/profiler.hpp"
#include "src/acf/tracing.hpp"
#include "src/assembler/assembler.hpp"
#include "src/sim/core.hpp"

int
main()
{
    using namespace dise;

    const Program prog = assemble(R"(
    .text
main:
    laq buf, t5
    li 6, t0
loop:
    stq t0, 0(t5)          ; application stores to trace
    lda t5, 8(t5)
    subq t0, 1, t0
    bne t0, loop
    li 0, v0
    li 0, a0
    syscall
error:
    li 0, v0
    li 42, a0
    syscall
    .data
buf:
    .space 64
trace:
    .space 512
)");

    MfiOptions mopts;
    mopts.checkJumps = false;
    const ProductionSet mfi = makeMfiProductions(prog, mopts);
    const ProductionSet tracing = makeTracingProductions();

    auto show = [&](const char *title, const ProductionSet &set,
                    Addr traceBuffer) {
        DiseController controller;
        controller.install(std::make_shared<ProductionSet>(set));
        ExecCore core(prog, &controller);
        initMfiRegisters(core, prog);
        initTracingRegisters(core, traceBuffer);
        const RunResult r = core.run();
        std::printf("%s: exit=%d expansions=%llu inserted=%llu\n",
                    title, r.exitCode, (unsigned long long)r.expansions,
                    (unsigned long long)r.diseInsts);
        if (r.exitCode == 0) {
            std::printf("  trace:");
            for (int i = 0; i < 6; ++i) {
                std::printf(" 0x%llx",
                            (unsigned long long)core.memory().readQuad(
                                prog.symbol("trace") + i * 8));
            }
            std::printf("\n");
        }
        return r;
    };

    std::printf("== store-address tracing alone ==\n");
    show("tracing", tracing, prog.symbol("trace"));

    std::printf("\n== nested: tracing within MFI "
                "(Figure 5 bottom-left) ==\n");
    const ProductionSet nested = composeNested(mfi, tracing);
    show("nested", nested, prog.symbol("trace"));
    std::printf("  ...and with a hostile trace cursor the ACF's own "
                "stores are caught:\n");
    show("nested-evil-cursor", nested, prog.textBase);

    std::printf("\n== merged: trace + check application stores only "
                "(Figure 5 bottom-right) ==\n");
    const ProductionSet merged = composeMerged(tracing, mfi);
    show("merged", merged, prog.symbol("trace"));

    // Print the production sets, paper style.
    std::printf("\nmerged store production:\n");
    const DecodedInst st = decode(makeMemory(Opcode::STQ, 1, 2, 0));
    if (const auto id = merged.match(st)) {
        for (const auto &rinst : merged.sequence(*id)->insts)
            std::printf("    %s\n", rinst.toString().c_str());
    }

    // ---- Path profiling (the "bit tracing" ACF of Section 3.1). ----
    std::printf("\n== path profiling ==\n");
    const Program pprog = assemble(R"(
    .text
main:
    li 0, a1
    call f
    li 1, a1
    call f
    li 2, a1
    call f
    li 0, v0
    li 0, a0
    syscall
f:                         ; two branches -> four possible paths
    beq a1, F1
    nop
F1: cmplt a1, 2, t0
    bne t0, F2
    nop
F2: ret
    .data
pbuf:
    .space 4096
)");
    DiseController pctl;
    pctl.install(std::make_shared<ProductionSet>(
        makePathProfilerProductions()));
    ExecCore pcore(pprog, &pctl);
    initProfilerRegisters(pcore, pprog.symbol("pbuf"));
    pcore.run();
    std::printf("per-call (endpoint PC : branch-outcome bits):\n");
    for (const auto &record : readPathProfile(pcore,
                                              pprog.symbol("pbuf"))) {
        std::printf("    0x%llx : 0b%llu%llu\n",
                    (unsigned long long)record.endpointPC,
                    (unsigned long long)(record.history >> 1 & 1),
                    (unsigned long long)(record.history & 1));
    }
    return 0;
}
