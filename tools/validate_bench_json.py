#!/usr/bin/env python3
"""Validate DISE benchmark/stats JSON artifacts against their schema.

Usage: validate_bench_json.py FILE [FILE...]
       validate_bench_json.py --compare FILE_A FILE_B

Three artifact shapes are accepted:

* Bench artifacts (written via DISE_BENCH_JSON): a top-level document
  with schema_version / bench / kind / host / workloads, where each
  workload maps regimes to entries whose required keys depend on kind
  (timing, micro, campaign, throughput). Every entry carries a "host"
  section (wall-clock seconds + guest insts/sec). Timing entries
  additionally must satisfy the cycle-accounting invariant: the seven
  buckets sum exactly to cycles.
* Run registries (written by `diserun --stats-json`): the nested stats
  registry itself, recognized by its top-level "run"/"host" sections.
* Batch result streams (written by `diserun --batch`, recognized by the
  .ndjson extension): one JSON object per line with index/id/mode/ok;
  successful lines carry the unified "run" result (and "host"), failed
  lines an "error" message. Indices must be unique and cover 0..N-1.

--compare checks two artifacts for determinism: they must be deeply
identical after recursively stripping every host-dependent section
("host", "host_seconds"), the campaign "replay" accounting (which
legitimately differs between snapshot and full-replay modes), and the
"sampling" sections (so sampled artifacts compare against full-detail
reruns on the architectural stream they must share) — wall-clock
throughput, replay economics, and sampling windows are the only fields
allowed to differ between reruns. The "fusion" section of
timing_mfi_fused entries is deliberately NOT stripped: fusion coverage
and the IPC delta are deterministic and must reproduce exactly. NDJSON streams are compared after sorting by
index, so two runs that completed jobs in different orders (different
worker counts) still compare equal.

Exits 0 when every file validates (or the pair matches), 1 with a
diagnostic per problem otherwise. Stdlib only.
"""

import json
import sys

BUCKET_KEYS = {
    "issue",
    "imiss_stall",
    "dmiss_stall",
    "branch_flush",
    "dise_stall",
    "hazard",
    "drain",
}

TIMING_KEYS = {
    "cycles",
    "insts",
    "ipc",
    "cpi",
    "host",
    "buckets",
    "counters",
}

MICRO_KEYS = {"iterations", "host", "items_per_second", "counters"}

CAMPAIGN_KEYS = {
    "injected",
    "outcomes",
    "detected_fraction",
    "parity_detected",
    "parity_recovered",
    "replay",
    "host",
}

THROUGHPUT_KEYS = {"insts", "host"}

# Sampled-timing section (timing_mfi_sampled entries, and any timing
# entry produced by a sampled run). "cpi_error" is present only when
# the producer also held the full-detail reference (the bench does; a
# lone sampled run cannot compute it).
SAMPLING_KEYS = {
    "period",
    "detail",
    "sampled_insts",
    "warmed_insts",
    "measured_cycles",
    "measured_cpi",
    "estimated_cycles",
}

# Macro-op-fusion section (timing_mfi_fused throughput entries). Fully
# deterministic — pair counts and IPC derive from the architectural and
# cycle streams — so --compare does NOT strip it: two reruns must agree
# on every field, including the IPC delta.
FUSION_KEYS = {
    "fused_pairs",
    "fused_insts",
    "pairs_cmp_branch",
    "pairs_addr_const",
    "pairs_shift_add",
    "pairs_addr_load",
    "pairs_addr_store",
    "pairs_load_op",
    "coverage",
    "ipc",
    "ipc_unfused",
    "ipc_delta_pct",
}

SERVICE_KEYS = {
    "requests",
    "ok",
    "error",
    "malformed",
    "shed",
    "deadline",
    "latency",
    "open_loop",
    "host",
}


class ValidationError(Exception):
    pass


def require(cond, message):
    if not cond:
        raise ValidationError(message)


def check_keys(entry, required, where):
    require(isinstance(entry, dict), f"{where}: entry is not an object")
    missing = required - entry.keys()
    require(not missing, f"{where}: missing keys {sorted(missing)}")


def check_buckets(entry, where):
    buckets = entry["buckets"]
    check_keys(buckets, BUCKET_KEYS, f"{where}.buckets")
    extra = buckets.keys() - BUCKET_KEYS
    require(not extra, f"{where}.buckets: unknown keys {sorted(extra)}")
    total = sum(buckets.values())
    require(
        total == entry["cycles"],
        f"{where}: buckets sum to {total}, cycles is {entry['cycles']}",
    )


def check_host_section(entry, where):
    host = entry["host"]
    require(isinstance(host, dict), f"{where}: host is not an object")
    missing = {"seconds", "insts_per_second"} - host.keys()
    require(not missing, f"{where}.host: missing keys {sorted(missing)}")
    require(host["seconds"] >= 0, f"{where}.host: negative seconds")
    require(
        host["insts_per_second"] >= 0,
        f"{where}.host: negative insts_per_second",
    )


def check_sampling_section(entry, where):
    """Validate the optional sampled-timing section of an entry."""
    if "sampling" not in entry:
        return
    sampling = entry["sampling"]
    check_keys(sampling, SAMPLING_KEYS, f"{where}.sampling")
    require(
        sampling["period"] > 0,
        f"{where}.sampling: period must be positive",
    )
    require(
        0 < sampling["detail"] <= sampling["period"],
        f"{where}.sampling: detail out of [1, period]",
    )
    for key in ("sampled_insts", "warmed_insts", "measured_cycles",
                "estimated_cycles"):
        require(
            isinstance(sampling[key], int) and sampling[key] >= 0,
            f"{where}.sampling: {key} is not a non-negative integer",
        )
    require(
        sampling["measured_cpi"] >= 0,
        f"{where}.sampling: negative measured_cpi",
    )
    if "cpi_error" in sampling:
        require(
            sampling["cpi_error"] >= 0,
            f"{where}.sampling: negative cpi_error",
        )
    if "insts" in entry:
        covered = sampling["sampled_insts"] + sampling["warmed_insts"]
        require(
            covered == entry["insts"],
            f"{where}.sampling: sampled+warmed insts ({covered}) do not "
            f"cover the run ({entry['insts']})",
        )


def check_fusion_section(entry, where):
    """The fusion coverage section of timing_mfi_fused entries."""
    if "fusion" not in entry:
        return
    fusion = entry["fusion"]
    check_keys(fusion, FUSION_KEYS, f"{where}.fusion")
    extra = fusion.keys() - FUSION_KEYS
    require(not extra, f"{where}.fusion: unknown keys {sorted(extra)}")
    pairs = fusion["fused_pairs"]
    require(
        fusion["fused_insts"] == 2 * pairs,
        f"{where}.fusion: fused_insts ({fusion['fused_insts']}) is not "
        f"2 * fused_pairs ({pairs})",
    )
    family_sum = sum(
        fusion[k] for k in FUSION_KEYS if k.startswith("pairs_")
    )
    require(
        family_sum == pairs,
        f"{where}.fusion: per-family counts sum to {family_sum}, "
        f"fused_pairs is {pairs}",
    )
    require(
        0.0 <= fusion["coverage"] <= 1.0,
        f"{where}.fusion: coverage out of [0, 1]",
    )
    for key in ("ipc", "ipc_unfused"):
        require(fusion[key] >= 0, f"{where}.fusion: negative {key}")


def check_timing_entry(entry, where):
    check_keys(entry, TIMING_KEYS, where)
    require(entry["cycles"] >= 0, f"{where}: negative cycles")
    check_host_section(entry, where)
    check_buckets(entry, where)
    check_sampling_section(entry, where)
    counters = entry["counters"]
    require(isinstance(counters, dict), f"{where}: counters not an object")
    for section in ("pipeline", "run", "mem"):
        require(section in counters, f"{where}.counters: missing {section}")


def check_micro_entry(entry, where):
    check_keys(entry, MICRO_KEYS, where)
    require(entry["iterations"] > 0, f"{where}: zero iterations")
    check_host_section(entry, where)


def check_throughput_entry(entry, where):
    check_keys(entry, THROUGHPUT_KEYS, where)
    require(entry["insts"] > 0, f"{where}: zero insts")
    check_host_section(entry, where)
    # timing_mfi entries carry the feed-vs-step wall-clock ratio inside
    # the host section (host-relative, so --compare strips it).
    if "speedup_vs_step" in entry["host"]:
        require(
            entry["host"]["speedup_vs_step"] >= 0,
            f"{where}.host: negative speedup_vs_step",
        )
    check_sampling_section(entry, where)
    check_fusion_section(entry, where)


def check_campaign_entry(entry, where):
    check_keys(entry, CAMPAIGN_KEYS, where)
    check_host_section(entry, where)
    outcomes = entry["outcomes"]
    require(isinstance(outcomes, dict), f"{where}: outcomes not an object")
    require(
        sum(outcomes.values()) == entry["injected"],
        f"{where}: outcome counts do not sum to injected trials",
    )
    require(
        0.0 <= entry["detected_fraction"] <= 1.0,
        f"{where}: detected_fraction out of [0,1]",
    )
    replay = entry["replay"]
    require(isinstance(replay, dict), f"{where}: replay not an object")
    missing = {"replayed_insts", "saved_insts"} - replay.keys()
    require(not missing, f"{where}.replay: missing keys {sorted(missing)}")
    for key in ("replayed_insts", "saved_insts"):
        require(
            isinstance(replay[key], int) and replay[key] >= 0,
            f"{where}.replay: {key} is not a non-negative integer",
        )
    require(
        replay["replayed_insts"] > 0,
        f"{where}.replay: campaign executed zero instructions",
    )


def check_service_entry(entry, where):
    check_keys(entry, SERVICE_KEYS, where)
    check_host_section(entry, where)
    statuses = ("ok", "error", "malformed", "shed", "deadline")
    for key in ("requests",) + statuses:
        require(
            isinstance(entry[key], int) and entry[key] >= 0,
            f"{where}: {key} is not a non-negative integer",
        )
    total = sum(entry[key] for key in statuses)
    require(
        total == entry["requests"],
        f"{where}: status counts sum to {total}, "
        f"requests is {entry['requests']}",
    )
    require(entry["ok"] > 0, f"{where}: no successful requests")
    latency = entry["latency"]
    check_keys(latency, {"p50_ms", "p99_ms"}, f"{where}.latency")
    require(
        0 <= latency["p50_ms"] <= latency["p99_ms"],
        f"{where}.latency: p50/p99 out of order",
    )
    open_loop = entry["open_loop"]
    check_keys(open_loop, {"saturation_rps", "steps"},
               f"{where}.open_loop")
    require(
        open_loop["saturation_rps"] >= 0,
        f"{where}.open_loop: negative saturation_rps",
    )
    steps = open_loop["steps"]
    require(
        isinstance(steps, list) and steps,
        f"{where}.open_loop: no sweep steps",
    )
    for i, step in enumerate(steps):
        check_keys(
            step,
            {"offered_rps", "completed_rps", "requests", "ok", "shed",
             "deadline", "error"},
            f"{where}.open_loop.steps[{i}]",
        )


ENTRY_CHECKS = {
    "timing": check_timing_entry,
    "micro": check_micro_entry,
    "campaign": check_campaign_entry,
    "throughput": check_throughput_entry,
    "service": check_service_entry,
}


def validate_bench(doc, name):
    require(doc.get("schema_version") == 1, f"{name}: bad schema_version")
    require(bool(doc.get("bench")), f"{name}: missing bench name")
    kind = doc.get("kind")
    require(kind in ENTRY_CHECKS, f"{name}: unknown kind {kind!r}")
    host = doc.get("host")
    require(isinstance(host, dict), f"{name}: missing host section")
    require("seconds" in host and "jobs" in host, f"{name}: bad host section")
    workloads = doc.get("workloads")
    require(isinstance(workloads, dict), f"{name}: missing workloads")
    require(workloads, f"{name}: no workloads recorded")
    for workload, regimes in workloads.items():
        require(
            isinstance(regimes, dict) and regimes,
            f"{name}: workload {workload} has no regimes",
        )
        for regime, entry in regimes.items():
            ENTRY_CHECKS[kind](entry, f"{name}:{workload}/{regime}")


def validate_run_registry(doc, name):
    run = doc["run"]
    require(isinstance(run, dict), f"{name}: run is not an object")
    require("outcome" in run, f"{name}: run.outcome missing")
    require("dyn_insts" in run, f"{name}: run.dyn_insts missing")
    host = doc.get("host")
    require(isinstance(host, dict), f"{name}: missing host section")
    require(
        "seconds" in host and "insts_per_second" in host,
        f"{name}: bad host section",
    )
    if "pipeline" in doc:
        pipeline = doc["pipeline"]
        require("bucket" in pipeline, f"{name}: pipeline.bucket missing")
        total = sum(pipeline["bucket"].values())
        require(
            total == pipeline["cycles"],
            f"{name}: pipeline buckets sum to {total}, "
            f"cycles is {pipeline['cycles']}",
        )


def load_ndjson(path):
    rows = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as err:
                raise ValidationError(f"{path}:{lineno}: {err}")
    return rows


def validate_batch_ndjson(path):
    rows = load_ndjson(path)
    require(rows, f"{path}: empty batch stream")
    indices = set()
    for row in rows:
        require(isinstance(row, dict), f"{path}: line is not an object")
        for key in ("index", "id", "mode", "ok"):
            require(key in row, f"{path}: line missing {key!r}")
        where = f"{path}:index {row['index']}"
        require(
            isinstance(row["index"], int) and row["index"] >= 0,
            f"{where}: bad index",
        )
        require(row["index"] not in indices, f"{where}: duplicate index")
        indices.add(row["index"])
        if row["ok"]:
            run = row.get("run")
            require(isinstance(run, dict), f"{where}: missing run result")
            require("outcome" in run, f"{where}: run.outcome missing")
            require("dyn_insts" in run, f"{where}: run.dyn_insts missing")
            check_host_section(row, where)
        else:
            require(bool(row.get("error")), f"{where}: failed without error")
    require(
        indices == set(range(len(rows))),
        f"{path}: indices do not cover 0..{len(rows) - 1}",
    )


def validate_file(path):
    if path.endswith(".ndjson"):
        validate_batch_ndjson(path)
        return
    with open(path) as f:
        doc = json.load(f)
    require(isinstance(doc, dict), f"{path}: top level is not an object")
    if "schema_version" in doc:
        validate_bench(doc, path)
    elif "run" in doc:
        validate_run_registry(doc, path)
    else:
        raise ValidationError(f"{path}: neither a bench artifact nor a "
                              "run registry")


# "replay" differs between snapshot and full-replay campaign modes by
# design (it measures how much execution the snapshots saved), so it is
# stripped alongside the host sections: --compare asserts the two modes
# produce identical classifications, not identical replay economics.
# "latency" and "open_loop" (service artifacts) are wall-clock
# measurements: two serve_load runs must agree on every closed-loop
# status count, not on how fast the host served them. "sampling" is
# stripped so a sampled artifact compares equal to a full-detail rerun
# of the same jobs on everything they are required to agree on (the
# architectural stream); sampled-vs-sampled determinism of the section
# itself is covered by the test suite.
HOST_KEYS = {"host", "host_seconds", "replay", "latency", "open_loop",
             "sampling"}


def strip_host(value):
    """Recursively drop host-dependent sections for determinism diffs."""
    if isinstance(value, dict):
        return {
            k: strip_host(v)
            for k, v in value.items()
            if k not in HOST_KEYS
        }
    if isinstance(value, list):
        return [strip_host(v) for v in value]
    return value


def first_difference(a, b, path=""):
    """Human-readable path of the first mismatch, or None if equal."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(a.keys() | b.keys()):
            if key not in a or key not in b:
                return f"{path}/{key} (present on one side only)"
            diff = first_difference(a[key], b[key], f"{path}/{key}")
            if diff:
                return diff
        return None
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return f"{path} (length {len(a)} vs {len(b)})"
        for i, (x, y) in enumerate(zip(a, b)):
            diff = first_difference(x, y, f"{path}[{i}]")
            if diff:
                return diff
        return None
    if a != b:
        return f"{path} ({a!r} vs {b!r})"
    return None


def load_for_compare(path):
    if path.endswith(".ndjson"):
        rows = load_ndjson(path)
        rows.sort(key=lambda row: row.get("index", 0))
        return strip_host(rows)
    with open(path) as f:
        return strip_host(json.load(f))


def compare(path_a, path_b):
    a = load_for_compare(path_a)
    b = load_for_compare(path_b)
    diff = first_difference(a, b)
    if diff:
        print(
            f"DIFFER {path_a} vs {path_b}: first mismatch at {diff}",
            file=sys.stderr,
        )
        return 1
    print(f"IDENTICAL {path_a} vs {path_b} (host sections ignored)")
    return 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--compare":
        if len(argv) != 4:
            print("usage: validate_bench_json.py --compare FILE_A FILE_B",
                  file=sys.stderr)
            return 2
        return compare(argv[2], argv[3])
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        try:
            validate_file(path)
            print(f"OK {path}")
        except (ValidationError, json.JSONDecodeError, OSError, KeyError,
                TypeError) as err:
            print(f"FAIL {path}: {err}", file=sys.stderr)
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
