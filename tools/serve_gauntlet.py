#!/usr/bin/env python3
"""Robustness gauntlet for `diserun --serve`.

Usage: serve_gauntlet.py --diserun PATH [--burst N] [--drain-timeout S]

Drives a freshly started daemon through three phases and exits nonzero
on the first broken promise:

1. Correctness: a closed-loop set of well-formed, in-budget requests
   (functional, timing, and campaign shapes) is sent over the socket
   AND run through `diserun --batch` on the same jobs; each pair of
   responses must be bit-identical after stripping the serving envelope
   (seq/status/latency_ms) and the host-dependent host sections.
2. Gauntlet: a burst far past saturation — sent with no pacing at all,
   i.e. an unbounded arrival rate, with 10% malformed lines and 10%
   deadline-busting requests mixed in. Every line must get exactly one
   structured response (ok / overloaded / deadline_exceeded /
   malformed / error), the daemon must shed some of the burst with
   "overloaded" (proof admission control engaged), and a final
   well-formed request must still succeed (proof nothing crashed).
3. Drain: SIGTERM must terminate the process with exit code 0 within
   the drain timeout plus a small margin.

Stdlib only; used by CI and runnable locally against any build.
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time


def fail(message):
    print(f"GAUNTLET FAIL: {message}", file=sys.stderr)
    sys.exit(1)


class NdjsonClient:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=120)
        self.file = self.sock.makefile("rw", encoding="utf-8")

    def send(self, line):
        if isinstance(line, dict):
            line = json.dumps(line)
        self.file.write(line + "\n")
        self.file.flush()

    def recv(self):
        line = self.file.readline()
        if not line:
            fail("server closed the connection mid-conversation")
        return json.loads(line)

    def close(self):
        self.sock.close()


def strip_host(value):
    if isinstance(value, dict):
        return {k: strip_host(v) for k, v in value.items()
                if k != "host"}
    if isinstance(value, list):
        return [strip_host(v) for v in value]
    return value


SERVE_ENVELOPE = {"seq", "status", "latency_ms"}


def canonical_serve(resp):
    return strip_host({k: v for k, v in resp.items()
                       if k not in SERVE_ENVELOPE})


def canonical_batch(row):
    return strip_host({k: v for k, v in row.items() if k != "index"})


def correctness_jobs():
    jobs = []
    for i in range(6):
        jobs.append({
            "id": f"fn-{i}",
            "workload": "twolf",
            "max_insts": 30000 + 1000 * i,
        })
    jobs.append({"id": "timing", "workload": "twolf", "mode": "timing",
                 "max_insts": 20000})
    # No max_insts here: a campaign's golden run must exit cleanly,
    # so the request runs the workload to completion.
    jobs.append({
        "id": "campaign",
        "workload": "twolf",
        "mode": "campaign",
        "trials": 4,
        "seed": 11,
        "fault_targets": ["regfile"],
    })
    return jobs


def phase_correctness(port, diserun):
    jobs = correctness_jobs()
    client = NdjsonClient(port)
    for job in jobs:
        client.send(job)
    served = {}
    for _ in jobs:
        resp = client.recv()
        if resp.get("status") != "ok":
            fail(f"in-budget request answered {resp.get('status')!r}: "
                 f"{resp.get('error')}")
        served[resp["id"]] = canonical_serve(resp)
    client.close()

    with tempfile.TemporaryDirectory() as tmp:
        jobs_path = os.path.join(tmp, "jobs.json")
        out_path = os.path.join(tmp, "out.ndjson")
        with open(jobs_path, "w") as f:
            json.dump(jobs, f)
        proc = subprocess.run(
            [diserun, "--batch", jobs_path, "--batch-out", out_path],
            capture_output=True, text=True)
        if proc.returncode != 0:
            fail(f"diserun --batch exited {proc.returncode}: "
                 f"{proc.stderr}")
        with open(out_path) as f:
            rows = [json.loads(line) for line in f if line.strip()]

    if len(rows) != len(jobs):
        fail(f"batch produced {len(rows)} lines for {len(jobs)} jobs")
    for row in rows:
        want = canonical_batch(row)
        got = served.get(row["id"])
        if got != want:
            fail(f"serve response for {row['id']!r} differs from "
                 f"--batch:\n  serve: {json.dumps(got, sort_keys=True)}"
                 f"\n  batch: {json.dumps(want, sort_keys=True)}")
    print(f"gauntlet: correctness OK "
          f"({len(jobs)} serve responses bit-identical to --batch)")


def gauntlet_line(i):
    if i % 10 == 3:
        return "{ definitely not json", "malformed"
    if i % 10 == 7:
        return {
            "id": f"bust-{i}",
            "workload": "mcf",
            "deadline_ms": 1,
        }, "deadline"
    return {
        "id": f"load-{i}",
        "workload": "twolf",
        "max_insts": 25000 + 10 * i,
    }, "good"


def phase_gauntlet(port, burst):
    client = NdjsonClient(port)
    sent = 0
    for i in range(burst):
        line, _ = gauntlet_line(i)
        client.send(line)
        sent += 1
    statuses = {}
    for _ in range(sent):
        resp = client.recv()
        status = resp.get("status")
        if status not in ("ok", "overloaded", "deadline_exceeded",
                          "malformed", "error"):
            fail(f"unstructured response status {status!r}")
        if status == "overloaded" and "retry_after_ms" not in resp:
            fail("overloaded response without retry_after_ms")
        statuses[status] = statuses.get(status, 0) + 1
    if statuses.get("overloaded", 0) == 0:
        fail(f"burst of {burst} never tripped admission control "
             f"(statuses: {statuses})")
    if statuses.get("error", 0) > 0:
        fail(f"well-formed burst produced unexpected errors "
             f"(statuses: {statuses})")

    # The daemon must still serve cleanly after the storm.
    client.send({"id": "survivor", "workload": "twolf",
                 "max_insts": 12345})
    resp = client.recv()
    if resp.get("status") != "ok":
        fail(f"post-burst request answered {resp.get('status')!r}")
    client.send({"kind": "stats"})
    stats = client.recv()
    if stats.get("status") != "ok":
        fail("stats request failed after the burst")
    client.close()
    print(f"gauntlet: burst OK (statuses: "
          f"{json.dumps(statuses, sort_keys=True)})")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--diserun", required=True,
                        help="path to the diserun binary")
    parser.add_argument("--burst", type=int, default=400,
                        help="gauntlet burst size (unpaced)")
    parser.add_argument("--drain-timeout", type=float, default=5.0,
                        help="server drain budget in seconds")
    args = parser.parse_args()

    daemon = subprocess.Popen(
        [args.diserun, "--serve", "--listen", ":0",
         "--executors", "2", "--jobs", "2",
         "--max-pending", "64",
         "--drain-timeout-ms", str(int(args.drain_timeout * 1000))],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
    try:
        handshake = daemon.stdout.readline().strip()
        prefix = "serve: listening on "
        if not handshake.startswith(prefix):
            fail(f"bad startup handshake: {handshake!r}")
        # The daemon advertises the actually-bound host:port.
        host, _, port_str = handshake[len(prefix):].rpartition(":")
        if host != "127.0.0.1":
            fail(f"expected a loopback bind, got {host!r}")
        port = int(port_str)
        print(f"gauntlet: daemon up on port {port}")

        phase_correctness(port, args.diserun)
        phase_gauntlet(port, args.burst)

        daemon.send_signal(signal.SIGTERM)
        deadline = time.time() + args.drain_timeout + 5.0
        while daemon.poll() is None:
            if time.time() > deadline:
                fail("daemon failed to drain within the timeout")
            time.sleep(0.05)
        if daemon.returncode != 0:
            fail(f"daemon exited {daemon.returncode} on SIGTERM")
        print("gauntlet: drained cleanly on SIGTERM")
        print("GAUNTLET PASS")
    finally:
        if daemon.poll() is None:
            daemon.kill()


if __name__ == "__main__":
    main()
