/**
 * @file
 * diserun — command-line driver for the DISE simulator.
 *
 * Assembles a program (or generates a built-in workload), optionally
 * installs ACFs, and runs it on the functional or cycle-level simulator.
 *
 *   diserun [options] <program.s>
 *   diserun [options] --workload <name>
 *
 * Options:
 *   --timing                 cycle-level model (default: functional)
 *   --productions <file>     install productions from a DSL file
 *   --mfi[=dise3|dise4|sandbox]
 *                            memory fault isolation via DISE
 *   --rewrite-mfi            binary-rewriting MFI baseline (no DISE)
 *   --compress               compress the text, run via decompression
 *   --profile                path profiler; prints the records
 *   --trace <n>              print the first n dynamic instructions
 *   --icache <KB>            L1I size (0 = perfect)
 *   --width <n>              machine width
 *   --rt <entries>           RT capacity (0 = perfect)
 *   --rt-assoc <n>           RT associativity
 *   --no-expansion-cache     disable the memoized expansion fast path
 *   --no-trace-cache         disable the translated basic-block fast
 *                            path (functional mode; pure step() loop)
 *   --placement <free|stall|pipe>
 *   --max-insts <n>          dynamic instruction cap
 *   --dump-asm               print the program source (workloads only)
 *   --stats                  dump engine/cache/predictor counters
 *   --stats-json <file>      write the full stats registry (all
 *                            component counters, derived ratios, cycle
 *                            buckets, host wall clock) as JSON
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/acf/compress.hpp"
#include "src/common/logging.hpp"
#include "src/acf/mfi.hpp"
#include "src/acf/profiler.hpp"
#include "src/acf/rewriter.hpp"
#include "src/assembler/assembler.hpp"
#include "src/dise/parser.hpp"
#include "src/isa/disasm.hpp"
#include "src/pipeline/pipeline.hpp"
#include "src/workloads/workloads.hpp"

using namespace dise;

namespace {

struct Options
{
    std::string source;
    std::string workload;
    std::string productionsFile;
    bool timing = false;
    bool mfi = false;
    MfiVariant mfiVariant = MfiVariant::Dise3;
    bool rewriteMfi = false;
    bool compress = false;
    bool profile = false;
    uint64_t traceInsts = 0;
    uint32_t icacheKB = 32;
    uint32_t width = 4;
    uint32_t rtEntries = 2048;
    uint32_t rtAssoc = 2;
    bool expansionCache = true;
    bool traceCache = true;
    DisePlacement placement = DisePlacement::Pipe;
    uint64_t maxInsts = ~uint64_t(0);
    bool dumpAsm = false;
    bool stats = false;
    std::string statsJsonFile;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [options] <program.s> | --workload <name>\n"
                 "run '%s --help' is this message; see the file header "
                 "for the option list\n",
                 argv0, argv0);
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--timing") {
            opts.timing = true;
        } else if (arg == "--productions") {
            opts.productionsFile = need(i);
        } else if (arg == "--mfi" || arg.rfind("--mfi=", 0) == 0) {
            opts.mfi = true;
            if (arg == "--mfi=dise4")
                opts.mfiVariant = MfiVariant::Dise4;
            else if (arg == "--mfi=sandbox")
                opts.mfiVariant = MfiVariant::Sandbox;
        } else if (arg == "--rewrite-mfi") {
            opts.rewriteMfi = true;
        } else if (arg == "--compress") {
            opts.compress = true;
        } else if (arg == "--profile") {
            opts.profile = true;
        } else if (arg == "--trace") {
            opts.traceInsts = std::strtoull(need(i), nullptr, 0);
        } else if (arg == "--icache") {
            opts.icacheKB = static_cast<uint32_t>(std::atoi(need(i)));
        } else if (arg == "--width") {
            opts.width = static_cast<uint32_t>(std::atoi(need(i)));
        } else if (arg == "--rt") {
            opts.rtEntries = static_cast<uint32_t>(std::atoi(need(i)));
        } else if (arg == "--rt-assoc") {
            opts.rtAssoc = static_cast<uint32_t>(std::atoi(need(i)));
        } else if (arg == "--no-expansion-cache") {
            opts.expansionCache = false;
        } else if (arg == "--no-trace-cache") {
            opts.traceCache = false;
        } else if (arg == "--placement") {
            const std::string p = need(i);
            opts.placement = p == "free" ? DisePlacement::Free
                             : p == "stall" ? DisePlacement::Stall
                                            : DisePlacement::Pipe;
        } else if (arg == "--max-insts") {
            opts.maxInsts = std::strtoull(need(i), nullptr, 0);
        } else if (arg == "--workload") {
            opts.workload = need(i);
        } else if (arg == "--dump-asm") {
            opts.dumpAsm = true;
        } else if (arg == "--stats") {
            opts.stats = true;
        } else if (arg == "--stats-json") {
            opts.statsJsonFile = need(i);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
        } else {
            opts.source = arg;
        }
    }
    if (opts.source.empty() == opts.workload.empty())
        usage(argv[0]); // exactly one input source
    return opts;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeStatsJson(const std::string &path, const StatsRegistry &reg)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write " + path);
    out << reg.toJson().dump(2) << "\n";
    if (!out)
        fatal("write failed: " + path);
}

/**
 * Host-side run metadata: wall-clock seconds of the run() call and the
 * simulation rate in dynamic instructions per host second.
 */
void
setHostStats(StatsRegistry &reg, double hostSeconds, uint64_t dynInsts)
{
    reg.set("host.seconds", Json(hostSeconds));
    reg.set("host.insts_per_second",
            Json(hostSeconds > 0.0 ? double(dynInsts) / hostSeconds
                                   : 0.0));
}

void
printRun(const RunResult &r)
{
    std::printf("outcome:       %s\n", runOutcomeName(r.outcome));
    if (r.outcome == RunOutcome::Trap) {
        std::printf("trap:          %s at 0x%llx:%u (fault addr 0x%llx)"
                    "\n               %s\n",
                    trapCauseName(r.trap.cause),
                    (unsigned long long)r.trap.pc, r.trap.disepc,
                    (unsigned long long)r.trap.faultAddr,
                    r.trap.message.c_str());
    }
    if (r.acfDetections > 0) {
        std::printf("acf detects:   %llu\n",
                    (unsigned long long)r.acfDetections);
    }
    std::printf("exited:        %s (code %d)\n", r.exited ? "yes" : "NO",
                r.exitCode);
    if (!r.output.empty())
        std::printf("output:        %s\n", r.output.c_str());
    std::printf("dyn insts:     %llu (app %llu + dise %llu)\n",
                (unsigned long long)r.dynInsts,
                (unsigned long long)r.appInsts,
                (unsigned long long)r.diseInsts);
    std::printf("expansions:    %llu\n",
                (unsigned long long)r.expansions);
    std::printf("loads/stores:  %llu / %llu\n",
                (unsigned long long)r.loads,
                (unsigned long long)r.stores);
}

int
runMain(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);

    // ---- Build the program. ----
    Program prog;
    if (!opts.workload.empty()) {
        const WorkloadSpec &spec = workloadSpec(opts.workload);
        if (opts.dumpAsm) {
            std::fputs(generateWorkloadSource(spec).c_str(), stdout);
            return 0;
        }
        prog = buildWorkload(spec);
    } else {
        prog = assemble(readFile(opts.source));
    }
    std::printf("program:       %zu insts (%.1f KB text, %.1f KB "
                "data), entry 0x%llx\n",
                prog.text.size(), prog.textBytes() / 1024.0,
                prog.data.size() / 1024.0,
                (unsigned long long)prog.entry);

    // ---- Assemble the production set. ----
    auto set = std::make_shared<ProductionSet>();
    bool haveDise = false;
    if (!opts.productionsFile.empty()) {
        set->merge(parseProductions(readFile(opts.productionsFile),
                                    prog.symbols));
        haveDise = true;
    }
    if (opts.mfi) {
        MfiOptions mfiOpts;
        mfiOpts.variant = opts.mfiVariant;
        set->merge(makeMfiProductions(prog, mfiOpts));
        haveDise = true;
    }
    if (opts.profile) {
        set->merge(makePathProfilerProductions());
        haveDise = true;
    }
    if (opts.rewriteMfi) {
        prog = applyMfiRewriting(prog);
        std::printf("rewritten:     %zu insts after MFI rewriting\n",
                    prog.text.size());
    }
    Addr profileBuffer = 0;
    if (opts.profile) {
        // Place the profile buffer past everything in the data segment.
        profileBuffer = prog.dataBase + ((prog.data.size() + 0xffff) &
                                         ~size_t(0xfff)) + (1 << 20);
    }
    if (opts.compress) {
        const CompressionResult comp = compressProgram(prog);
        std::printf("compressed:    %.1f KB text (ratio %.3f, +dict "
                    "%.3f), %u dictionary entries\n",
                    comp.compressedTextBytes / 1024.0, comp.ratio(),
                    comp.ratioWithDict(), comp.dictEntries);
        prog = comp.compressed;
        set->merge(*comp.dictionary);
        haveDise = true;
    }

    DiseConfig config;
    config.rtEntries = opts.rtEntries;
    config.rtAssoc = opts.rtAssoc;
    config.expansionCache = opts.expansionCache;
    config.placement = opts.placement;
    DiseController controller(config);
    if (haveDise)
        controller.install(set);
    DiseController *ctl = haveDise ? &controller : nullptr;

    auto initCore = [&](ExecCore &core) {
        if (opts.mfi)
            initMfiRegisters(core, prog);
        if (opts.profile)
            initProfilerRegisters(core, profileBuffer);
    };

    // ---- Run. ----
    if (opts.timing) {
        PipelineParams machine;
        machine.width = opts.width;
        machine.mem.l1iSize = opts.icacheKB * 1024;
        PipelineSim sim(prog, machine, ctl);
        initCore(sim.core());
        const auto t0 = std::chrono::steady_clock::now();
        const TimingResult t = sim.run(opts.maxInsts);
        const double hostSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        printRun(t.arch);
        std::printf("cycles:        %llu (IPC %.2f)\n",
                    (unsigned long long)t.cycles, t.ipc());
        std::printf("mispredicts:   %llu (+%llu unpredicted-sequence, "
                    "%llu decode redirects)\n",
                    (unsigned long long)t.mispredicts,
                    (unsigned long long)t.diseMispredicts,
                    (unsigned long long)t.decodeRedirects);
        std::printf("cache misses:  L1I %llu, L1D %llu, L2 %llu\n",
                    (unsigned long long)t.icacheMisses,
                    (unsigned long long)t.dcacheMisses,
                    (unsigned long long)t.l2Misses);
        std::printf("PT/RT stalls:  %llu cycles\n",
                    (unsigned long long)t.missStallCycles);
        if (opts.profile) {
            const auto records =
                readPathProfile(sim.core(), profileBuffer);
            std::printf("path records:  %zu\n", records.size());
        }
        if (opts.stats) {
            std::fputs(
                controller.engine().stats().dump().c_str(), stdout);
            std::fputs(sim.mem().icache().stats().dump().c_str(),
                       stdout);
            std::fputs(sim.mem().dcache().stats().dump().c_str(),
                       stdout);
            std::fputs(sim.mem().l2().stats().dump().c_str(), stdout);
            std::fputs(sim.predictor().stats().dump().c_str(), stdout);
        }
        if (!opts.statsJsonFile.empty()) {
            StatsRegistry reg;
            sim.registerStats(reg);
            reg.set("run.outcome",
                    Json(std::string(runOutcomeName(t.arch.outcome))));
            setHostStats(reg, hostSeconds, t.arch.dynInsts);
            writeStatsJson(opts.statsJsonFile, reg);
        }
    } else {
        ExecCore core(prog, ctl);
        core.setTraceCacheEnabled(opts.traceCache);
        initCore(core);
        const auto t0 = std::chrono::steady_clock::now();
        if (opts.traceInsts > 0) {
            DynInst dyn;
            for (uint64_t i = 0;
                 i < opts.traceInsts && core.step(dyn); ++i) {
                std::printf("%6llu  0x%llx:%u  %s\n",
                            (unsigned long long)i,
                            (unsigned long long)dyn.pc, dyn.disepc,
                            disassemble(dyn.inst, dyn.pc).c_str());
            }
        }
        const RunResult r = core.run(opts.maxInsts);
        const double hostSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        printRun(r);
        if (opts.profile) {
            const auto records = readPathProfile(core, profileBuffer);
            std::printf("path records:  %zu\n", records.size());
            const size_t show = std::min<size_t>(records.size(), 10);
            for (size_t i = 0; i < show; ++i) {
                std::printf("    0x%llx : 0x%llx\n",
                            (unsigned long long)records[i].endpointPC,
                            (unsigned long long)records[i].history);
            }
        }
        if (opts.stats && haveDise) {
            std::fputs(
                controller.engine().stats().dump().c_str(), stdout);
        }
        if (!opts.statsJsonFile.empty()) {
            StatsRegistry reg;
            StatGroup runStats("run");
            runStats.set("dyn_insts", r.dynInsts);
            runStats.set("app_insts", r.appInsts);
            runStats.set("dise_insts", r.diseInsts);
            runStats.set("expansions", r.expansions);
            runStats.set("loads", r.loads);
            runStats.set("stores", r.stores);
            runStats.set("acf_detections", r.acfDetections);
            reg.add("run", &runStats);
            if (haveDise)
                reg.add("dise", &controller.engine().stats());
            reg.set("run.outcome",
                    Json(std::string(runOutcomeName(r.outcome))));
            setHostStats(reg, hostSeconds, r.dynInsts);
            writeStatsJson(opts.statsJsonFile, reg);
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Guest failures are architected Trap/Hang outcomes and never throw;
    // the only exceptions reaching here are host-level, already logged
    // to stderr by fatal()/panic(). Separate the two error classes by
    // exit code: user error (bad input, unreadable file) is 1, a
    // simulator invariant violation is 2.
    try {
        return runMain(argc, argv);
    } catch (const PanicError &) {
        return 2;
    } catch (const FatalError &) {
        return 1;
    }
}
