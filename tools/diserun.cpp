/**
 * @file
 * diserun — command-line driver for the DISE simulator.
 *
 * Assembles a program (or generates a built-in workload), optionally
 * installs ACFs, and runs it on the functional or cycle-level
 * simulator. All execution routes through the simulation service
 * (src/service): one run builds a RunRequest and executes it via
 * prepareJob()/run*Sim(); --batch hands a whole job file to a
 * SimSession, which shards it across a worker pool.
 *
 *   diserun [options] <program.s>
 *   diserun [options] --workload <name>
 *   diserun --batch <jobs.json> [--jobs N] [--batch-out <file>]
 *   diserun --serve --listen <addr:port|unix:path> [serving options]
 *
 * Options:
 *   --batch <file>           run a JSON batch: either a top-level array
 *                            of RunRequest objects or {"jobs": [...]}.
 *                            Results stream as NDJSON (one JSON object
 *                            per line, with an "index" field) in
 *                            completion order; exit 1 if any job failed.
 *                            Every line is flushed as written and write
 *                            failures (a closed pipe, a full disk) end
 *                            the batch with a clean nonzero exit
 *   --jobs <n>               batch worker threads (default 1); with
 *                            --serve, the SimSession worker pool
 *   --batch-out <file>       write the NDJSON stream here (default
 *                            stdout)
 *
 * Serving options (see src/service/server.hpp for the protocol):
 *   --serve                  run as an NDJSON-over-socket daemon;
 *                            SIGTERM/SIGINT drain gracefully
 *   --listen <addr>          "host:port" (":0" = loopback, ephemeral;
 *                            the bound address is printed on stdout)
 *                            or "unix:/path"
 *   --executors <n>          concurrent request executors (default 2)
 *   --max-pending <n>        global admission cap (default 64)
 *   --max-pending-per-client <n>
 *                            per-connection admission cap (default 16)
 *   --default-deadline-ms <n>
 *                            wall-clock budget for requests carrying
 *                            no deadline_ms (default 0 = unlimited)
 *   --default-max-insts <n>  instruction budget imposed on requests
 *                            that set none (default 0 = leave as-is)
 *   --drain-timeout-ms <n>   shutdown drain budget (default 5000)
 *   --max-cached-results <n> idempotent result-cache entry cap, LRU
 *                            eviction beyond it (default 1024;
 *                            0 = never evict)
 *   --timing                 cycle-level model (default: functional)
 *   --no-trace-feed          timing mode: drive the timing model with
 *                            step() per instruction (the reference
 *                            delivery path) instead of batched
 *                            retire-trace feeding; results are
 *                            bit-identical, only slower
 *   --timing-sample <period>:<detail>
 *                            timing mode: SMARTS-style sampled timing
 *                            — per period instructions, time the first
 *                            detail in full and functionally warm the
 *                            caches/predictor through the rest;
 *                            reports measured + extrapolated CPI
 *   --acf <kind[:variant][/compose]>
 *                            append one entry to the ordered ACF-spec
 *                            list (the RunRequest "acfs" form), e.g.
 *                            --acf mfi:dise4 --acf watchpoint/merged
 *                            --acf fusion. Resolved by the AcfRegistry;
 *                            cannot be mixed with the legacy ACF flags
 *                            below
 *   --productions <file>     install productions from a DSL file (with
 *                            --acf, add an "--acf productions" entry
 *                            fixing its position in the list)
 *   --mfi[=dise3|dise4|sandbox]
 *                            memory fault isolation via DISE (legacy
 *                            alias of --acf mfi:<variant>)
 *   --watchpoint             merge the watchpoint assertion over MFI
 *                            (legacy alias of --acf watchpoint/merged)
 *   --rewrite-mfi            binary-rewriting MFI baseline (no DISE)
 *   --compress               compress the text, run via decompression
 *   --profile                path profiler; prints the records
 *
 * Generator / differential-harness options (src/workloads/generator):
 *   --gen-seed <n>           run the seeded random program for seed n
 *                            instead of a file/workload (--dump-asm
 *                            prints its source). Composes with --acf,
 *                            --timing, --stats, ...
 *   --gen-diff <n>           differential harness: generate n programs
 *                            (per-program seeds derived from the
 *                            --gen-seed base, default 2003) and check
 *                            native-vs-fused architectural identity
 *                            and fast-vs-slow bit-identity for each,
 *                            sharded over --jobs threads. Prints a
 *                            worker-count-independent result digest;
 *                            any failure dumps the reproducing seed and
 *                            writes the program listing next to the
 *                            cwd, then exits 1
 *   --trace <n>              print the first n dynamic instructions
 *   --icache <KB>            L1I size (0 = perfect)
 *   --width <n>              machine width
 *   --rt <entries>           RT capacity (0 = perfect)
 *   --rt-assoc <n>           RT associativity
 *   --no-expansion-cache     disable the memoized expansion fast path
 *   --no-trace-cache         disable the translated basic-block fast
 *                            path (functional mode; pure step() loop)
 *   --placement <free|stall|pipe>
 *   --max-insts <n>          dynamic instruction cap
 *   --scale <x>              workload scale (workloads only)
 *   --snapshot-at <n>        functional mode: capture a copy-on-write
 *                            state snapshot at application instruction
 *                            n, then run the remainder from it (the
 *                            result is bit-identical to an
 *                            uninterrupted run)
 *   --restore                after the run, restore the --snapshot-at
 *                            state and replay the suffix (time-travel
 *                            trap debugging: combine with --trace to
 *                            step the path from the snapshot to a trap
 *                            without re-executing the prefix); verifies
 *                            the replay is bit-identical
 *
 * All numeric flags are strictly validated: the whole token must be a
 * number of the right sign and integrality, so "--jobs 4x" or
 * "--scale banana" exit with usage instead of silently running with a
 * half-parsed value. Unknown --mfi=/--placement spellings are rejected
 * the same way.
 *
 *   --dump-asm               print the program source (workloads only)
 *   --stats                  dump engine/cache/predictor counters
 *   --stats-json <file>      write the full stats registry (all
 *                            component counters, derived ratios, cycle
 *                            buckets, host wall clock) as JSON
 */

#include <algorithm>
#include <array>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>

#include <poll.h>
#include <unistd.h>

#include "src/common/logging.hpp"
#include "src/common/rng.hpp"
#include "src/isa/disasm.hpp"
#include "src/service/bench_config.hpp"
#include "src/service/server.hpp"
#include "src/service/session.hpp"
#include "src/workloads/generator.hpp"
#include "src/workloads/workloads.hpp"

using namespace dise;

namespace {

struct Options
{
    RunRequest req;
    std::string sourceFile;
    std::string productionsFile;
    std::string batchFile;
    std::string batchOutFile;
    unsigned jobs = 1;
    uint64_t traceInsts = 0;
    uint64_t genSeed = 2003;
    bool genSeedSet = false;
    uint64_t genDiff = 0; ///< 0 = no differential harness
    uint64_t snapshotAt = 0; ///< 0 = no snapshot
    bool restore = false;
    bool dumpAsm = false;
    bool stats = false;
    std::string statsJsonFile;
    bool serve = false;
    ServerConfig server;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [options] <program.s> | --workload <name> | "
                 "--batch <jobs.json>\n"
                 "see the file header for the option list\n",
                 argv0);
    std::exit(2);
}

/**
 * Run one of the strict bench_config parsers over a flag value; on a
 * malformed token the parser's fatal() diagnostic (naming the flag and
 * the offending text) lands on stderr and we exit with usage, never
 * with a half-parsed value.
 */
template <typename Parse>
auto
parsed(const char *argv0, Parse &&parse) -> decltype(parse())
{
    try {
        return parse();
    } catch (const FatalError &) {
        usage(argv0);
    }
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    const char *argv0 = argv[0];
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    // Every numeric flag goes through the validated parsers: positive
    // where 0 is meaningless, non-negative where 0 selects a mode
    // (--icache 0 = perfect, --rt 0 = perfect, --trace 0 = off).
    auto positiveInt = [&](int &i, const char *flag) {
        const char *text = need(i);
        return parsed(argv0, [&] {
            return parsePositiveInt(text, flag);
        });
    };
    auto nonNegativeInt = [&](int &i, const char *flag) {
        const char *text = need(i);
        return parsed(argv0, [&] {
            return parseNonNegativeInt(text, flag);
        });
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--batch") {
            opts.batchFile = need(i);
        } else if (arg == "--serve") {
            opts.serve = true;
        } else if (arg == "--listen") {
            opts.server.listen = need(i);
        } else if (arg == "--executors") {
            opts.server.executors =
                static_cast<unsigned>(positiveInt(i, "--executors"));
        } else if (arg == "--max-pending") {
            opts.server.maxPending = positiveInt(i, "--max-pending");
        } else if (arg == "--max-pending-per-client") {
            opts.server.maxPendingPerClient =
                positiveInt(i, "--max-pending-per-client");
        } else if (arg == "--default-deadline-ms") {
            opts.server.defaultDeadlineMs =
                nonNegativeInt(i, "--default-deadline-ms");
        } else if (arg == "--default-max-insts") {
            opts.server.defaultMaxInsts =
                nonNegativeInt(i, "--default-max-insts");
        } else if (arg == "--drain-timeout-ms") {
            opts.server.drainTimeoutMs =
                nonNegativeInt(i, "--drain-timeout-ms");
        } else if (arg == "--max-cached-results") {
            opts.server.maxCachedResults =
                nonNegativeInt(i, "--max-cached-results");
        } else if (arg == "--jobs") {
            opts.jobs =
                static_cast<unsigned>(positiveInt(i, "--jobs"));
        } else if (arg == "--batch-out") {
            opts.batchOutFile = need(i);
        } else if (arg == "--timing") {
            opts.req.mode = RunMode::Timing;
        } else if (arg == "--no-trace-feed") {
            opts.req.traceFeed = false;
        } else if (arg == "--timing-sample") {
            const std::string spec = need(i);
            const size_t colon = spec.find(':');
            uint64_t period = 0, detail = 0;
            bool parsedOk = colon != std::string::npos && colon > 0 &&
                            colon + 1 < spec.size();
            if (parsedOk) {
                parsedOk = parsed(argv0, [&] {
                    period =
                        parsePositiveInt(spec.substr(0, colon).c_str(),
                                         "--timing-sample period");
                    detail =
                        parsePositiveInt(spec.substr(colon + 1).c_str(),
                                         "--timing-sample detail");
                    return true;
                });
            }
            if (!parsedOk || period == 0 || detail == 0 ||
                detail > period) {
                std::fprintf(stderr,
                             "--timing-sample %s: expected "
                             "<period>:<detail> with 1 <= detail <= "
                             "period\n",
                             spec.c_str());
                usage(argv0);
            }
            opts.req.samplePeriod = period;
            opts.req.sampleDetail = detail;
        } else if (arg == "--acf") {
            // kind[:variant][/compose], e.g. mfi:dise4, fusion,
            // watchpoint/merged. Repeatable; order is the list order.
            std::string body = need(i);
            AcfSpec spec;
            const size_t slash = body.find('/');
            if (slash != std::string::npos) {
                spec.compose = parsed(argv0, [&] {
                    return parseAcfCompose(body.substr(slash + 1));
                });
                body = body.substr(0, slash);
            }
            const size_t colon = body.find(':');
            if (colon != std::string::npos) {
                spec.variant = body.substr(colon + 1);
                body = body.substr(0, colon);
            }
            spec.kind = body;
            if (!AcfRegistry::instance().known(spec.kind)) {
                std::fprintf(
                    stderr, "--acf %s: unknown ACF kind (valid: %s)\n",
                    spec.kind.c_str(),
                    AcfRegistry::instance().kindList().c_str());
                usage(argv0);
            }
            opts.req.acfs.push_back(std::move(spec));
            opts.req.acfsExplicit = true;
        } else if (arg == "--gen-seed") {
            opts.genSeed = nonNegativeInt(i, "--gen-seed");
            opts.genSeedSet = true;
        } else if (arg == "--gen-diff") {
            opts.genDiff = positiveInt(i, "--gen-diff");
        } else if (arg == "--productions") {
            opts.productionsFile = need(i);
        } else if (arg == "--mfi" || arg.rfind("--mfi=", 0) == 0) {
            opts.req.mfi = true;
            if (arg == "--mfi" || arg == "--mfi=dise3") {
                opts.req.mfiVariant = MfiVariant::Dise3;
            } else if (arg == "--mfi=dise4") {
                opts.req.mfiVariant = MfiVariant::Dise4;
            } else if (arg == "--mfi=sandbox") {
                opts.req.mfiVariant = MfiVariant::Sandbox;
            } else {
                std::fprintf(stderr,
                             "%s: unknown MFI variant (valid: "
                             "--mfi=dise3, --mfi=dise4, --mfi=sandbox)"
                             "\n",
                             arg.c_str());
                usage(argv0);
            }
        } else if (arg == "--watchpoint") {
            opts.req.watchpoint = true;
        } else if (arg == "--rewrite-mfi") {
            opts.req.rewriteMfi = true;
        } else if (arg == "--compress") {
            opts.req.compress = true;
        } else if (arg == "--profile") {
            opts.req.profile = true;
        } else if (arg == "--trace") {
            opts.traceInsts = nonNegativeInt(i, "--trace");
        } else if (arg == "--icache") {
            opts.req.icacheKB =
                static_cast<uint32_t>(nonNegativeInt(i, "--icache"));
        } else if (arg == "--width") {
            opts.req.width =
                static_cast<uint32_t>(positiveInt(i, "--width"));
        } else if (arg == "--rt") {
            opts.req.dise.rtEntries =
                static_cast<uint32_t>(nonNegativeInt(i, "--rt"));
        } else if (arg == "--rt-assoc") {
            opts.req.dise.rtAssoc =
                static_cast<uint32_t>(positiveInt(i, "--rt-assoc"));
        } else if (arg == "--no-expansion-cache") {
            opts.req.dise.expansionCache = false;
        } else if (arg == "--no-trace-cache") {
            opts.req.traceCache = false;
        } else if (arg == "--placement") {
            const std::string p = need(i);
            if (p == "free") {
                opts.req.dise.placement = DisePlacement::Free;
            } else if (p == "stall") {
                opts.req.dise.placement = DisePlacement::Stall;
            } else if (p == "pipe") {
                opts.req.dise.placement = DisePlacement::Pipe;
            } else {
                std::fprintf(stderr,
                             "--placement %s: unknown placement "
                             "(valid: free, stall, pipe)\n",
                             p.c_str());
                usage(argv0);
            }
        } else if (arg == "--max-insts") {
            opts.req.maxInsts = positiveInt(i, "--max-insts");
        } else if (arg == "--scale") {
            const char *text = need(i);
            opts.req.scale = parsed(argv0, [&] {
                return parsePositiveValue(text, "--scale");
            });
        } else if (arg == "--snapshot-at") {
            opts.snapshotAt = positiveInt(i, "--snapshot-at");
        } else if (arg == "--restore") {
            opts.restore = true;
        } else if (arg == "--workload") {
            opts.req.workload = need(i);
        } else if (arg == "--dump-asm") {
            opts.dumpAsm = true;
        } else if (arg == "--stats") {
            opts.stats = true;
        } else if (arg == "--stats-json") {
            opts.statsJsonFile = need(i);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
        } else {
            opts.sourceFile = arg;
        }
    }
    if (opts.req.acfsExplicit &&
        (opts.req.mfi || opts.req.watchpoint || opts.req.rewriteMfi ||
         opts.req.compress || opts.req.profile)) {
        std::fprintf(stderr,
                     "--acf cannot be mixed with the legacy ACF flags "
                     "(--mfi/--watchpoint/--rewrite-mfi/--compress/"
                     "--profile)\n");
        usage(argv0);
    }
    if (opts.snapshotAt > 0) {
        for (const AcfSpec &spec : opts.req.acfs) {
            if (spec.kind == "fusion") {
                std::fprintf(stderr,
                             "--snapshot-at counts single application "
                             "instructions and cannot be combined with "
                             "--acf fusion\n");
                usage(argv0);
            }
        }
    }
    if (opts.restore && opts.snapshotAt == 0) {
        std::fprintf(stderr, "--restore requires --snapshot-at\n");
        usage(argv0);
    }
    if (opts.snapshotAt > 0 && opts.req.mode != RunMode::Functional) {
        std::fprintf(stderr,
                     "--snapshot-at applies to functional mode only\n");
        usage(argv0);
    }
    if (opts.serve) {
        if (!opts.batchFile.empty() || !opts.sourceFile.empty() ||
            !opts.req.workload.empty()) {
            std::fprintf(stderr,
                         "--serve takes no program or batch input\n");
            usage(argv0);
        }
        opts.server.workers = opts.jobs;
        return opts;
    }
    if (!opts.batchFile.empty())
        return opts;
    if (opts.genDiff > 0 || opts.genSeedSet) {
        if (!opts.sourceFile.empty() || !opts.req.workload.empty()) {
            std::fprintf(stderr,
                         "--gen-seed/--gen-diff generate the program; "
                         "drop the file/--workload input\n");
            usage(argv0);
        }
        return opts;
    }
    if (opts.sourceFile.empty() == opts.req.workload.empty())
        usage(argv[0]); // exactly one input source
    return opts;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeStatsJson(const std::string &path, const Json &doc)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write " + path);
    out << doc.dump(2) << "\n";
    if (!out)
        fatal("write failed: " + path);
}

void
printRun(const RunResult &r)
{
    std::printf("outcome:       %s\n", runOutcomeName(r.outcome));
    if (r.outcome == RunOutcome::Trap) {
        std::printf("trap:          %s at 0x%llx:%u (fault addr 0x%llx)"
                    "\n               %s\n",
                    trapCauseName(r.trap.cause),
                    (unsigned long long)r.trap.pc, r.trap.disepc,
                    (unsigned long long)r.trap.faultAddr,
                    r.trap.message.c_str());
    }
    if (r.acfDetections > 0) {
        std::printf("acf detects:   %llu\n",
                    (unsigned long long)r.acfDetections);
    }
    std::printf("exited:        %s (code %d)\n", r.exited ? "yes" : "NO",
                r.exitCode);
    if (!r.output.empty())
        std::printf("output:        %s\n", r.output.c_str());
    std::printf("dyn insts:     %llu (app %llu + dise %llu)\n",
                (unsigned long long)r.dynInsts,
                (unsigned long long)r.appInsts,
                (unsigned long long)r.diseInsts);
    std::printf("expansions:    %llu\n",
                (unsigned long long)r.expansions);
    std::printf("loads/stores:  %llu / %llu\n",
                (unsigned long long)r.loads,
                (unsigned long long)r.stores);
}

void
printProfile(const std::vector<PathRecord> &records, size_t show)
{
    std::printf("path records:  %zu\n", records.size());
    show = std::min(records.size(), show);
    for (size_t i = 0; i < show; ++i) {
        std::printf("    0x%llx : 0x%llx\n",
                    (unsigned long long)records[i].endpointPC,
                    (unsigned long long)records[i].history);
    }
}

/** Self-pipe the SIGTERM/SIGINT handler writes to; the serve loop
 *  polls it so shutdown starts from the main thread, not the handler
 *  (where no lock may be taken). */
int gSignalPipe[2] = {-1, -1};

extern "C" void
handleStopSignal(int)
{
    const char byte = 0;
    (void)!write(gSignalPipe[1], &byte, 1);
}

/** Run the NDJSON serving daemon until a stop signal or a panic. */
int
runServe(const Options &opts)
{
    if (::pipe(gSignalPipe) != 0)
        fatal("serve: pipe() failed");
    std::signal(SIGTERM, handleStopSignal);
    std::signal(SIGINT, handleStopSignal);

    SimServer server(opts.server);
    server.start();
    // The bound address on stdout is the startup handshake: scripts
    // read it to learn the ephemeral port before sending requests.
    if (opts.server.listen.rfind("unix:", 0) == 0) {
        std::printf("serve: listening on %s\n",
                    opts.server.listen.c_str());
    } else {
        // The actually-bound address (getsockname), not a hard-coded
        // loopback: --listen 0.0.0.0 must not hand scripts a lie.
        std::printf("serve: listening on %s:%d\n",
                    server.host().c_str(), server.port());
    }
    std::fflush(stdout);

    // Wait for a stop signal or a server-initiated stop (panic).
    for (;;) {
        pollfd pfd = {gSignalPipe[0], POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 200);
        if (rc > 0 && (pfd.revents & POLLIN)) {
            std::fprintf(stderr, "serve: stop signal, draining\n");
            server.requestShutdown();
            break;
        }
        if (server.stopping())
            break;
    }
    const int code = server.wait();
    std::fprintf(stderr, "serve: drained, exiting %d\n", code);
    return code;
}

/** Run a parsed batch file through a SimSession, streaming NDJSON. */
int
runBatch(const Options &opts)
{
    Json doc = Json::parse(readFile(opts.batchFile));
    Json *jobsDoc = &doc;
    if (doc.isObject()) {
        if (!doc.contains("jobs"))
            fatal("batch file: expected a top-level array or an object "
                  "with a \"jobs\" array");
        jobsDoc = &doc["jobs"];
    }
    std::vector<RunRequest> reqs;
    for (const Json &entry : jobsDoc->items())
        reqs.push_back(RunRequest::fromJson(entry));

    std::ofstream outFile;
    if (!opts.batchOutFile.empty()) {
        outFile.open(opts.batchOutFile);
        if (!outFile)
            fatal("cannot write " + opts.batchOutFile);
    }
    std::ostream &out = opts.batchOutFile.empty()
                            ? static_cast<std::ostream &>(std::cout)
                            : outFile;

    SimSession session({opts.jobs});
    // Stream one NDJSON line per job as it completes (the session
    // serializes callbacks); "index" identifies the request so
    // consumers can reorder deterministically. Every line is flushed
    // as written — a consumer killed mid-batch still has every
    // completed result — and a failed write (closed pipe: SIGPIPE is
    // ignored so it surfaces as a stream error; short write to
    // --batch-out: full disk) aborts the batch with a clean FatalError
    // instead of silently dropping results on the floor.
    const char *sink = opts.batchOutFile.empty()
                           ? "stdout"
                           : opts.batchOutFile.c_str();
    const auto responses = session.runBatch(
        reqs, [&](size_t index, const RunResponse &resp) {
            Json line = resp.toJson();
            line["index"] = Json(uint64_t(index));
            out << line.dump() << "\n";
            out.flush();
            if (!out)
                fatal(std::string("batch: write to ") + sink +
                      " failed (closed pipe or full disk); results "
                      "are incomplete");
        });

    out.flush();
    if (!out)
        fatal(std::string("batch: write to ") + sink + " failed");
    if (!opts.batchOutFile.empty()) {
        outFile.close();
        if (!outFile)
            fatal("batch: short write closing " + opts.batchOutFile);
    }
    size_t failed = 0;
    for (const RunResponse &resp : responses)
        failed += resp.ok ? 0 : 1;
    std::fprintf(stderr, "batch: %zu jobs, %zu failed, %u workers\n",
                 responses.size(), failed, opts.jobs);
    return failed == 0 ? 0 : 1;
}

/**
 * Generator differential harness (--gen-diff N).
 *
 * For each of N derived seeds, runs the generated program under four
 * functional regimes — {native, fused} x {slow step loop, chained
 * trace-cache fast path} — and requires all four architectural
 * results to be bit-identical (same outcome, counters, and printed
 * checksum). A generated program that traps or hangs fails the run
 * too: the generator guarantees clean termination, so either is a
 * generator bug worth a reproducing seed.
 *
 * Work is sharded over --jobs threads; results land in a seed-indexed
 * array, so the summary digest is independent of the worker count —
 * CI runs the same block with --jobs 1 and --jobs 4 and compares
 * digests to prove scheduler-independence.
 */
int
runGenDiff(const Options &opts)
{
    struct Regime
    {
        bool fusion;
        bool fast;
        const char *name;
    };
    static const std::array<Regime, 4> kRegimes = {{
        {false, false, "native-slow"},
        {false, true, "native-fast"},
        {true, false, "fused-slow"},
        {true, true, "fused-fast"},
    }};

    const uint64_t count = opts.genDiff;
    struct Row
    {
        uint64_t seed = 0;
        bool failed = false;
        std::string why;
        std::string canonical; ///< native-slow result JSON
        uint64_t fusedPairs = 0;
        uint64_t fusedDynInsts = 0;
    };
    std::vector<Row> rows(count);
    std::atomic<size_t> nextIndex{0};
    std::mutex dumpMutex;

    auto worker = [&]() {
        for (;;) {
            const size_t i = nextIndex.fetch_add(1);
            if (i >= count)
                return;
            Row &row = rows[i];
            row.seed = Rng::deriveSeed(opts.genSeed, i);
            GeneratorOptions gen;
            gen.seed = row.seed;
            const std::string src = generateRandomSource(gen);

            std::array<std::string, 4> results;
            for (size_t k = 0; k < kRegimes.size(); ++k) {
                RunRequest req;
                req.source = src;
                req.maxInsts = 20000000; // generous Hang backstop
                req.traceCache = kRegimes[k].fast;
                if (kRegimes[k].fusion) {
                    req.acfsExplicit = true;
                    req.acfs = {{"fusion", "", AcfCompose::Append}};
                }
                SimOptions simOpts;
                const bool wantCoverage =
                    kRegimes[k].fusion && kRegimes[k].fast;
                simOpts.registry = wantCoverage;
                const FunctionalOutcome out =
                    runFunctionalSim(prepareJob(req), simOpts);
                results[k] = out.arch.toJson().dump();
                // The generator promises clean termination: a trap,
                // hang, or nonzero exit from the reference regime is a
                // generator bug, not a simulator one — fail loudly.
                if (k == 0 &&
                    !(out.arch.exited && out.arch.exitCode == 0)) {
                    row.failed = true;
                    row.why +=
                        "generated program did not exit cleanly:\n  " +
                        results[0] + "\n";
                }
                if (wantCoverage && out.registry.isObject() &&
                    out.registry.contains("acf")) {
                    const Json &fz = out.registry.at("acf").at("fusion");
                    row.fusedPairs += fz.at("fused_pairs").asUInt();
                    row.fusedDynInsts += out.arch.dynInsts;
                }
                if (k > 0 && results[k] != results[0]) {
                    row.failed = true;
                    row.why += std::string(kRegimes[k].name) +
                               " diverged from native-slow:\n  " +
                               results[0] + "\n  vs\n  " + results[k] +
                               "\n";
                }
            }
            row.canonical = results[0];
            if (row.failed) {
                // Reproduction artifact: the seed plus the listing.
                std::lock_guard<std::mutex> lock(dumpMutex);
                const std::string file =
                    "gen-diff-failure-" + std::to_string(row.seed) +
                    ".s";
                std::ofstream dump(file);
                dump << "# diserun --gen-seed " << row.seed
                     << " reproduces this program\n"
                     << src;
                std::fprintf(stderr,
                             "gen-diff FAILURE seed=%llu (listing: %s)"
                             "\n%s",
                             (unsigned long long)row.seed, file.c_str(),
                             row.why.c_str());
            }
        }
    };

    std::vector<std::thread> pool;
    for (unsigned t = 1; t < opts.jobs; ++t)
        pool.emplace_back(worker);
    worker();
    for (std::thread &t : pool)
        t.join();

    // Order-stable FNV-1a digest over the canonical per-seed results:
    // identical across worker counts or the sharding leaked state.
    uint64_t digest = 14695981039346656037ull;
    uint64_t failures = 0, fusedPairs = 0, fusedDynInsts = 0;
    for (const Row &row : rows) {
        for (const char c : row.canonical) {
            digest ^= static_cast<unsigned char>(c);
            digest *= 1099511628211ull;
        }
        failures += row.failed ? 1 : 0;
        fusedPairs += row.fusedPairs;
        fusedDynInsts += row.fusedDynInsts;
    }
    std::printf("gen-diff: programs=%llu regimes=%zu failures=%llu "
                "fused_pairs=%llu coverage=%.2f%% digest=%016llx\n",
                (unsigned long long)count, kRegimes.size(),
                (unsigned long long)failures,
                (unsigned long long)fusedPairs,
                fusedDynInsts
                    ? 100.0 * 2.0 * double(fusedPairs) /
                          double(fusedDynInsts)
                    : 0.0,
                (unsigned long long)digest);
    return failures == 0 ? 0 : 1;
}

int
runMain(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);
    if (opts.serve)
        return runServe(opts);
    if (!opts.batchFile.empty())
        return runBatch(opts);
    if (opts.genDiff > 0)
        return runGenDiff(opts);

    RunRequest &req = opts.req;
    if (opts.genSeedSet) {
        GeneratorOptions gen;
        gen.seed = opts.genSeed;
        req.source = generateRandomSource(gen);
        if (req.id.empty())
            req.id = "gen-" + std::to_string(opts.genSeed);
        if (opts.dumpAsm) {
            std::fputs(req.source.c_str(), stdout);
            return 0;
        }
    }
    if (!opts.sourceFile.empty())
        req.source = readFile(opts.sourceFile);
    if (!opts.productionsFile.empty())
        req.productions = readFile(opts.productionsFile);
    if (opts.dumpAsm && !req.workload.empty()) {
        std::fputs(
            generateWorkloadSource(workloadSpec(req.workload)).c_str(),
            stdout);
        return 0;
    }

    const PreparedJob job = prepareJob(req);
    std::printf("program:       %zu insts (%.1f KB text, %.1f KB "
                "data), entry 0x%llx\n",
                job.prog->text.size(), job.prog->textBytes() / 1024.0,
                job.prog->data.size() / 1024.0,
                (unsigned long long)job.prog->entry);

    SimOptions simOpts;
    simOpts.statsText = opts.stats;
    simOpts.registry = !opts.statsJsonFile.empty();

    if (req.mode == RunMode::Timing) {
        const TimingOutcome out = runTimingSim(job, simOpts);
        const TimingResult &t = out.timing;
        printRun(t.arch);
        std::printf("cycles:        %llu (IPC %.2f)\n",
                    (unsigned long long)t.cycles, t.ipc());
        std::printf("mispredicts:   %llu (+%llu unpredicted-sequence, "
                    "%llu decode redirects)\n",
                    (unsigned long long)t.mispredicts,
                    (unsigned long long)t.diseMispredicts,
                    (unsigned long long)t.decodeRedirects);
        std::printf("cache misses:  L1I %llu, L1D %llu, L2 %llu\n",
                    (unsigned long long)t.icacheMisses,
                    (unsigned long long)t.dcacheMisses,
                    (unsigned long long)t.l2Misses);
        std::printf("PT/RT stalls:  %llu cycles\n",
                    (unsigned long long)t.missStallCycles);
        if (t.sampling.enabled) {
            std::printf(
                "sampling:      %llu:%llu — %llu insts timed, %llu "
                "warmed; measured CPI %.4f, estimated %llu cycles\n",
                (unsigned long long)t.sampling.period,
                (unsigned long long)t.sampling.detail,
                (unsigned long long)t.sampling.sampledInsts,
                (unsigned long long)t.sampling.warmedInsts,
                t.sampling.measuredCpi(),
                (unsigned long long)t.estimatedCycles());
        }
        if (req.profile)
            printProfile(out.profile, 0);
        if (opts.stats)
            std::fputs(out.statsText.c_str(), stdout);
        if (!opts.statsJsonFile.empty())
            writeStatsJson(opts.statsJsonFile, out.registry);
    } else {
        const auto trace = [](const DynInst &dyn, uint64_t i) {
            std::printf("%6llu  0x%llx:%u  %s\n", (unsigned long long)i,
                        (unsigned long long)dyn.pc, dyn.disepc,
                        disassemble(dyn.inst, dyn.pc).c_str());
        };
        // With --restore, --trace applies to the replay (the whole
        // point: step the suffix without re-tracing the prefix).
        if (!opts.restore) {
            simOpts.traceInsts = opts.traceInsts;
            simOpts.onTrace = trace;
        }
        SimSnapshot snap;
        if (opts.snapshotAt > 0) {
            snap = takeWarmupSnapshot(job, opts.snapshotAt);
            std::printf("snapshot:      app inst %llu (dyn inst %llu, "
                        "pc 0x%llx, %zu pages)\n",
                        (unsigned long long)snap.appInsts,
                        (unsigned long long)snap.result.dynInsts,
                        (unsigned long long)snap.pc,
                        snap.memory.pagesTouched());
            // The main run resumes from the snapshot; its result is
            // bit-identical to an uninterrupted run (src/sim/snapshot).
            simOpts.resume = &snap;
        }
        const FunctionalOutcome out = runFunctionalSim(job, simOpts);
        printRun(out.arch);
        if (req.profile)
            printProfile(out.profile, 10);
        if (opts.stats)
            std::fputs(out.statsText.c_str(), stdout);
        if (!opts.statsJsonFile.empty())
            writeStatsJson(opts.statsJsonFile, out.registry);
        if (opts.restore) {
            std::printf("\nrestored app inst %llu, replaying:\n",
                        (unsigned long long)snap.appInsts);
            SimOptions replayOpts = simOpts;
            replayOpts.traceInsts = opts.traceInsts;
            replayOpts.onTrace = trace;
            const FunctionalOutcome replay =
                runFunctionalSim(job, replayOpts);
            printRun(replay.arch);
            const bool identical = replay.arch.toJson().dump() ==
                                   out.arch.toJson().dump();
            std::printf("replay:        %s\n",
                        identical ? "bit-identical to the original run"
                                  : "MISMATCH vs the original run");
            if (!identical)
                return 1;
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // A consumer closing its end of a pipe (head -1 over --batch, a
    // serve client vanishing mid-write) must surface as a write error
    // we can report, not a SIGPIPE process kill.
    std::signal(SIGPIPE, SIG_IGN);
    // Guest failures are architected Trap/Hang outcomes and never throw;
    // the only exceptions reaching here are host-level, already logged
    // to stderr by fatal()/panic(). Separate the two error classes by
    // exit code: user error (bad input, unreadable file) is 1, a
    // simulator invariant violation is 2.
    try {
        return runMain(argc, argv);
    } catch (const PanicError &) {
        return 2;
    } catch (const FatalError &) {
        return 1;
    }
}
