# Empty compiler generated dependencies file for diserun.
# This may be replaced when dependencies are built.
