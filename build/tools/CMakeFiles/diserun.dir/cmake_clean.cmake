file(REMOVE_RECURSE
  "CMakeFiles/diserun.dir/diserun.cpp.o"
  "CMakeFiles/diserun.dir/diserun.cpp.o.d"
  "diserun"
  "diserun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diserun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
