# Empty dependencies file for bench_fig7_decompression.
# This may be replaced when dependencies are built.
