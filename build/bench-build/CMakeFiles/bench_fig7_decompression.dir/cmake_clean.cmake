file(REMOVE_RECURSE
  "../bench/bench_fig7_decompression"
  "../bench/bench_fig7_decompression.pdb"
  "CMakeFiles/bench_fig7_decompression.dir/bench_fig7_decompression.cpp.o"
  "CMakeFiles/bench_fig7_decompression.dir/bench_fig7_decompression.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_decompression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
