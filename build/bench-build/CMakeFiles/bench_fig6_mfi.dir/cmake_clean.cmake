file(REMOVE_RECURSE
  "../bench/bench_fig6_mfi"
  "../bench/bench_fig6_mfi.pdb"
  "CMakeFiles/bench_fig6_mfi.dir/bench_fig6_mfi.cpp.o"
  "CMakeFiles/bench_fig6_mfi.dir/bench_fig6_mfi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_mfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
