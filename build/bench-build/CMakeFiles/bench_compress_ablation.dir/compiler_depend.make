# Empty compiler generated dependencies file for bench_compress_ablation.
# This may be replaced when dependencies are built.
