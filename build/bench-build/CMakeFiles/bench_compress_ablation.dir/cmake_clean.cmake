file(REMOVE_RECURSE
  "../bench/bench_compress_ablation"
  "../bench/bench_compress_ablation.pdb"
  "CMakeFiles/bench_compress_ablation.dir/bench_compress_ablation.cpp.o"
  "CMakeFiles/bench_compress_ablation.dir/bench_compress_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compress_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
