# Empty dependencies file for bench_fig8_composition.
# This may be replaced when dependencies are built.
