file(REMOVE_RECURSE
  "libdise_common.a"
)
