file(REMOVE_RECURSE
  "CMakeFiles/dise_common.dir/logging.cpp.o"
  "CMakeFiles/dise_common.dir/logging.cpp.o.d"
  "CMakeFiles/dise_common.dir/stats.cpp.o"
  "CMakeFiles/dise_common.dir/stats.cpp.o.d"
  "CMakeFiles/dise_common.dir/table.cpp.o"
  "CMakeFiles/dise_common.dir/table.cpp.o.d"
  "libdise_common.a"
  "libdise_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dise_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
