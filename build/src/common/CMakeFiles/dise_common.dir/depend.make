# Empty dependencies file for dise_common.
# This may be replaced when dependencies are built.
