file(REMOVE_RECURSE
  "libdise_core.a"
)
