file(REMOVE_RECURSE
  "CMakeFiles/dise_core.dir/controller.cpp.o"
  "CMakeFiles/dise_core.dir/controller.cpp.o.d"
  "CMakeFiles/dise_core.dir/engine.cpp.o"
  "CMakeFiles/dise_core.dir/engine.cpp.o.d"
  "CMakeFiles/dise_core.dir/parser.cpp.o"
  "CMakeFiles/dise_core.dir/parser.cpp.o.d"
  "CMakeFiles/dise_core.dir/production.cpp.o"
  "CMakeFiles/dise_core.dir/production.cpp.o.d"
  "CMakeFiles/dise_core.dir/serialize.cpp.o"
  "CMakeFiles/dise_core.dir/serialize.cpp.o.d"
  "libdise_core.a"
  "libdise_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dise_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
