
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dise/controller.cpp" "src/dise/CMakeFiles/dise_core.dir/controller.cpp.o" "gcc" "src/dise/CMakeFiles/dise_core.dir/controller.cpp.o.d"
  "/root/repo/src/dise/engine.cpp" "src/dise/CMakeFiles/dise_core.dir/engine.cpp.o" "gcc" "src/dise/CMakeFiles/dise_core.dir/engine.cpp.o.d"
  "/root/repo/src/dise/parser.cpp" "src/dise/CMakeFiles/dise_core.dir/parser.cpp.o" "gcc" "src/dise/CMakeFiles/dise_core.dir/parser.cpp.o.d"
  "/root/repo/src/dise/production.cpp" "src/dise/CMakeFiles/dise_core.dir/production.cpp.o" "gcc" "src/dise/CMakeFiles/dise_core.dir/production.cpp.o.d"
  "/root/repo/src/dise/serialize.cpp" "src/dise/CMakeFiles/dise_core.dir/serialize.cpp.o" "gcc" "src/dise/CMakeFiles/dise_core.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/dise_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dise_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
