# Empty dependencies file for dise_core.
# This may be replaced when dependencies are built.
