file(REMOVE_RECURSE
  "libdise_workloads.a"
)
