# Empty dependencies file for dise_workloads.
# This may be replaced when dependencies are built.
