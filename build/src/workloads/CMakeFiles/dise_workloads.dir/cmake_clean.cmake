file(REMOVE_RECURSE
  "CMakeFiles/dise_workloads.dir/kernels.cpp.o"
  "CMakeFiles/dise_workloads.dir/kernels.cpp.o.d"
  "CMakeFiles/dise_workloads.dir/workloads.cpp.o"
  "CMakeFiles/dise_workloads.dir/workloads.cpp.o.d"
  "libdise_workloads.a"
  "libdise_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dise_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
