file(REMOVE_RECURSE
  "CMakeFiles/dise_isa.dir/disasm.cpp.o"
  "CMakeFiles/dise_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/dise_isa.dir/inst.cpp.o"
  "CMakeFiles/dise_isa.dir/inst.cpp.o.d"
  "CMakeFiles/dise_isa.dir/opcodes.cpp.o"
  "CMakeFiles/dise_isa.dir/opcodes.cpp.o.d"
  "CMakeFiles/dise_isa.dir/regs.cpp.o"
  "CMakeFiles/dise_isa.dir/regs.cpp.o.d"
  "libdise_isa.a"
  "libdise_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dise_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
