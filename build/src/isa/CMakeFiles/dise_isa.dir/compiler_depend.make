# Empty compiler generated dependencies file for dise_isa.
# This may be replaced when dependencies are built.
