file(REMOVE_RECURSE
  "libdise_isa.a"
)
