file(REMOVE_RECURSE
  "CMakeFiles/dise_acf.dir/assertions.cpp.o"
  "CMakeFiles/dise_acf.dir/assertions.cpp.o.d"
  "CMakeFiles/dise_acf.dir/compose.cpp.o"
  "CMakeFiles/dise_acf.dir/compose.cpp.o.d"
  "CMakeFiles/dise_acf.dir/compress.cpp.o"
  "CMakeFiles/dise_acf.dir/compress.cpp.o.d"
  "CMakeFiles/dise_acf.dir/mfi.cpp.o"
  "CMakeFiles/dise_acf.dir/mfi.cpp.o.d"
  "CMakeFiles/dise_acf.dir/profiler.cpp.o"
  "CMakeFiles/dise_acf.dir/profiler.cpp.o.d"
  "CMakeFiles/dise_acf.dir/rewriter.cpp.o"
  "CMakeFiles/dise_acf.dir/rewriter.cpp.o.d"
  "CMakeFiles/dise_acf.dir/tracing.cpp.o"
  "CMakeFiles/dise_acf.dir/tracing.cpp.o.d"
  "libdise_acf.a"
  "libdise_acf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dise_acf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
