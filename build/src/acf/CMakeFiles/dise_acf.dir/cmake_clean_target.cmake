file(REMOVE_RECURSE
  "libdise_acf.a"
)
