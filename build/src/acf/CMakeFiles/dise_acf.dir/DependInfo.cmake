
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acf/assertions.cpp" "src/acf/CMakeFiles/dise_acf.dir/assertions.cpp.o" "gcc" "src/acf/CMakeFiles/dise_acf.dir/assertions.cpp.o.d"
  "/root/repo/src/acf/compose.cpp" "src/acf/CMakeFiles/dise_acf.dir/compose.cpp.o" "gcc" "src/acf/CMakeFiles/dise_acf.dir/compose.cpp.o.d"
  "/root/repo/src/acf/compress.cpp" "src/acf/CMakeFiles/dise_acf.dir/compress.cpp.o" "gcc" "src/acf/CMakeFiles/dise_acf.dir/compress.cpp.o.d"
  "/root/repo/src/acf/mfi.cpp" "src/acf/CMakeFiles/dise_acf.dir/mfi.cpp.o" "gcc" "src/acf/CMakeFiles/dise_acf.dir/mfi.cpp.o.d"
  "/root/repo/src/acf/profiler.cpp" "src/acf/CMakeFiles/dise_acf.dir/profiler.cpp.o" "gcc" "src/acf/CMakeFiles/dise_acf.dir/profiler.cpp.o.d"
  "/root/repo/src/acf/rewriter.cpp" "src/acf/CMakeFiles/dise_acf.dir/rewriter.cpp.o" "gcc" "src/acf/CMakeFiles/dise_acf.dir/rewriter.cpp.o.d"
  "/root/repo/src/acf/tracing.cpp" "src/acf/CMakeFiles/dise_acf.dir/tracing.cpp.o" "gcc" "src/acf/CMakeFiles/dise_acf.dir/tracing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dise/CMakeFiles/dise_core.dir/DependInfo.cmake"
  "/root/repo/build/src/assembler/CMakeFiles/dise_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dise_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dise_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dise_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dise_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
