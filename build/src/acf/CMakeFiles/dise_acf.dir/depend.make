# Empty dependencies file for dise_acf.
# This may be replaced when dependencies are built.
