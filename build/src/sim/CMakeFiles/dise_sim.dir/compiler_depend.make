# Empty compiler generated dependencies file for dise_sim.
# This may be replaced when dependencies are built.
