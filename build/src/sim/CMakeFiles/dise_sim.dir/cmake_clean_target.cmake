file(REMOVE_RECURSE
  "libdise_sim.a"
)
