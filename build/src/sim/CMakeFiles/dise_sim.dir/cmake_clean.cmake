file(REMOVE_RECURSE
  "CMakeFiles/dise_sim.dir/core.cpp.o"
  "CMakeFiles/dise_sim.dir/core.cpp.o.d"
  "libdise_sim.a"
  "libdise_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dise_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
