# Empty dependencies file for dise_pipeline.
# This may be replaced when dependencies are built.
