file(REMOVE_RECURSE
  "libdise_pipeline.a"
)
