file(REMOVE_RECURSE
  "CMakeFiles/dise_pipeline.dir/pipeline.cpp.o"
  "CMakeFiles/dise_pipeline.dir/pipeline.cpp.o.d"
  "libdise_pipeline.a"
  "libdise_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dise_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
