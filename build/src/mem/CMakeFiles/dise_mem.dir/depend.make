# Empty dependencies file for dise_mem.
# This may be replaced when dependencies are built.
