file(REMOVE_RECURSE
  "CMakeFiles/dise_mem.dir/cache.cpp.o"
  "CMakeFiles/dise_mem.dir/cache.cpp.o.d"
  "CMakeFiles/dise_mem.dir/memory.cpp.o"
  "CMakeFiles/dise_mem.dir/memory.cpp.o.d"
  "libdise_mem.a"
  "libdise_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dise_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
