file(REMOVE_RECURSE
  "libdise_mem.a"
)
