file(REMOVE_RECURSE
  "libdise_branch.a"
)
