file(REMOVE_RECURSE
  "CMakeFiles/dise_branch.dir/predictor.cpp.o"
  "CMakeFiles/dise_branch.dir/predictor.cpp.o.d"
  "libdise_branch.a"
  "libdise_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dise_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
