# Empty dependencies file for dise_branch.
# This may be replaced when dependencies are built.
