file(REMOVE_RECURSE
  "CMakeFiles/dise_assembler.dir/assembler.cpp.o"
  "CMakeFiles/dise_assembler.dir/assembler.cpp.o.d"
  "CMakeFiles/dise_assembler.dir/program.cpp.o"
  "CMakeFiles/dise_assembler.dir/program.cpp.o.d"
  "libdise_assembler.a"
  "libdise_assembler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dise_assembler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
