# Empty compiler generated dependencies file for dise_assembler.
# This may be replaced when dependencies are built.
