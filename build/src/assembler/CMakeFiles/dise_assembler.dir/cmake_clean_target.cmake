file(REMOVE_RECURSE
  "libdise_assembler.a"
)
