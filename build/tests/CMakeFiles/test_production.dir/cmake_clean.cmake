file(REMOVE_RECURSE
  "CMakeFiles/test_production.dir/test_production.cpp.o"
  "CMakeFiles/test_production.dir/test_production.cpp.o.d"
  "test_production"
  "test_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
