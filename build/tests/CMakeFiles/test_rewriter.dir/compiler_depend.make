# Empty compiler generated dependencies file for test_rewriter.
# This may be replaced when dependencies are built.
