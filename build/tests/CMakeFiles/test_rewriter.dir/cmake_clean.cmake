file(REMOVE_RECURSE
  "CMakeFiles/test_rewriter.dir/test_rewriter.cpp.o"
  "CMakeFiles/test_rewriter.dir/test_rewriter.cpp.o.d"
  "test_rewriter"
  "test_rewriter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rewriter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
