file(REMOVE_RECURSE
  "CMakeFiles/test_mfi.dir/test_mfi.cpp.o"
  "CMakeFiles/test_mfi.dir/test_mfi.cpp.o.d"
  "test_mfi"
  "test_mfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
