# Empty compiler generated dependencies file for test_mfi.
# This may be replaced when dependencies are built.
