
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/test_workloads.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/test_workloads.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/dise_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/acf/CMakeFiles/dise_acf.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/dise_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dise_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dise/CMakeFiles/dise_core.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/dise_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dise_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/assembler/CMakeFiles/dise_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dise_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dise_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
