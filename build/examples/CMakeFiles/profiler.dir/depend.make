# Empty dependencies file for profiler.
# This may be replaced when dependencies are built.
