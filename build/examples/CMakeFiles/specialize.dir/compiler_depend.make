# Empty compiler generated dependencies file for specialize.
# This may be replaced when dependencies are built.
