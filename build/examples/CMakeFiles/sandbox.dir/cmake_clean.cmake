file(REMOVE_RECURSE
  "CMakeFiles/sandbox.dir/sandbox.cpp.o"
  "CMakeFiles/sandbox.dir/sandbox.cpp.o.d"
  "sandbox"
  "sandbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sandbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
