/**
 * @file
 * Macro-op fusion: the pure pair matcher, the seeded program
 * generator, the native-vs-fused differential contract, the AcfRegistry
 * composition rules, and the legacy-alias equivalence of the RunRequest
 * "acfs" form.
 */

#include <gtest/gtest.h>

#include "src/acf/fusion.hpp"
#include "src/acf/registry.hpp"
#include "src/common/logging.hpp"
#include "src/common/rng.hpp"
#include "src/service/runner.hpp"
#include "src/workloads/generator.hpp"

namespace dise {
namespace {

DecodedInst
dec(Word w)
{
    return decode(w);
}

// ---------------------------------------------------------------------
// fusePair: the pure matcher.
// ---------------------------------------------------------------------

TEST(FusePair, CmpBranchFusesAndRebasesTarget)
{
    const DecodedInst cmp = dec(makeOperate(Opcode::CMPEQ, 1, 2, 3));
    const DecodedInst br = dec(makeBranch(Opcode::BNE, 3, 12));
    DecodedInst fused;
    ASSERT_TRUE(fusePair(cmp, br, &fused));
    EXPECT_EQ(fused.op, Opcode::FCMPBR);
    const CmpBrFields f = unpackCmpBr(fused.tag);
    EXPECT_EQ(f.cmpOp, Opcode::CMPEQ);
    EXPECT_EQ(f.brOp, Opcode::BNE);
    // The fused op sits at the pair's first PC; its displacement is
    // rebased so the native target (relative to the branch at pc + 4)
    // is preserved exactly.
    const Addr pc = 0x1000;
    EXPECT_EQ(fused.branchTarget(pc), br.branchTarget(pc + 4));
}

TEST(FusePair, CmpBranchRequiresDependence)
{
    // The branch tests a register the compare did not write.
    const DecodedInst cmp = dec(makeOperate(Opcode::CMPEQ, 1, 2, 3));
    const DecodedInst br = dec(makeBranch(Opcode::BNE, 4, 12));
    DecodedInst fused;
    EXPECT_FALSE(fusePair(cmp, br, &fused));
}

TEST(FusePair, CmpIntoZeroRegDoesNotFuse)
{
    const DecodedInst cmp =
        dec(makeOperate(Opcode::CMPEQ, 1, 2, kZeroReg));
    const DecodedInst br = dec(makeBranch(Opcode::BNE, kZeroReg, 12));
    DecodedInst fused;
    EXPECT_FALSE(fusePair(cmp, br, &fused));
}

TEST(FusePair, AddrConstFuses)
{
    const DecodedInst hi = dec(makeMemory(Opcode::LDAH, 5, 6, 2));
    const DecodedInst lo = dec(makeMemory(Opcode::LDA, 5, 5, -96));
    DecodedInst fused;
    ASSERT_TRUE(fusePair(hi, lo, &fused));
    EXPECT_EQ(fused.op, Opcode::FLDAC);
}

TEST(FusePair, AddrLoadFuses)
{
    const DecodedInst lda = dec(makeMemory(Opcode::LDA, 7, 8, 128));
    const DecodedInst ldq = dec(makeMemory(Opcode::LDQ, 7, 7, 16));
    DecodedInst fused;
    ASSERT_TRUE(fusePair(lda, ldq, &fused));
    EXPECT_EQ(fused.op, Opcode::FLDAL);
}

TEST(FusePair, LoadOpTagRoundTrips)
{
    const DecodedInst ldq = dec(makeMemory(Opcode::LDQ, 9, 10, 8));
    const DecodedInst op = dec(makeOperate(Opcode::XOR, 9, 11, 9));
    DecodedInst fused;
    ASSERT_TRUE(fusePair(ldq, op, &fused));
    EXPECT_EQ(fused.op, Opcode::FLDOP);
    const LoadOpFields f = unpackLoadOp(fused.tag);
    EXPECT_EQ(f.aluOp, Opcode::XOR);
    EXPECT_FALSE(f.useLit);
}

TEST(FusePair, UnrelatedPairDoesNotFuse)
{
    const DecodedInst a = dec(makeOperate(Opcode::ADDQ, 1, 2, 3));
    const DecodedInst b = dec(makeOperate(Opcode::ADDQ, 4, 5, 6));
    DecodedInst fused;
    EXPECT_FALSE(fusePair(a, b, &fused));
}

TEST(FusePair, FamilyNamesAreStable)
{
    EXPECT_EQ(fusedFamilyIndex(Opcode::FCMPBR), 0);
    EXPECT_EQ(fusedFamilyIndex(Opcode::FLDOP), kNumFusedFamilies - 1);
    EXPECT_STREQ(fusedFamilyName(0), "cmp_branch");
    EXPECT_STREQ(fusedFamilyName(kNumFusedFamilies - 1), "load_op");
}

// ---------------------------------------------------------------------
// The seeded generator.
// ---------------------------------------------------------------------

TEST(Generator, SameSeedSameSource)
{
    GeneratorOptions opts;
    opts.seed = 77;
    EXPECT_EQ(generateRandomSource(opts), generateRandomSource(opts));
    GeneratorOptions other = opts;
    other.seed = 78;
    EXPECT_NE(generateRandomSource(opts), generateRandomSource(other));
}

TEST(Generator, ProgramsAssemble)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        GeneratorOptions opts;
        opts.seed = seed;
        const Program prog = generateRandomProgram(opts);
        EXPECT_GT(prog.text.size(), 0u) << "seed " << seed;
    }
}

// ---------------------------------------------------------------------
// Differential contract: native vs fused, slow vs fast.
// ---------------------------------------------------------------------

/** Run @p source once under the given knobs; return the arch JSON. */
std::string
runArch(const std::string &source, bool fusion, bool traceCache)
{
    RunRequest req;
    req.source = source;
    req.traceCache = traceCache;
    if (fusion) {
        req.acfsExplicit = true;
        req.acfs = {{"fusion", "", AcfCompose::Append}};
    }
    const FunctionalOutcome out = runFunctionalSim(prepareJob(req));
    EXPECT_TRUE(out.arch.exited);
    EXPECT_EQ(out.arch.exitCode, 0);
    return out.arch.toJson().dump();
}

TEST(FusionDifferential, GeneratedProgramsBitIdenticalAcrossRegimes)
{
    // A miniature of the CI gen-diff block: every regime must retire
    // the identical architectural result for every seed. CI runs 1000+
    // programs; a couple dozen here keep the suite fast while still
    // exercising all idiom families.
    uint64_t fusedSomething = 0;
    for (uint64_t i = 0; i < 24; ++i) {
        const uint64_t seed = Rng::deriveSeed(2003, i);
        GeneratorOptions opts;
        opts.seed = seed;
        const std::string src = generateRandomSource(opts);
        const std::string ref = runArch(src, false, false);
        EXPECT_EQ(runArch(src, false, true), ref) << "seed " << seed;
        EXPECT_EQ(runArch(src, true, false), ref) << "seed " << seed;
        EXPECT_EQ(runArch(src, true, true), ref) << "seed " << seed;

        RunRequest req;
        req.source = src;
        req.acfsExplicit = true;
        req.acfs = {{"fusion", "", AcfCompose::Append}};
        SimOptions simOpts;
        simOpts.registry = true;
        const FunctionalOutcome out =
            runFunctionalSim(prepareJob(req), simOpts);
        fusedSomething +=
            out.registry.at("acf").at("fusion").at("fused_pairs").asUInt();
    }
    // The generator is fusion-biased: a batch with zero fused pairs
    // means the matcher or the generator regressed.
    EXPECT_GT(fusedSomething, 0u);
}

TEST(FusionDifferential, FusionNestedWithinMfiIsArchIdentical)
{
    // Fusion contracts the post-expansion stream, so enabling it under
    // a full MFI + watchpoint environment must not change any
    // architectural number (including the ACF detection count).
    RunRequest base;
    base.workload = "gzip";
    base.scale = 0.05;
    base.acfsExplicit = true;
    base.acfs = {{"mfi", "dise4", AcfCompose::Append},
                 {"watchpoint", "", AcfCompose::Merged}};
    const FunctionalOutcome ref = runFunctionalSim(prepareJob(base));

    RunRequest fused = base;
    fused.acfs.push_back({"fusion", "", AcfCompose::Append});
    const FunctionalOutcome got = runFunctionalSim(prepareJob(fused));

    EXPECT_EQ(got.arch.toJson().dump(), ref.arch.toJson().dump());
    EXPECT_EQ(got.arch.acfDetections, ref.arch.acfDetections);
}

// ---------------------------------------------------------------------
// AcfRegistry composition rules and structured rejection.
// ---------------------------------------------------------------------

/** validate() must throw and the diagnostic must name @p needle. */
void
expectRejected(const RunRequest &req, const std::string &needle)
{
    try {
        req.validate();
        FAIL() << "expected rejection mentioning \"" << needle << "\"";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find(needle),
                  std::string::npos)
            << "diagnostic was: " << err.what();
    }
}

TEST(AcfRegistry, FusionRejectsMergedAndNestedByName)
{
    RunRequest req;
    req.workload = "gzip";
    req.acfsExplicit = true;
    req.acfs = {{"mfi", "dise4", AcfCompose::Append},
                {"fusion", "", AcfCompose::Merged}};
    expectRejected(req, "fusion/merged");
    req.acfs[1].compose = AcfCompose::Nested;
    expectRejected(req, "fusion/nested");
}

TEST(AcfRegistry, UnknownKindAndDuplicatesRejected)
{
    RunRequest req;
    req.workload = "gzip";
    req.acfsExplicit = true;
    req.acfs = {{"macro", "", AcfCompose::Append}};
    expectRejected(req, "macro");
    req.acfs = {{"fusion", "", AcfCompose::Append},
                {"fusion", "", AcfCompose::Append}};
    expectRejected(req, "duplicate");
}

TEST(AcfRegistry, MergedNeedsAPrecedingProductionSet)
{
    RunRequest req;
    req.workload = "gzip";
    req.acfsExplicit = true;
    req.acfs = {{"watchpoint", "", AcfCompose::Merged}};
    expectRejected(req, "preceding");
}

TEST(AcfRegistry, FusionRejectsWarmupSamplingAndCampaign)
{
    RunRequest req;
    req.workload = "gzip";
    req.acfsExplicit = true;
    req.acfs = {{"fusion", "", AcfCompose::Append}};
    req.warmupInsts = 100;
    EXPECT_THROW(req.validate(), FatalError);
    req.warmupInsts = 0;
    req.mode = RunMode::Timing;
    req.samplePeriod = 1000;
    req.sampleDetail = 100;
    EXPECT_THROW(req.validate(), FatalError);
    req.samplePeriod = 0;
    req.sampleDetail = 0;
    req.mode = RunMode::Campaign;
    EXPECT_THROW(req.validate(), FatalError);
}

// ---------------------------------------------------------------------
// Legacy aliases: desugaring, round-trips, and mixing rejection.
// ---------------------------------------------------------------------

TEST(AcfAliases, LegacyBooleansDesugarToTheCanonicalList)
{
    RunRequest legacy;
    legacy.workload = "gzip";
    legacy.mfi = true;
    legacy.mfiVariant = MfiVariant::Dise4;
    legacy.watchpoint = true;
    const std::vector<AcfSpec> expect = {
        {"mfi", "dise4", AcfCompose::Append},
        {"watchpoint", "", AcfCompose::Merged}};
    EXPECT_EQ(legacy.normalizedAcfs(), expect);

    // Request-level equivalence: the alias and the explicit list
    // prepare byte-identical jobs (same program, same productions).
    RunRequest explicitForm = legacy;
    explicitForm.mfi = false;
    explicitForm.watchpoint = false;
    explicitForm.acfsExplicit = true;
    explicitForm.acfs = expect;
    const FunctionalOutcome a = runFunctionalSim(prepareJob(legacy));
    const FunctionalOutcome b =
        runFunctionalSim(prepareJob(explicitForm));
    EXPECT_EQ(a.arch.toJson().dump(), b.arch.toJson().dump());
}

TEST(AcfAliases, JsonRoundTripsPreserveTheFormUsed)
{
    RunRequest legacy;
    legacy.workload = "gzip";
    legacy.mfi = true;
    legacy.watchpoint = true;
    const Json legacyDoc = legacy.toJson();
    EXPECT_FALSE(legacyDoc.contains("acfs"));
    const RunRequest legacyBack = RunRequest::fromJson(legacyDoc);
    EXPECT_FALSE(legacyBack.acfsExplicit);
    EXPECT_EQ(legacyBack.normalizedAcfs(), legacy.normalizedAcfs());

    RunRequest list;
    list.workload = "gzip";
    list.acfsExplicit = true;
    list.acfs = {{"mfi", "dise4", AcfCompose::Append},
                 {"fusion", "", AcfCompose::Append}};
    const Json listDoc = list.toJson();
    EXPECT_TRUE(listDoc.contains("acfs"));
    EXPECT_FALSE(listDoc.contains("mfi"));
    const RunRequest listBack = RunRequest::fromJson(listDoc);
    EXPECT_TRUE(listBack.acfsExplicit);
    EXPECT_EQ(listBack.acfs, list.acfs);
}

TEST(AcfAliases, MixingFormsIsRejected)
{
    // JSON level: key presence conflicts, even with a false value.
    Json doc = Json::object();
    doc["workload"] = Json(std::string("gzip"));
    Json specs = Json::array();
    Json spec = Json::object();
    spec["kind"] = Json(std::string("fusion"));
    specs.push_back(spec);
    doc["acfs"] = specs;
    doc["mfi"] = Json(false);
    EXPECT_THROW(RunRequest::fromJson(doc), FatalError);

    // Programmatic level: validate() rejects the same contradiction.
    RunRequest req;
    req.workload = "gzip";
    req.acfsExplicit = true;
    req.acfs = {{"fusion", "", AcfCompose::Append}};
    req.mfi = true;
    EXPECT_THROW(req.validate(), FatalError);
}

TEST(AcfAliases, SpecStringFormsRoundTrip)
{
    const AcfSpec spec{"mfi", "dise4", AcfCompose::Nested};
    EXPECT_EQ(spec.str(), "mfi:dise4/nested");
    const AcfSpec back = AcfSpec::fromJson(spec.toJson());
    EXPECT_EQ(back, spec);
}

} // namespace
} // namespace dise
